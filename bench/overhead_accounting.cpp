// §6 overhead reproduction: FedCav's extra cost over FedAvg.
//
// Paper claims: (a) communication — one extra float (the inference loss)
// per client per round; (b) computation — one inference pass over the
// local data at the start of each round, small relative to E local
// training epochs (paper quotes 0.0857 s inference vs 0.1620 s/epoch on
// MNIST). We verify (a) exactly from the comm fabric's byte counters and
// (b) by timing inference-loss evaluation against one epoch of local
// training on this host.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/metrics/evaluation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/timer.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("overhead_accounting", "SS6: FedCav comm/compute overhead vs FedAvg");
  add_scale_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  Scale scale = resolve_scale(cli);
  if (!cli.get_flag("paper") && cli.get_int("rounds") == 0) scale.rounds = 3;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // ---- (a) communication: exact per-round byte accounting ------------
  std::printf("== SS6 overhead: communication ==\n");
  MarkdownTable comm_table({"strategy", "bytes_up/round", "bytes_down/round",
                            "uplink_per_client", "extra_vs_weights"});
  const char* strategies[] = {"fedavg", "fedcav"};
  for (const char* strategy : strategies) {
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", strategy, seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.server.use_network = true;
    fl::Simulation sim = fl::build_simulation(config);
    const metrics::RoundRecord rec = sim.server->run_round();
    const std::size_t per_client_up = rec.bytes_up / rec.participants;
    const std::size_t weights_bytes = sim.server->global_weights().size() * sizeof(float);
    comm_table.add_row({strategy, std::to_string(rec.bytes_up),
                        std::to_string(rec.bytes_down), std::to_string(per_client_up),
                        std::to_string(per_client_up - weights_bytes)});
  }
  std::printf("%s", comm_table.render().c_str());
  std::printf("Note: the wire protocol always carries the 8-byte inference-loss "
              "field; FedAvg simply ignores it. The marginal cost of FedCav's "
              "signal is that one float per client per round (paper SS6).\n\n");

  // ---- (b) computation: inference pass vs one training epoch ---------
  std::printf("== SS6 overhead: computation (host wall-clock) ==\n");
  const data::SynthGenerator gen(data::synth_digits_config(seed));
  Rng data_rng(seed + 1);
  data::Dataset local = gen.generate_balanced(scale.train_samples_per_class, data_rng);
  Rng model_rng(seed + 2);
  auto model = nn::model_builder("lenet5")(model_rng);

  constexpr int kReps = 5;
  Stopwatch watch;
  for (int r = 0; r < kReps; ++r) {
    (void)metrics::inference_loss(*model, local);
  }
  const double inference_s = watch.seconds() / kReps;

  nn::Sgd optimizer(nn::SgdConfig{.lr = 0.05f});
  std::vector<std::size_t> order(local.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::size_t> labels;
  watch.reset();
  for (int r = 0; r < kReps; ++r) {
    for (std::size_t begin = 0; begin < order.size(); begin += scale.batch_size) {
      const std::size_t end = std::min(order.size(), begin + scale.batch_size);
      Tensor batch = local.make_batch(std::span(order.data() + begin, end - begin), &labels);
      model->forward_backward(batch, labels);
      optimizer.step(*model);
    }
  }
  const double epoch_s = watch.seconds() / kReps;

  MarkdownTable compute_table({"phase", "seconds", "relative"});
  compute_table.add_row({"inference loss (per round)", format_double(inference_s, 5), "1.0x"});
  compute_table.add_row({"one local epoch", format_double(epoch_s, 5),
                         format_double(epoch_s / inference_s, 2) + "x"});
  compute_table.add_row({"E=" + std::to_string(scale.local_epochs) + " local epochs",
                         format_double(epoch_s * scale.local_epochs, 5),
                         format_double(epoch_s * scale.local_epochs / inference_s, 2) + "x"});
  std::printf("%s", compute_table.render().c_str());
  std::printf("\nExpected shape (paper SS6): inference latency is a fraction of "
              "one training epoch (paper: 0.0857s vs 0.1620s x E on MNIST).\n");
  return 0;
}
