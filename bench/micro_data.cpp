// Microbenchmarks for the data substrate: synthesis, partitioning,
// batching — the per-experiment setup costs.
#include <benchmark/benchmark.h>

#include "src/data/partition.hpp"
#include "src/data/synthetic.hpp"
#include "src/utils/rng.hpp"

namespace {

using namespace fedcav;

void BM_SynthGenerate(benchmark::State& state) {
  const auto per_class = static_cast<std::size_t>(state.range(0));
  const data::SynthGenerator gen(data::synth_digits_config(1));
  for (auto _ : state) {
    Rng rng(2);
    data::Dataset ds = gen.generate_balanced(per_class, rng);
    benchmark::DoNotOptimize(&ds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(per_class * 10));
}
BENCHMARK(BM_SynthGenerate)->Arg(10)->Arg(60);

void BM_SynthGenerateCifar(benchmark::State& state) {
  const data::SynthGenerator gen(data::synth_cifar_config(1));
  for (auto _ : state) {
    Rng rng(2);
    data::Dataset ds = gen.generate_balanced(20, rng);
    benchmark::DoNotOptimize(&ds);
  }
}
BENCHMARK(BM_SynthGenerateCifar);

void BM_PartitionImbalanced(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const data::SynthGenerator gen(data::synth_digits_config(1));
  Rng rng(3);
  const data::Dataset ds = gen.generate_balanced(60, rng);
  data::PartitionConfig config;
  config.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.num_clients = clients;
  config.sigma = 600.0;
  for (auto _ : state) {
    data::Partition part = data::make_partition(ds, config);
    benchmark::DoNotOptimize(&part);
  }
}
BENCHMARK(BM_PartitionImbalanced)->Arg(10)->Arg(100);

void BM_PartitionDirichlet(benchmark::State& state) {
  const data::SynthGenerator gen(data::synth_digits_config(1));
  Rng rng(4);
  const data::Dataset ds = gen.generate_balanced(60, rng);
  data::PartitionConfig config;
  config.scheme = data::PartitionScheme::kDirichlet;
  config.num_clients = 100;
  for (auto _ : state) {
    data::Partition part = data::make_partition(ds, config);
    benchmark::DoNotOptimize(&part);
  }
}
BENCHMARK(BM_PartitionDirichlet);

void BM_MakeBatch(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const data::SynthGenerator gen(data::synth_digits_config(1));
  Rng rng(5);
  const data::Dataset ds = gen.generate_balanced(30, rng);
  std::vector<std::size_t> indices(batch);
  for (std::size_t i = 0; i < batch; ++i) indices[i] = i;
  std::vector<std::size_t> labels;
  for (auto _ : state) {
    Tensor b = ds.make_batch(indices, &labels);
    benchmark::DoNotOptimize(b.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch * ds.sample_numel() * sizeof(float)));
}
BENCHMARK(BM_MakeBatch)->Arg(10)->Arg(64);

}  // namespace
