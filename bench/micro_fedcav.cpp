// Microbenchmarks for the FedCav core: contribution weighting,
// aggregation, detection, and message serialization — the per-round
// server-side costs as a function of cohort size and model size.
#include <benchmark/benchmark.h>

#include "src/comm/message.hpp"
#include "src/core/contribution.hpp"
#include "src/core/detector.hpp"
#include "src/core/fedcav.hpp"
#include "src/fl/fedavg.hpp"
#include "src/utils/rng.hpp"

namespace {

using namespace fedcav;

std::vector<fl::ClientUpdate> make_updates(std::size_t clients, std::size_t dim,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<fl::ClientUpdate> updates(clients);
  for (std::size_t i = 0; i < clients; ++i) {
    updates[i].client_id = i;
    updates[i].inference_loss = rng.uniform(0.1, 4.0);
    updates[i].num_samples = 10 + rng.uniform_int(std::uint64_t{100});
    updates[i].weights.resize(dim);
    for (auto& w : updates[i].weights) w = rng.uniform_f(-1.0f, 1.0f);
  }
  return updates;
}

void BM_ContributionWeights(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<double> losses(n);
  for (auto& f : losses) f = rng.uniform(0.0, 5.0);
  core::ContributionConfig config;
  for (auto _ : state) {
    auto w = core::contribution_weights(losses, config);
    benchmark::DoNotOptimize(w.data());
  }
}
BENCHMARK(BM_ContributionWeights)->Arg(10)->Arg(30)->Arg(100)->Arg(1000);

void BM_FedCavAggregate(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  auto updates = make_updates(clients, dim, 2);
  nn::Weights global(dim, 0.0f);
  core::FedCavStrategy strategy;
  for (auto _ : state) {
    nn::Weights out = strategy.aggregate(global, updates);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(clients * dim * sizeof(float)));
}
BENCHMARK(BM_FedCavAggregate)->Args({10, 12502})->Args({30, 12502})->Args({100, 12502});

void BM_FedAvgAggregate(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  auto updates = make_updates(clients, 12502, 3);
  nn::Weights global(12502, 0.0f);
  fl::FedAvg strategy;
  for (auto _ : state) {
    nn::Weights out = strategy.aggregate(global, updates);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FedAvgAggregate)->Arg(30);

void BM_DetectorCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  std::vector<double> losses(n);
  for (auto& f : losses) f = rng.uniform(0.5, 2.0);
  core::AnomalyDetector detector;
  detector.commit(losses);
  for (auto _ : state) {
    auto result = detector.check(losses);
    benchmark::DoNotOptimize(&result);
  }
}
BENCHMARK(BM_DetectorCheck)->Arg(30)->Arg(1000);

void BM_ClientReportEncode(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  comm::ClientReportMsg msg;
  msg.round = 7;
  msg.client_id = 3;
  msg.num_samples = 60;
  msg.inference_loss = 1.5;
  msg.weights.assign(dim, 0.5f);
  for (auto _ : state) {
    ByteBuffer wire = msg.encode();
    benchmark::DoNotOptimize(wire.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * sizeof(float)));
}
BENCHMARK(BM_ClientReportEncode)->Arg(12502);

void BM_ClientReportDecode(benchmark::State& state) {
  comm::ClientReportMsg msg;
  msg.weights.assign(12502, 0.5f);
  const ByteBuffer wire = msg.encode();
  for (auto _ : state) {
    ByteReader reader(wire);
    comm::ClientReportMsg back = comm::ClientReportMsg::decode(reader);
    benchmark::DoNotOptimize(back.weights.data());
  }
}
BENCHMARK(BM_ClientReportDecode);

}  // namespace
