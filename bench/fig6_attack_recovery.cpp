// Fig. 6 reproduction: model-replacement attack (all labels flipped)
// against FedAvg and FedCav *without* detection, on the three datasets.
//
// Paper shape to reproduce: accuracy collapses at the attack round for
// both aggregators, then gradually and tortuously recovers through
// continued training; FedCav recovers slightly faster than FedAvg.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("fig6_attack_recovery",
                "Fig. 6: model replacement vs FedAvg / FedCav-without-detection");
  add_scale_flags(cli);
  cli.add_string("datasets", "digits,fashion,cifar", "comma-separated dataset list");
  cli.add_int("attack-round", 15, "round the adversary strikes (1-based)");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  // Strike once the model has trained meaningfully (but not past the
  // horizon when --fast shrinks the run).
  const auto attack_round = std::min<std::size_t>(
      static_cast<std::size_t>(cli.get_int("attack-round")),
      std::max<std::size_t>(2, scale.rounds * 3 / 5));

  std::printf("== Fig. 6: replacement attack at round %zu, no detection, %zu rounds ==\n",
              attack_round, scale.rounds);
  print_history_csv_header();

  MarkdownTable table({"dataset", "strategy", "pre_attack_acc", "post_attack_acc",
                       "recovery_rounds"});
  for (const std::string& dataset : split(cli.get_string("datasets"), ',')) {
    for (const char* strategy : {"fedavg", "fedcav"}) {
      TunedPlan plan = tuned_plan(scale, dataset, strategy, seed);
      plan.config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
      plan.config.partition.sigma = 600.0;
      plan.config.attack = "replacement";
      plan.config.attack_rounds = {attack_round};
      plan.config.attack_poison_fraction = 1.0;  // all labels flipped (paper Fig. 6)
      plan.config.server.detection_enabled = false;
      fl::Simulation sim = build_warmstarted(plan);
      sim.server->run(scale.rounds);
      const auto& history = sim.server->history();
      const std::string series = dataset + "/" + strategy;
      print_history_csv("fig6", series, history);

      const double pre = attack_round >= 2 ? history[attack_round - 2].test_accuracy : 0.0;
      const double post = history[attack_round - 1].test_accuracy;
      const auto recovery = history.recovery_rounds(0.9);
      table.add_row({dataset, strategy, format_double(pre, 4), format_double(post, 4),
                     recovery ? std::to_string(*recovery) : ">" + std::to_string(scale.rounds)});
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nExpected shape (paper Fig. 6): accuracy collapses at the attack "
              "round for both strategies, then climbs back slowly; without "
              "detection, recovery costs many rounds.\n");
  return 0;
}
