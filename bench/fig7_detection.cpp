// Fig. 7 reproduction: detection + reverse under replacement attacks of
// different strengths (20% / 50% / 80% label-poisoned malicious models).
//
// Paper shape to reproduce: the attack lands in round 4, the detector
// fires in round 5 and reverses the global model to the cached one, so
// accuracy snaps back immediately instead of re-training for many
// rounds. Includes the fake-loss ablation: an attacker who also lies
// about its inference loss poisons the Eq. 13 reference and suppresses
// detection (the §6 authenticity caveat the paper defers to TEE).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/attack/model_replacement.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("fig7_detection",
                "Fig. 7: detection + reverse under 20/50/80% poisoned replacement");
  add_scale_flags(cli);
  cli.add_int("attack-round", 10, "round the adversary strikes (1-based)");
  cli.add_flag("fake-loss-ablation", "also run an attacker that lies about its loss");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  Scale scale = resolve_scale(cli);
  if (!cli.get_flag("paper") && cli.get_int("rounds") == 0) scale.rounds = 16;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto attack_round = static_cast<std::size_t>(cli.get_int("attack-round"));

  std::printf("== Fig. 7: detection + reverse, attack at round %zu, %zu rounds ==\n",
              attack_round, scale.rounds);
  print_history_csv_header();

  MarkdownTable table({"poison", "detected_round", "reversed", "acc_before_attack",
                       "acc_attack_round", "acc_after_reverse"});
  for (double poison : {0.2, 0.5, 0.8}) {
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedcav", seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.sigma = 600.0;
    config.attack = "replacement";
    config.attack_rounds = {attack_round};
    config.attack_poison_fraction = poison;
    config.server.detection_enabled = true;
    fl::Simulation sim = fl::build_simulation(config);
    sim.server->run(scale.rounds);
    const auto& history = sim.server->history();
    const std::string series = "poison=" + format_double(poison, 1);
    print_history_csv("fig7", series, history);

    std::size_t detected_round = 0;
    bool reversed = false;
    for (const auto& record : history.records()) {
      if (record.detection_fired && detected_round == 0) detected_round = record.round;
      if (record.reversed) reversed = true;
    }
    table.add_row(
        {format_double(poison, 1),
         detected_round > 0 ? std::to_string(detected_round) : "never",
         reversed ? "yes" : "no",
         format_double(history[attack_round - 2].test_accuracy, 4),
         format_double(history[attack_round - 1].test_accuracy, 4),
         format_double(history[std::min(history.rounds() - 1, attack_round + 1)].test_accuracy, 4)});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());

  if (cli.get_flag("fake-loss-ablation")) {
    std::printf("\n-- ablation: attacker also fakes a huge inference loss --\n");
    // The library keeps reported_loss configurable on the adversary; the
    // simulation builder wires the honest-report default, so replicate
    // the wiring here with the lying variant.
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedcav", seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.sigma = 600.0;
    config.server.detection_enabled = true;
    fl::Simulation sim = fl::build_simulation(config);

    attack::ModelReplacementConfig attack_cfg;
    attack_cfg.poison_fraction = 1.0;
    attack_cfg.reported_loss = 50.0;  // the lie
    Rng rng(seed ^ 0xbad);
    data::Dataset shard = sim.train.subset(sim.partition.front());
    auto adversary = std::make_shared<attack::ModelReplacementAdversary>(
        std::move(shard), nn::model_builder("lenet5")(rng), config.server.local,
        attack_cfg, Rng(seed ^ 0xdab));
    sim.server->set_adversary(adversary, {attack_round});
    sim.server->run(scale.rounds);

    bool detected = false;
    for (const auto& record : sim.server->history().records()) {
      if (record.detection_fired) detected = true;
    }
    print_history_csv("fig7", "fake-loss", sim.server->history());
    std::printf("fake-loss attacker detected: %s (paper defers loss authenticity "
                "to TEE, SS6)\n",
                detected ? "yes" : "NO - reference poisoned as predicted");
  }

  std::printf("\nExpected shape (paper Fig. 7): attack lands at round %zu, detection "
              "fires at round %zu, reverse restores pre-attack accuracy immediately.\n",
              attack_round, attack_round + 1);
  return 0;
}
