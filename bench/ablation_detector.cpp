// Detector ablation: sweep the Eq. 13 vote fraction and slack under a
// replacement attack AND under clean training, reporting detection
// latency vs false-positive count — the recall/precision tradeoff the
// paper's fixed n/2 rule sits on.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/utils/logging.hpp"

namespace {

using namespace fedcav;
using namespace fedcav::bench;

struct DetectorOutcome {
  std::size_t detected_round = 0;  // 0 = never
  std::size_t false_positives = 0;
  double final_acc = 0.0;
};

DetectorOutcome run(const Scale& scale, std::uint64_t seed, double vote_fraction,
                    double slack, bool attacked, std::size_t attack_round) {
  fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedcav", seed);
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.partition.sigma = 600.0;
  config.server.detection_enabled = true;
  config.server.detector.vote_fraction = vote_fraction;
  config.server.detector.slack = slack;
  if (attacked) {
    config.attack = "replacement";
    config.attack_rounds = {attack_round};
  }
  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(scale.rounds);

  DetectorOutcome outcome;
  for (const auto& record : sim.server->history().records()) {
    if (record.detection_fired) {
      if (attacked && record.round > attack_round && outcome.detected_round == 0) {
        outcome.detected_round = record.round;
      } else if (!attacked || record.round <= attack_round) {
        ++outcome.false_positives;
      }
    }
  }
  outcome.final_acc = sim.server->history().back().test_accuracy;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_detector",
                "sweep Eq. 13 vote fraction and slack: latency vs false positives");
  add_scale_flags(cli);
  cli.add_int("attack-round", 10, "attack round for the recall arm");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  Scale scale = resolve_scale(cli);
  if (!cli.get_flag("paper") && cli.get_int("rounds") == 0) scale.rounds = 16;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto attack_round = static_cast<std::size_t>(cli.get_int("attack-round"));

  std::printf("== Detector ablation: digits, sigma=600, attack at round %zu ==\n",
              attack_round);

  MarkdownTable table({"vote_fraction", "slack", "detect_latency", "false_pos(clean)",
                       "final_acc(attacked)"});
  for (double vote : {0.3, 0.5, 0.7}) {
    for (double slack : {1.0, 1.5}) {
      const DetectorOutcome attacked = run(scale, seed, vote, slack, true, attack_round);
      const DetectorOutcome clean = run(scale, seed, vote, slack, false, attack_round);
      std::string latency = "never";
      if (attacked.detected_round > 0) {
        latency = std::to_string(attacked.detected_round - attack_round) + " round(s)";
      }
      table.add_row({format_double(vote, 1), format_double(slack, 1), latency,
                     std::to_string(clean.false_positives + attacked.false_positives),
                     format_double(attacked.final_acc, 4)});
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: the paper's (0.5, 1.0) point detects within one round; "
              "lower vote fractions trade false positives for recall, slack trades "
              "the other way.\n");
  return 0;
}
