// Train-step perf baseline: the pre-workspace per-image training path vs
// the batch-fused, allocation-free hot path (src/nn), across the zoo
// models at the paper's batch sizes.
//
// The `baseline` namespace embeds verbatim-style copies of the PR-1
// layer implementations — per-image im2col with a cached column-matrix
// copy per image, a heap-allocated gmat slice per image in conv
// backward, and a freshly constructed Tensor for every output — kept
// here as the fixed reference this PR's structural changes are measured
// against. Both paths run the same packed GEMM kernel, so the speedup
// isolates batching + workspace reuse, not kernel quality.
//
// Like micro_gemm this is a plain executable and the canonical producer
// of a perf trajectory file: it writes BENCH_train_step.json (one
// {model, batch, baseline_fwdbwd_ms, new_fwdbwd_ms, new_step_ms,
// speedup} entry per case) at the repo root.
//
// Usage: micro_train_step [--fast] [--threads N] [--out <path>]
//   --fast     CI-sized run (shorter timing windows, same case coverage)
//   --threads  fan the new path's kernels over N pool workers (0 =
//              single-threaded; results are bit-identical either way —
//              the baseline path always runs single-threaded)
//   --out      override the JSON destination (default <repo>/BENCH_train_step.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/nn/init.hpp"
#include "src/nn/optimizer.hpp"
#include "src/nn/zoo.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/rng.hpp"

namespace baseline {

using namespace fedcav;

// Seed im2col/col2im, frozen here so later library-side lowering
// optimizations don't leak into the reference: the pre-PR loops test
// the padding bounds per element instead of hoisting the valid
// interval per row.
void seed_im2col(const Conv2dGeometry& g, const float* image, Tensor& cols) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* d = cols.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long long sy = static_cast<long long>(y * g.stride + kh) -
                               static_cast<long long>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const long long sx = static_cast<long long>(x * g.stride + kw) -
                                 static_cast<long long>(g.pad);
            const bool inside = sy >= 0 && sy < static_cast<long long>(g.in_h) &&
                                sx >= 0 && sx < static_cast<long long>(g.in_w);
            d[y * ow + x] =
                inside ? chan[static_cast<std::size_t>(sy) * g.in_w +
                              static_cast<std::size_t>(sx)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void seed_col2im(const Conv2dGeometry& g, const Tensor& cols, float* grad_image) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* chan = grad_image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = cols.data() + row * oh * ow;
        for (std::size_t y = 0; y < oh; ++y) {
          const long long sy = static_cast<long long>(y * g.stride + kh) -
                               static_cast<long long>(g.pad);
          if (sy < 0 || sy >= static_cast<long long>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const long long sx = static_cast<long long>(x * g.stride + kw) -
                                 static_cast<long long>(g.pad);
            if (sx < 0 || sx >= static_cast<long long>(g.in_w)) continue;
            chan[static_cast<std::size_t>(sy) * g.in_w +
                 static_cast<std::size_t>(sx)] += src[y * ow + x];
          }
        }
      }
    }
  }
}

// ------------------------------------------------- pre-PR layer stack

class BLayer {
 public:
  virtual ~BLayer() = default;
  virtual Tensor forward(const Tensor& input, bool training) = 0;
  virtual Tensor backward(const Tensor& grad_output) = 0;
};

class BConv2D : public BLayer {
 public:
  BConv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
          std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
          Rng& rng)
      : geometry_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
        out_channels_(out_channels),
        weight_(Shape::of(out_channels, in_channels * kernel * kernel)),
        bias_(Shape::of(out_channels)),
        weight_grad_(Shape::of(out_channels, in_channels * kernel * kernel)),
        bias_grad_(Shape::of(out_channels)) {
    nn::he_normal(weight_, geometry_.col_rows(), rng);
  }

  Tensor forward(const Tensor& input, bool training) override {
    const auto& s = input.shape();
    const std::size_t batch = s[0];
    const std::size_t oh = geometry_.out_h();
    const std::size_t ow = geometry_.out_w();
    const std::size_t image_size =
        geometry_.in_channels * geometry_.in_h * geometry_.in_w;

    if (training) {
      cached_input_ = input;
      cached_cols_.assign(batch, Tensor());
    }

    Tensor out(Shape::of(batch, out_channels_, oh, ow));
    Tensor cols(Shape::of(geometry_.col_rows(), geometry_.col_cols()));
    Tensor result(Shape::of(out_channels_, oh * ow));
    const ops::PackedA packed_w = ops::pack_a(
        ops::Trans::kNo, out_channels_, geometry_.col_rows(), weight_.data(),
        geometry_.col_rows());
    for (std::size_t b = 0; b < batch; ++b) {
      seed_im2col(geometry_, input.data() + b * image_size, cols);
      if (training) cached_cols_[b] = cols;
      ops::gemm_prepacked(packed_w, ops::Trans::kNo, geometry_.col_cols(),
                          cols.data(), geometry_.col_cols(), /*beta=*/0.0f,
                          result.data(), geometry_.col_cols());
      float* dst = out.data() + b * out_channels_ * oh * ow;
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float bc = bias_(c);
        const float* src = result.data() + c * oh * ow;
        float* d = dst + c * oh * ow;
        for (std::size_t i = 0; i < oh * ow; ++i) d[i] = src[i] + bc;
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    const std::size_t batch = cached_input_.shape()[0];
    const std::size_t oh = geometry_.out_h();
    const std::size_t ow = geometry_.out_w();
    const std::size_t image_size =
        geometry_.in_channels * geometry_.in_h * geometry_.in_w;
    Tensor dx(cached_input_.shape());
    Tensor dcols(Shape::of(geometry_.col_rows(), geometry_.col_cols()));
    const ops::PackedA packed_wt = ops::pack_a(
        ops::Trans::kYes, geometry_.col_rows(), out_channels_, weight_.data(),
        geometry_.col_rows());

    for (std::size_t b = 0; b < batch; ++b) {
      const float* gptr = grad_output.data() + b * out_channels_ * oh * ow;
      Tensor gmat(Shape::of(out_channels_, oh * ow),
                  std::vector<float>(gptr, gptr + out_channels_ * oh * ow));

      for (std::size_t c = 0; c < out_channels_; ++c) {
        double acc = 0.0;
        const float* row = gmat.data() + c * oh * ow;
        for (std::size_t i = 0; i < oh * ow; ++i) acc += static_cast<double>(row[i]);
        bias_grad_(c) += static_cast<float>(acc);
      }

      ops::gemm(ops::Trans::kNo, ops::Trans::kYes, gmat, cached_cols_[b],
                weight_grad_, /*beta=*/1.0f);

      ops::gemm_prepacked(packed_wt, ops::Trans::kNo, oh * ow, gmat.data(),
                          oh * ow, /*beta=*/0.0f, dcols.data(), oh * ow);
      seed_col2im(geometry_, dcols, dx.data() + b * image_size);
    }
    return dx;
  }

  void zero_grad() {
    weight_grad_.fill(0.0f);
    bias_grad_.fill(0.0f);
  }

 private:
  Conv2dGeometry geometry_;
  std::size_t out_channels_;
  Tensor weight_, bias_, weight_grad_, bias_grad_;
  Tensor cached_input_;
  std::vector<Tensor> cached_cols_;
};

class BDense : public BLayer {
 public:
  BDense(std::size_t in_features, std::size_t out_features, Rng& rng)
      : in_(in_features),
        out_(out_features),
        weight_(Shape::of(out_features, in_features)),
        bias_(Shape::of(out_features)),
        weight_grad_(Shape::of(out_features, in_features)),
        bias_grad_(Shape::of(out_features)) {
    nn::he_normal(weight_, in_features, rng);
  }

  Tensor forward(const Tensor& input, bool training) override {
    if (training) cached_input_ = input;
    const std::size_t batch = input.shape()[0];
    Tensor out(Shape::of(batch, out_));
    ops::matmul_transposed_b(input, weight_, out);
    for (std::size_t b = 0; b < batch; ++b) {
      float* row = out.data() + b * out_;
      for (std::size_t o = 0; o < out_; ++o) row[o] += bias_(o);
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    const std::size_t batch = cached_input_.shape()[0];
    ops::gemm(ops::Trans::kYes, ops::Trans::kNo, grad_output, cached_input_,
              weight_grad_, /*beta=*/1.0f);
    for (std::size_t b = 0; b < batch; ++b) {
      const float* row = grad_output.data() + b * out_;
      for (std::size_t o = 0; o < out_; ++o) bias_grad_(o) += row[o];
    }
    Tensor dx(Shape::of(batch, in_));
    ops::matmul(grad_output, weight_, dx);
    return dx;
  }

  void zero_grad() {
    weight_grad_.fill(0.0f);
    bias_grad_.fill(0.0f);
  }

 private:
  std::size_t in_, out_;
  Tensor weight_, bias_, weight_grad_, bias_grad_;
  Tensor cached_input_;
};

class BReLU : public BLayer {
 public:
  Tensor forward(const Tensor& input, bool training) override {
    Tensor out = input;
    if (training) mask_ = Tensor(input.shape());
    float* po = out.data();
    float* pm = training ? mask_.data() : nullptr;
    for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
      const bool positive = po[i] > 0.0f;
      if (!positive) po[i] = 0.0f;
      if (pm != nullptr) pm[i] = positive ? 1.0f : 0.0f;
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor dx = grad_output;
    float* pd = dx.data();
    const float* pm = mask_.data();
    for (std::size_t i = 0, n = dx.numel(); i < n; ++i) pd[i] *= pm[i];
    return dx;
  }

 private:
  Tensor mask_;
};

class BMaxPool2D : public BLayer {
 public:
  BMaxPool2D(std::size_t window, std::size_t stride) : window_(window), stride_(stride) {}

  Tensor forward(const Tensor& input, bool training) override {
    input_shape_ = input.shape();
    const std::size_t batch = input_shape_[0];
    const std::size_t channels = input_shape_[1];
    const std::size_t h = input_shape_[2];
    const std::size_t w = input_shape_[3];
    const std::size_t oh = (h - window_) / stride_ + 1;
    const std::size_t ow = (w - window_) / stride_ + 1;

    Tensor out(Shape::of(batch, channels, oh, ow));
    if (training) argmax_.assign(out.numel(), 0);

    std::size_t oi = 0;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t c = 0; c < channels; ++c) {
        const float* plane = input.data() + (b * channels + c) * h * w;
        const std::size_t plane_base = (b * channels + c) * h * w;
        for (std::size_t y = 0; y < oh; ++y) {
          for (std::size_t x = 0; x < ow; ++x, ++oi) {
            float best = -std::numeric_limits<float>::infinity();
            std::size_t best_idx = 0;
            for (std::size_t dy = 0; dy < window_; ++dy) {
              for (std::size_t dx = 0; dx < window_; ++dx) {
                const std::size_t idx = (y * stride_ + dy) * w + (x * stride_ + dx);
                if (plane[idx] > best) {
                  best = plane[idx];
                  best_idx = idx;
                }
              }
            }
            out[oi] = best;
            if (training) argmax_[oi] = plane_base + best_idx;
          }
        }
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor dx(input_shape_);
    for (std::size_t i = 0; i < argmax_.size(); ++i) dx[argmax_[i]] += grad_output[i];
    return dx;
  }

 private:
  std::size_t window_, stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;
};

class BFlatten : public BLayer {
 public:
  Tensor forward(const Tensor& input, bool training) override {
    (void)training;
    input_shape_ = input.shape();
    const std::size_t batch = input_shape_[0];
    return input.reshaped(Shape::of(batch, input.numel() / batch));
  }

  Tensor backward(const Tensor& grad_output) override {
    return grad_output.reshaped(input_shape_);
  }

 private:
  Shape input_shape_;
};

class BGlobalAvgPool : public BLayer {
 public:
  Tensor forward(const Tensor& input, bool training) override {
    (void)training;
    input_shape_ = input.shape();
    const std::size_t batch = input_shape_[0];
    const std::size_t channels = input_shape_[1];
    const std::size_t plane = input_shape_[2] * input_shape_[3];
    const float inv = 1.0f / static_cast<float>(plane);
    Tensor out(Shape::of(batch, channels));
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t c = 0; c < channels; ++c) {
        const float* src = input.data() + (b * channels + c) * plane;
        double acc = 0.0;
        for (std::size_t i = 0; i < plane; ++i) acc += static_cast<double>(src[i]);
        out(b, c) = static_cast<float>(acc) * inv;
      }
    }
    return out;
  }

  Tensor backward(const Tensor& grad_output) override {
    const std::size_t batch = input_shape_[0];
    const std::size_t channels = input_shape_[1];
    const std::size_t plane = input_shape_[2] * input_shape_[3];
    const float inv = 1.0f / static_cast<float>(plane);
    Tensor dx(input_shape_);
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t c = 0; c < channels; ++c) {
        const float g = grad_output(b, c) * inv;
        float* dst = dx.data() + (b * channels + c) * plane;
        for (std::size_t i = 0; i < plane; ++i) dst[i] = g;
      }
    }
    return dx;
  }

 private:
  Shape input_shape_;
};

class BResidual : public BLayer {
 public:
  BResidual(std::size_t in_channels, std::size_t out_channels, std::size_t stride,
            std::size_t in_h, std::size_t in_w, Rng& rng) {
    const std::size_t oh = (in_h + 2 - 3) / stride + 1;
    const std::size_t ow = (in_w + 2 - 3) / stride + 1;
    conv1_ = std::make_unique<BConv2D>(in_channels, out_channels, 3, stride, 1, in_h,
                                       in_w, rng);
    conv2_ = std::make_unique<BConv2D>(out_channels, out_channels, 3, 1, 1, oh, ow, rng);
    if (stride != 1 || in_channels != out_channels) {
      projection_ =
          std::make_unique<BConv2D>(in_channels, out_channels, 1, stride, 0, in_h,
                                    in_w, rng);
    }
  }

  Tensor forward(const Tensor& input, bool training) override {
    Tensor h = conv1_->forward(input, training);
    if (training) relu1_mask_ = Tensor(h.shape());
    {
      float* p = h.data();
      float* m = training ? relu1_mask_.data() : nullptr;
      for (std::size_t i = 0, n = h.numel(); i < n; ++i) {
        const bool pos = p[i] > 0.0f;
        if (!pos) p[i] = 0.0f;
        if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
      }
    }
    Tensor f = conv2_->forward(h, training);
    Tensor skip = projection_ ? projection_->forward(input, training) : input;
    ops::add_inplace(f, skip);
    if (training) relu_out_mask_ = Tensor(f.shape());
    {
      float* p = f.data();
      float* m = training ? relu_out_mask_.data() : nullptr;
      for (std::size_t i = 0, n = f.numel(); i < n; ++i) {
        const bool pos = p[i] > 0.0f;
        if (!pos) p[i] = 0.0f;
        if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
      }
    }
    return f;
  }

  Tensor backward(const Tensor& grad_output) override {
    Tensor g = grad_output;
    {
      float* p = g.data();
      const float* m = relu_out_mask_.data();
      for (std::size_t i = 0, n = g.numel(); i < n; ++i) p[i] *= m[i];
    }
    Tensor gh = conv2_->backward(g);
    {
      float* p = gh.data();
      const float* m = relu1_mask_.data();
      for (std::size_t i = 0, n = gh.numel(); i < n; ++i) p[i] *= m[i];
    }
    Tensor dx = conv1_->backward(gh);
    if (projection_) {
      Tensor dskip = projection_->backward(g);
      ops::add_inplace(dx, dskip);
    } else {
      ops::add_inplace(dx, g);
    }
    return dx;
  }

  void zero_grad() {
    conv1_->zero_grad();
    conv2_->zero_grad();
    if (projection_) projection_->zero_grad();
  }

 private:
  std::unique_ptr<BConv2D> conv1_;
  std::unique_ptr<BConv2D> conv2_;
  std::unique_ptr<BConv2D> projection_;
  Tensor relu1_mask_;
  Tensor relu_out_mask_;
};

// Pre-PR loss: materialises the probability tensor via softmax_rows.
class BSoftmaxCE {
 public:
  float forward(const Tensor& logits, const std::vector<std::size_t>& labels) {
    probs_ = ops::softmax_rows(logits);
    labels_ = labels;
    const std::size_t batch = labels.size();
    const std::size_t classes = logits.shape()[1];
    double total = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const float p = std::max(1e-12f, probs_.data()[b * classes + labels[b]]);
      total -= std::log(static_cast<double>(p));
    }
    return static_cast<float>(total / static_cast<double>(batch));
  }

  Tensor backward() {
    Tensor grad = probs_;
    const std::size_t batch = labels_.size();
    const std::size_t classes = grad.shape()[1];
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t b = 0; b < batch; ++b) {
      grad.data()[b * classes + labels_[b]] -= 1.0f;
    }
    ops::scale_inplace(grad, inv_batch);
    return grad;
  }

 private:
  Tensor probs_;
  std::vector<std::size_t> labels_;
};

// ---------------------------------------------------- baseline models

struct BModel {
  std::vector<std::unique_ptr<BLayer>> layers;
  BSoftmaxCE loss;

  Tensor forward(const Tensor& input, bool training) {
    Tensor x = input;
    for (auto& l : layers) x = l->forward(x, training);
    return x;
  }

  float fwd_bwd(const Tensor& input, const std::vector<std::size_t>& labels) {
    Tensor logits = forward(input, true);
    const float value = loss.forward(logits, labels);
    Tensor g = loss.backward();
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) g = (*it)->backward(g);
    return value;
  }
};

BModel build(const std::string& name, Rng& rng) {
  using std::make_unique;
  BModel m;
  if (name == "mlp") {
    m.layers.push_back(make_unique<BFlatten>());
    m.layers.push_back(make_unique<BDense>(14 * 14, 32, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BDense>(32, 10, rng));
  } else if (name == "lenet5") {
    m.layers.push_back(make_unique<BConv2D>(1, 6, 5, 1, 2, 14, 14, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BMaxPool2D>(2, 2));
    m.layers.push_back(make_unique<BConv2D>(6, 16, 5, 1, 0, 7, 7, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BFlatten>());
    m.layers.push_back(make_unique<BDense>(16 * 3 * 3, 64, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BDense>(64, 10, rng));
  } else if (name == "cnn9") {
    m.layers.push_back(make_unique<BConv2D>(1, 8, 3, 1, 1, 14, 14, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BConv2D>(8, 8, 3, 1, 1, 14, 14, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BMaxPool2D>(2, 2));
    m.layers.push_back(make_unique<BConv2D>(8, 16, 3, 1, 1, 7, 7, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BConv2D>(16, 16, 3, 1, 1, 7, 7, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BMaxPool2D>(2, 2));
    m.layers.push_back(make_unique<BFlatten>());
    m.layers.push_back(make_unique<BDense>(16 * 3 * 3, 64, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BDense>(64, 10, rng));
  } else {  // resnet
    m.layers.push_back(make_unique<BConv2D>(3, 8, 3, 1, 1, 16, 16, rng));
    m.layers.push_back(make_unique<BReLU>());
    m.layers.push_back(make_unique<BResidual>(8, 8, 1, 16, 16, rng));
    m.layers.push_back(make_unique<BResidual>(8, 16, 2, 16, 16, rng));
    m.layers.push_back(make_unique<BResidual>(16, 32, 2, 8, 8, rng));
    m.layers.push_back(make_unique<BGlobalAvgPool>());
    m.layers.push_back(make_unique<BDense>(32, 10, rng));
  }
  return m;
}

}  // namespace baseline

namespace {

using namespace fedcav;

struct Case {
  const char* model;
  std::size_t batch;
};

// Batch size 10 matches ServerConfig.local.batch_size in the paper runs;
// 32 probes the fused GEMM's scaling headroom.
const Case kCases[] = {
    {"mlp", 10},    {"mlp", 32},    {"lenet5", 10}, {"lenet5", 32},
    {"cnn9", 10},   {"cnn9", 32},   {"resnet", 10}, {"resnet", 32},
};

Shape input_shape(const std::string& model, std::size_t batch) {
  if (model == "mlp") return Shape::of(batch, nn::kGraySide * nn::kGraySide);
  if (model == "resnet")
    return Shape::of(batch, nn::kColorChannels, nn::kColorSide, nn::kColorSide);
  return Shape::of(batch, nn::kGrayChannels, nn::kGraySide, nn::kGraySide);
}

// Grow the iteration count until one timing window lasts `window_ms`.
template <typename F>
std::size_t calibrate_iters(F&& body, double window_ms) {
  using clock = std::chrono::steady_clock;
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double ms =
        std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (ms >= window_ms || iters >= (1u << 22)) return iters;
    iters *= 4;
  }
}

// Milliseconds per iteration for one window. The caller interleaves
// windows of the competing paths (best-of-N each) so that frequency
// drift and neighbour noise hit both paths alike instead of biasing
// whichever happened to be timed last.
template <typename F>
double time_window(F&& body, std::size_t iters) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  for (std::size_t i = 0; i < iters; ++i) body();
  const double ms =
      std::chrono::duration<double, std::milli>(clock::now() - t0).count();
  return ms / static_cast<double>(iters);
}

double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main(int argc, char** argv) {
  double window_ms = 40.0;
#ifdef FEDCAV_REPO_ROOT
  std::string out_path = std::string(FEDCAV_REPO_ROOT) + "/BENCH_train_step.json";
#else
  std::string out_path = "BENCH_train_step.json";
#endif
  const char* only_model = nullptr;  // profiling aid: time one model only
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      window_ms = 10.0;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
      only_model = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--fast] [--model <name>] [--threads N] "
                   "[--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  // The pool is attached only while the new path's bodies run: the
  // baseline is the frozen single-threaded reference, and it shares the
  // library GEMM that would otherwise fan out too.
  std::unique_ptr<ThreadPool> kernel_pool;
  if (threads > 0) {
    kernel_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
  }

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "micro_train_step: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }

  std::printf("%-8s %5s %14s %14s %12s %9s\n", "model", "batch", "base f+b ms",
              "new f+b ms", "new step ms", "speedup");
  json << "[\n";
  std::vector<double> lenet_speedups;
  std::vector<double> all_speedups;
  bool first = true;
  for (const Case& c : kCases) {
    if (only_model != nullptr && std::strcmp(c.model, only_model) != 0) continue;
    Rng data_rng(404);
    const Tensor input =
        Tensor::uniform(input_shape(c.model, c.batch), data_rng, -1.0f, 1.0f);
    std::vector<std::size_t> labels(c.batch);
    for (std::size_t i = 0; i < c.batch; ++i) labels[i] = i % nn::kNumClasses;

    // Identical seeds: both paths train structurally identical models
    // from the same init so they do the same arithmetic per step.
    Rng base_rng(2021);
    baseline::BModel base = baseline::build(c.model, base_rng);
    Rng new_rng(2021);
    auto model = nn::model_builder(c.model)(new_rng);
    nn::Sgd opt(nn::SgdConfig{/*lr=*/0.01f});

    // Warm both paths (grows the new path's workspaces to steady state).
    base.fwd_bwd(input, labels);
    model->forward_backward(input, labels);
    opt.step(*model);

    auto base_body = [&] { base.fwd_bwd(input, labels); };
    auto new_body = [&] {
      ops::set_kernel_pool(kernel_pool.get());
      model->forward_backward(input, labels);
      model->zero_grad();
      ops::set_kernel_pool(nullptr);
    };
    auto step_body = [&] {
      ops::set_kernel_pool(kernel_pool.get());
      model->forward_backward(input, labels);
      opt.step(*model);
      ops::set_kernel_pool(nullptr);
    };
    const std::size_t base_iters = calibrate_iters(base_body, window_ms);
    const std::size_t new_iters = calibrate_iters(new_body, window_ms);
    const std::size_t step_iters = calibrate_iters(step_body, window_ms);
    // Best-of-12 over short interleaved windows: contention is strictly
    // additive, so the minimum converges on the uncontended time; many
    // short windows beat few long ones on a shared core, where a long
    // window almost always absorbs somebody's wake-up.
    double base_ms = std::numeric_limits<double>::infinity();
    double new_ms = std::numeric_limits<double>::infinity();
    double step_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 12; ++rep) {
      base_ms = std::min(base_ms, time_window(base_body, base_iters));
      new_ms = std::min(new_ms, time_window(new_body, new_iters));
      step_ms = std::min(step_ms, time_window(step_body, step_iters));
    }
    const double speedup = base_ms / new_ms;
    all_speedups.push_back(speedup);
    if (std::strcmp(c.model, "lenet5") == 0) lenet_speedups.push_back(speedup);

    std::printf("%-8s %5zu %14.4f %14.4f %12.4f %8.2fx\n", c.model, c.batch,
                base_ms, new_ms, step_ms, speedup);
    if (!first) json << ",\n";
    first = false;
    json << "  {\"model\": \"" << c.model << "\", \"batch\": " << c.batch
         << ", \"baseline_fwdbwd_ms\": " << base_ms
         << ", \"new_fwdbwd_ms\": " << new_ms << ", \"new_step_ms\": " << step_ms
         << ", \"speedup\": " << speedup << ", \"threads\": " << threads << "}";
  }
  json << "\n]\n";

  const double all_geo = geomean(all_speedups);
  if (lenet_speedups.empty()) {  // --model filtered lenet5 out: no gate
    std::printf("\ngeomean fwd+bwd speedup: %.2fx (filtered run, no gate)\n", all_geo);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
  }
  const double lenet_geo = geomean(lenet_speedups);
  std::printf("\ngeomean fwd+bwd speedup: lenet5 %.2fx, all models %.2fx\n",
              lenet_geo, all_geo);
  std::printf("wrote %s\n", out_path.c_str());
  // Acceptance bar: the batch-fused workspace path must hold >=1.5x over
  // the per-image allocating path on LeNet5Lite.
  if (lenet_geo < 1.5) {
    std::fprintf(stderr, "FAIL: lenet5 geomean fwd+bwd speedup %.2fx < 1.5x\n",
                 lenet_geo);
    return 1;
  }
  return 0;
}
