// Fig. 5 reproduction: FedCav with vs without inference-loss clipping on
// the three datasets.
//
// Paper shape to reproduce: the un-clipped variant oscillates — sharp
// accuracy drops where one client's extreme inference loss dominates a
// round — while the clipped variant tracks a smooth curve. We report the
// round-to-round accuracy-delta standard deviation ("oscillation") and
// the worst single-round drop for both variants.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/utils/logging.hpp"

namespace {

double worst_drop(const fedcav::metrics::TrainingHistory& history) {
  double worst = 0.0;
  for (std::size_t i = 1; i < history.rounds(); ++i) {
    worst = std::min(worst, history[i].test_accuracy - history[i - 1].test_accuracy);
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("fig5_clip_ablation", "Fig. 5: FedCav clip vs no-clip stability");
  add_scale_flags(cli);
  cli.add_string("datasets", "digits,fashion,cifar", "comma-separated dataset list");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Fig. 5: clip ablation, %zu clients, %zu rounds ==\n", scale.clients,
              scale.rounds);
  print_history_csv_header();

  MarkdownTable table({"dataset", "variant", "best_acc", "oscillation", "worst_drop"});
  for (const std::string& dataset : split(cli.get_string("datasets"), ',')) {
    for (const char* strategy : {"fedcav", "fedcav-noclip"}) {
      TunedPlan plan = tuned_plan(scale, dataset, strategy, seed);
      plan.config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
      plan.config.partition.sigma = 900.0;  // heavy imbalance maximizes loss spread
      fl::Simulation sim = build_warmstarted(plan);
      sim.server->run(scale.rounds);
      const auto& history = sim.server->history();
      const std::string series = dataset + "/" + strategy;
      print_history_csv("fig5", series, history);
      table.add_row({dataset, strategy, format_double(history.best_accuracy(), 4),
                     format_double(accuracy_oscillation(history), 4),
                     format_double(worst_drop(history), 4)});
      std::fflush(stdout);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nExpected shape (paper Fig. 5): the no-clip variant shows larger "
              "oscillation and deeper single-round drops on every dataset.\n");
  return 0;
}
