// Op-level GEMM perf baseline: seed scalar kernels vs the packed
// register-tiled kernel (src/tensor/gemm.hpp), across the exact
// (m, n, k, op) tuples the model zoo's forward/backward passes emit.
//
// Unlike the micro_* google-benchmark binaries this is a plain
// executable, because it is the canonical producer of the repo's perf
// trajectory file: it writes machine-readable BENCH_gemm.json (one
// {shape, seed_gflops, new_gflops, speedup} entry per tuple) at the
// repo root, so later perf PRs are judged against a committed baseline.
//
// Usage: micro_gemm [--fast] [--threads N] [--out <path>]
//   --fast     CI-sized run (shorter timing windows, same shape coverage)
//   --threads  fan the packed kernel's macro-tiles over N pool workers
//              (0 = single-threaded; results are bit-identical either way)
//   --out      override the JSON destination (default <repo>/BENCH_gemm.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/rng.hpp"

namespace {

using namespace fedcav;

// ------------------------------------------------------------------ seed
// Verbatim copies of the PR-0 scalar kernels (pre-gemm ops.cpp), kept
// here as the fixed baseline every future kernel is measured against.

void seed_matmul(const float* pa, const float* pb, float* pc, std::size_t m,
                 std::size_t n, std::size_t k) {
  std::fill(pc, pc + m * n, 0.0f);
  constexpr std::size_t kBlock = 64;
  for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::size_t i_end = std::min(m, i0 + kBlock);
    for (std::size_t kk0 = 0; kk0 < k; kk0 += kBlock) {
      const std::size_t k_end = std::min(k, kk0 + kBlock);
      for (std::size_t i = i0; i < i_end; ++i) {
        for (std::size_t kk = kk0; kk < k_end; ++kk) {
          const float aik = pa[i * k + kk];
          if (aik == 0.0f) continue;
          const float* brow = pb + kk * n;
          float* crow = pc + i * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  }
}

void seed_matmul_transposed_b(const float* pa, const float* pb, float* pc,
                              std::size_t m, std::size_t n, std::size_t k) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      const float* arow = pa + i * k;
      const float* brow = pb + j * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(arow[kk]) * static_cast<double>(brow[kk]);
      }
      pc[i * n + j] = static_cast<float>(acc);
    }
  }
}

void seed_matmul_transposed_a(const float* pa, const float* pb, float* pc,
                              std::size_t m, std::size_t n, std::size_t k) {
  std::fill(pc, pc + m * n, 0.0f);
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aki = arow[i];
      if (aki == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aki * brow[j];
    }
  }
}

// ----------------------------------------------------------------- cases

enum class Op { kNN, kNT, kTN };  // C = A·B | A·Bᵀ | Aᵀ·B

const char* op_name(Op op) {
  switch (op) {
    case Op::kNN: return "nn";
    case Op::kNT: return "nt";
    case Op::kTN: return "tn";
  }
  return "?";
}

struct Case {
  const char* model;  // which zoo model emits this tuple
  const char* site;   // layer + pass
  Op op;
  std::size_t m, n, k;
};

// Batch size 10 matches ServerConfig.local.batch_size in the paper runs.
const Case kCases[] = {
    // LeNet5Lite on 1×14×14 inputs.
    {"lenet5", "conv1 fwd", Op::kNN, 6, 196, 25},
    {"lenet5", "conv2 fwd", Op::kNN, 16, 9, 150},
    {"lenet5", "conv1 bwd dW", Op::kNT, 6, 25, 196},
    {"lenet5", "conv2 bwd dW", Op::kNT, 16, 150, 9},
    {"lenet5", "conv1 bwd dX", Op::kTN, 25, 196, 6},
    {"lenet5", "conv2 bwd dX", Op::kTN, 150, 9, 16},
    {"lenet5", "dense1 fwd", Op::kNT, 10, 64, 144},
    {"lenet5", "dense1 bwd dW", Op::kTN, 64, 144, 10},
    {"lenet5", "dense1 bwd dX", Op::kNN, 10, 144, 64},
    {"lenet5", "dense2 fwd", Op::kNT, 10, 10, 64},
    // CNN9Lite.
    {"cnn9", "conv2 fwd", Op::kNN, 8, 196, 72},
    {"cnn9", "conv4 fwd", Op::kNN, 16, 49, 144},
    {"cnn9", "conv2 bwd dW", Op::kNT, 8, 72, 196},
    {"cnn9", "conv4 bwd dX", Op::kTN, 144, 49, 16},
    // ResNetLite on 3×16×16 inputs.
    {"resnet", "stem fwd", Op::kNN, 8, 256, 27},
    {"resnet", "block2 fwd", Op::kNN, 16, 64, 72},
    {"resnet", "block3 fwd", Op::kNN, 32, 16, 144},
    {"resnet", "block3 bwd dW", Op::kNT, 32, 144, 16},
    // Square reference points for the trajectory plot.
    {"square", "64", Op::kNN, 64, 64, 64},
    {"square", "128", Op::kNN, 128, 128, 128},
    {"square", "256", Op::kNN, 256, 256, 256},
};

void run_seed(const Case& c, const float* a, const float* b, float* out) {
  switch (c.op) {
    case Op::kNN: seed_matmul(a, b, out, c.m, c.n, c.k); break;
    case Op::kNT: seed_matmul_transposed_b(a, b, out, c.m, c.n, c.k); break;
    case Op::kTN: seed_matmul_transposed_a(a, b, out, c.m, c.n, c.k); break;
  }
}

void run_new(const Case& c, const float* a, const float* b, float* out) {
  switch (c.op) {
    case Op::kNN:
      ops::gemm(ops::Trans::kNo, ops::Trans::kNo, c.m, c.n, c.k, a, c.k, b,
                c.n, 0.0f, out, c.n);
      break;
    case Op::kNT:
      ops::gemm(ops::Trans::kNo, ops::Trans::kYes, c.m, c.n, c.k, a, c.k, b,
                c.k, 0.0f, out, c.n);
      break;
    case Op::kTN:
      ops::gemm(ops::Trans::kYes, ops::Trans::kNo, c.m, c.n, c.k, a, c.m, b,
                c.n, 0.0f, out, c.n);
      break;
  }
}

// Best-of-3 GFLOP/s over timing windows of at least `window_ms`.
template <typename F>
double measure_gflops(const Case& c, F&& body, double window_ms) {
  const double flops = 2.0 * static_cast<double>(c.m) *
                       static_cast<double>(c.n) * static_cast<double>(c.k);
  using clock = std::chrono::steady_clock;
  // Calibrate an iteration count that fills the window.
  std::size_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double ms = std::chrono::duration<double, std::milli>(clock::now() - t0).count();
    if (ms >= window_ms || iters >= (1u << 24)) break;
    iters *= 4;
  }
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = clock::now();
    for (std::size_t i = 0; i < iters; ++i) body();
    const double sec = std::chrono::duration<double>(clock::now() - t0).count();
    best = std::max(best, flops * static_cast<double>(iters) / sec / 1e9);
  }
  return best;
}

double geomean(const std::vector<double>& xs) {
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

}  // namespace

int main(int argc, char** argv) {
  double window_ms = 50.0;
#ifdef FEDCAV_REPO_ROOT
  std::string out_path = std::string(FEDCAV_REPO_ROOT) + "/BENCH_gemm.json";
#else
  std::string out_path = "BENCH_gemm.json";
#endif
  int threads = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fast") == 0) {
      window_ms = 5.0;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--fast] [--threads N] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  std::unique_ptr<ThreadPool> kernel_pool;
  if (threads > 0) {
    kernel_pool = std::make_unique<ThreadPool>(static_cast<std::size_t>(threads));
    ops::set_kernel_pool(kernel_pool.get());
  }

  Rng rng(2021);
  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "micro_gemm: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }

  std::printf("%-8s %-14s %-3s %18s %12s %12s %9s\n", "model", "site", "op",
              "m x n x k", "seed GF/s", "new GF/s", "speedup");
  json << "[\n";
  std::vector<double> lenet_speedups;
  std::vector<double> all_speedups;
  bool first = true;
  for (const Case& c : kCases) {
    std::vector<float> a(c.m * c.k);
    std::vector<float> b(c.k * c.n);
    std::vector<float> out(c.m * c.n, 0.0f);
    for (auto& v : a) v = rng.uniform_f(-1.0f, 1.0f);
    for (auto& v : b) v = rng.uniform_f(-1.0f, 1.0f);

    const double seed_gf = measure_gflops(
        c, [&] { run_seed(c, a.data(), b.data(), out.data()); }, window_ms);
    const double new_gf = measure_gflops(
        c, [&] { run_new(c, a.data(), b.data(), out.data()); }, window_ms);
    const double speedup = new_gf / seed_gf;
    all_speedups.push_back(speedup);
    if (std::strcmp(c.model, "lenet5") == 0) lenet_speedups.push_back(speedup);

    std::printf("%-8s %-14s %-3s %6zu x %4zu x %4zu %12.2f %12.2f %8.2fx\n",
                c.model, c.site, op_name(c.op), c.m, c.n, c.k, seed_gf, new_gf,
                speedup);
    if (!first) json << ",\n";
    first = false;
    json << "  {\"shape\": \"" << c.m << "x" << c.n << "x" << c.k
         << "\", \"op\": \"" << op_name(c.op) << "\", \"model\": \"" << c.model
         << "\", \"site\": \"" << c.site << "\", \"seed_gflops\": " << seed_gf
         << ", \"new_gflops\": " << new_gf << ", \"speedup\": " << speedup
         << ", \"threads\": " << threads << "}";
  }
  json << "\n]\n";

  const double lenet_geo = geomean(lenet_speedups);
  const double all_geo = geomean(all_speedups);
  std::printf("\ngeomean speedup: lenet5 %.2fx, all shapes %.2fx\n", lenet_geo,
              all_geo);
  std::printf("wrote %s\n", out_path.c_str());
  // PR-1 acceptance bar: the packed kernel must hold >=2x over the seed
  // scalar kernels on the LeNet5Lite shapes.
  if (lenet_geo < 2.0) {
    std::fprintf(stderr, "FAIL: lenet5 geomean speedup %.2fx < 2x\n", lenet_geo);
    return 1;
  }
  return 0;
}
