// Ablations of FedCav's design choices (DESIGN.md §4):
//  1. clip policy        — none / mean (Algorithm 1) / 75th-pct quantile
//  2. softmax temperature— τ ∈ {0.5, 1, 2, 4}; τ→∞ degrades to uniform
//  3. sampler policy     — uniform (paper) / round-robin / loss-biased
// Each ablation runs the σ=900 digits workload and reports converged
// accuracy + oscillation.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/core/fedcav.hpp"
#include "src/utils/logging.hpp"

namespace {

using namespace fedcav;
using namespace fedcav::bench;

struct Outcome {
  double converged = 0.0;
  double best = 0.0;
  double oscillation = 0.0;
};

Outcome run(const Scale& scale, std::uint64_t seed,
            std::unique_ptr<fl::AggregationStrategy> strategy,
            fl::SamplerPolicy sampler = fl::SamplerPolicy::kUniform) {
  fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedavg", seed);
  config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
  config.partition.sigma = 900.0;
  config.server.sampler = sampler;
  fl::Simulation sim = fl::build_simulation(config);

  // Swap the placeholder strategy for the ablated one by rebuilding the
  // server path: easiest is a fresh server sharing the same data/seed.
  Rng rng(config.seed);
  const nn::ModelBuilder builder = nn::model_builder(config.model);
  std::vector<std::unique_ptr<fl::Client>> clients;
  for (std::size_t k = 0; k < sim.partition.size(); ++k) {
    (void)rng.fork();  // legacy model-init fork, kept for RNG-stream parity
    clients.push_back(std::make_unique<fl::Client>(
        k, sim.train.subset(sim.partition[k]), rng.fork()));
  }
  Rng global_rng(config.seed ^ 0xabcdef12345ULL);
  fl::Server server(builder(global_rng), std::move(strategy), std::move(clients),
                    sim.test, config.server);
  server.run(scale.rounds);

  Outcome outcome;
  outcome.converged = server.history().converged_accuracy(5);
  outcome.best = server.history().best_accuracy();
  outcome.oscillation = accuracy_oscillation(server.history());
  return outcome;
}

std::unique_ptr<fl::AggregationStrategy> fedcav_with(core::ClipPolicy clip,
                                                     double temperature,
                                                     double quantile = 0.75) {
  core::ContributionConfig config;
  config.clip = clip;
  config.temperature = temperature;
  config.quantile = quantile;
  return std::make_unique<core::FedCavStrategy>(config);
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("ablation_fedcav",
                "ablate FedCav's clip policy, temperature, and sampler policy");
  add_scale_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== FedCav ablations: digits, sigma=900, %zu clients, %zu rounds ==\n\n",
              scale.clients, scale.rounds);

  {
    std::printf("-- 1. clip policy (Algorithm 1 line 7; Fig. 5's knob) --\n");
    MarkdownTable table({"clip", "converged_acc", "best_acc", "oscillation"});
    struct Case {
      const char* label;
      core::ClipPolicy clip;
    };
    for (const Case c : {Case{"none", core::ClipPolicy::kNone},
                         Case{"mean (paper)", core::ClipPolicy::kMean},
                         Case{"quantile-0.75", core::ClipPolicy::kQuantile}}) {
      const Outcome o = run(scale, seed, fedcav_with(c.clip, 1.0));
      table.add_row({c.label, format_double(o.converged, 4), format_double(o.best, 4),
                     format_double(o.oscillation, 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  {
    std::printf("-- 2. softmax temperature (tau=1 is the paper's Eq. 9) --\n");
    MarkdownTable table({"tau", "converged_acc", "best_acc", "oscillation"});
    for (double tau : {0.5, 1.0, 2.0, 4.0}) {
      const Outcome o = run(scale, seed, fedcav_with(core::ClipPolicy::kMean, tau));
      table.add_row({format_double(tau, 1), format_double(o.converged, 4),
                     format_double(o.best, 4), format_double(o.oscillation, 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  {
    std::printf("-- 3. participant sampler (paper: uniform q=0.3) --\n");
    MarkdownTable table({"sampler", "converged_acc", "best_acc"});
    struct Case {
      const char* label;
      fl::SamplerPolicy policy;
    };
    for (const Case c : {Case{"uniform (paper)", fl::SamplerPolicy::kUniform},
                         Case{"roundrobin", fl::SamplerPolicy::kRoundRobin},
                         Case{"lossbiased", fl::SamplerPolicy::kLossBiased}}) {
      const Outcome o =
          run(scale, seed, fedcav_with(core::ClipPolicy::kMean, 1.0), c.policy);
      table.add_row({c.label, format_double(o.converged, 4), format_double(o.best, 4)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("Reading: mean-clip trades a little peak accuracy for stability; "
              "large tau flattens weights toward FedAvg-like averaging; selection "
              "policies interact with (not replace) contribution-aware weighting.\n");
  return 0;
}
