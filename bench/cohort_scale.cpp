// Cohort-scaling benchmark: proves a round's peak memory is bounded by
// the replica pool (O(K × model), K ≈ thread-pool size) and NOT by the
// cohort size — the PR-5 streaming guarantee (DESIGN.md §11), now
// carried by the sharded round engine (DESIGN.md §15) up to a simulated
// 102400-client round.
//
// For each cohort size it builds a full-participation simulation on a
// tiny model (the per-class sample count grows with the cohort so every
// client owns at least one sample), runs one warm-up round plus one
// measured round, and records:
//   * peak live tensor bytes over the measured round (FEDCAV_ALLOC_STATS
//     high-water mark, reset at round start),
//   * wall time for the round and per-participant time,
//   * replicas actually materialized by the pool,
//   * the obs gauges the round exports (pool.occupancy, agg.peak_bytes),
//   * a digest of the run's deterministic outputs (timing-free round
//     CSV + final weight bytes) — the reproducibility comparison key.
//
// Canonical producer of BENCH_cohort.json at the repo root. Gates:
//   memory — every cohort's peak live bytes must stay within 1.5x of
//            the smallest row, and the 102400-client row within 1.5x of
//            the 1024-client row (per-client replicas would blow both
//            up by the cohort ratio);
//   time   — per-participant round time of the largest cohort must stay
//            within 4x of the smallest (rounds scale ~linearly);
//   quant  — the int8 + top-k codec must stay streaming: its peak bytes
//            within 1.5x of the dense round at the same cohort size;
//   shards — the emitted round CSV and final weights at shards 1/2/4/16
//            must be byte-identical (DESIGN.md §15 shard parity);
//   repro  — in --smoke, the first cohort runs twice with the same seed
//            and the deterministic fields must match exactly (this is
//            what pins the --seed flag: results are a function of it).
//
// Usage: cohort_scale [--smoke] [--seed <n>] [--shards <n>] [--out <path>]
//   --smoke   CI-sized cohorts 64/256 (plus 4096 when --shards > 1)
//             instead of 64/256/1024/4096/16384/102400
//   --seed    simulation seed for every run (default 2021)
//   --shards  round-engine shard count for the scaling rows (default 1;
//             the shard-parity gate always sweeps 1/2/4/16 regardless)
//   --out     override the JSON destination (default <repo>/BENCH_cohort.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/fl/simulation.hpp"
#include "src/obs/metrics.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/threadpool.hpp"

namespace {

using namespace fedcav;

struct CohortResult {
  std::size_t clients = 0;
  std::size_t participants = 0;
  std::size_t shards = 1;
  std::uint64_t peak_live_bytes = 0;
  double round_ms = 0.0;
  double per_client_ms = 0.0;
  std::size_t pool_replicas = 0;
  std::size_t pool_max = 0;
  double gauge_pool_occupancy = 0.0;
  double gauge_agg_peak_bytes = 0.0;
  std::string csv;      // timing-free round history (deterministic)
  nn::Weights weights;  // final global weights (deterministic)
  std::uint64_t digest = 0;
};

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

CohortResult run_cohort(std::size_t clients, std::size_t workers,
                        std::uint64_t seed, std::size_t shards,
                        bool quant_uplink = false) {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcav";
  // Grow the dataset with the cohort: 10 classes x max(128, ceil(n/10))
  // keeps at least one sample per client at every size up to 102400
  // while leaving the small cohorts on the historical 1280-sample set.
  // Dataset pixels are plain client state, not round-scoped tensors, so
  // this does not distort the peak-live-bytes gate.
  config.train_samples_per_class = std::max<std::size_t>(128, (clients + 9) / 10);
  config.test_samples_per_class = 4;
  config.partition.scheme = data::PartitionScheme::kIidBalanced;
  config.partition.num_clients = clients;
  config.seed = seed;
  config.server.sample_ratio = 1.0;  // whole cohort participates
  config.server.local.epochs = 1;
  config.server.local.batch_size = 4;
  config.server.use_network = false;
  config.server.telemetry = true;  // export pool.occupancy / agg.peak_bytes
  config.server.shards = shards;
  if (quant_uplink) {
    // Quantized uplink (DESIGN.md §13): the int8 + top-k codec and its
    // per-client error-feedback residual must not break the O(K × model)
    // bound — residuals are client state, not round-scoped tensors.
    config.server.quant = comm::QuantMode::kInt8;
    config.server.quant_keep = 0.25;
  }

  fl::Simulation sim = fl::build_simulation(config);
  ThreadPool pool(workers);
  sim.server->set_thread_pool(&pool);

  // Warm-up round: clones replicas and grows workspaces, so the measured
  // round sees steady state (the regime a long run lives in).
  sim.server->run_round();

  // Saturate the pool: a small cohort can finish its warm-up before every
  // worker materializes a replica, which would make the memory baseline a
  // function of scheduling luck instead of the O(K × model) bound. Lease
  // every replica and run one training-shaped pass on each so all rows
  // measure the same K-replica regime (weights + grown workspaces).
  if (nn::ReplicaPool* rp = sim.server->replica_pool()) {
    std::vector<std::size_t> idx;
    std::vector<std::size_t> labels;
    for (std::size_t i = 0; i < 4 && i < sim.train.size(); ++i) idx.push_back(i);
    const Tensor batch = sim.train.make_batch(idx, &labels);
    std::vector<nn::ReplicaPool::Lease> leases;
    for (std::size_t i = 0; i < rp->max_replicas(); ++i) {
      leases.push_back(rp->acquire());
      leases.back()->forward_backward(batch, labels);
      leases.back()->zero_grad();
    }
  }

  obs::registry().reset();
  Tensor::reset_alloc_stats();
  const auto t0 = std::chrono::steady_clock::now();
  const metrics::RoundRecord rec = sim.server->run_round();
  const double round_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();

  CohortResult r;
  r.clients = clients;
  r.participants = rec.participants;
  r.shards = shards;
  r.peak_live_bytes = Tensor::alloc_stats().peak_live_bytes;
  r.round_ms = round_ms;
  r.per_client_ms = round_ms / static_cast<double>(clients);
  if (const nn::ReplicaPool* rp = sim.server->replica_pool()) {
    r.pool_replicas = rp->created();
    r.pool_max = rp->max_replicas();
  }
  r.gauge_pool_occupancy = obs::registry().gauge("pool.occupancy").value();
  r.gauge_agg_peak_bytes = obs::registry().gauge("agg.peak_bytes").value();
  std::ostringstream csv;
  sim.server->history().write_csv(csv, /*include_timings=*/false);
  r.csv = csv.str();
  r.weights = sim.server->global_weights();
  r.digest = fnv1a(fnv1a(0xcbf29ce484222325ULL, r.csv.data(), r.csv.size()),
                   r.weights.data(), r.weights.size() * sizeof(float));
  return r;
}

bool bits_equal(const nn::Weights& a, const nn::Weights& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void print_row(const CohortResult& r, const char* quant) {
  std::printf("%8zu %13zu %7zu %14.3f %10.1f %14.3f %6zu/%zu %7s\n", r.clients,
              r.participants, r.shards,
              static_cast<double>(r.peak_live_bytes) / (1024.0 * 1024.0),
              r.round_ms, r.per_client_ms, r.pool_replicas, r.pool_max, quant);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seed = 2021;
  std::size_t shards = 1;
#ifdef FEDCAV_REPO_ROOT
  std::string out_path = std::string(FEDCAV_REPO_ROOT) + "/BENCH_cohort.json";
#else
  std::string out_path = "BENCH_cohort.json";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--seed <n>] [--shards <n>] [--out <path>]\n",
                   argv[0]);
      return 2;
    }
  }
  if (shards == 0) shards = 1;

  std::vector<std::size_t> cohorts =
      smoke ? std::vector<std::size_t>{64, 256}
            : std::vector<std::size_t>{64, 256, 1024, 4096, 16384, 102400};
  // Multi-shard smoke (the CI configuration) adds one mid-scale cohort so
  // the engine streams enough waves per shard to mean something.
  if (smoke && shards > 1) cohorts.push_back(4096);
  const std::size_t workers = 4;
  // Error-feedback residuals are per-client state (~one model each), so
  // the quantized row is capped where that stays comfortably in RAM.
  const std::size_t quant_cap = 16384;
  std::size_t quant_clients = cohorts.front();
  for (std::size_t c : cohorts) {
    if (c <= quant_cap) quant_clients = c;
  }

  std::printf("cohort_scale: seed=%llu shards=%zu%s\n",
              static_cast<unsigned long long>(seed), shards,
              smoke ? " (smoke)" : "");
  std::printf("%8s %13s %7s %14s %10s %14s %9s %7s\n", "clients", "participants",
              "shards", "peak MiB", "round ms", "per-client ms", "replicas",
              "quant");
  std::vector<CohortResult> results;
  for (std::size_t clients : cohorts) {
    CohortResult r = run_cohort(clients, workers, seed, shards);
    print_row(r, "no");
    results.push_back(std::move(r));
  }
  // One quantized-uplink cohort at the largest capped size: same
  // bounded-memory guarantee with the int8 + top-k codec in the loop.
  CohortResult quant_r =
      run_cohort(quant_clients, workers, seed, shards, /*quant_uplink=*/true);
  print_row(quant_r, "int8");

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cohort_scale: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  json << "[\n";
  std::vector<const CohortResult*> all;
  for (const CohortResult& r : results) all.push_back(&r);
  all.push_back(&quant_r);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const CohortResult& r = *all[i];
    char digest[24];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    json << "  {\"clients\": " << r.clients << ", \"participants\": " << r.participants
         << ", \"shards\": " << r.shards << ", \"seed\": " << seed
         << ", \"peak_live_bytes\": " << r.peak_live_bytes
         << ", \"round_ms\": " << r.round_ms << ", \"per_client_ms\": " << r.per_client_ms
         << ", \"pool_replicas\": " << r.pool_replicas << ", \"pool_max\": " << r.pool_max
         << ", \"pool_occupancy\": " << r.gauge_pool_occupancy
         << ", \"agg_peak_bytes\": " << r.gauge_agg_peak_bytes
         << ", \"digest\": \"" << digest << "\""
         << ", \"quant_uplink\": " << (i + 1 == all.size() ? "true" : "false") << "}"
         << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "]\n";
  std::printf("wrote %s\n", out_path.c_str());

  const CohortResult& small = results.front();
  const CohortResult& large = results.back();

  bool ok = true;
  // Replica gate: the pool must never materialize more than workers + 1
  // models regardless of cohort size (quantized uplink included).
  for (const CohortResult* r : all) {
    if (r->pool_replicas > workers + 1) {
      std::fprintf(stderr, "FAIL: %zu-client round materialized %zu replicas (> %zu)\n",
                   r->clients, r->pool_replicas, workers + 1);
      ok = false;
    }
  }
  // Quantized-memory gate: the codec must stay streaming — folding int8
  // reports may not inflate the round's peak tensor bytes beyond 1.5x of
  // the dense run at the same cohort size.
  if (Tensor::alloc_stats_enabled()) {
    const CohortResult* dense_peer = nullptr;
    for (const CohortResult& r : results) {
      if (r.clients == quant_r.clients) dense_peer = &r;
    }
    if (dense_peer != nullptr) {
      const double quant_ratio = static_cast<double>(quant_r.peak_live_bytes) /
                                 static_cast<double>(dense_peer->peak_live_bytes);
      std::printf("quantized/dense peak-bytes ratio at %zu clients: %.2fx (gate <= 1.5x)\n",
                  quant_r.clients, quant_ratio);
      if (quant_ratio > 1.5) {
        std::fprintf(stderr,
                     "FAIL: quantized uplink grew peak live bytes %.2fx over the "
                     "dense round\n",
                     quant_ratio);
        ok = false;
      }
    }
  }
  // Memory gate: every cohort within 1.5x of the smallest row, and (when
  // both run) the 102400-client round within 1.5x of the 1024-client one
  // — flatness, not merely sub-linear growth. Only meaningful when the
  // alloc-stats choke point is compiled in; without it the peak reads 0.
  if (Tensor::alloc_stats_enabled()) {
    const CohortResult* row_1024 = nullptr;
    for (const CohortResult& r : results) {
      const double mem_ratio = static_cast<double>(r.peak_live_bytes) /
                               static_cast<double>(small.peak_live_bytes);
      if (&r != &small) {
        std::printf("peak-bytes ratio %zu/%zu clients: %.2fx (gate <= 1.5x)\n",
                    r.clients, small.clients, mem_ratio);
      }
      if (mem_ratio > 1.5) {
        std::fprintf(stderr,
                     "FAIL: peak live bytes grew %.2fx from %zu to %zu clients — "
                     "memory is scaling with the cohort\n",
                     mem_ratio, small.clients, r.clients);
        ok = false;
      }
      if (r.clients == 1024) row_1024 = &r;
    }
    if (row_1024 != nullptr && results.back().clients == 102400) {
      const double top_ratio = static_cast<double>(results.back().peak_live_bytes) /
                               static_cast<double>(row_1024->peak_live_bytes);
      std::printf("peak-bytes ratio 102400/1024 clients: %.2fx (gate <= 1.5x)\n",
                  top_ratio);
      if (top_ratio > 1.5) {
        std::fprintf(stderr,
                     "FAIL: 102400-client round peak grew %.2fx over the "
                     "1024-client round\n",
                     top_ratio);
        ok = false;
      }
    }
  } else {
    std::printf("built without FEDCAV_ALLOC_STATS: memory gates skipped\n");
  }
  // Time gate: per-participant cost must not degrade super-linearly.
  const double time_ratio = large.per_client_ms / small.per_client_ms;
  std::printf("per-client time ratio %zu/%zu clients: %.2fx (gate <= 4x)\n",
              large.clients, small.clients, time_ratio);
  if (time_ratio > 4.0) {
    std::fprintf(stderr, "FAIL: per-client round time grew %.2fx — rounds are not "
                 "scaling linearly in cohort size\n", time_ratio);
    ok = false;
  }
  // Shard-parity gate (DESIGN.md §15): the shard count must be invisible
  // to the deterministic outputs — CSV and final weights byte-identical
  // at shards 1/2/4/16 on the smallest cohort.
  {
    const CohortResult base =
        shards == 1 ? small : run_cohort(small.clients, workers, seed, 1);
    for (const std::size_t s : {std::size_t{2}, std::size_t{4}, std::size_t{16}}) {
      const CohortResult sharded = run_cohort(small.clients, workers, seed, s);
      const bool same =
          sharded.csv == base.csv && bits_equal(sharded.weights, base.weights);
      std::printf("shard parity at %zu clients, shards=%zu: %s\n", small.clients,
                  s, same ? "identical" : "DIVERGED");
      if (!same) {
        std::fprintf(stderr,
                     "FAIL: shards=%zu produced different CSV/weights than the "
                     "single-shard round\n",
                     s);
        ok = false;
      }
    }
  }
  // Reproducibility gate (smoke): the same --seed must reproduce every
  // deterministic field of the first row exactly — participants, round
  // CSV, and final weights (via the digest). Timing fields are excluded
  // by construction.
  if (smoke) {
    const CohortResult again = run_cohort(small.clients, workers, seed, shards);
    const bool same = again.participants == small.participants &&
                      again.digest == small.digest && again.csv == small.csv &&
                      bits_equal(again.weights, small.weights);
    std::printf("seed determinism at %zu clients: %s\n", small.clients,
                same ? "identical" : "DIVERGED");
    if (!same) {
      std::fprintf(stderr,
                   "FAIL: two runs with --seed %llu disagreed on deterministic "
                   "outputs\n",
                   static_cast<unsigned long long>(seed));
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
