// Cohort-scaling benchmark: proves a round's peak memory is bounded by
// the replica pool (O(K × model), K ≈ thread-pool size) and NOT by the
// cohort size — the PR-5 tentpole guarantee (DESIGN.md §11).
//
// For each cohort size it builds a full-participation simulation on a
// tiny model, runs one warm-up round plus one measured round, and
// records:
//   * peak live tensor bytes over the measured round (FEDCAV_ALLOC_STATS
//     high-water mark, reset at round start),
//   * wall time for the round and per-participant time,
//   * replicas actually materialized by the pool,
//   * the obs gauges the round exports (pool.occupancy, agg.peak_bytes).
//
// Canonical producer of BENCH_cohort.json at the repo root. Two gates:
//   memory — peak live bytes of the largest cohort must stay within 1.5x
//            of the smallest (per-client replicas would blow this up by
//            the cohort ratio);
//   time   — per-participant round time of the largest cohort must stay
//            within 4x of the smallest (rounds scale ~linearly in
//            participants, never quadratically).
//
// Usage: cohort_scale [--smoke] [--out <path>]
//   --smoke  CI-sized cohorts (32/128) instead of 64/256/1024
//   --out    override the JSON destination (default <repo>/BENCH_cohort.json)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/fl/simulation.hpp"
#include "src/obs/metrics.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/threadpool.hpp"

namespace {

using namespace fedcav;

struct CohortResult {
  std::size_t clients = 0;
  std::size_t participants = 0;
  std::uint64_t peak_live_bytes = 0;
  double round_ms = 0.0;
  double per_client_ms = 0.0;
  std::size_t pool_replicas = 0;
  std::size_t pool_max = 0;
  double gauge_pool_occupancy = 0.0;
  double gauge_agg_peak_bytes = 0.0;
};

CohortResult run_cohort(std::size_t clients, std::size_t workers,
                        bool quant_uplink = false) {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcav";
  // 10 classes x 128 = 1280 samples: at least one per client up to the
  // 1024-client cohort, so the partition stays valid at every size.
  config.train_samples_per_class = 128;
  config.test_samples_per_class = 4;
  config.partition.scheme = data::PartitionScheme::kIidBalanced;
  config.partition.num_clients = clients;
  config.server.sample_ratio = 1.0;  // whole cohort participates
  config.server.local.epochs = 1;
  config.server.local.batch_size = 4;
  config.server.use_network = false;
  config.server.telemetry = true;  // export pool.occupancy / agg.peak_bytes
  if (quant_uplink) {
    // Quantized uplink (DESIGN.md §13): the int8 + top-k codec and its
    // per-client error-feedback residual must not break the O(K × model)
    // bound — residuals are client state, not round-scoped tensors.
    config.server.quant = comm::QuantMode::kInt8;
    config.server.quant_keep = 0.25;
  }

  fl::Simulation sim = fl::build_simulation(config);
  ThreadPool pool(workers);
  sim.server->set_thread_pool(&pool);

  // Warm-up round: clones the K replicas and grows every workspace, so
  // the measured round sees steady state (the regime a long run lives in).
  sim.server->run_round();

  obs::registry().reset();
  Tensor::reset_alloc_stats();
  const auto t0 = std::chrono::steady_clock::now();
  const metrics::RoundRecord rec = sim.server->run_round();
  const double round_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();

  CohortResult r;
  r.clients = clients;
  r.participants = rec.participants;
  r.peak_live_bytes = Tensor::alloc_stats().peak_live_bytes;
  r.round_ms = round_ms;
  r.per_client_ms = round_ms / static_cast<double>(clients);
  if (const nn::ReplicaPool* rp = sim.server->replica_pool()) {
    r.pool_replicas = rp->created();
    r.pool_max = rp->max_replicas();
  }
  r.gauge_pool_occupancy = obs::registry().gauge("pool.occupancy").value();
  r.gauge_agg_peak_bytes = obs::registry().gauge("agg.peak_bytes").value();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
#ifdef FEDCAV_REPO_ROOT
  std::string out_path = std::string(FEDCAV_REPO_ROOT) + "/BENCH_cohort.json";
#else
  std::string out_path = "BENCH_cohort.json";
#endif
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out <path>]\n", argv[0]);
      return 2;
    }
  }

  const std::vector<std::size_t> cohorts =
      smoke ? std::vector<std::size_t>{32, 128}
            : std::vector<std::size_t>{64, 256, 1024};
  const std::size_t workers = 4;

  std::printf("%8s %13s %14s %10s %14s %9s %7s\n", "clients", "participants",
              "peak MiB", "round ms", "per-client ms", "replicas", "quant");
  std::vector<CohortResult> results;
  for (std::size_t clients : cohorts) {
    const CohortResult r = run_cohort(clients, workers);
    std::printf("%8zu %13zu %14.3f %10.1f %14.3f %6zu/%zu %7s\n", r.clients,
                r.participants, static_cast<double>(r.peak_live_bytes) / (1024.0 * 1024.0),
                r.round_ms, r.per_client_ms, r.pool_replicas, r.pool_max, "no");
    results.push_back(r);
  }
  // One quantized-uplink cohort at the largest size: same bounded-memory
  // guarantee with the int8 + top-k codec in the aggregation loop.
  const CohortResult quant_r =
      run_cohort(cohorts.back(), workers, /*quant_uplink=*/true);
  std::printf("%8zu %13zu %14.3f %10.1f %14.3f %6zu/%zu %7s\n", quant_r.clients,
              quant_r.participants,
              static_cast<double>(quant_r.peak_live_bytes) / (1024.0 * 1024.0),
              quant_r.round_ms, quant_r.per_client_ms, quant_r.pool_replicas,
              quant_r.pool_max, "int8");

  std::ofstream json(out_path);
  if (!json) {
    std::fprintf(stderr, "cohort_scale: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  json << "[\n";
  std::vector<CohortResult> all = results;
  all.push_back(quant_r);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const CohortResult& r = all[i];
    json << "  {\"clients\": " << r.clients << ", \"participants\": " << r.participants
         << ", \"peak_live_bytes\": " << r.peak_live_bytes
         << ", \"round_ms\": " << r.round_ms << ", \"per_client_ms\": " << r.per_client_ms
         << ", \"pool_replicas\": " << r.pool_replicas << ", \"pool_max\": " << r.pool_max
         << ", \"pool_occupancy\": " << r.gauge_pool_occupancy
         << ", \"agg_peak_bytes\": " << r.gauge_agg_peak_bytes
         << ", \"quant_uplink\": " << (i + 1 == all.size() ? "true" : "false") << "}"
         << (i + 1 < all.size() ? "," : "") << "\n";
  }
  json << "]\n";
  std::printf("wrote %s\n", out_path.c_str());

  const CohortResult& small = results.front();
  const CohortResult& large = results.back();

  bool ok = true;
  // Replica gate: the pool must never materialize more than workers + 1
  // models regardless of cohort size (quantized uplink included).
  for (const CohortResult& r : all) {
    if (r.pool_replicas > workers + 1) {
      std::fprintf(stderr, "FAIL: %zu-client round materialized %zu replicas (> %zu)\n",
                   r.clients, r.pool_replicas, workers + 1);
      ok = false;
    }
  }
  // Quantized-memory gate: the codec must stay streaming — folding int8
  // reports may not inflate the round's peak tensor bytes beyond 1.5x of
  // the dense run at the same cohort size.
  if (Tensor::alloc_stats_enabled()) {
    const double quant_ratio = static_cast<double>(quant_r.peak_live_bytes) /
                               static_cast<double>(results.back().peak_live_bytes);
    std::printf("quantized/dense peak-bytes ratio at %zu clients: %.2fx (gate <= 1.5x)\n",
                quant_r.clients, quant_ratio);
    if (quant_ratio > 1.5) {
      std::fprintf(stderr,
                   "FAIL: quantized uplink grew peak live bytes %.2fx over the "
                   "dense round\n",
                   quant_ratio);
      ok = false;
    }
  }
  // Memory gate: only meaningful when the alloc-stats choke point is
  // compiled in; without it peak_live_bytes reads zero.
  if (Tensor::alloc_stats_enabled()) {
    const double mem_ratio = static_cast<double>(large.peak_live_bytes) /
                             static_cast<double>(small.peak_live_bytes);
    std::printf("peak-bytes ratio %zu/%zu clients: %.2fx (gate <= 1.5x)\n",
                large.clients, small.clients, mem_ratio);
    if (mem_ratio > 1.5) {
      std::fprintf(stderr,
                   "FAIL: peak live bytes grew %.2fx from %zu to %zu clients — "
                   "memory is scaling with the cohort\n",
                   mem_ratio, small.clients, large.clients);
      ok = false;
    }
  } else {
    std::printf("built without FEDCAV_ALLOC_STATS: memory gate skipped\n");
  }
  // Time gate: per-participant cost must not degrade super-linearly.
  const double time_ratio = large.per_client_ms / small.per_client_ms;
  std::printf("per-client time ratio %zu/%zu clients: %.2fx (gate <= 4x)\n",
              large.clients, small.clients, time_ratio);
  if (time_ratio > 4.0) {
    std::fprintf(stderr, "FAIL: per-client round time grew %.2fx — rounds are not "
                 "scaling linearly in cohort size\n", time_ratio);
    ok = false;
  }
  return ok ? 0 : 1;
}
