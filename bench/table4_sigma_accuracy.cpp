// Table 4 reproduction: converged classification accuracy of FedAvg,
// FedProx and FedCav under σ = 300 / 600 / 900 on the three datasets.
//
// Protocol notes (paper §5.2.1): runs start from a short pre-training
// phase ("pre-training solves the initialization problem and facilitates
// a fair comparison"); we apply that warm start where the dataset needs
// it (CIFAR). Accuracy is the mean of the last 5 rounds after the
// learning process converges.
//
// Paper shape to reproduce: accuracy decreases with σ for every method;
// FedCav matches or beats the baselines with the edge widening at larger
// σ; FedProx may tie/win slightly at σ=300 (the paper reports exactly
// that on MNIST).
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("table4_sigma_accuracy",
                "Table 4: converged accuracy vs sigma for 3 strategies x 3 datasets");
  add_scale_flags(cli);
  cli.add_string("datasets", "digits,fashion,cifar", "comma-separated dataset list");
  cli.add_int("repeats", 2, "seeds to average per cell (cifar always runs 1)");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto repeats = static_cast<std::size_t>(std::max(1LL, cli.get_int("repeats")));

  const double sigmas[] = {300.0, 600.0, 900.0};
  const char* strategies[] = {"fedavg", "fedprox", "fedcav"};

  std::printf("== Table 4: converged accuracy (mean of last 5 rounds), %zu clients, "
              "%zu rounds, %zu repeat(s) ==\n",
              scale.clients, scale.rounds, repeats);
  std::printf("# CSV: bench,dataset,sigma,strategy,converged_accuracy\n");

  MarkdownTable table({"dataset", "sigma", "FedAvg", "FedProx", "FedCav", "winner"});
  for (const std::string& dataset : split(cli.get_string("datasets"), ',')) {
    // CIFAR needs a warm start and gentler local steps; fewer rounds
    // suffice because it starts from a pre-trained model.
    const std::size_t rounds = dataset == "cifar"
                                   ? std::max<std::size_t>(5, scale.rounds * 3 / 5)
                                   : scale.rounds;
    const std::size_t dataset_repeats = dataset == "cifar" ? 1 : repeats;
    for (double sigma : sigmas) {
      double acc[3] = {0.0, 0.0, 0.0};
      for (int s = 0; s < 3; ++s) {
        for (std::size_t rep = 0; rep < dataset_repeats; ++rep) {
          TunedPlan plan = tuned_plan(scale, dataset, strategies[s], seed + rep * 101);
          plan.config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
          plan.config.partition.sigma = sigma;
          fl::Simulation sim = build_warmstarted(plan);
          sim.server->run(rounds);
          acc[s] += sim.server->history().converged_accuracy(5);
        }
        acc[s] /= static_cast<double>(dataset_repeats);
        std::printf("# CSV: table4,%s,%.0f,%s,%.4f\n", dataset.c_str(), sigma,
                    strategies[s], acc[s]);
        std::fflush(stdout);
      }
      int winner = 0;
      for (int s = 1; s < 3; ++s) {
        if (acc[s] > acc[winner]) winner = s;
      }
      table.add_row({dataset, format_double(sigma, 0), format_double(acc[0], 4),
                     format_double(acc[1], 4), format_double(acc[2], 4),
                     strategies[winner]});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nExpected shape (paper Table 4): accuracy falls as sigma grows; "
              "FedCav leads overall (~2.4%% avg gain), FedProx can edge it at "
              "sigma=300.\n");
  return 0;
}
