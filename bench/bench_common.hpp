// Shared scaffolding for the figure/table reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper and
// prints (a) a human-readable markdown block and (b) machine-readable
// long-format CSV rows (`# CSV:` prefixed) so the series can be plotted
// directly. Scale flags:
//   --fast   CI-sized (seconds)
//   --paper  paper-sized (100 clients, more rounds; minutes-to-hours)
//   default  laptop-sized (tens of seconds), same qualitative shapes
#pragma once

#include <string>

#include "src/fl/simulation.hpp"
#include "src/metrics/history.hpp"
#include "src/utils/cli.hpp"
#include "src/utils/csv.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::bench {

/// Workload scale selected by --fast / default / --paper.
struct Scale {
  std::size_t clients = 40;
  std::size_t train_samples_per_class = 30;
  std::size_t test_samples_per_class = 20;
  std::size_t rounds = 25;
  double sample_ratio = 0.3;
  std::size_t local_epochs = 5;
  std::size_t batch_size = 10;
  float lr = 0.05f;
};

/// Register the shared scale flags on a parser.
void add_scale_flags(CliParser& cli);

/// Resolve flags into a Scale (applies --fast / --paper presets first,
/// then explicit overrides).
Scale resolve_scale(const CliParser& cli);

/// Baseline SimulationConfig with the scale applied; callers then set
/// dataset/model/strategy/partition specifics.
fl::SimulationConfig make_config(const Scale& scale, const std::string& dataset,
                                 const std::string& model, const std::string& strategy,
                                 std::uint64_t seed);

/// The model each dataset uses in the paper's evaluation (§5.1.1).
std::string model_for_dataset(const std::string& dataset);

/// Per-dataset tuning mirroring the paper's protocol. CIFAR federated
/// training only makes progress from a pre-trained initialization
/// (§5.2.1: "we first train for a short period ... pre-training solves
/// the initialization problem"), with gentler local steps; the function
/// shrinks the cohort, sets E=2, η=0.01 and requests a warm start.
struct TunedPlan {
  fl::SimulationConfig config;
  std::size_t warmstart_epochs = 0;  // centralized epochs before FL
  float warmstart_lr = 0.05f;
};
TunedPlan tuned_plan(const Scale& scale, const std::string& dataset,
                     const std::string& strategy, std::uint64_t seed);

/// Build the simulation and apply the plan's centralized warm start
/// (no-op when warmstart_epochs == 0).
fl::Simulation build_warmstarted(const TunedPlan& plan);

/// Emit one history as long-format CSV rows:
///   bench,series,round,accuracy,loss
void print_history_csv(const std::string& bench, const std::string& series,
                       const metrics::TrainingHistory& history);

/// Print the CSV header for print_history_csv rows.
void print_history_csv_header();

/// Standard deviation of round-to-round accuracy deltas — the
/// "oscillation" summary used by the Fig. 5 clip ablation.
double accuracy_oscillation(const metrics::TrainingHistory& history);

}  // namespace fedcav::bench
