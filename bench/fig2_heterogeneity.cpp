// Fig. 2 reproduction: FedAvg classification accuracy over communication
// rounds on five data distributions — IID&balanced, non-IID&balanced,
// and non-IID with σ = 300 / 600 / 900.
//
// Paper shape to reproduce: balanced distributions converge within a few
// rounds; imbalance slows convergence and depresses final accuracy, and
// the degradation grows with σ.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/utils/logging.hpp"

namespace {

using namespace fedcav;
using namespace fedcav::bench;

struct Distribution {
  const char* label;
  data::PartitionScheme scheme;
  double sigma;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("fig2_heterogeneity",
                "Fig. 2: FedAvg accuracy vs rounds on 5 data distributions");
  add_scale_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  const Distribution distributions[] = {
      {"IID&balanced", data::PartitionScheme::kIidBalanced, 0.0},
      {"non-IID&balanced", data::PartitionScheme::kNonIidBalanced, 0.0},
      {"non-IID&sigma=300", data::PartitionScheme::kNonIidImbalanced, 300.0},
      {"non-IID&sigma=600", data::PartitionScheme::kNonIidImbalanced, 600.0},
      {"non-IID&sigma=900", data::PartitionScheme::kNonIidImbalanced, 900.0},
  };

  std::printf("== Fig. 2: FedAvg on SynthDigits (LeNet5Lite), %zu clients, "
              "q=%.1f, %zu rounds ==\n",
              scale.clients, scale.sample_ratio, scale.rounds);
  print_history_csv_header();

  MarkdownTable table({"distribution", "best_acc", "final_acc", "rounds_to_0.7"});
  for (const Distribution& dist : distributions) {
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedavg", seed);
    config.partition.scheme = dist.scheme;
    config.partition.sigma = dist.sigma;
    fl::Simulation sim = fl::build_simulation(config);
    sim.server->run(scale.rounds);
    const auto& history = sim.server->history();
    print_history_csv("fig2", dist.label, history);

    const auto to_target = history.rounds_to_accuracy(0.7);
    table.add_row({dist.label, format_double(history.best_accuracy(), 4),
                   format_double(history.back().test_accuracy, 4),
                   to_target ? std::to_string(*to_target) : ">" + std::to_string(scale.rounds)});
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nExpected shape (paper): balanced curves converge fastest; "
              "accuracy drops and instability grows as sigma rises.\n");
  return 0;
}
