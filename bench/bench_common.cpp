#include "bench/bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/utils/error.hpp"

namespace fedcav::bench {

void add_scale_flags(CliParser& cli) {
  cli.add_flag("fast", "CI-sized run (seconds)");
  cli.add_flag("paper", "paper-sized run (100 clients, full rounds)");
  cli.add_int("clients", 0, "override client count (0 = scale default)");
  cli.add_int("rounds", 0, "override round count (0 = scale default)");
  cli.add_int("samples", 0, "override train samples per class (0 = scale default)");
  cli.add_int("seed", 2021, "base RNG seed");
}

Scale resolve_scale(const CliParser& cli) {
  Scale scale;
  if (cli.get_flag("fast")) {
    scale.clients = 12;
    scale.train_samples_per_class = 12;
    scale.test_samples_per_class = 10;
    scale.rounds = 6;
    scale.local_epochs = 3;
  } else if (cli.get_flag("paper")) {
    // §5.1.4: n=100, B=10, E=5, η=0.01, q=0.3.
    scale.clients = 100;
    scale.train_samples_per_class = 60;
    scale.test_samples_per_class = 40;
    scale.rounds = 50;
    scale.lr = 0.01f;
  }
  if (cli.get_int("clients") > 0) scale.clients = static_cast<std::size_t>(cli.get_int("clients"));
  if (cli.get_int("rounds") > 0) scale.rounds = static_cast<std::size_t>(cli.get_int("rounds"));
  if (cli.get_int("samples") > 0) {
    scale.train_samples_per_class = static_cast<std::size_t>(cli.get_int("samples"));
  }
  return scale;
}

fl::SimulationConfig make_config(const Scale& scale, const std::string& dataset,
                                 const std::string& model, const std::string& strategy,
                                 std::uint64_t seed) {
  fl::SimulationConfig config;
  config.dataset = dataset;
  config.model = model;
  config.strategy = strategy;
  config.train_samples_per_class = scale.train_samples_per_class;
  config.test_samples_per_class = scale.test_samples_per_class;
  config.partition.num_clients = scale.clients;
  config.server.sample_ratio = scale.sample_ratio;
  config.server.local.epochs = scale.local_epochs;
  config.server.local.batch_size = scale.batch_size;
  config.server.local.lr = scale.lr;
  config.seed = seed;
  return config;
}

std::string model_for_dataset(const std::string& dataset) {
  if (dataset == "digits") return "lenet5";   // MNIST -> LeNet-5
  if (dataset == "fashion") return "cnn9";    // FMNIST -> 9-layer CNN
  if (dataset == "cifar") return "resnet";    // CIFAR-10 -> ResNet-18
  throw Error("model_for_dataset: unknown dataset '" + dataset + "'");
}

TunedPlan tuned_plan(const Scale& scale, const std::string& dataset,
                     const std::string& strategy, std::uint64_t seed) {
  TunedPlan plan;
  plan.config = make_config(scale, dataset, model_for_dataset(dataset), strategy, seed);
  if (dataset == "cifar") {
    plan.config.partition.num_clients = std::max<std::size_t>(10, scale.clients / 2);
    // Shards must be big enough that two local epochs refine rather than
    // erase the warm-started features.
    plan.config.train_samples_per_class =
        std::max<std::size_t>(plan.config.train_samples_per_class, 60);
    plan.config.server.local.epochs = 2;
    plan.config.server.local.lr = 0.01f;
    plan.warmstart_epochs = 8;
    plan.warmstart_lr = 0.05f;
  }
  return plan;
}

fl::Simulation build_warmstarted(const TunedPlan& plan) {
  fl::Simulation sim = fl::build_simulation(plan.config);
  if (plan.warmstart_epochs > 0) {
    Rng rng(plan.config.seed ^ 0x5eedf00dULL);
    auto model = nn::model_builder(plan.config.model)(rng);
    model->set_weights(sim.server->global_weights());
    fl::LocalTrainConfig pretrain_cfg = plan.config.server.local;
    pretrain_cfg.lr = plan.warmstart_lr;
    fl::CentralizedTrainer pretrainer(std::move(model), sim.train, sim.test,
                                      pretrain_cfg, Rng(plan.config.seed ^ 0xf00dULL));
    pretrainer.run(1, plan.warmstart_epochs);
    sim.server->set_global_weights(pretrainer.model().get_weights());
  }
  return sim;
}

void print_history_csv_header() {
  std::printf("# CSV: bench,series,round,accuracy,loss\n");
}

void print_history_csv(const std::string& bench, const std::string& series,
                       const metrics::TrainingHistory& history) {
  for (const auto& record : history.records()) {
    std::printf("# CSV: %s,%s,%zu,%.4f,%.4f\n", bench.c_str(), series.c_str(),
                record.round, record.test_accuracy, record.test_loss);
  }
}

double accuracy_oscillation(const metrics::TrainingHistory& history) {
  const auto& records = history.records();
  if (records.size() < 3) return 0.0;
  std::vector<double> deltas;
  deltas.reserve(records.size() - 1);
  for (std::size_t i = 1; i < records.size(); ++i) {
    deltas.push_back(records[i].test_accuracy - records[i - 1].test_accuracy);
  }
  double mean = 0.0;
  for (double d : deltas) mean += d;
  mean /= static_cast<double>(deltas.size());
  double var = 0.0;
  for (double d : deltas) var += (d - mean) * (d - mean);
  return std::sqrt(var / static_cast<double>(deltas.size()));
}

}  // namespace fedcav::bench
