// Fig. 4 reproduction: classification accuracy under dynamic data with
// fresh-class fraction α ∈ {0.1, 0.3, 0.5} on the three datasets, for
// Centralized / FedCav / FedAvg / FedProx.
//
// Protocol (paper §5.2.2): pre-train the global model on the common
// classes only, then let each aggregation algorithm fit data that now
// includes the fresh classes. Paper shape to reproduce: FedCav's curve
// dominates FedAvg/FedProx, the gap widening with α; centralized
// training upper-bounds everyone; FedCav needs ~34% fewer rounds.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/data/fresh.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("fig4_fresh_class",
                "Fig. 4: accuracy vs rounds with fresh-class fraction alpha");
  add_scale_flags(cli);
  cli.add_string("datasets", "digits,fashion,cifar", "comma-separated dataset list");
  cli.add_string("alphas", "0.1,0.3,0.5", "comma-separated fresh fractions");
  cli.add_int("pretrain-epochs", 4, "centralized epochs on common classes");
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  Scale scale = resolve_scale(cli);
  if (!cli.get_flag("paper") && cli.get_int("rounds") == 0) scale.rounds = 15;
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto pretrain_epochs = static_cast<std::size_t>(cli.get_int("pretrain-epochs"));

  std::printf("== Fig. 4: fresh-class dynamics, %zu clients, %zu rounds ==\n",
              scale.clients, scale.rounds);
  print_history_csv_header();

  MarkdownTable table(
      {"dataset", "alpha", "Centralized", "FedCav", "FedAvg", "FedProx",
       "FedCav_rounds_to_FedAvg_final"});

  for (const std::string& dataset : split(cli.get_string("datasets"), ',')) {
    const std::string model_name = model_for_dataset(dataset);
    for (const std::string& alpha_str : split(cli.get_string("alphas"), ',')) {
      const double alpha = parse_double(alpha_str);

      // Shared corpus + pre-trained weights for every algorithm.
      fl::SimulationConfig probe = tuned_plan(scale, dataset, "fedavg", seed).config;
      probe.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
      probe.partition.sigma = 600.0;
      fl::Simulation shared = fl::build_simulation(probe);
      const data::FreshSplit split_data = data::split_fresh_classes(shared.train, alpha);

      Rng pretrain_rng(seed ^ 0x5eed);
      auto pretrain_model = nn::model_builder(model_name)(pretrain_rng);
      fl::LocalTrainConfig pretrain_cfg = probe.server.local;
      pretrain_cfg.lr = 0.05f;
      // CIFAR needs the longer warm start its tuned plan prescribes.
      const std::size_t effective_pretrain =
          dataset == "cifar" ? std::max<std::size_t>(pretrain_epochs, 8) : pretrain_epochs;
      fl::CentralizedTrainer pretrainer(std::move(pretrain_model), split_data.common,
                                        shared.test, pretrain_cfg, Rng(seed ^ 0xfeed));
      pretrainer.run(1, effective_pretrain);
      const nn::Weights pretrained = pretrainer.model().get_weights();

      const std::string tag = dataset + "/alpha=" + alpha_str;
      double final_acc[4] = {0, 0, 0, 0};
      std::optional<std::size_t> fedcav_rounds;
      double fedavg_final = 0.0;

      // Centralized continuation on the full corpus.
      {
        Rng rng(seed ^ 0xc0de);
        auto model = nn::model_builder(model_name)(rng);
        model->set_weights(pretrained);
        fl::CentralizedTrainer central(std::move(model), shared.train, shared.test,
                                       pretrain_cfg, Rng(seed ^ 0xace));
        central.run(scale.rounds, 1);
        print_history_csv("fig4", tag + "/Centralized", central.history());
        final_acc[0] = central.history().converged_accuracy(3);
      }

      // Federated continuations; keep FedCav's history so the paper's
      // "~34% fewer rounds" statistic (rounds FedCav needs to reach
      // FedAvg's final accuracy) can be derived afterwards.
      metrics::TrainingHistory fedcav_history;
      const char* strategies[] = {"fedcav", "fedavg", "fedprox"};
      for (int s = 0; s < 3; ++s) {
        TunedPlan plan = tuned_plan(scale, dataset, strategies[s], seed);
        plan.config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
        plan.config.partition.sigma = 600.0;
        plan.warmstart_epochs = 0;  // we warm-start from `pretrained` below
        fl::Simulation sim = fl::build_simulation(plan.config);
        sim.server->set_global_weights(pretrained);
        sim.server->run(scale.rounds);
        print_history_csv("fig4", tag + "/" + strategies[s], sim.server->history());
        final_acc[s + 1] = sim.server->history().converged_accuracy(3);
        if (std::string(strategies[s]) == "fedcav") {
          fedcav_history = sim.server->history();
        } else if (std::string(strategies[s]) == "fedavg") {
          fedavg_final = final_acc[s + 1];
        }
        std::fflush(stdout);
      }
      fedcav_rounds = fedcav_history.rounds_to_accuracy(fedavg_final);

      table.add_row({dataset, alpha_str, format_double(final_acc[0], 4),
                     format_double(final_acc[1], 4), format_double(final_acc[2], 4),
                     format_double(final_acc[3], 4),
                     fedcav_rounds ? std::to_string(*fedcav_rounds)
                                   : ">" + std::to_string(scale.rounds)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nExpected shape (paper Fig. 4): centralized >= FedCav >= "
              "FedProx/FedAvg; FedCav's advantage grows with alpha and it "
              "reaches FedAvg's final accuracy in fewer rounds.\n");
  return 0;
}
