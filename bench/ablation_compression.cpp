// Compression ablation: accuracy / uplink-byte tradeoff of top-k
// sparsified client updates (comm extension, DESIGN.md §4) and of the
// quantized wire codec (DESIGN.md §13). Runs FedCav on the σ=600 digits
// workload at ratios {1.0, 0.5, 0.1, 0.05, 0.01}, then re-runs the
// workload over the in-memory network with fp16 / int8 / int8+top-k
// framing so the bytes/round column is measured on the wire (envelopes,
// CRC, metadata reports included) rather than modeled.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/fl/compressed.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("ablation_compression",
                "top-k update sparsification: accuracy vs uplink bytes");
  add_scale_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Compression ablation: FedCav, digits, sigma=600, %zu clients, "
              "%zu rounds ==\n",
              scale.clients, scale.rounds);

  MarkdownTable table({"keep_ratio", "converged_acc", "best_acc", "uplink_MB",
                       "compression"});
  for (double ratio : {1.0, 0.5, 0.1, 0.05, 0.01}) {
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedavg", seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.sigma = 600.0;
    config.server.use_network = false;  // byte model comes from the decorator
    fl::Simulation sim = fl::build_simulation(config);

    // Rebuild the server around a compression-decorated FedCav.
    Rng rng(config.seed);
    const nn::ModelBuilder builder = nn::model_builder(config.model);
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t k = 0; k < sim.partition.size(); ++k) {
      (void)rng.fork();  // legacy model-init fork, kept for RNG-stream parity
      clients.push_back(std::make_unique<fl::Client>(
          k, sim.train.subset(sim.partition[k]), rng.fork()));
    }
    auto compressed =
        std::make_unique<fl::CompressedStrategy>(fl::make_strategy("fedcav"), ratio);
    fl::CompressedStrategy* handle = compressed.get();
    Rng global_rng(config.seed ^ 0xabcdef12345ULL);
    fl::Server server(builder(global_rng), std::move(compressed), std::move(clients),
                      sim.test, config.server);
    server.run(scale.rounds);

    const double uplink_mb = static_cast<double>(handle->sparse_bytes()) / 1e6;
    const double factor = handle->sparse_bytes() == 0
                              ? 0.0
                              : static_cast<double>(handle->dense_bytes()) /
                                    static_cast<double>(handle->sparse_bytes());
    table.add_row({format_double(ratio, 2),
                   format_double(server.history().converged_accuracy(5), 4),
                   format_double(server.history().best_accuracy(), 4),
                   format_double(uplink_mb, 2), format_double(factor, 1) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: moderate sparsification (keep 10%%) retains most accuracy "
              "for ~5x fewer uplink bytes; extreme ratios starve aggregation.\n");

  // ---------------------------------------------------- quantized wire
  // Same workload over the in-memory network: bytes/round is the sum of
  // every frame both directions (model broadcasts, quantized reports,
  // metadata, CRC envelopes) divided by the round count.
  std::printf("\n== Quantized wire: FedCav, digits, sigma=600, %zu clients, "
              "%zu rounds ==\n",
              scale.clients, scale.rounds);
  struct QuantCase {
    const char* wire;
    comm::QuantMode mode;
    double keep;
  };
  const QuantCase kQuantCases[] = {
      {"fp32", comm::QuantMode::kNone, 1.0},
      {"fp16", comm::QuantMode::kFp16, 1.0},
      {"int8", comm::QuantMode::kInt8, 1.0},
      {"int8+topk", comm::QuantMode::kInt8, 0.25},
  };
  MarkdownTable qtable({"wire", "keep", "converged_acc", "best_acc",
                        "bytes/round", "reduction"});
  double fp32_bytes = 0.0;
  for (const QuantCase& qc : kQuantCases) {
    fl::SimulationConfig config =
        make_config(scale, "digits", "lenet5", "fedcav", seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.sigma = 600.0;
    config.server.quant = qc.mode;
    config.server.quant_keep = qc.keep;
    fl::Simulation sim = fl::build_simulation(config);
    sim.server->run(scale.rounds);

    std::uint64_t bytes = 0;
    for (const auto& rec : sim.server->history().records()) {
      bytes += rec.bytes_down + rec.bytes_up;
    }
    const double per_round =
        static_cast<double>(bytes) / static_cast<double>(scale.rounds);
    if (qc.mode == comm::QuantMode::kNone) fp32_bytes = per_round;
    const double reduction = per_round > 0.0 ? fp32_bytes / per_round : 0.0;
    qtable.add_row(
        {qc.wire, format_double(qc.keep, 2),
         format_double(sim.server->history().converged_accuracy(5), 4),
         format_double(sim.server->history().best_accuracy(), 4),
         format_double(per_round / 1e3, 1) + " KB",
         format_double(reduction, 1) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s", qtable.render().c_str());
  std::printf("\nReading: dense int8 caps near 4x (scale/zero sidecars and "
              "framing); composing int8 with a top-k bitmap on the uplink "
              "clears it while error feedback holds accuracy.\n");
  return 0;
}
