// Compression ablation: accuracy / uplink-byte tradeoff of top-k
// sparsified client updates (comm extension, DESIGN.md §4). Runs FedCav
// on the σ=600 digits workload at ratios {1.0, 0.5, 0.1, 0.05, 0.01}.
#include <cstdio>

#include "bench/bench_common.hpp"
#include "src/fl/compressed.hpp"
#include "src/utils/logging.hpp"

int main(int argc, char** argv) {
  using namespace fedcav;
  using namespace fedcav::bench;

  CliParser cli("ablation_compression",
                "top-k update sparsification: accuracy vs uplink bytes");
  add_scale_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  set_log_level(LogLevel::kWarn);

  const Scale scale = resolve_scale(cli);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  std::printf("== Compression ablation: FedCav, digits, sigma=600, %zu clients, "
              "%zu rounds ==\n",
              scale.clients, scale.rounds);

  MarkdownTable table({"keep_ratio", "converged_acc", "best_acc", "uplink_MB",
                       "compression"});
  for (double ratio : {1.0, 0.5, 0.1, 0.05, 0.01}) {
    fl::SimulationConfig config = make_config(scale, "digits", "lenet5", "fedavg", seed);
    config.partition.scheme = data::PartitionScheme::kNonIidImbalanced;
    config.partition.sigma = 600.0;
    config.server.use_network = false;  // byte model comes from the decorator
    fl::Simulation sim = fl::build_simulation(config);

    // Rebuild the server around a compression-decorated FedCav.
    Rng rng(config.seed);
    const nn::ModelBuilder builder = nn::model_builder(config.model);
    std::vector<std::unique_ptr<fl::Client>> clients;
    for (std::size_t k = 0; k < sim.partition.size(); ++k) {
      (void)rng.fork();  // legacy model-init fork, kept for RNG-stream parity
      clients.push_back(std::make_unique<fl::Client>(
          k, sim.train.subset(sim.partition[k]), rng.fork()));
    }
    auto compressed =
        std::make_unique<fl::CompressedStrategy>(fl::make_strategy("fedcav"), ratio);
    fl::CompressedStrategy* handle = compressed.get();
    Rng global_rng(config.seed ^ 0xabcdef12345ULL);
    fl::Server server(builder(global_rng), std::move(compressed), std::move(clients),
                      sim.test, config.server);
    server.run(scale.rounds);

    const double uplink_mb = static_cast<double>(handle->sparse_bytes()) / 1e6;
    const double factor = handle->sparse_bytes() == 0
                              ? 0.0
                              : static_cast<double>(handle->dense_bytes()) /
                                    static_cast<double>(handle->sparse_bytes());
    table.add_row({format_double(ratio, 2),
                   format_double(server.history().converged_accuracy(5), 4),
                   format_double(server.history().best_accuracy(), 4),
                   format_double(uplink_mb, 2), format_double(factor, 1) + "x"});
    std::fflush(stdout);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nReading: moderate sparsification (keep 10%%) retains most accuracy "
              "for ~5x fewer uplink bytes; extreme ratios starve aggregation.\n");
  return 0;
}
