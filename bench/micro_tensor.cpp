// Microbenchmarks for the tensor substrate: GEMM, conv lowering,
// softmax and the flat-vector kernels the aggregation path leans on.
#include <benchmark/benchmark.h>

#include "src/nn/conv2d.hpp"
#include "src/tensor/im2col.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/rng.hpp"

namespace {

using namespace fedcav;

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::uniform(Shape::of(n, n), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(n, n), rng, -1.0f, 1.0f);
  Tensor c(Shape::of(n, n));
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_MatmulTransposedB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Tensor a = Tensor::uniform(Shape::of(n, n), rng, -1.0f, 1.0f);
  Tensor b = Tensor::uniform(Shape::of(n, n), rng, -1.0f, 1.0f);
  Tensor c(Shape::of(n, n));
  for (auto _ : state) {
    ops::matmul_transposed_b(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_MatmulTransposedB)->Arg(64);

void BM_Im2Col(benchmark::State& state) {
  Conv2dGeometry g{8, 14, 14, 3, 3, 1, 1};
  Rng rng(3);
  std::vector<float> image(8 * 14 * 14);
  for (auto& v : image) v = rng.uniform_f(-1.0f, 1.0f);
  Tensor cols(Shape::of(g.col_rows(), g.col_cols()));
  for (auto _ : state) {
    im2col(g, image.data(), cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2Col);

void BM_Conv2DForward(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  nn::Conv2D conv(1, 8, 3, 1, 1, 14, 14, rng);
  Tensor input = Tensor::uniform(Shape::of(batch, 1, 14, 14), rng, -1.0f, 1.0f);
  for (auto _ : state) {
    Tensor out = conv.forward(input, false);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_Conv2DForward)->Arg(1)->Arg(10)->Arg(32);

void BM_Conv2DBackward(benchmark::State& state) {
  Rng rng(5);
  nn::Conv2D conv(1, 8, 3, 1, 1, 14, 14, rng);
  Tensor input = Tensor::uniform(Shape::of(10, 1, 14, 14), rng, -1.0f, 1.0f);
  Tensor out = conv.forward(input, true);
  Tensor grad(out.shape(), 1.0f);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor dx = conv.backward(grad);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_Conv2DBackward);

void BM_SoftmaxRows(benchmark::State& state) {
  Rng rng(6);
  Tensor logits = Tensor::uniform(Shape::of(64, 10), rng, -4.0f, 4.0f);
  for (auto _ : state) {
    Tensor p = ops::softmax_rows(logits);
    benchmark::DoNotOptimize(p.data());
  }
}
BENCHMARK(BM_SoftmaxRows);

void BM_FlatAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<float> y(n, 0.0f);
  std::vector<float> x(n);
  for (auto& v : x) v = rng.uniform_f(-1.0f, 1.0f);
  for (auto _ : state) {
    ops::axpy(std::span<float>(y), 0.5f, std::span<const float>(x));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(float) * 2));
}
BENCHMARK(BM_FlatAxpy)->Arg(12502)->Arg(100000);

}  // namespace
