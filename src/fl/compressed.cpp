#include "src/fl/compressed.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::fl {

CompressedStrategy::CompressedStrategy(std::unique_ptr<AggregationStrategy> inner,
                                       double ratio)
    : inner_(std::move(inner)), ratio_(ratio) {
  FEDCAV_REQUIRE(inner_ != nullptr, "CompressedStrategy: null inner strategy");
  FEDCAV_REQUIRE(ratio > 0.0 && ratio <= 1.0,
                 "CompressedStrategy: ratio must be in (0, 1]");
}

void CompressedStrategy::lossy_reconstruct(ClientUpdate& update,
                                           const nn::Weights& global) {
  FEDCAV_REQUIRE(update.weights.size() == global.size(),
                 "CompressedStrategy: weight size mismatch");
  std::vector<float> delta(global.size());
  for (std::size_t i = 0; i < global.size(); ++i) {
    delta[i] = update.weights[i] - global[i];
  }
  const comm::SparseDelta sparse = comm::topk_compress(delta, ratio_);
  sparse_bytes_ += sparse.wire_size();
  dense_bytes_ += global.size() * sizeof(float);
  update.weights = global;
  comm::add_sparse(update.weights, sparse);
}

nn::Weights CompressedStrategy::aggregate(const nn::Weights& global,
                                          const std::vector<ClientUpdate>& updates) {
  std::vector<ClientUpdate> lossy = updates;
  for (ClientUpdate& update : lossy) lossy_reconstruct(update, global);
  return inner_->aggregate(global, lossy);
}

void CompressedStrategy::begin_aggregation(const nn::Weights& global,
                                           const std::vector<ClientUpdate>& metadata) {
  stream_global_ = global;
  inner_->begin_aggregation(global, metadata);
}

void CompressedStrategy::accumulate(ClientUpdate update) {
  lossy_reconstruct(update, stream_global_);
  inner_->accumulate(std::move(update));
}

nn::Weights CompressedStrategy::finish_aggregation() {
  nn::Weights().swap(stream_global_);
  return inner_->finish_aggregation();
}

std::vector<double> CompressedStrategy::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  return inner_->aggregation_weights(updates);
}

void CompressedStrategy::apply_local_overrides(LocalTrainConfig& config) const {
  inner_->apply_local_overrides(config);
}

std::string CompressedStrategy::name() const {
  return "TopK(" + format_double(ratio_, 2) + ", " + inner_->name() + ")";
}

}  // namespace fedcav::fl
