#include "src/fl/compressed.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::fl {

CompressedStrategy::CompressedStrategy(std::unique_ptr<AggregationStrategy> inner,
                                       double ratio)
    : inner_(std::move(inner)), ratio_(ratio) {
  FEDCAV_REQUIRE(inner_ != nullptr, "CompressedStrategy: null inner strategy");
  FEDCAV_REQUIRE(ratio > 0.0 && ratio <= 1.0,
                 "CompressedStrategy: ratio must be in (0, 1]");
}

nn::Weights CompressedStrategy::aggregate(const nn::Weights& global,
                                          const std::vector<ClientUpdate>& updates) {
  std::vector<ClientUpdate> lossy = updates;
  std::vector<float> delta(global.size());
  for (ClientUpdate& update : lossy) {
    FEDCAV_REQUIRE(update.weights.size() == global.size(),
                   "CompressedStrategy: weight size mismatch");
    for (std::size_t i = 0; i < global.size(); ++i) {
      delta[i] = update.weights[i] - global[i];
    }
    const comm::SparseDelta sparse = comm::topk_compress(delta, ratio_);
    sparse_bytes_ += sparse.wire_size();
    dense_bytes_ += global.size() * sizeof(float);
    update.weights = global;
    comm::add_sparse(update.weights, sparse);
  }
  return inner_->aggregate(global, lossy);
}

std::vector<double> CompressedStrategy::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  return inner_->aggregation_weights(updates);
}

void CompressedStrategy::apply_local_overrides(LocalTrainConfig& config) const {
  inner_->apply_local_overrides(config);
}

std::string CompressedStrategy::name() const {
  return "TopK(" + format_double(ratio_, 2) + ", " + inner_->name() + ")";
}

}  // namespace fedcav::fl
