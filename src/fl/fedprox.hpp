// FedProx (Li et al., the paper's baseline [11]): FedAvg aggregation
// plus a proximal term μ/2·‖w − w_t‖² added to every client's local
// objective. The aggregation rule is unchanged; the strategy's override
// hook injects μ into the local optimizer.
#pragma once

#include "src/fl/fedavg.hpp"

namespace fedcav::fl {

class FedProx : public FedAvg {
 public:
  explicit FedProx(float mu = 0.01f);

  void apply_local_overrides(LocalTrainConfig& config) const override;
  std::string name() const override;

  float mu() const { return mu_; }

 private:
  float mu_;
};

}  // namespace fedcav::fl
