// Centralized gradient-descent baseline (paper §5.1.2 baseline (1)):
// the whole corpus on one node, standard mini-batch SGD. Reported per
// "round" (= one local-epoch-equivalent sweep) so its curve overlays the
// federated ones in the Fig. 4 reproduction.
#pragma once

#include <memory>

#include "src/data/dataset.hpp"
#include "src/fl/types.hpp"
#include "src/metrics/history.hpp"
#include "src/nn/model.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::fl {

class CentralizedTrainer {
 public:
  CentralizedTrainer(std::unique_ptr<nn::Model> model, data::Dataset train,
                     data::Dataset test, LocalTrainConfig config, Rng rng);

  /// One "round": `epochs_per_round` passes over the full training set,
  /// then evaluation. Appends to history().
  metrics::RoundRecord run_round(std::size_t epochs_per_round = 1);

  void run(std::size_t rounds, std::size_t epochs_per_round = 1);

  const metrics::TrainingHistory& history() const { return history_; }
  nn::Model& model() { return *model_; }

 private:
  std::unique_ptr<nn::Model> model_;
  data::Dataset train_;
  data::Dataset test_;
  LocalTrainConfig config_;
  Rng rng_;
  metrics::TrainingHistory history_;
  std::size_t round_ = 0;
};

}  // namespace fedcav::fl
