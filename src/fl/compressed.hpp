// CompressedStrategy: decorator that simulates top-k sparsified uplinks.
//
// Each client update's weights are replaced by the reconstruction
//   w_t + decompress(topk(w_i − w_t, ratio))
// before being handed to the wrapped aggregation strategy, and the bytes
// a real sparse uplink would have cost are tallied. This keeps the
// Server and wire protocol unchanged while letting the ablation bench
// measure the accuracy/byte tradeoff of lossy uplinks.
#pragma once

#include <memory>

#include "src/comm/compression.hpp"
#include "src/fl/strategy.hpp"

namespace fedcav::fl {

class CompressedStrategy : public AggregationStrategy {
 public:
  CompressedStrategy(std::unique_ptr<AggregationStrategy> inner, double ratio);

  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  void apply_local_overrides(LocalTrainConfig& config) const override;
  std::string name() const override;

  /// Cumulative bytes the sparse uplinks would have used, and the dense
  /// bytes they replaced.
  std::uint64_t sparse_bytes() const { return sparse_bytes_; }
  std::uint64_t dense_bytes() const { return dense_bytes_; }

  // Streaming: the lossy reconstruction is a per-update transform, so
  // each update is compressed and forwarded to the inner strategy as it
  // arrives. Streams iff the inner strategy streams.
  void begin_aggregation(const nn::Weights& global,
                         const std::vector<ClientUpdate>& metadata) override;
  void accumulate(ClientUpdate update) override;
  nn::Weights finish_aggregation() override;
  bool streaming_aggregation() const override {
    return inner_->streaming_aggregation();
  }

 private:
  /// In-place top-k sparsify + reconstruct vs `stream_global_`, tallying
  /// the byte ledger.
  void lossy_reconstruct(ClientUpdate& update, const nn::Weights& global);

  std::unique_ptr<AggregationStrategy> inner_;
  double ratio_;
  std::uint64_t sparse_bytes_ = 0;
  std::uint64_t dense_bytes_ = 0;
  nn::Weights stream_global_;
};

}  // namespace fedcav::fl
