// Shared value types of the federated runtime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/nn/model.hpp"

namespace fedcav::fl {

/// What one participant returns from a round of local work: the trained
/// weights w_i^{t+1}, the pre-training inference loss f_i(w_t), and the
/// local sample count |d_i| (FedAvg's weighting signal).
struct ClientUpdate {
  std::size_t client_id = 0;
  nn::Weights weights;
  double inference_loss = 0.0;
  std::size_t num_samples = 0;
  /// Ground-truth experiment flag (the server never reads it; benches
  /// use it to label attacked rounds in reports).
  bool malicious = false;
};

/// Result of one participant's phase-① exchange (downlink + inference
/// loss + metadata uplink) over the (possibly faulty) comm fabric.
/// `metadata` is empty when the exchange failed — the client was
/// crashed, a link exhausted its retries, or the simulated exchange ran
/// past the uplink deadline — which the server counts as a dropout. The
/// counters feed RoundRecord and are summed in fixed participant order
/// so totals stay deterministic. `elapsed_s` accumulates the FULL
/// simulated exchange (downlink attempts, NACK wire time, backoffs,
/// uplinks) and keeps charging through phase ②, so the deadline covers
/// the whole round-trip, not just the last uplink.
struct ParticipantOutcome {
  std::optional<ClientUpdate> metadata;  // scalars only; weights empty
  std::uint64_t retries = 0;       // retransmissions on this client's links
  std::uint64_t crc_failures = 0;  // wire images the CRC rejected
  std::uint64_t stale_discards = 0;  // wrong-round / wrong-type messages drained
  bool deadline_missed = false;    // exchange ran past uplink_deadline_s
  double elapsed_s = 0.0;          // simulated time spent on this exchange
};

/// Local-training hyperparameters (Algorithm 2's E, B, η plus optimizer
/// extras). `prox_mu` > 0 switches the local objective to FedProx's;
/// `curv_lambda` > 0 adds FedCurv-lite's EWC-style penalty
/// λ·F_j·(w_j − w*_j)² toward the client's previous local optimum,
/// weighted by its diagonal Fisher estimate F (related work [18]).
struct LocalTrainConfig {
  std::size_t epochs = 5;
  std::size_t batch_size = 10;
  float lr = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  float prox_mu = 0.0f;
  float curv_lambda = 0.0f;
};

}  // namespace fedcav::fl
