// Event-driven per-wave scheduler for the sharded round engine.
//
// Two pieces (DESIGN.md §15):
//
//   * ShardMap — the fixed ownership map: N slots (the round's sampled
//     cohort, in sampler order) split into S contiguous, near-equal
//     slices. Shard s owns [begin(s), end(s)); the first `N mod S`
//     shards own one extra slot. Purely arithmetic, so every run — any
//     thread count, any transport — derives the identical map.
//
//   * WaveScheduler::run — a bounded producer/consumer pipeline over
//     slot indices. produce(i) calls may run concurrently on the pool
//     in any order (each participant's work is independent: its own RNG
//     streams, its own fabric links, a leased replica); consume(i) runs
//     strictly serially in ascending slot order, on whichever thread
//     finished the gating slot. At most `window` slots may be produced
//     ahead of the consume cursor, which is what bounds the number of
//     materialized model-sized updates in flight. This replaces the
//     whole-cohort phase barrier: while slot i's update is being folded
//     into the aggregation accumulator, slots i+1 … i+window-1 are
//     already training.
//
// The strict ascending consume order is the determinism contract's
// second mode (DESIGN.md §13): the fold sequence a WaveScheduler drives
// is bit-identical to a serial loop over the same slots, at any pool
// size, any window ≥ 1, and any shard count.
#pragma once

#include <cstddef>
#include <functional>

#include "src/utils/threadpool.hpp"

namespace fedcav::fl {

/// Contiguous near-equal split of [0, num_slots) into shards. A shard
/// count larger than the slot count degrades gracefully: the map clamps
/// to one slot per shard (trailing shards own empty ranges is never
/// materialized — shards() reports the clamped count).
class ShardMap {
 public:
  ShardMap(std::size_t num_slots, std::size_t num_shards);

  std::size_t num_slots() const { return num_slots_; }
  /// Effective shard count (requested count clamped to [1, max(1, slots)]).
  std::size_t shards() const { return shards_; }

  std::size_t begin(std::size_t shard) const;
  std::size_t end(std::size_t shard) const;
  std::size_t size(std::size_t shard) const { return end(shard) - begin(shard); }
  /// The owner of a slot (inverse of begin/end, O(1) arithmetic).
  std::size_t shard_of(std::size_t slot) const;

 private:
  std::size_t num_slots_ = 0;
  std::size_t shards_ = 1;
  std::size_t base_ = 0;   // slots every shard owns
  std::size_t extra_ = 0;  // first `extra_` shards own base_ + 1
};

class WaveScheduler {
 public:
  /// Run the pipeline: produce(i) for every i in [first, n) concurrently
  /// (at most `window` ≥ 1 slots beyond the consume cursor), consume(i)
  /// serially in ascending i. Blocks until every slot is consumed. The
  /// first exception (in completion order) cancels outstanding work and
  /// is rethrown. Called from inside one of `pool`'s workers (nested
  /// parallelism), the pipeline degrades to a serial produce/consume
  /// loop on the caller, like ThreadPool::parallel_for does.
  static void run(ThreadPool& pool, std::size_t first, std::size_t n,
                  std::size_t window,
                  const std::function<void(std::size_t)>& produce,
                  const std::function<void(std::size_t)>& consume);
};

}  // namespace fedcav::fl
