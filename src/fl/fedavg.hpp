// FedAvg (McMahan et al.): sample-count-weighted averaging,
// w_{t+1} = Σ_i (|d_i| / |D_{S_t}|) · w_i^{t+1}   (paper Eq. 6 form).
#pragma once

#include "src/fl/strategy.hpp"

namespace fedcav::fl {

class FedAvg : public AggregationStrategy {
 public:
  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "FedAvg"; }
};

/// Shared helper: convex combination Σ γ_i · w_i with Σ γ_i = 1.
nn::Weights weighted_average(const std::vector<ClientUpdate>& updates,
                             const std::vector<double>& weights);

}  // namespace fedcav::fl
