// FedAvg (McMahan et al.): sample-count-weighted averaging,
// w_{t+1} = Σ_i (|d_i| / |D_{S_t}|) · w_i^{t+1}   (paper Eq. 6 form).
#pragma once

#include "src/fl/strategy.hpp"

namespace fedcav::fl {

/// Streaming Σ γ_j · w_j in double precision. Folding update j adds
/// `gamma[j] * (double)w_j[i]` into acc[i] for each coordinate — the
/// exact floating-point operation sequence of weighted_average()'s
/// u-then-i loop nest — so a fold in fixed participant order is
/// bit-identical to materializing every update first. One O(model)
/// double buffer lives at a time, regardless of cohort size.
class WeightedAccumulator {
 public:
  /// Arm for a round: `gammas[j]` is the weight of the j-th fold() call.
  void begin(std::size_t dim, std::vector<double> gammas);
  void fold(const ClientUpdate& update);
  /// Cast the double accumulator to float and release it.
  nn::Weights finish();
  std::size_t folded() const { return next_; }
  std::size_t expected() const { return gammas_.size(); }

 private:
  std::vector<double> acc_;
  std::vector<double> gammas_;
  std::size_t next_ = 0;
};

class FedAvg : public AggregationStrategy {
 public:
  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "FedAvg"; }

  // Streaming path: γ needs only num_samples, which the metadata phase
  // already carries. FedProx/FedCurvLite inherit this unchanged (their
  // aggregation is identical; they differ in local overrides only).
  void begin_aggregation(const nn::Weights& global,
                         const std::vector<ClientUpdate>& metadata) override;
  void accumulate(ClientUpdate update) override;
  nn::Weights finish_aggregation() override;
  bool streaming_aggregation() const override { return true; }

 private:
  WeightedAccumulator acc_;
};

/// Shared helper: convex combination Σ γ_i · w_i with Σ γ_i = 1.
nn::Weights weighted_average(const std::vector<ClientUpdate>& updates,
                             const std::vector<double>& weights);

}  // namespace fedcav::fl
