#include "src/fl/wave_scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "src/utils/error.hpp"

namespace fedcav::fl {

ShardMap::ShardMap(std::size_t num_slots, std::size_t num_shards)
    : num_slots_(num_slots) {
  shards_ = std::clamp<std::size_t>(num_shards, 1,
                                    std::max<std::size_t>(num_slots, 1));
  base_ = num_slots_ / shards_;
  extra_ = num_slots_ % shards_;
}

std::size_t ShardMap::begin(std::size_t shard) const {
  FEDCAV_REQUIRE(shard < shards_, "ShardMap::begin: shard out of range");
  return shard * base_ + std::min(shard, extra_);
}

std::size_t ShardMap::end(std::size_t shard) const {
  FEDCAV_REQUIRE(shard < shards_, "ShardMap::end: shard out of range");
  return (shard + 1) * base_ + std::min(shard + 1, extra_);
}

std::size_t ShardMap::shard_of(std::size_t slot) const {
  FEDCAV_REQUIRE(slot < num_slots_, "ShardMap::shard_of: slot out of range");
  // The first `extra_` shards own base_+1 slots each; invert the two
  // arithmetic progressions.
  const std::size_t wide = extra_ * (base_ + 1);
  if (slot < wide) return slot / (base_ + 1);
  return extra_ + (slot - wide) / base_;
}

namespace {

/// Shared pipeline state; one instance per WaveScheduler::run call.
struct PipelineState {
  std::mutex mutex;
  std::condition_variable cv;
  std::size_t next_issue = 0;    // next slot handed to a producer
  std::size_t next_consume = 0;  // consume cursor (strictly ascending)
  std::size_t end = 0;
  std::size_t window = 1;
  std::vector<char> ready;  // ring [slot % window]: produced, not consumed
  bool consuming = false;   // one thread at a time drains the consume side
  std::exception_ptr error;
};

/// Body run by every participating thread (submitted workers + the
/// caller): claim slots while the window has room, produce them, and —
/// when a produced slot turns out to be the consume cursor's gate —
/// drain the serial consume side until it blocks on an in-flight slot.
void pipeline_worker(PipelineState& st,
                     const std::function<void(std::size_t)>& produce,
                     const std::function<void(std::size_t)>& consume) {
  for (;;) {
    std::size_t slot;
    {
      std::unique_lock<std::mutex> lock(st.mutex);
      st.cv.wait(lock, [&] {
        return st.error || st.next_issue >= st.end ||
               st.next_issue - st.next_consume < st.window;
      });
      if (st.error || st.next_issue >= st.end) return;
      slot = st.next_issue++;
    }
    try {
      produce(slot);
    } catch (...) {
      std::lock_guard<std::mutex> lock(st.mutex);
      if (!st.error) st.error = std::current_exception();
      st.cv.notify_all();
      return;
    }
    std::unique_lock<std::mutex> lock(st.mutex);
    st.ready[slot % st.window] = 1;
    // Drain: the mark-and-check is atomic under the lock, so whichever
    // thread readies the gating slot (or is already draining) owns the
    // consume side — a ready slot is never orphaned.
    while (!st.error && !st.consuming && st.next_consume < st.end &&
           st.ready[st.next_consume % st.window]) {
      st.consuming = true;
      const std::size_t c = st.next_consume;
      lock.unlock();
      try {
        consume(c);
      } catch (...) {
        lock.lock();
        if (!st.error) st.error = std::current_exception();
        st.consuming = false;
        st.cv.notify_all();
        return;
      }
      lock.lock();
      st.ready[c % st.window] = 0;
      ++st.next_consume;
      st.consuming = false;
      st.cv.notify_all();  // the window advanced; wake blocked producers
    }
  }
}

}  // namespace

void WaveScheduler::run(ThreadPool& pool, std::size_t first, std::size_t n,
                        std::size_t window,
                        const std::function<void(std::size_t)>& produce,
                        const std::function<void(std::size_t)>& consume) {
  if (first >= n) return;
  const std::size_t count = n - first;
  // Nested call (already on a pool worker) or nothing to overlap: the
  // serial loop IS the reference order the pipeline reproduces.
  if (pool.in_worker_thread() || count == 1 || window <= 1 ||
      pool.size() == 0) {
    for (std::size_t i = first; i < n; ++i) {
      produce(i);
      consume(i);
    }
    return;
  }

  PipelineState st;
  st.next_issue = first;
  st.next_consume = first;
  st.end = n;
  st.window = std::min(window, count);
  st.ready.assign(st.window, 0);

  const std::size_t helpers = std::min(pool.size(), count - 1);
  std::vector<std::future<void>> joins;
  joins.reserve(helpers);
  for (std::size_t k = 0; k < helpers; ++k) {
    joins.push_back(pool.submit(
        [&st, &produce, &consume] { pipeline_worker(st, produce, consume); }));
  }
  pipeline_worker(st, produce, consume);
  for (auto& f : joins) f.get();

  if (st.error) std::rethrow_exception(st.error);
  FEDCAV_REQUIRE(st.next_consume == n, "WaveScheduler: pipeline incomplete");
}

}  // namespace fedcav::fl
