#include "src/fl/fedprox.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::fl {

FedProx::FedProx(float mu) : mu_(mu) {
  FEDCAV_REQUIRE(mu > 0.0f, "FedProx: mu must be positive");
}

void FedProx::apply_local_overrides(LocalTrainConfig& config) const {
  config.prox_mu = mu_;
}

std::string FedProx::name() const {
  return "FedProx(mu=" + format_double(static_cast<double>(mu_), 3) + ")";
}

}  // namespace fedcav::fl
