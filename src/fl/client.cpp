#include "src/fl/client.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/metrics/evaluation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::fl {

Client::Client(std::size_t id, data::Dataset local_data, Rng rng)
    : id_(id), data_(std::move(local_data)), rng_(rng) {
  FEDCAV_REQUIRE(!data_.empty(), "Client: empty local dataset");
}

double Client::compute_inference_loss(nn::Model& model, const nn::Weights& global) {
  obs::Span span("inference_loss", "client");
  span.arg("client", static_cast<double>(id_));
  model.set_weights(global);
  return metrics::inference_loss(model, data_);
}

ClientUpdate Client::local_update(nn::Model& model, const nn::Weights& global,
                                  const LocalTrainConfig& config) {
  FEDCAV_REQUIRE(config.epochs > 0, "Client: zero local epochs");
  FEDCAV_REQUIRE(config.batch_size > 0, "Client: zero batch size");
  const double f_i = compute_inference_loss(model, global);
  return train_update(model, global, config, f_i);
}

ClientUpdate Client::train_update(nn::Model& model, const nn::Weights& global,
                                  const LocalTrainConfig& config, double inference_loss) {
  FEDCAV_REQUIRE(config.epochs > 0, "Client: zero local epochs");
  FEDCAV_REQUIRE(config.batch_size > 0, "Client: zero batch size");

  obs::Span train_span("local_epochs", "client");
  train_span.arg("client", static_cast<double>(id_));
  // E epochs of mini-batch SGD from the global weights. The replica may
  // have been used by another client since phase ①, so always reload.
  model.set_weights(global);
  nn::SgdConfig sgd_config;
  sgd_config.lr = config.lr;
  sgd_config.momentum = config.momentum;
  sgd_config.weight_decay = config.weight_decay;
  sgd_config.prox_mu = config.prox_mu;
  nn::Sgd optimizer(sgd_config);
  if (config.prox_mu > 0.0f) optimizer.set_prox_anchor(global);
  if (config.curv_lambda > 0.0f && has_curvature_state()) {
    optimizer.set_quadratic_penalty(curv_anchor_, curv_importance_, config.curv_lambda);
  }

  std::vector<std::size_t> order(data_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::size_t> labels;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t begin = 0; begin < order.size(); begin += config.batch_size) {
      const std::size_t end = std::min(order.size(), begin + config.batch_size);
      Tensor batch = data_.make_batch(
          std::span(order.data() + begin, end - begin), &labels);
      model.forward_backward(batch, labels);
      optimizer.step(model);
    }
  }

  ClientUpdate update;
  update.client_id = id_;
  update.weights = model.get_weights();
  update.inference_loss = inference_loss;
  update.num_samples = data_.size();

  if (config.curv_lambda > 0.0f) {
    // Remember this participation's optimum and parameter importances
    // for the EWC-style penalty next time this client is sampled.
    curv_importance_ = estimate_fisher(model);
    curv_anchor_ = update.weights;
  }
  return update;
}

std::vector<float> Client::estimate_fisher(nn::Model& model) {
  model.zero_grad();
  std::vector<float> fisher(model.num_params(), 0.0f);
  std::vector<std::size_t> labels;
  std::size_t batches = 0;
  constexpr std::size_t kFisherBatch = 16;
  std::vector<std::size_t> indices;
  for (std::size_t begin = 0; begin < data_.size(); begin += kFisherBatch) {
    const std::size_t end = std::min(data_.size(), begin + kFisherBatch);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = data_.make_batch(indices, &labels);
    model.forward_backward(batch, labels);
    const nn::Weights grads = model.get_gradients();
    for (std::size_t i = 0; i < grads.size(); ++i) fisher[i] += grads[i] * grads[i];
    model.zero_grad();
    ++batches;
  }
  const float inv = 1.0f / static_cast<float>(std::max<std::size_t>(1, batches));
  for (float& f : fisher) f *= inv;
  return fisher;
}

comm::QuantizedDelta Client::encode_quantized_update(const nn::Weights& trained,
                                                     const nn::Weights& reference,
                                                     comm::QuantMode mode,
                                                     double keep_ratio) {
  FEDCAV_REQUIRE(trained.size() == reference.size(),
                 "Client::encode_quantized_update: weight size mismatch");
  FEDCAV_REQUIRE(quant_residual_.empty() || quant_residual_.size() == trained.size(),
                 "Client::encode_quantized_update: residual size mismatch");
  if (quant_residual_.size() != trained.size()) {
    quant_residual_.assign(trained.size(), 0.0f);
  }
  std::vector<float> delta(trained.size());
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = trained[i] - reference[i] + quant_residual_[i];
  }
  comm::QuantizedDelta coded = comm::quantize(delta, mode, keep_ratio);
  // residual ← delta − decode(coded): the quantization error on kept
  // coordinates plus the untouched value on dropped ones.
  const std::vector<float> decoded = comm::dequantize(coded);
  for (std::size_t i = 0; i < delta.size(); ++i) {
    quant_residual_[i] = delta[i] - decoded[i];
  }
  if (obs::enabled()) {
    static obs::Histogram& norm_hist =
        obs::registry().histogram("quant.residual_norm");
    norm_hist.observe(quant_residual_norm());
  }
  return coded;
}

double Client::quant_residual_norm() const {
  double sq = 0.0;
  for (float r : quant_residual_) {
    sq += static_cast<double>(r) * static_cast<double>(r);
  }
  return std::sqrt(sq);
}

void Client::save_state(ByteBuffer& buf, bool with_quant_residual) const {
  write_rng_state(buf, rng_.state());
  write_f32_span(buf, curv_anchor_);
  write_f32_span(buf, curv_importance_);
  if (with_quant_residual) write_f32_span(buf, quant_residual_);
}

void Client::load_state(ByteReader& reader, std::size_t expected_params,
                        bool with_quant_residual) {
  rng_.set_state(read_rng_state(reader));
  std::vector<float> anchor = reader.read_f32_vector();
  std::vector<float> importance = reader.read_f32_vector();
  FEDCAV_REQUIRE(anchor.empty() || anchor.size() == expected_params,
                 "Client::load_state: curvature anchor size mismatch");
  FEDCAV_REQUIRE(importance.size() == anchor.size(),
                 "Client::load_state: curvature importance size mismatch");
  curv_anchor_ = std::move(anchor);
  curv_importance_ = std::move(importance);
  if (with_quant_residual) {
    std::vector<float> residual = reader.read_f32_vector();
    FEDCAV_REQUIRE(residual.empty() || residual.size() == expected_params,
                   "Client::load_state: quant residual size mismatch");
    quant_residual_ = std::move(residual);
  } else {
    quant_residual_.clear();  // pre-v5 file: no pending residual
  }
}

void Client::set_local_data(data::Dataset new_data) {
  FEDCAV_REQUIRE(!new_data.empty(), "Client::set_local_data: empty dataset");
  data_ = std::move(new_data);
}

}  // namespace fedcav::fl
