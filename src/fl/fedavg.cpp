#include "src/fl/fedavg.hpp"

#include "src/utils/error.hpp"

namespace fedcav::fl {

nn::Weights weighted_average(const std::vector<ClientUpdate>& updates,
                             const std::vector<double>& weights) {
  FEDCAV_REQUIRE(!updates.empty(), "weighted_average: no updates");
  FEDCAV_REQUIRE(updates.size() == weights.size(), "weighted_average: size mismatch");
  const std::size_t dim = updates.front().weights.size();
  // Accumulate in double: rounds sum 30+ weight vectors and float
  // accumulation noise would otherwise leak into convergence curves.
  std::vector<double> acc(dim, 0.0);
  for (std::size_t u = 0; u < updates.size(); ++u) {
    FEDCAV_REQUIRE(updates[u].weights.size() == dim,
                   "weighted_average: weight dimension mismatch");
    const double w = weights[u];
    const float* src = updates[u].weights.data();
    for (std::size_t i = 0; i < dim; ++i) acc[i] += w * static_cast<double>(src[i]);
  }
  nn::Weights out(dim);
  for (std::size_t i = 0; i < dim; ++i) out[i] = static_cast<float>(acc[i]);
  return out;
}

std::vector<double> FedAvg::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  FEDCAV_REQUIRE(!updates.empty(), "FedAvg: no updates");
  double total = 0.0;
  for (const auto& u : updates) total += static_cast<double>(u.num_samples);
  FEDCAV_REQUIRE(total > 0.0, "FedAvg: all updates empty");
  std::vector<double> w(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    w[i] = static_cast<double>(updates[i].num_samples) / total;
  }
  return w;
}

nn::Weights FedAvg::aggregate(const nn::Weights& global,
                              const std::vector<ClientUpdate>& updates) {
  (void)global;
  return weighted_average(updates, aggregation_weights(updates));
}

void WeightedAccumulator::begin(std::size_t dim, std::vector<double> gammas) {
  FEDCAV_REQUIRE(!gammas.empty(), "WeightedAccumulator: no participants");
  acc_.assign(dim, 0.0);
  gammas_ = std::move(gammas);
  next_ = 0;
}

void WeightedAccumulator::fold(const ClientUpdate& update) {
  FEDCAV_REQUIRE(next_ < gammas_.size(), "WeightedAccumulator: too many folds");
  FEDCAV_REQUIRE(update.weights.size() == acc_.size(),
                 "WeightedAccumulator: weight dimension mismatch");
  const double w = gammas_[next_++];
  const float* src = update.weights.data();
  for (std::size_t i = 0; i < acc_.size(); ++i) acc_[i] += w * static_cast<double>(src[i]);
}

nn::Weights WeightedAccumulator::finish() {
  FEDCAV_REQUIRE(!gammas_.empty(), "WeightedAccumulator: finish without begin");
  FEDCAV_REQUIRE(next_ == gammas_.size(),
                 "WeightedAccumulator: finish before all folds arrived");
  nn::Weights out(acc_.size());
  for (std::size_t i = 0; i < acc_.size(); ++i) out[i] = static_cast<float>(acc_[i]);
  std::vector<double>().swap(acc_);
  std::vector<double>().swap(gammas_);
  next_ = 0;
  return out;
}

void FedAvg::begin_aggregation(const nn::Weights& global,
                               const std::vector<ClientUpdate>& metadata) {
  acc_.begin(global.size(), aggregation_weights(metadata));
}

void FedAvg::accumulate(ClientUpdate update) { acc_.fold(update); }

nn::Weights FedAvg::finish_aggregation() { return acc_.finish(); }

}  // namespace fedcav::fl
