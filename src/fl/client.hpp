// Federated client: owns a private data shard and implements Algorithm 2
// (LocalUpdate) against a *borrowed* model replica.
//
// Per round the client (1) loads the downloaded global weights into the
// leased replica, (2) computes the inference loss f_i(w_t) of that
// untrained model on its local data, (3) runs E epochs of mini-batch SGD
// (optionally with FedProx's proximal pull toward the global weights),
// and (4) returns the trained weights, the inference loss, and its
// sample count.
//
// Clients do NOT own model replicas (PR 5): identity is the data shard,
// the batch-shuffle RNG stream, and FedCurv anchor state. Models come
// from the server's bounded nn::ReplicaPool, so simulation memory is
// O(K × model) with K ≈ thread-pool size instead of O(N_clients × model)
// (DESIGN.md §11). Any replica is equivalent: every entry point below
// starts from set_weights(global) and training state (optimizer, grads)
// never persists inside a pooled model between leases.
#pragma once

#include "src/comm/compression.hpp"
#include "src/data/dataset.hpp"
#include "src/fl/types.hpp"
#include "src/nn/model.hpp"
#include "src/tensor/serialize.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::fl {

class Client {
 public:
  Client(std::size_t id, data::Dataset local_data, Rng rng);

  std::size_t id() const { return id_; }
  const data::Dataset& local_data() const { return data_; }
  std::size_t num_samples() const { return data_.size(); }

  /// Algorithm 2 in full: inference loss then E epochs of SGD, on the
  /// borrowed `model`. `config` carries E, B, η and (for FedProx) μ.
  ClientUpdate local_update(nn::Model& model, const nn::Weights& global,
                            const LocalTrainConfig& config);

  /// The inference loss alone (phase ① of the round) — loads `global`
  /// into `model` first.
  double compute_inference_loss(nn::Model& model, const nn::Weights& global);

  /// Phase ②: training only, with the inference loss already measured in
  /// phase ① passed through into the returned update. Starts from
  /// set_weights(global), so it does not matter which replica computed
  /// the loss.
  ClientUpdate train_update(nn::Model& model, const nn::Weights& global,
                            const LocalTrainConfig& config, double inference_loss);

  /// Replace this client's data (dynamic-environment experiments inject
  /// fresh-class samples between phases).
  void set_local_data(data::Dataset new_data);

  /// RngMode::kDerived — reseed the batch-shuffle stream for one
  /// participation: Rng(derive_seed(root_seed, round, id, kClientTrain)).
  /// Both the in-process server and a remote worker call this right
  /// before train_update, so the shuffles a client performs in round r
  /// are a pure function of (seed, r, id) — identical no matter which
  /// process hosts the client or which earlier rounds it sat out.
  void reseed_for_round(std::uint64_t root_seed, std::size_t round) {
    rng_ = Rng(derive_seed(root_seed, static_cast<std::uint64_t>(round),
                           static_cast<std::uint64_t>(id_), RngStream::kClientTrain));
  }

  /// True once a curv_lambda run has stored a previous-optimum anchor.
  bool has_curvature_state() const { return !curv_anchor_.empty(); }

  /// Quantized-uplink codec with error feedback (Algorithm 2's report
  /// step under ServerConfig::quant): codes delta = trained − reference
  /// + residual, where the residual carries everything previous codes
  /// dropped (quantization error plus coordinates a keep_ratio < 1 left
  /// out), then stores the new round's coding error back into the
  /// residual. The residual updates at encode time — if the report is
  /// later lost in flight, that round's delta is gone (matching the
  /// dense protocol, where a lost report also folds as carried mass).
  comm::QuantizedDelta encode_quantized_update(const nn::Weights& trained,
                                               const nn::Weights& reference,
                                               comm::QuantMode mode,
                                               double keep_ratio);

  /// L2 norm of the pending error-feedback residual (0 before the first
  /// quantized participation).
  double quant_residual_norm() const;

  /// Serialize / restore the client's round-to-round mutable state: the
  /// batch-shuffle RNG stream and the FedCurv anchor/importance vectors
  /// (and, when `with_quant_residual`, the pending error-feedback
  /// residual — checkpoint v5+; older formats never carried it, so
  /// loading them leaves the residual empty). Model weights are not
  /// included — every participation overwrites them with the downloaded
  /// global model. load_state throws fedcav::Error when a non-empty
  /// anchor or residual does not match `expected_params` (the global
  /// model's parameter count).
  void save_state(ByteBuffer& buf, bool with_quant_residual = false) const;
  void load_state(ByteReader& reader, std::size_t expected_params,
                  bool with_quant_residual = false);

 private:
  /// Diagonal Fisher estimate of `model` on the local data (mean squared
  /// gradient over one pass).
  std::vector<float> estimate_fisher(nn::Model& model);

  std::size_t id_;
  data::Dataset data_;
  Rng rng_;
  // FedCurv-lite state: the client's previous local optimum and its
  // parameter importances, kept across participations.
  std::vector<float> curv_anchor_;
  std::vector<float> curv_importance_;
  // Error-feedback residual of the quantized uplink: what earlier codes
  // dropped, to be folded into the next delta (empty until the first
  // quantized participation).
  std::vector<float> quant_residual_;
};

}  // namespace fedcav::fl
