// Federated client: owns a private data shard and a model replica and
// implements Algorithm 2 (LocalUpdate).
//
// Per round the client (1) loads the downloaded global weights,
// (2) computes the inference loss f_i(w_t) of that *untrained* model on
// its local data, (3) runs E epochs of mini-batch SGD (optionally with
// FedProx's proximal pull toward the global weights), and (4) returns
// the trained weights, the inference loss, and its sample count.
//
// Each client owns an independent model replica, so a round's clients
// can train concurrently on the thread pool without sharing buffers.
#pragma once

#include <memory>

#include "src/data/dataset.hpp"
#include "src/fl/types.hpp"
#include "src/nn/optimizer.hpp"
#include "src/tensor/serialize.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::fl {

class Client {
 public:
  Client(std::size_t id, data::Dataset local_data, std::unique_ptr<nn::Model> model,
         Rng rng);

  std::size_t id() const { return id_; }
  const data::Dataset& local_data() const { return data_; }
  std::size_t num_samples() const { return data_.size(); }

  /// Algorithm 2. `config` carries E, B, η and (for FedProx) μ.
  ClientUpdate local_update(const nn::Weights& global, const LocalTrainConfig& config);

  /// The inference loss alone (phase ① of Fig. 3) — also used by the
  /// server-side overhead accounting bench.
  double compute_inference_loss(const nn::Weights& global);

  /// Replace this client's data (dynamic-environment experiments inject
  /// fresh-class samples between phases).
  void set_local_data(data::Dataset new_data);

  /// True once a curv_lambda run has stored a previous-optimum anchor.
  bool has_curvature_state() const { return !curv_anchor_.empty(); }

  /// Serialize / restore the client's round-to-round mutable state: the
  /// batch-shuffle RNG stream and the FedCurv anchor/importance vectors.
  /// (Model weights are not included — every participation overwrites
  /// them with the downloaded global model.) load_state throws
  /// fedcav::Error on anchor size mismatch with this client's model.
  void save_state(ByteBuffer& buf) const;
  void load_state(ByteReader& reader);

 private:
  /// Diagonal Fisher estimate of the current model on the local data
  /// (mean squared gradient over one pass).
  std::vector<float> estimate_fisher();

  std::size_t id_;
  data::Dataset data_;
  std::unique_ptr<nn::Model> model_;
  Rng rng_;
  // FedCurv-lite state: the client's previous local optimum and its
  // parameter importances, kept across participations.
  std::vector<float> curv_anchor_;
  std::vector<float> curv_importance_;
};

}  // namespace fedcav::fl
