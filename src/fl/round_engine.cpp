#include "src/fl/round_engine.hpp"

#include <algorithm>
#include <atomic>

#include "src/obs/metrics.hpp"
#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::fl {

namespace {
std::atomic<std::size_t> g_default_shards{1};
}  // namespace

std::size_t default_round_shards() {
  return g_default_shards.load(std::memory_order_relaxed);
}

void set_default_round_shards(std::size_t shards) {
  g_default_shards.store(shards == 0 ? 1 : shards, std::memory_order_relaxed);
}

ShardedRoundEngine::ShardedRoundEngine(ThreadPool& pool, std::size_t sampled,
                                       std::size_t shards)
    : pool_(pool), map_(sampled, shards), stats_(map_.shards()) {
  for (std::size_t s = 0; s < map_.shards(); ++s) {
    stats_[s].owned = map_.size(s);
  }
}

void ShardedRoundEngine::run_metadata(
    const std::function<void(std::size_t)>& exchange, bool serial) {
  const std::size_t n = map_.num_slots();
  if (serial) {
    for (std::size_t i = 0; i < n; ++i) exchange(i);
  } else {
    pool_.parallel_for(n, exchange);
  }
}

void ShardedRoundEngine::run_streaming(
    std::size_t first, std::size_t n, std::size_t window,
    const std::function<void(std::size_t)>& train,
    const std::function<void(std::size_t)>& fold,
    const std::function<std::size_t(std::size_t)>& slot_of, bool serial) {
  if (first >= n) return;
  Stopwatch stream_watch;
  // The fold wrapper runs on the pipeline's serial consume side: its
  // steps are totally ordered (handed off through the scheduler mutex),
  // so the ledger, timers, and span swap need no further locking.
  auto fold_step = [&](std::size_t i) {
    const std::size_t shard = map_.shard_of(slot_of(i));
    if (obs::enabled() && shard != span_shard_) {
      shard_span_.reset();
      shard_span_.emplace("agg.shard", "round.shard");
      shard_span_->arg("shard", static_cast<double>(shard));
      span_shard_ = shard;
    }
    Stopwatch fold_watch;
    fold(i);
    fold_seconds_ += fold_watch.seconds();
    stats_[shard].folds += 1;
  };
  if (serial) {
    for (std::size_t i = first; i < n; ++i) {
      train(i);
      fold_step(i);
    }
  } else {
    WaveScheduler::run(pool_, first, n, window, train, fold_step);
  }
  shard_span_.reset();
  span_shard_ = static_cast<std::size_t>(-1);
  stream_seconds_ += stream_watch.seconds();
}

void ShardedRoundEngine::note_dropout(std::size_t sampled_slot) {
  stats_[map_.shard_of(sampled_slot)].dropouts += 1;
}

void ShardedRoundEngine::note_straggler(std::size_t sampled_slot) {
  stats_[map_.shard_of(sampled_slot)].straggler_drops += 1;
}

void ShardedRoundEngine::note_upload_failure(std::size_t sampled_slot) {
  stats_[map_.shard_of(sampled_slot)].upload_failures += 1;
}

void ShardedRoundEngine::check_accounting(std::size_t participants,
                                          std::size_t dropouts,
                                          std::size_t straggler_drops) const {
  std::size_t p = 0, d = 0, s = 0;
  for (std::size_t i = 0; i < stats_.size(); ++i) {
    const ShardRoundStats& st = stats_[i];
    FEDCAV_REQUIRE(st.dropouts + st.straggler_drops <= st.owned,
                   "ShardedRoundEngine: shard ledger overflows its slice");
    // participants() is owned - dropouts - stragglers by construction;
    // the real check is that every booked loss lands in the owner shard
    // and the shard slices sum to the round the server saw.
    p += st.participants();
    d += st.dropouts;
    s += st.straggler_drops;
  }
  FEDCAV_REQUIRE(p == participants && d == dropouts && s == straggler_drops,
                 "ShardedRoundEngine: shard ledger does not sum to the round "
                 "accounting");
}

void ShardedRoundEngine::publish_metrics() const {
  if (!obs::enabled()) return;
  auto& reg = obs::registry();
  reg.gauge("agg.shard.count").set(static_cast<double>(map_.shards()));
  std::size_t owned_min = stats_.empty() ? 0 : stats_.front().owned;
  std::size_t owned_max = owned_min;
  std::uint64_t folds = 0;
  for (const ShardRoundStats& st : stats_) {
    owned_min = std::min(owned_min, st.owned);
    owned_max = std::max(owned_max, st.owned);
    folds += st.folds;
    reg.histogram("agg.shard.participants")
        .observe(static_cast<double>(st.participants()));
  }
  reg.gauge("agg.shard.owned_min").set(static_cast<double>(owned_min));
  reg.gauge("agg.shard.owned_max").set(static_cast<double>(owned_max));
  if (folds > 0) reg.counter("agg.shard.folds").add(folds);
}

}  // namespace fedcav::fl
