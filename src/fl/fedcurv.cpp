#include "src/fl/fedcurv.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::fl {

FedCurvLite::FedCurvLite(float lambda) : lambda_(lambda) {
  FEDCAV_REQUIRE(lambda > 0.0f, "FedCurvLite: lambda must be positive");
}

void FedCurvLite::apply_local_overrides(LocalTrainConfig& config) const {
  config.curv_lambda = lambda_;
}

std::string FedCurvLite::name() const {
  return "FedCurvLite(lambda=" + format_double(static_cast<double>(lambda_), 2) + ")";
}

}  // namespace fedcav::fl
