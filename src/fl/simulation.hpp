// High-level simulation builder — the library's main entry point.
//
// A SimulationConfig names a synthetic dataset, a model, a partition
// scheme and an aggregation strategy; build_server() wires up clients,
// partitions, the comm fabric and (optionally) an adversary, returning a
// ready-to-run Server. Examples and every bench binary go through this.
#pragma once

#include <memory>
#include <string>

#include "src/data/partition.hpp"
#include "src/data/synthetic.hpp"
#include "src/fl/centralized.hpp"
#include "src/fl/server.hpp"
#include "src/nn/zoo.hpp"

namespace fedcav::fl {

struct SimulationConfig {
  /// Synthetic corpus: "digits" | "fashion" | "cifar".
  std::string dataset = "digits";
  /// Model: "mlp" | "lenet5" | "cnn9" | "resnet".
  std::string model = "lenet5";
  /// Strategy: "fedavg" | "fedprox" | "fedcav" | "fedcav-noclip".
  std::string strategy = "fedcav";

  std::size_t train_samples_per_class = 60;
  std::size_t test_samples_per_class = 20;

  data::PartitionConfig partition;
  ServerConfig server;
  std::uint64_t seed = 2021;

  /// Attack wiring (empty = no adversary): "replacement" | "labelflip" |
  /// "lossinflation" | "byzantine".
  std::string attack;
  std::set<std::size_t> attack_rounds;
  double attack_poison_fraction = 1.0;

  void validate() const;
};

/// Everything a built simulation owns besides the Server.
struct Simulation {
  std::unique_ptr<Server> server;
  data::Dataset train;  // the full training corpus (pre-partition copy)
  data::Dataset test;
  data::Partition partition;
};

/// Generate data, partition it, build clients + server (+ adversary).
Simulation build_simulation(const SimulationConfig& config);

/// Matching centralized baseline: same corpus, same model, one node.
std::unique_ptr<CentralizedTrainer> build_centralized(const SimulationConfig& config);

}  // namespace fedcav::fl
