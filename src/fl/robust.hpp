// Byzantine-robust aggregation rules (the §2 threat-model baselines).
//
// FedCav's detector handles model replacement after the fact; these
// rules bound the influence of arbitrary updates inside the aggregation
// itself, at the cost of ignoring the contribution signal:
//  * CoordinateMedian — coordinate-wise median (Blanchard et al. lineage).
//  * TrimmedMean      — drop the β largest and smallest values per
//    coordinate, average the rest.
//  * Krum             — select the single update whose summed squared
//    distance to its n−f−2 nearest neighbours is smallest.
#pragma once

#include "src/fl/strategy.hpp"

namespace fedcav::fl {

class CoordinateMedian : public AggregationStrategy {
 public:
  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override { return "CoordinateMedian"; }
};

class TrimmedMean : public AggregationStrategy {
 public:
  /// `trim_fraction` β of each tail is discarded per coordinate;
  /// β must leave at least one value (2β < 1).
  explicit TrimmedMean(double trim_fraction = 0.2);

  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override;

  double trim_fraction() const { return trim_fraction_; }

 private:
  double trim_fraction_;
};

class Krum : public AggregationStrategy {
 public:
  /// `max_byzantine` is the f the selection tolerates; requires
  /// n >= f + 3 participants to be meaningful (falls back to the
  /// closest-pair choice when the round is smaller).
  explicit Krum(std::size_t max_byzantine = 1);

  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const override;
  std::string name() const override;

  /// Index (into the round's update list) Krum would select.
  std::size_t select(const std::vector<ClientUpdate>& updates) const;

 private:
  std::size_t max_byzantine_;
};

}  // namespace fedcav::fl
