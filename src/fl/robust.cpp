#include "src/fl/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::fl {

namespace {

void require_updates(const std::vector<ClientUpdate>& updates, const char* who) {
  FEDCAV_REQUIRE(!updates.empty(), std::string(who) + ": no updates");
  const std::size_t dim = updates.front().weights.size();
  for (const auto& u : updates) {
    FEDCAV_REQUIRE(u.weights.size() == dim, std::string(who) + ": dimension mismatch");
  }
}

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

}  // namespace

nn::Weights CoordinateMedian::aggregate(const nn::Weights& global,
                                        const std::vector<ClientUpdate>& updates) {
  (void)global;
  require_updates(updates, "CoordinateMedian");
  const std::size_t dim = updates.front().weights.size();
  const std::size_t n = updates.size();
  nn::Weights out(dim);
  std::vector<float> column(n);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t u = 0; u < n; ++u) column[u] = updates[u].weights[d];
    auto mid = column.begin() + static_cast<std::ptrdiff_t>(n / 2);
    std::nth_element(column.begin(), mid, column.end());
    if (n % 2 == 1) {
      out[d] = *mid;
    } else {
      // Even cohort: average the two central order statistics.
      const float upper = *mid;
      const float lower = *std::max_element(column.begin(), mid);
      out[d] = 0.5f * (lower + upper);
    }
  }
  return out;
}

std::vector<double> CoordinateMedian::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  require_updates(updates, "CoordinateMedian");
  return uniform_weights(updates.size());
}

TrimmedMean::TrimmedMean(double trim_fraction) : trim_fraction_(trim_fraction) {
  FEDCAV_REQUIRE(trim_fraction >= 0.0 && trim_fraction < 0.5,
                 "TrimmedMean: trim fraction must be in [0, 0.5)");
}

nn::Weights TrimmedMean::aggregate(const nn::Weights& global,
                                   const std::vector<ClientUpdate>& updates) {
  (void)global;
  require_updates(updates, "TrimmedMean");
  const std::size_t dim = updates.front().weights.size();
  const std::size_t n = updates.size();
  const std::size_t trim = static_cast<std::size_t>(
      std::floor(trim_fraction_ * static_cast<double>(n)));
  FEDCAV_CHECK(2 * trim < n, "TrimmedMean: trimming would drop every update");

  nn::Weights out(dim);
  std::vector<float> column(n);
  for (std::size_t d = 0; d < dim; ++d) {
    for (std::size_t u = 0; u < n; ++u) column[u] = updates[u].weights[d];
    std::sort(column.begin(), column.end());
    double acc = 0.0;
    for (std::size_t u = trim; u < n - trim; ++u) acc += static_cast<double>(column[u]);
    out[d] = static_cast<float>(acc / static_cast<double>(n - 2 * trim));
  }
  return out;
}

std::vector<double> TrimmedMean::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  require_updates(updates, "TrimmedMean");
  return uniform_weights(updates.size());
}

std::string TrimmedMean::name() const {
  return "TrimmedMean(beta=" + format_double(trim_fraction_, 2) + ")";
}

Krum::Krum(std::size_t max_byzantine) : max_byzantine_(max_byzantine) {}

std::size_t Krum::select(const std::vector<ClientUpdate>& updates) const {
  require_updates(updates, "Krum");
  const std::size_t n = updates.size();
  if (n == 1) return 0;

  // Pairwise squared distances.
  std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      double acc = 0.0;
      const float* a = updates[i].weights.data();
      const float* b = updates[j].weights.data();
      for (std::size_t d = 0; d < updates[i].weights.size(); ++d) {
        const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
        acc += diff * diff;
      }
      dist[i][j] = acc;
      dist[j][i] = acc;
    }
  }

  // Score: sum of the n-f-2 smallest distances to others (at least 1).
  const std::size_t keep =
      n > max_byzantine_ + 2 ? n - max_byzantine_ - 2 : std::size_t{1};
  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  std::vector<double> row;
  for (std::size_t i = 0; i < n; ++i) {
    row.clear();
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) row.push_back(dist[i][j]);
    }
    std::sort(row.begin(), row.end());
    double score = 0.0;
    for (std::size_t k = 0; k < std::min(keep, row.size()); ++k) score += row[k];
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

nn::Weights Krum::aggregate(const nn::Weights& global,
                            const std::vector<ClientUpdate>& updates) {
  (void)global;
  return updates[select(updates)].weights;
}

std::vector<double> Krum::aggregation_weights(
    const std::vector<ClientUpdate>& updates) const {
  std::vector<double> weights(updates.size(), 0.0);
  weights[select(updates)] = 1.0;
  return weights;
}

std::string Krum::name() const {
  return "Krum(f=" + std::to_string(max_byzantine_) + ")";
}

}  // namespace fedcav::fl
