#include "src/fl/centralized.hpp"

#include <algorithm>
#include <numeric>

#include "src/metrics/evaluation.hpp"
#include "src/nn/optimizer.hpp"
#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::fl {

CentralizedTrainer::CentralizedTrainer(std::unique_ptr<nn::Model> model,
                                       data::Dataset train, data::Dataset test,
                                       LocalTrainConfig config, Rng rng)
    : model_(std::move(model)),
      train_(std::move(train)),
      test_(std::move(test)),
      config_(config),
      rng_(rng) {
  FEDCAV_REQUIRE(model_ != nullptr, "CentralizedTrainer: null model");
  FEDCAV_REQUIRE(!train_.empty(), "CentralizedTrainer: empty training set");
  FEDCAV_REQUIRE(!test_.empty(), "CentralizedTrainer: empty test set");
}

metrics::RoundRecord CentralizedTrainer::run_round(std::size_t epochs_per_round) {
  FEDCAV_REQUIRE(epochs_per_round > 0, "CentralizedTrainer: zero epochs");
  ++round_;
  Stopwatch watch;

  nn::SgdConfig sgd_config;
  sgd_config.lr = config_.lr;
  sgd_config.momentum = config_.momentum;
  sgd_config.weight_decay = config_.weight_decay;
  nn::Sgd optimizer(sgd_config);

  std::vector<std::size_t> order(train_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::size_t> labels;
  for (std::size_t epoch = 0; epoch < epochs_per_round; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      const std::size_t end = std::min(order.size(), begin + config_.batch_size);
      Tensor batch = train_.make_batch(std::span(order.data() + begin, end - begin), &labels);
      model_->forward_backward(batch, labels);
      optimizer.step(*model_);
    }
  }

  const metrics::EvalResult eval = metrics::evaluate(*model_, test_);
  metrics::RoundRecord record;
  record.round = round_;
  record.test_accuracy = eval.accuracy;
  record.test_loss = eval.mean_loss;
  record.participants = 1;
  record.wall_seconds = watch.seconds();
  history_.add(record);
  return record;
}

void CentralizedTrainer::run(std::size_t rounds, std::size_t epochs_per_round) {
  for (std::size_t r = 0; r < rounds; ++r) run_round(epochs_per_round);
}

}  // namespace fedcav::fl
