// Sharded streaming round engine (DESIGN.md §15).
//
// A round's sampled cohort is split by a ShardMap into S contiguous
// shards. Each shard independently streams its wave of participants —
// metadata phase ① then streaming phase ② — over one bounded pipeline
// (WaveScheduler): training runs concurrently inside the window while
// the fold side advances strictly in ascending global slot order. The
// aggregation accumulator is CHAINED through the shards in ascending
// shard order (shard s's partial fold continues from shard s−1's
// accumulator state), which is what makes the reduction bit-identical
// to the single-shard path at any shard count: double addition is not
// associative, so independent per-shard partial sums combined at the
// end would NOT reproduce the flat fold — a serial chain over the same
// ascending slot sequence provably does.
//
// The engine also owns the per-shard ledger: every sampled slot's fate
// (participant, dropout, straggler drop, upload failure, fold) is
// booked against its owning shard, and `check_accounting` proves
//     owned == participants + dropouts + straggler_drops
// for every shard individually and for the totals — the round invariant
// of DESIGN.md §8, now enforced at shard granularity.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "src/fl/wave_scheduler.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::fl {

/// Process-wide default shard count, used when ServerConfig::shards is 0
/// (auto). 1 unless overridden — the FEDCAV_TEST_SHARDS gtest hook sets
/// it so whole suites replay under a fixed shard fan-out.
std::size_t default_round_shards();
/// Override the process default (0 resets to 1).
void set_default_round_shards(std::size_t shards);

/// One shard's slice of the round ledger.
struct ShardRoundStats {
  std::size_t owned = 0;         // sampled slots this shard owns
  std::size_t dropouts = 0;      // phase-① failures
  std::size_t straggler_drops = 0;
  std::size_t upload_failures = 0;  // phase-② γ-mass carry-forwards
  std::size_t folds = 0;            // serial consume steps driven
  std::size_t participants() const {
    return owned - dropouts - straggler_drops;
  }
};

class ShardedRoundEngine {
 public:
  /// `sampled` is the round's cohort size; `shards` the requested shard
  /// count (clamped by the ShardMap to [1, max(1, sampled)]).
  ShardedRoundEngine(ThreadPool& pool, std::size_t sampled, std::size_t shards);

  const ShardMap& map() const { return map_; }
  std::size_t shards() const { return map_.shards(); }

  /// Phase ①: run `exchange(slot)` for every sampled slot. Parallel in
  /// fixed slots (results land in pre-sized outputs, so downstream order
  /// is scheduling-independent); `serial` forces the caller-thread loop
  /// remote mode needs (a SocketTransport is single-threaded).
  void run_metadata(const std::function<void(std::size_t)>& exchange,
                    bool serial);

  /// Phase ②: stream survivor slots [first, n) through the pipeline.
  /// `train(i)` may run concurrently, at most `window` slots ahead of
  /// the fold cursor; `fold(i)` runs strictly serially in ascending i —
  /// the shard-chained reduction. `slot_of(i)` maps a survivor slot back
  /// to its sampled slot (shard attribution: survivors keep cohort
  /// order, so each shard's survivors stay contiguous). `serial` forces
  /// the produce/consume loop onto the caller (remote mode — the fold
  /// does no transport work, so the wire op sequence is unchanged).
  void run_streaming(std::size_t first, std::size_t n, std::size_t window,
                     const std::function<void(std::size_t)>& train,
                     const std::function<void(std::size_t)>& fold,
                     const std::function<std::size_t(std::size_t)>& slot_of,
                     bool serial);

  /// Ledger entries, booked by SAMPLED slot index.
  void note_dropout(std::size_t sampled_slot);
  void note_straggler(std::size_t sampled_slot);
  void note_upload_failure(std::size_t sampled_slot);

  const std::vector<ShardRoundStats>& stats() const { return stats_; }
  /// Wall time spent inside fold callbacks (serial side) and inside
  /// run_streaming overall, summed across calls. The difference is the
  /// training wall time the pipeline overlapped with folding.
  double fold_seconds() const { return fold_seconds_; }
  double stream_seconds() const { return stream_seconds_; }

  /// FEDCAV_REQUIRE the per-shard invariant owned == participants +
  /// dropouts + straggler_drops for every shard, and that the shard
  /// ledgers sum to the round totals the server computed independently.
  void check_accounting(std::size_t participants, std::size_t dropouts,
                        std::size_t straggler_drops) const;

  /// Emit the round's `agg.shard.*` metrics (aggregate across shards —
  /// per-shard detail lives in the span trace, not in metric names).
  void publish_metrics() const;

 private:
  ThreadPool& pool_;
  ShardMap map_;
  std::vector<ShardRoundStats> stats_;
  double fold_seconds_ = 0.0;
  double stream_seconds_ = 0.0;
  // Per-shard trace span, swapped at shard boundaries by the serial fold
  // side (no synchronization needed: consume steps are totally ordered).
  std::optional<obs::Span> shard_span_;
  std::size_t span_shard_ = static_cast<std::size_t>(-1);
};

}  // namespace fedcav::fl
