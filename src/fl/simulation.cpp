#include "src/fl/simulation.hpp"

#include <algorithm>
#include <cmath>

#include "src/attack/loss_inflation.hpp"
#include "src/attack/model_replacement.hpp"
#include "src/utils/error.hpp"

namespace fedcav::fl {

void SimulationConfig::validate() const {
  FEDCAV_REQUIRE(train_samples_per_class >= 1, "SimulationConfig: no training samples");
  FEDCAV_REQUIRE(test_samples_per_class >= 1, "SimulationConfig: no test samples");
  if (!attack.empty()) {
    FEDCAV_REQUIRE(!attack_rounds.empty(),
                   "SimulationConfig: attack set but no attack_rounds");
  }
  FEDCAV_REQUIRE(attack_poison_fraction >= 0.0 && attack_poison_fraction <= 1.0,
                 "SimulationConfig: poison fraction out of range");
  // Fault plans are validated against the fabric size (clients + server)
  // here so a bad --crash rank fails before any data is generated.
  server.network.faults.validate(partition.num_clients + 1);
}

namespace {

std::shared_ptr<attack::Adversary> build_adversary(const SimulationConfig& config,
                                                   const data::Dataset& train,
                                                   const data::Partition& partition,
                                                   const nn::ModelBuilder& builder,
                                                   Rng& rng) {
  // The adversary trains its malicious model on a compromised client's
  // shard (the first partition slot — the same client the server's
  // attack hook hijacks).
  data::Dataset shard = train.subset(partition.front());
  LocalTrainConfig attacker_train = config.server.local;

  if (config.attack == "replacement") {
    attack::ModelReplacementConfig rc;
    rc.poison_fraction = config.attack_poison_fraction;
    Rng model_rng = rng.fork();
    return std::make_shared<attack::ModelReplacementAdversary>(
        std::move(shard), builder(model_rng), attacker_train, rc, rng.fork());
  }
  if (config.attack == "labelflip") {
    Rng flip_rng = rng.fork();
    data::Dataset poisoned =
        attack::flip_labels(shard, config.attack_poison_fraction, flip_rng);
    Rng model_rng = rng.fork();
    return std::make_shared<attack::LabelFlipAdversary>(
        std::move(poisoned), builder(model_rng), attacker_train, rng.fork());
  }
  if (config.attack == "lossinflation") {
    return std::make_shared<attack::LossInflationAdversary>();
  }
  if (config.attack == "byzantine") {
    return std::make_shared<attack::ByzantineAdversary>();
  }
  throw Error("build_simulation: unknown attack '" + config.attack + "'");
}

}  // namespace

Simulation build_simulation(const SimulationConfig& config) {
  config.validate();
  Rng rng(config.seed);

  const data::SynthConfig synth = data::synth_config_by_name(config.dataset, config.seed);
  const data::SynthGenerator generator(synth);
  Rng data_rng = rng.fork();
  Simulation sim;
  if (config.partition.scheme == data::PartitionScheme::kNonIidImbalanced &&
      config.partition.sigma > 0.0) {
    // The paper's σ skews the *global* class sizes as well as each
    // client's two-class split (§5.1.3: "the size of each class is
    // different and the distribution of each class over the clients is
    // also different"). Draw per-class counts ~ N(mean, cv·mean).
    const double cv = data::sigma_to_cv(config.partition.sigma);
    const double mean = static_cast<double>(config.train_samples_per_class);
    std::vector<double> raw(synth.num_classes);
    double raw_total = 0.0;
    for (auto& r : raw) {
      r = std::max(2.0, mean * (1.0 + cv * data_rng.normal()));
      raw_total += r;
    }
    // Renormalize so σ only skews the class *mix*, never the corpus
    // size — otherwise data volume confounds the imbalance effect.
    const double target_total = mean * static_cast<double>(synth.num_classes);
    std::vector<std::size_t> counts(synth.num_classes);
    for (std::size_t c = 0; c < counts.size(); ++c) {
      counts[c] = static_cast<std::size_t>(
          std::max(2.0, std::round(raw[c] * target_total / raw_total)));
    }
    sim.train = generator.generate_with_counts(counts, data_rng);
  } else {
    sim.train = generator.generate_balanced(config.train_samples_per_class, data_rng);
  }
  // Balanced test set, disjoint RNG stream from training data.
  Rng test_rng = rng.fork();
  sim.test = generator.generate_balanced(config.test_samples_per_class, test_rng);

  data::PartitionConfig part = config.partition;
  part.seed = rng.fork().next_u64();
  sim.partition = data::make_partition(sim.train, part);

  const nn::ModelBuilder builder = nn::model_builder(config.model);

  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(sim.partition.size());
  for (std::size_t k = 0; k < sim.partition.size(); ++k) {
    // Clients no longer own model replicas (they lease from the server's
    // bounded pool), but the fork that used to seed each client's model
    // init is still drawn so every downstream RNG stream — and therefore
    // every golden pin — stays bit-identical to pre-pool runs.
    (void)rng.fork();
    clients.push_back(
        std::make_unique<Client>(k, sim.train.subset(sim.partition[k]), rng.fork()));
  }

  Rng global_rng(config.seed ^ 0xabcdef12345ULL);
  auto global_model = builder(global_rng);
  auto strategy = make_strategy(config.strategy);

  sim.server = std::make_unique<Server>(std::move(global_model), std::move(strategy),
                                        std::move(clients), sim.test, config.server);

  if (!config.attack.empty()) {
    auto adversary = build_adversary(config, sim.train, sim.partition, builder, rng);
    sim.server->set_adversary(std::move(adversary), config.attack_rounds);
  }
  return sim;
}

std::unique_ptr<CentralizedTrainer> build_centralized(const SimulationConfig& config) {
  config.validate();
  Rng rng(config.seed);
  const data::SynthConfig synth = data::synth_config_by_name(config.dataset, config.seed);
  const data::SynthGenerator generator(synth);
  Rng data_rng = rng.fork();
  data::Dataset train = generator.generate_balanced(config.train_samples_per_class, data_rng);
  Rng test_rng = rng.fork();
  data::Dataset test = generator.generate_balanced(config.test_samples_per_class, test_rng);

  Rng model_rng(config.seed ^ 0xabcdef12345ULL);
  auto model = nn::model_builder(config.model)(model_rng);
  return std::make_unique<CentralizedTrainer>(std::move(model), std::move(train),
                                              std::move(test), config.server.local,
                                              rng.fork());
}

}  // namespace fedcav::fl
