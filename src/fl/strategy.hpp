// Aggregation strategy interface.
//
// A strategy turns the round's client updates into the next global
// weight vector. It may also prescribe local-objective modifications
// (FedProx's proximal term) through local_config_overrides().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/fl/types.hpp"

namespace fedcav::fl {

class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  /// Compute w_{t+1} from the current global w_t and the participants'
  /// updates. `updates` is non-empty; all weight vectors have the same
  /// size as `global`.
  virtual nn::Weights aggregate(const nn::Weights& global,
                                const std::vector<ClientUpdate>& updates) = 0;

  /// The aggregation weight γ_i the strategy would assign each update —
  /// exposed so attacks (Eq. 10-11) and tests can introspect.
  virtual std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const = 0;

  /// Let the strategy adjust local training (e.g. set prox_mu).
  virtual void apply_local_overrides(LocalTrainConfig& config) const { (void)config; }

  virtual std::string name() const = 0;

  // --- Incremental aggregation -------------------------------------
  // The server drives one round as
  //   begin_aggregation(global, metadata) → accumulate(u_0) …
  //   accumulate(u_{n-1}) → finish_aggregation()
  // where `metadata` holds every participant's scalars (client_id,
  // num_samples, inference_loss; weight vectors EMPTY) in exactly the
  // order accumulate() will later deliver the full updates. Strategies
  // whose γ depends only on those scalars can fold each update into a
  // running accumulator and report streaming_aggregation() == true, so
  // the server frees each update immediately and a round's peak memory
  // is independent of cohort size (DESIGN.md §11).
  //
  // The defaults below buffer every update and delegate to aggregate(),
  // which keeps order-statistic strategies (median/trimmed-mean/Krum)
  // and user-defined subclasses bit-exact with the pre-streaming
  // behavior — at the old O(n × model) cost.

  /// Start a round. `metadata` must have one entry per future
  /// accumulate() call, same order.
  virtual void begin_aggregation(const nn::Weights& global,
                                 const std::vector<ClientUpdate>& metadata);
  /// Fold the next participant's full update (called serially, in the
  /// order fixed by begin_aggregation's metadata).
  virtual void accumulate(ClientUpdate update);
  /// Produce w_{t+1} and release any per-round state.
  virtual nn::Weights finish_aggregation();
  /// True when accumulate() folds immediately instead of buffering.
  virtual bool streaming_aggregation() const { return false; }

 private:
  // Buffered state for the default (non-streaming) incremental path.
  nn::Weights buffered_global_;
  std::vector<ClientUpdate> buffered_updates_;
};

/// Build "fedavg" | "fedprox" | "fedcav" | "fedcav-noclip" with default
/// hyperparameters. Throws fedcav::Error on unknown names.
std::unique_ptr<AggregationStrategy> make_strategy(const std::string& name);

}  // namespace fedcav::fl
