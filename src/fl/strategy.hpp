// Aggregation strategy interface.
//
// A strategy turns the round's client updates into the next global
// weight vector. It may also prescribe local-objective modifications
// (FedProx's proximal term) through local_config_overrides().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/fl/types.hpp"

namespace fedcav::fl {

class AggregationStrategy {
 public:
  virtual ~AggregationStrategy() = default;

  /// Compute w_{t+1} from the current global w_t and the participants'
  /// updates. `updates` is non-empty; all weight vectors have the same
  /// size as `global`.
  virtual nn::Weights aggregate(const nn::Weights& global,
                                const std::vector<ClientUpdate>& updates) = 0;

  /// The aggregation weight γ_i the strategy would assign each update —
  /// exposed so attacks (Eq. 10-11) and tests can introspect.
  virtual std::vector<double> aggregation_weights(
      const std::vector<ClientUpdate>& updates) const = 0;

  /// Let the strategy adjust local training (e.g. set prox_mu).
  virtual void apply_local_overrides(LocalTrainConfig& config) const { (void)config; }

  virtual std::string name() const = 0;
};

/// Build "fedavg" | "fedprox" | "fedcav" | "fedcav-noclip" with default
/// hyperparameters. Throws fedcav::Error on unknown names.
std::unique_ptr<AggregationStrategy> make_strategy(const std::string& name);

}  // namespace fedcav::fl
