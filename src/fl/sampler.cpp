#include "src/fl/sampler.hpp"

#include <algorithm>
#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::fl {

SamplerPolicy parse_sampler_policy(const std::string& name) {
  if (name == "uniform") return SamplerPolicy::kUniform;
  if (name == "roundrobin") return SamplerPolicy::kRoundRobin;
  if (name == "lossbiased") return SamplerPolicy::kLossBiased;
  throw Error("parse_sampler_policy: unknown policy '" + name + "'");
}

std::string to_string(SamplerPolicy policy) {
  switch (policy) {
    case SamplerPolicy::kUniform: return "uniform";
    case SamplerPolicy::kRoundRobin: return "roundrobin";
    case SamplerPolicy::kLossBiased: return "lossbiased";
  }
  return "?";
}

ParticipantSampler::ParticipantSampler(SamplerPolicy policy, std::size_t num_clients,
                                       double sample_ratio, std::uint64_t seed)
    : policy_(policy), num_clients_(num_clients), rng_(seed) {
  FEDCAV_REQUIRE(num_clients >= 1, "ParticipantSampler: no clients");
  FEDCAV_REQUIRE(sample_ratio > 0.0 && sample_ratio <= 1.0,
                 "ParticipantSampler: sample_ratio must be in (0, 1]");
  cohort_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(sample_ratio * static_cast<double>(num_clients))));
  last_loss_.assign(num_clients, 0.0);
  has_loss_.assign(num_clients, false);
}

std::vector<std::size_t> ParticipantSampler::sample() {
  std::vector<std::size_t> picked;
  switch (policy_) {
    case SamplerPolicy::kUniform:
      picked = rng_.sample_without_replacement(num_clients_, cohort_);
      break;
    case SamplerPolicy::kRoundRobin: {
      picked.reserve(cohort_);
      for (std::size_t i = 0; i < cohort_; ++i) {
        picked.push_back((cursor_ + i) % num_clients_);
      }
      cursor_ = (cursor_ + cohort_) % num_clients_;
      break;
    }
    case SamplerPolicy::kLossBiased: {
      // Weight ∝ exp(loss) for reported clients; unreported clients get
      // the mean weight so newcomers are not starved.
      std::vector<double> weights(num_clients_);
      double mean_loss = 0.0;
      std::size_t reported = 0;
      for (std::size_t i = 0; i < num_clients_; ++i) {
        if (has_loss_[i]) {
          mean_loss += last_loss_[i];
          ++reported;
        }
      }
      mean_loss = reported > 0 ? mean_loss / static_cast<double>(reported) : 0.0;
      for (std::size_t i = 0; i < num_clients_; ++i) {
        const double loss = has_loss_[i] ? last_loss_[i] : mean_loss;
        weights[i] = std::exp(std::min(loss, 30.0));  // bounded against overflow
      }
      // Sequential weighted sampling without replacement.
      picked.reserve(cohort_);
      for (std::size_t k = 0; k < cohort_; ++k) {
        const std::size_t idx = rng_.categorical(weights);
        picked.push_back(idx);
        weights[idx] = 0.0;
      }
      break;
    }
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

void ParticipantSampler::save_state(ByteBuffer& buf) const {
  write_rng_state(buf, rng_.state());
  write_u64(buf, cursor_);
  write_u64(buf, num_clients_);
  for (std::size_t i = 0; i < num_clients_; ++i) {
    write_f64(buf, last_loss_[i]);
    write_u8(buf, has_loss_[i] ? 1 : 0);
  }
}

void ParticipantSampler::load_state(ByteReader& reader) {
  rng_.set_state(read_rng_state(reader));
  cursor_ = reader.read_u64();
  const std::uint64_t n = reader.read_u64();
  FEDCAV_REQUIRE(n == num_clients_,
                 "ParticipantSampler::load_state: client count mismatch");
  for (std::size_t i = 0; i < num_clients_; ++i) {
    last_loss_[i] = reader.read_f64();
    has_loss_[i] = reader.read_u8() != 0;
  }
}

void ParticipantSampler::observe_losses(const std::vector<std::size_t>& participants,
                                        const std::vector<double>& losses) {
  FEDCAV_REQUIRE(participants.size() == losses.size(),
                 "ParticipantSampler::observe_losses: size mismatch");
  for (std::size_t i = 0; i < participants.size(); ++i) {
    FEDCAV_REQUIRE(participants[i] < num_clients_,
                   "ParticipantSampler::observe_losses: client out of range");
    last_loss_[participants[i]] = losses[i];
    has_loss_[participants[i]] = true;
  }
}

}  // namespace fedcav::fl
