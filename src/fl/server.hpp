// Federated server: Algorithm 1's outer loop with the Fig. 3 workflow —
// participant sampling, global-model broadcast, parallel local training,
// anomaly detection with model reverse, contribution-aware aggregation,
// and per-round evaluation/accounting.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "src/attack/adversary.hpp"
#include "src/comm/compression.hpp"
#include "src/comm/network.hpp"
#include "src/core/detector.hpp"
#include "src/data/dataset.hpp"
#include "src/fl/client.hpp"
#include "src/fl/sampler.hpp"
#include "src/fl/strategy.hpp"
#include "src/nn/replica_pool.hpp"
#include "src/nn/schedule.hpp"
#include "src/metrics/history.hpp"
#include "src/utils/error.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::fl {

struct ServerConfig {
  /// Fraction q of clients sampled each round (paper: 0.3).
  double sample_ratio = 0.3;
  /// How the round's cohort is chosen (paper: uniform).
  SamplerPolicy sampler = SamplerPolicy::kUniform;
  LocalTrainConfig local;
  /// Probability a sampled participant fails to report (straggler /
  /// connection loss). With the default quorum of 1, at least one
  /// update always survives (legacy behavior); a quorum > 1 lets every
  /// report drop and the round skip instead. The paper's dynamic view
  /// ("clients dynamically participating ... at any time", §3.1)
  /// motivates exercising aggregation under partial cohorts.
  double straggler_drop_prob = 0.0;
  /// Minimum surviving updates required to aggregate. Below this the
  /// round is skipped: the global model is carried forward unchanged
  /// and the record is marked `skipped`.
  std::size_t min_aggregate_clients = 1;
  /// Bounded NACK-and-retry for lost/corrupt messages on a faulty
  /// fabric: per message, up to max_retries retransmissions, each
  /// preceded by retry_backoff_s * 2^attempt seconds of simulated
  /// backoff charged to the retransmitting link.
  std::size_t max_retries = 3;
  double retry_backoff_s = 0.05;
  /// Simulated-time budget for a client's FULL exchange: downlink
  /// attempts, NACK wire time, backoffs, metadata uplink, and the phase-②
  /// report are all charged against it. A participant exceeding it during
  /// phase ① becomes a dropout; during phase ② its report is discarded
  /// as an upload failure (γ mass carried by the unchanged global
  /// weights). 0 disables.
  double uplink_deadline_s = 0.0;
  /// Enable the §4.4 detector + model reverse.
  bool detection_enabled = false;
  core::DetectorConfig detector;
  std::size_t eval_batch_size = 64;
  std::uint64_t seed = 11;
  /// Route weights through the comm fabric (exact byte metering). Off
  /// saves two serialization passes per participant per round.
  bool use_network = true;
  comm::NetworkConfig network;
  /// Remote mode only (set_transport with remote = true): wall-clock
  /// budget to hear back from a live worker before the server gives up
  /// on it (dropout in phase ①, upload failure in phase ②). A worker
  /// whose connection dies is detected immediately via peer_closed();
  /// this timeout only catches workers that hang without disconnecting.
  double remote_recv_timeout_s = 30.0;
  /// Lossy wire codec for model traffic (DESIGN.md §13). kNone keeps the
  /// dense f32 protocol. fp16/int8 quantize the broadcast once per round
  /// — the server adopts its own dequantized broadcast as the round's
  /// reference w̃_t, so both endpoints train and diff against the
  /// identical float image — and carry the uplink as a quantized weight
  /// *delta* with per-client error feedback (the residual each code drops
  /// is added into the client's next delta). Applied identically with
  /// use_network = false, so accuracy effects are measurable without the
  /// fabric; only the byte metering needs the network.
  comm::QuantMode quant = comm::QuantMode::kNone;
  /// Uplink top-k composition: quantize only this fraction of the
  /// delta's largest-|v| coordinates (bitmap-coded presence, see
  /// compression.hpp). 1 keeps every coordinate. Ignored when quant is
  /// kNone; the downlink is always dense (a sparse broadcast would
  /// silently zero most of the model).
  double quant_keep = 1.0;
  /// Turn on the obs subsystem (span tracing + metrics registry) for
  /// this process. Off leaves every probe behind a single relaxed
  /// atomic load — see DESIGN.md §9 for the overhead policy.
  bool telemetry = false;
  /// Aggregation shards for the sharded round engine (DESIGN.md §15):
  /// the sampled cohort is split into this many contiguous slices, each
  /// streaming its wave of participants, chained into one fixed-order
  /// reduction — results are bit-identical at every shard count. 0 =
  /// auto (process default, normally 1; the FEDCAV_TEST_SHARDS hook
  /// overrides it for whole-suite replays).
  std::size_t shards = 0;
  /// How per-client / sampler / straggler streams are produced
  /// (DESIGN.md §16). kLegacyStream (default) keeps the historical
  /// long-lived streams every pinned golden was recorded under.
  /// kDerived reseeds each consumer per round from
  /// derive_seed(seed, round, id, tag), making the run bit-identical
  /// across in-process, multi-process, sharded, and resumed execution —
  /// including sampled/straggler configurations. In kDerived the
  /// straggler coin is a pure per-(round, client) draw that remote
  /// workers evaluate locally, and the legacy keep-first straggler
  /// rescue is disabled (a fully-straggled round skips via quorum
  /// instead — a worker deciding alone cannot know it was the last
  /// survivor).
  RngMode rng_mode = RngMode::kLegacyStream;

  void validate(std::size_t num_clients) const;
};

class Server {
 public:
  Server(std::unique_ptr<nn::Model> global_model,
         std::unique_ptr<AggregationStrategy> strategy,
         std::vector<std::unique_ptr<Client>> clients, data::Dataset test_set,
         ServerConfig config);

  /// Attach an adversary that hijacks one sampled participant's update
  /// in each round listed in `attack_rounds` (1-based round numbers).
  void set_adversary(std::shared_ptr<attack::Adversary> adversary,
                     std::set<std::size_t> attack_rounds);

  /// Execute one communication round; returns its record (also appended
  /// to history()).
  metrics::RoundRecord run_round();

  /// Run `rounds` rounds.
  void run(std::size_t rounds);

  const metrics::TrainingHistory& history() const { return history_; }
  std::size_t current_round() const { return round_; }
  std::size_t num_clients() const { return clients_.size(); }
  /// Effective config — load_checkpoint may rewrite rng_mode (a pre-v6
  /// file forces legacy-stream mode).
  const ServerConfig& config() const { return config_; }

  const nn::Weights& global_weights() const { return global_weights_; }
  void set_global_weights(nn::Weights weights);

  /// Accuracy of the current global model on the held-out test set.
  double evaluate_accuracy();

  /// Replace every client's dataset (fresh-class experiment phase 2).
  void redistribute_data(std::vector<data::Dataset> per_client);

  /// Attach a learning-rate schedule: before each round the local lr is
  /// set to schedule->lr(round). nullptr restores the fixed configured η.
  void set_lr_schedule(std::unique_ptr<nn::LrSchedule> schedule);

  /// Run rounds on `pool` instead of the process-wide pool (non-owning;
  /// nullptr restores the global pool). The chaos determinism suite uses
  /// this to prove 1-worker and N-worker runs are bit-identical. Resets
  /// the replica pool: its size is derived from the thread pool's.
  void set_thread_pool(ThreadPool* pool) {
    pool_ = pool;
    replica_pool_.reset();
  }

  /// The bounded model-replica pool backing client training (created on
  /// the first round; null before that). Exposed for memory tests and
  /// the cohort-scale bench; the mutable overload lets the bench lease
  /// and warm every replica so peak-memory rows all measure the same
  /// steady-state K-replica regime regardless of scheduling.
  const nn::ReplicaPool* replica_pool() const { return replica_pool_.get(); }
  nn::ReplicaPool* replica_pool() { return replica_pool_.get(); }

  /// Serialize the full resumable server state to `path` (binary, v6
  /// format by default): round counter, global + cached (reverse-target)
  /// weights, detector reference, sampler state (RNG stream, round-robin
  /// cursor, per-client loss memory), straggler RNG, per-client state
  /// (batch RNG + FedCurv anchors), the comm fabric's fault-RNG streams
  /// and in-flight messages (v3), the fabric's traffic/fault accounting
  /// (v4), each client's quantization error-feedback residual (v5), and
  /// — new in v6 — the RngMode the run was recorded under, so a resumed
  /// run derives (or replays) exactly the streams the uninterrupted run
  /// would have. A run resumed from the file is bit-identical to one
  /// that never stopped. `version` may be 2–5 to emit the legacy
  /// formats (compat testing).
  void save_checkpoint(const std::string& path, int version = 6) const;
  /// Restore state from save_checkpoint output. Pre-v6 files load in
  /// RngMode::kLegacyStream (the only mode that existed when they were
  /// written — bit-compat trumps the configured mode); v3 files load
  /// with the fabric's accounting restarted from zero (their layout
  /// never carried it); v2 files load with the fabric reset to its
  /// freshly-seeded state; v1 files (weights + round only) also load,
  /// with the cached weights falling back to the global weights and the
  /// detector reference reset. Throws fedcav::Error on malformed files
  /// or size/client-count mismatch; the server state is unspecified
  /// after a throw partway through a payload.
  void load_checkpoint(const std::string& path);

  /// Flush collected telemetry: a chrome://tracing JSON to `trace_path`
  /// and the metrics-registry summary JSON to `metrics_path` (either may
  /// be empty to skip that file). Bridges the comm fabric's traffic
  /// totals into gauges first. No-op when telemetry is disabled.
  void write_telemetry(const std::string& trace_path,
                       const std::string& metrics_path) const;

  /// Replace the aggregation strategy (non-null) and re-derive its
  /// local-training overrides. The chaos oracle uses this to wrap the
  /// configured strategy in a forced-buffered delegate and prove the
  /// streaming path bit-identical; call it before the first round.
  void set_strategy(std::unique_ptr<AggregationStrategy> strategy);

  AggregationStrategy& strategy() { return *strategy_; }
  const core::AnomalyDetector& detector() const { return detector_; }
  const comm::InMemoryNetwork* network() const { return network_.get(); }
  comm::InMemoryNetwork* network() { return network_.get(); }

  /// Run the round protocol over `transport` instead of the owned
  /// in-memory fabric. With `remote = false` the transport is a drop-in
  /// fabric (both endpoints of every link still played in-process — the
  /// shim the chaos suite uses to prove Transport-neutrality); with
  /// `remote = true` the server is rank 0 of a real federation: phase ①
  /// broadcasts to every participant up front, then both phases collect
  /// uplinks from worker processes in fixed participant order, turning a
  /// closed peer into a dropout / upload failure. Remote mode requires
  /// one worker rank per client (num_endpoints == num_clients + 1).
  /// nullptr restores the owned fabric. Non-owning; call before run().
  void set_transport(comm::Transport* transport, bool remote);

  /// The daemon/worker tools address clients by worker rank - 1.
  Client& client_at(std::size_t index) {
    FEDCAV_REQUIRE(index < clients_.size(), "Server::client_at: bad index");
    return *clients_[index];
  }
  /// Local-training config with strategy overrides applied — what a
  /// worker process must train with to match the in-process run.
  const LocalTrainConfig& effective_local() const { return effective_local_; }

 private:
  /// Phase ①: downlink protocol + inference loss on a pooled replica +
  /// scalar metadata uplink. Fills the outcome's counters and the full
  /// simulated elapsed time of the exchange so far.
  ParticipantOutcome run_participant_metadata(std::size_t client_index);
  /// Phase ②: local training on a pooled replica + full-report uplink.
  /// `counters.elapsed_s` must carry the phase-① time in (deadline spans
  /// the whole exchange); retry/CRC/stale/deadline counters accumulate
  /// into `counters`. Returns nullopt on upload failure.
  std::optional<ClientUpdate> run_participant_train(std::size_t client_index,
                                                    double inference_loss,
                                                    ParticipantOutcome& counters);
  /// Remote-mode phase ①: the downlink was already broadcast by
  /// run_round; await this participant's metadata uplink, answering
  /// worker NACKs with downlink retransmissions. No metadata in the
  /// returned outcome = dropout (peer closed, hang timeout, or
  /// deadline).
  ParticipantOutcome remote_participant_metadata(std::size_t client_index);
  /// Remote-mode phase ②: await the participant's full report (the
  /// worker trains unprompted after the downlink). nullopt = upload
  /// failure.
  std::optional<ClientUpdate> remote_participant_train(std::size_t client_index,
                                                       ParticipantOutcome& counters);
  /// (Re)build the replica pool sized to the active thread pool.
  void ensure_replica_pool();
  ThreadPool& pool() const;

  std::unique_ptr<nn::Model> global_model_;
  std::unique_ptr<AggregationStrategy> strategy_;
  std::vector<std::unique_ptr<Client>> clients_;
  data::Dataset test_set_;
  ServerConfig config_;
  LocalTrainConfig effective_local_;  // config_.local + strategy overrides

  nn::Weights global_weights_;
  nn::Weights cached_weights_;  // w_{t-1}: the reverse target
  core::AnomalyDetector detector_;
  metrics::TrainingHistory history_;
  std::unique_ptr<comm::InMemoryNetwork> network_;
  /// The fabric the round protocol actually runs over: network_.get()
  /// by default, or whatever set_transport installed (non-owning).
  /// Checkpoints always serialize the owned network_ — a remote
  /// transport has no savable state.
  comm::Transport* transport_ = nullptr;
  bool remote_ = false;
  ParticipantSampler sampler_;
  Rng straggler_rng_;
  std::size_t round_ = 0;

  std::shared_ptr<attack::Adversary> adversary_;
  std::set<std::size_t> attack_rounds_;
  std::unique_ptr<nn::LrSchedule> lr_schedule_;
  ThreadPool* pool_ = nullptr;  // non-owning override, see set_thread_pool
  /// Bounded pool of model replicas leased to participants; sized to the
  /// thread pool (+1 for the inline caller), so a round's model memory
  /// is O(K × model) independent of cohort size (DESIGN.md §11).
  std::unique_ptr<nn::ReplicaPool> replica_pool_;
  /// This round's encoded downlink (global model) — kept for NACK
  /// retransmissions so retries don't re-serialize the weights.
  comm::Envelope downlink_env_;
};

}  // namespace fedcav::fl
