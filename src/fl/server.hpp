// Federated server: Algorithm 1's outer loop with the Fig. 3 workflow —
// participant sampling, global-model broadcast, parallel local training,
// anomaly detection with model reverse, contribution-aware aggregation,
// and per-round evaluation/accounting.
#pragma once

#include <memory>
#include <set>
#include <vector>

#include "src/attack/adversary.hpp"
#include "src/comm/network.hpp"
#include "src/core/detector.hpp"
#include "src/data/dataset.hpp"
#include "src/fl/client.hpp"
#include "src/fl/sampler.hpp"
#include "src/fl/strategy.hpp"
#include "src/nn/schedule.hpp"
#include "src/metrics/history.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::fl {

struct ServerConfig {
  /// Fraction q of clients sampled each round (paper: 0.3).
  double sample_ratio = 0.3;
  /// How the round's cohort is chosen (paper: uniform).
  SamplerPolicy sampler = SamplerPolicy::kUniform;
  LocalTrainConfig local;
  /// Probability a sampled participant fails to report (straggler /
  /// connection loss). At least one update always survives. The paper's
  /// dynamic view ("clients dynamically participating ... at any time",
  /// §3.1) motivates exercising aggregation under partial cohorts.
  double straggler_drop_prob = 0.0;
  /// Enable the §4.4 detector + model reverse.
  bool detection_enabled = false;
  core::DetectorConfig detector;
  std::size_t eval_batch_size = 64;
  std::uint64_t seed = 11;
  /// Route weights through the comm fabric (exact byte metering). Off
  /// saves two serialization passes per participant per round.
  bool use_network = true;
  comm::NetworkConfig network;
  /// Turn on the obs subsystem (span tracing + metrics registry) for
  /// this process. Off leaves every probe behind a single relaxed
  /// atomic load — see DESIGN.md §9 for the overhead policy.
  bool telemetry = false;

  void validate(std::size_t num_clients) const;
};

class Server {
 public:
  Server(std::unique_ptr<nn::Model> global_model,
         std::unique_ptr<AggregationStrategy> strategy,
         std::vector<std::unique_ptr<Client>> clients, data::Dataset test_set,
         ServerConfig config);

  /// Attach an adversary that hijacks one sampled participant's update
  /// in each round listed in `attack_rounds` (1-based round numbers).
  void set_adversary(std::shared_ptr<attack::Adversary> adversary,
                     std::set<std::size_t> attack_rounds);

  /// Execute one communication round; returns its record (also appended
  /// to history()).
  metrics::RoundRecord run_round();

  /// Run `rounds` rounds.
  void run(std::size_t rounds);

  const metrics::TrainingHistory& history() const { return history_; }
  std::size_t current_round() const { return round_; }
  std::size_t num_clients() const { return clients_.size(); }

  const nn::Weights& global_weights() const { return global_weights_; }
  void set_global_weights(nn::Weights weights);

  /// Accuracy of the current global model on the held-out test set.
  double evaluate_accuracy();

  /// Replace every client's dataset (fresh-class experiment phase 2).
  void redistribute_data(std::vector<data::Dataset> per_client);

  /// Attach a learning-rate schedule: before each round the local lr is
  /// set to schedule->lr(round). nullptr restores the fixed configured η.
  void set_lr_schedule(std::unique_ptr<nn::LrSchedule> schedule);

  /// Serialize the full resumable server state to `path` (binary, v2
  /// format): round counter, global + cached (reverse-target) weights,
  /// detector reference, sampler state (RNG stream, round-robin cursor,
  /// per-client loss memory), straggler RNG, and per-client state (batch
  /// RNG + FedCurv anchors). A run resumed from the file is bit-identical
  /// to one that never stopped.
  void save_checkpoint(const std::string& path) const;
  /// Restore state from save_checkpoint output. v1 files (weights +
  /// round only) still load: the cached weights fall back to the global
  /// weights and the detector reference resets. Throws fedcav::Error on
  /// malformed files or size/client-count mismatch; the server state is
  /// unspecified after a throw partway through a v2 payload.
  void load_checkpoint(const std::string& path);

  /// Flush collected telemetry: a chrome://tracing JSON to `trace_path`
  /// and the metrics-registry summary JSON to `metrics_path` (either may
  /// be empty to skip that file). Bridges the comm fabric's traffic
  /// totals into gauges first. No-op when telemetry is disabled.
  void write_telemetry(const std::string& trace_path,
                       const std::string& metrics_path) const;

  AggregationStrategy& strategy() { return *strategy_; }
  const core::AnomalyDetector& detector() const { return detector_; }
  const comm::InMemoryNetwork* network() const { return network_.get(); }

 private:
  ClientUpdate run_participant(std::size_t client_index);

  std::unique_ptr<nn::Model> global_model_;
  std::unique_ptr<AggregationStrategy> strategy_;
  std::vector<std::unique_ptr<Client>> clients_;
  data::Dataset test_set_;
  ServerConfig config_;
  LocalTrainConfig effective_local_;  // config_.local + strategy overrides

  nn::Weights global_weights_;
  nn::Weights cached_weights_;  // w_{t-1}: the reverse target
  core::AnomalyDetector detector_;
  metrics::TrainingHistory history_;
  std::unique_ptr<comm::InMemoryNetwork> network_;
  ParticipantSampler sampler_;
  Rng straggler_rng_;
  std::size_t round_ = 0;

  std::shared_ptr<attack::Adversary> adversary_;
  std::set<std::size_t> attack_rounds_;
  std::unique_ptr<nn::LrSchedule> lr_schedule_;
};

}  // namespace fedcav::fl
