#include "src/fl/server.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iterator>

#include "src/fl/round_engine.hpp"
#include "src/metrics/evaluation.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::fl {

namespace {

constexpr std::size_t kServerRank = 0;

// Checkpoint formats. v1 (PR 2) carried only the round counter and the
// global weights; v2 adds everything needed for bit-identical resume;
// v3 appends the comm fabric's fault-RNG streams and in-flight
// messages so chaos runs also resume bit-identically; v4 additionally
// embeds the fabric's traffic/fault accounting so the conservation
// invariant survives a resume (v3 zeroed it, which the chaos search
// caught — see tests/chaos_seeds/resume_stats_conservation.plan).
constexpr std::uint64_t kCheckpointMagicV1 = 0xfedca5c4ec9017ULL;
constexpr std::uint64_t kCheckpointMagicV2 = 0xfedca5c4ec9018ULL;
constexpr std::uint64_t kCheckpointMagicV3 = 0xfedca5c4ec9019ULL;
constexpr std::uint64_t kCheckpointMagicV4 = 0xfedca5c4ec901aULL;
// v5 appends each client's quantization error-feedback residual, so a
// quantized run resumed mid-stream sends the exact deltas the
// uninterrupted run would have.
constexpr std::uint64_t kCheckpointMagicV5 = 0xfedca5c4ec901bULL;
// v6 appends the RngMode the run was recorded under (DESIGN.md §16):
// a derived-seed run resumed from a v6 file keeps deriving, and a
// pre-v6 file — written when only the legacy streams existed — always
// loads in kLegacyStream regardless of the configured mode.
constexpr std::uint64_t kCheckpointMagicV6 = 0xfedca5c4ec901cULL;

std::uint64_t checkpoint_magic(int version) {
  switch (version) {
    case 2: return kCheckpointMagicV2;
    case 3: return kCheckpointMagicV3;
    case 4: return kCheckpointMagicV4;
    case 5: return kCheckpointMagicV5;
    default: return kCheckpointMagicV6;
  }
}

/// Payload bytes the dense f32 protocol would have used for a message
/// carrying `dim` weights plus `scalar_bytes` of header scalars (the
/// write_f32_span framing is 8 bytes of length). Feeds comm.bytes_saved.
std::size_t dense_payload_bytes(std::size_t dim, std::size_t scalar_bytes) {
  return scalar_bytes + 8 + 4 * dim;
}

/// Attributes a scope's wall time to one RoundPhases field and mirrors
/// it as a "round.phase" trace span. The Stopwatch is unconditional
/// (two steady-clock reads); the span is inert unless telemetry is on.
class PhaseTimer {
 public:
  PhaseTimer(const char* name, std::size_t round, double& out)
      : span_(name, "round.phase"), out_(out) {
    span_.arg("round", static_cast<double>(round));
  }
  ~PhaseTimer() { out_ += watch_.seconds(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Span span_;
  Stopwatch watch_;
  double& out_;
};

}  // namespace

void ServerConfig::validate(std::size_t num_clients) const {
  FEDCAV_REQUIRE(sample_ratio > 0.0 && sample_ratio <= 1.0,
                 "ServerConfig: sample_ratio must be in (0, 1]");
  FEDCAV_REQUIRE(num_clients >= 1, "ServerConfig: need at least one client");
  FEDCAV_REQUIRE(eval_batch_size > 0, "ServerConfig: zero eval batch size");
  FEDCAV_REQUIRE(straggler_drop_prob >= 0.0 && straggler_drop_prob < 1.0,
                 "ServerConfig: straggler_drop_prob must be in [0, 1)");
  FEDCAV_REQUIRE(min_aggregate_clients >= 1,
                 "ServerConfig: min_aggregate_clients must be >= 1");
  FEDCAV_REQUIRE(min_aggregate_clients <= num_clients,
                 "ServerConfig: min_aggregate_clients exceeds the client count");
  FEDCAV_REQUIRE(max_retries <= 16,
                 "ServerConfig: max_retries > 16 (exponential backoff overflows)");
  FEDCAV_REQUIRE(retry_backoff_s >= 0.0, "ServerConfig: negative retry_backoff_s");
  FEDCAV_REQUIRE(uplink_deadline_s >= 0.0, "ServerConfig: negative uplink_deadline_s");
  FEDCAV_REQUIRE(quant_keep > 0.0 && quant_keep <= 1.0,
                 "ServerConfig: quant_keep must be in (0, 1]");
}

Server::Server(std::unique_ptr<nn::Model> global_model,
               std::unique_ptr<AggregationStrategy> strategy,
               std::vector<std::unique_ptr<Client>> clients, data::Dataset test_set,
               ServerConfig config)
    : global_model_(std::move(global_model)),
      strategy_(std::move(strategy)),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      effective_local_(config.local),
      detector_(config.detector),
      sampler_(config.sampler, clients_.size(), config.sample_ratio, config.seed),
      straggler_rng_(config.seed ^ 0x57a661e2ULL) {
  FEDCAV_REQUIRE(global_model_ != nullptr, "Server: null global model");
  FEDCAV_REQUIRE(strategy_ != nullptr, "Server: null strategy");
  FEDCAV_REQUIRE(!clients_.empty(), "Server: no clients");
  FEDCAV_REQUIRE(!test_set_.empty(), "Server: empty test set");
  config_.validate(clients_.size());
  strategy_->apply_local_overrides(effective_local_);
  if (config_.telemetry) obs::set_enabled(true);

  global_weights_ = global_model_->get_weights();
  cached_weights_ = global_weights_;
  if (config_.use_network) {
    comm::NetworkConfig net = config_.network;
    net.num_endpoints = clients_.size() + 1;
    network_ = std::make_unique<comm::InMemoryNetwork>(net);
    transport_ = network_.get();
  }
}

void Server::set_transport(comm::Transport* transport, bool remote) {
  if (transport == nullptr) {
    transport_ = network_.get();
    remote_ = false;
    return;
  }
  FEDCAV_REQUIRE(transport->num_endpoints() == clients_.size() + 1,
                 "Server::set_transport: transport endpoint count must be "
                 "num_clients + 1");
  transport_ = transport;
  remote_ = remote;
}

void Server::set_adversary(std::shared_ptr<attack::Adversary> adversary,
                           std::set<std::size_t> attack_rounds) {
  adversary_ = std::move(adversary);
  attack_rounds_ = std::move(attack_rounds);
}

void Server::set_strategy(std::unique_ptr<AggregationStrategy> strategy) {
  FEDCAV_REQUIRE(strategy != nullptr, "Server::set_strategy: null strategy");
  strategy_ = std::move(strategy);
  effective_local_ = config_.local;
  strategy_->apply_local_overrides(effective_local_);
}

void Server::set_global_weights(nn::Weights weights) {
  FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                 "Server::set_global_weights: size mismatch");
  global_weights_ = std::move(weights);
  global_model_->set_weights(global_weights_);
}

double Server::evaluate_accuracy() {
  global_model_->set_weights(global_weights_);
  return metrics::accuracy(*global_model_, test_set_, config_.eval_batch_size);
}

void Server::redistribute_data(std::vector<data::Dataset> per_client) {
  FEDCAV_REQUIRE(per_client.size() == clients_.size(),
                 "Server::redistribute_data: dataset count mismatch");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->set_local_data(std::move(per_client[i]));
  }
}

ThreadPool& Server::pool() const {
  return pool_ != nullptr ? *pool_ : global_thread_pool();
}

void Server::ensure_replica_pool() {
  // Workers plus the caller (parallel_for may run a chunk inline), so
  // acquire() can never starve a thread that holds no lease yet.
  const std::size_t max_replicas = pool().size() + 1;
  if (replica_pool_ == nullptr || replica_pool_->max_replicas() != max_replicas) {
    replica_pool_ = std::make_unique<nn::ReplicaPool>(*global_model_, max_replicas);
  }
}

ParticipantOutcome Server::run_participant_metadata(std::size_t client_index) {
  if (remote_) return remote_participant_metadata(client_index);
  obs::Span span("participant", "client");
  span.arg("client", static_cast<double>(client_index));
  ParticipantOutcome out;
  Client& client = *clients_[client_index];
  if (transport_ == nullptr) {
    nn::ReplicaPool::Lease replica = replica_pool_->acquire();
    ClientUpdate meta;
    meta.client_id = client.id();
    meta.num_samples = client.num_samples();
    meta.inference_loss = client.compute_inference_loss(replica.model(), global_weights_);
    out.metadata = std::move(meta);
    return out;
  }
  // Weights travel through the fabric both ways so byte counters see
  // the genuine serialized payloads. The simulation plays both endpoints
  // of each link on this thread, which lets the NACK-and-retry protocol
  // run synchronously: drain the link until a CRC-clean message for this
  // round appears, otherwise NACK and retransmit with exponential
  // simulated-time backoff, up to max_retries. Every control and
  // retransmitted message is metered and fault-injected like any other
  // traffic, and every transfer/backoff is charged to `elapsed_s` so
  // the deadline covers the whole exchange, not just the last uplink.
  const std::size_t rank = client_index + 1;

  // Downlink: queue this participant's copy of the pre-encoded broadcast,
  // then play the client endpoint's receive + NACK protocol. Sending here
  // (not in the broadcast phase) keeps O(workers) wire images of the
  // model alive in the fabric instead of O(cohort); per-link fault RNG
  // streams make the fault outcomes identical either way.
  transport_->send(kServerRank, rank, downlink_env_);
  out.elapsed_s += transport_->model_transfer_seconds(downlink_env_.wire_size());
  // Dense runs expect kGlobalModel, quantized runs kQuantGlobalModel; a
  // quantized downlink is decoded to the dense weights here (which equal
  // the server's in-place-dequantized global_weights_ bit-exactly — the
  // codec is deterministic and the CRC already proved the wire intact).
  const comm::MessageType down_type = config_.quant != comm::QuantMode::kNone
                                          ? comm::MessageType::kQuantGlobalModel
                                          : comm::MessageType::kGlobalModel;
  std::optional<std::vector<float>> down;
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !down; ++attempt) {
    while (auto wire = transport_->try_recv_wire(rank, kServerRank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        out.crc_failures += 1;  // corrupted or truncated in flight
        continue;
      }
      if (env->type != down_type) {
        out.stale_discards += 1;  // e.g. a NACK left over from a past round
        continue;
      }
      ByteReader reader(env->payload);
      if (down_type == comm::MessageType::kQuantGlobalModel) {
        comm::QuantGlobalModelMsg msg = comm::QuantGlobalModelMsg::decode(reader);
        if (msg.round != round_) {
          out.stale_discards += 1;
          continue;
        }
        down = comm::dequantize(msg.model);
      } else {
        comm::GlobalModelMsg msg = comm::GlobalModelMsg::decode(reader);
        if (msg.round != round_) {
          out.stale_discards += 1;  // duplicate from an earlier round
          continue;
        }
        down = std::move(msg.weights);
      }
      break;
    }
    if (down.has_value() || attempt == config_.max_retries) break;
    comm::NackMsg nack;
    nack.round = round_;
    nack.expected = down_type;
    const comm::Envelope nack_env{comm::MessageType::kNack, nack.encode()};
    transport_->send(rank, kServerRank, nack_env);
    out.elapsed_s += transport_->model_transfer_seconds(nack_env.wire_size());
    const double backoff =
        config_.retry_backoff_s * static_cast<double>(1ULL << attempt);
    transport_->add_link_delay(kServerRank, rank, backoff);
    out.elapsed_s += backoff;
    transport_->send(kServerRank, rank, downlink_env_);
    out.elapsed_s += transport_->model_transfer_seconds(downlink_env_.wire_size());
    out.retries += 1;
  }
  if (!down.has_value()) return out;  // unreachable client: dropout

  // Inference loss of the verified downlink weights on a pooled replica.
  // The decoded copy dies at scope end: phase ② re-loads the server's
  // own global_weights_, which the f32 wire round-trip keeps bit-equal,
  // so the server never holds O(cohort) decoded models.
  double f_i = 0.0;
  {
    nn::ReplicaPool::Lease replica = replica_pool_->acquire();
    f_i = client.compute_inference_loss(replica.model(), *down);
    down.reset();
  }

  // Metadata uplink: 32 payload bytes of scalars, same NACK protocol.
  comm::MetadataMsg meta;
  meta.round = round_;
  meta.client_id = client.id();
  meta.num_samples = client.num_samples();
  meta.inference_loss = f_i;
  const comm::Envelope meta_env{comm::MessageType::kMetadataReport, meta.encode()};
  std::optional<comm::MetadataMsg> received;
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !received; ++attempt) {
    transport_->send(rank, kServerRank, meta_env);
    out.elapsed_s += transport_->model_transfer_seconds(meta_env.wire_size());
    while (auto wire = transport_->try_recv_wire(kServerRank, rank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        out.crc_failures += 1;
        continue;
      }
      if (env->type != comm::MessageType::kMetadataReport) {
        out.stale_discards += 1;
        continue;
      }
      ByteReader reader(env->payload);
      comm::MetadataMsg msg = comm::MetadataMsg::decode(reader);
      if (msg.round != round_) {
        out.stale_discards += 1;
        continue;
      }
      received = msg;
      break;
    }
    if (received.has_value() || attempt == config_.max_retries) break;
    comm::NackMsg nack;
    nack.round = round_;
    nack.expected = comm::MessageType::kMetadataReport;
    const comm::Envelope nack_env{comm::MessageType::kNack, nack.encode()};
    transport_->send(kServerRank, rank, nack_env);
    out.elapsed_s += transport_->model_transfer_seconds(nack_env.wire_size());
    const double backoff =
        config_.retry_backoff_s * static_cast<double>(1ULL << attempt);
    transport_->add_link_delay(rank, kServerRank, backoff);
    out.elapsed_s += backoff;
    out.retries += 1;
  }
  if (!received.has_value()) return out;  // metadata lost: dropout
  if (config_.uplink_deadline_s > 0.0 && out.elapsed_s > config_.uplink_deadline_s) {
    out.deadline_missed = true;  // budget burned before training: dropout
    return out;
  }
  ClientUpdate md;
  md.client_id = received->client_id;
  md.num_samples = received->num_samples;
  md.inference_loss = received->inference_loss;
  out.metadata = std::move(md);
  return out;
}

std::optional<ClientUpdate> Server::run_participant_train(std::size_t client_index,
                                                          double inference_loss,
                                                          ParticipantOutcome& counters) {
  if (remote_) return remote_participant_train(client_index, counters);
  obs::Span span("participant", "client");
  span.arg("client", static_cast<double>(client_index));
  Client& client = *clients_[client_index];
  // Derived mode: the batch-shuffle stream for this participation is
  // Rng(derive_seed(seed, round, id, kClientTrain)) — the same stream a
  // remote worker hosting this client derives for itself (§16).
  if (config_.rng_mode == RngMode::kDerived) {
    client.reseed_for_round(config_.seed, round_);
  }
  ClientUpdate update;
  {
    nn::ReplicaPool::Lease replica = replica_pool_->acquire();
    update = client.train_update(replica.model(), global_weights_, effective_local_,
                                 inference_loss);
  }
  const bool quant_on = config_.quant != comm::QuantMode::kNone;
  if (transport_ == nullptr) {
    if (quant_on) {
      // Unmetered path: run the identical codec transform locally —
      // delta code with error feedback, then reconstruction against the
      // round's reference — so quantization's accuracy effect does not
      // depend on whether the fabric is in the loop.
      comm::QuantizedDelta coded = client.encode_quantized_update(
          update.weights, global_weights_, config_.quant, config_.quant_keep);
      update.weights = global_weights_;
      comm::dequantize_add(update.weights, coded);
    }
    return update;
  }

  const std::size_t rank = client_index + 1;
  const comm::MessageType report_type = quant_on
                                            ? comm::MessageType::kQuantReport
                                            : comm::MessageType::kClientReport;
  comm::Envelope report_env;
  if (quant_on) {
    comm::QuantReportMsg up;
    up.round = round_;
    up.client_id = client.id();
    up.num_samples = update.num_samples;
    up.inference_loss = update.inference_loss;
    // Encoded once, before the retry loop: retransmissions resend the
    // same wire image, so the error-feedback residual advances exactly
    // once per participation regardless of fabric faults.
    up.delta = client.encode_quantized_update(update.weights, global_weights_,
                                              config_.quant, config_.quant_keep);
    if (obs::enabled()) {
      static obs::Counter& saved = obs::registry().counter("comm.bytes_saved");
      const std::size_t dense = dense_payload_bytes(global_weights_.size(), 32);
      const std::size_t actual = 32 + up.delta.wire_size();
      if (dense > actual) saved.add(dense - actual);
    }
    report_env = comm::Envelope{report_type, up.encode()};
  } else {
    comm::ClientReportMsg up;
    up.round = round_;
    up.client_id = client.id();
    up.num_samples = update.num_samples;
    up.inference_loss = update.inference_loss;
    up.weights = update.weights;
    report_env = comm::Envelope{report_type, up.encode()};
  }

  // Report uplink: same protocol; `counters.elapsed_s` arrives holding
  // the phase-① time, so the deadline spans the full round trip. A
  // received quantized delta is reconstructed against global_weights_
  // (= w̃_t) right here, per slot, so the downstream fold sees dense
  // weights either way and stays independent of the worker count.
  std::optional<std::pair<std::vector<float>, double>> report;  // weights, f_i
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !report; ++attempt) {
    transport_->send(rank, kServerRank, report_env);
    counters.elapsed_s += transport_->model_transfer_seconds(report_env.wire_size());
    while (auto wire = transport_->try_recv_wire(kServerRank, rank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        counters.crc_failures += 1;
        continue;
      }
      if (env->type != report_type) {
        counters.stale_discards += 1;
        continue;
      }
      ByteReader reader(env->payload);
      if (quant_on) {
        comm::QuantReportMsg msg = comm::QuantReportMsg::decode(reader);
        if (msg.round != round_) {
          counters.stale_discards += 1;
          continue;
        }
        std::vector<float> weights = global_weights_;
        comm::dequantize_add(weights, msg.delta);
        report.emplace(std::move(weights), msg.inference_loss);
      } else {
        comm::ClientReportMsg msg = comm::ClientReportMsg::decode(reader);
        if (msg.round != round_) {
          counters.stale_discards += 1;
          continue;
        }
        report.emplace(std::move(msg.weights), msg.inference_loss);
      }
      break;
    }
    if (report.has_value() || attempt == config_.max_retries) break;
    comm::NackMsg nack;
    nack.round = round_;
    nack.expected = report_type;
    const comm::Envelope nack_env{comm::MessageType::kNack, nack.encode()};
    transport_->send(kServerRank, rank, nack_env);
    counters.elapsed_s += transport_->model_transfer_seconds(nack_env.wire_size());
    const double backoff =
        config_.retry_backoff_s * static_cast<double>(1ULL << attempt);
    transport_->add_link_delay(rank, kServerRank, backoff);
    counters.elapsed_s += backoff;
    counters.retries += 1;
  }
  if (!report.has_value()) return std::nullopt;  // uplink exhausted
  if (config_.uplink_deadline_s > 0.0 &&
      counters.elapsed_s > config_.uplink_deadline_s) {
    counters.deadline_missed = true;
    return std::nullopt;
  }
  update.weights = std::move(report->first);
  update.inference_loss = report->second;
  return update;
}

ParticipantOutcome Server::remote_participant_metadata(std::size_t client_index) {
  ParticipantOutcome out;
  const std::size_t rank = client_index + 1;
  // Downlink transfer time: the broadcast send happened in run_round,
  // its simulated cost is still charged to this participant's exchange.
  out.elapsed_s += transport_->model_transfer_seconds(downlink_env_.wire_size());
  Stopwatch wall;
  for (;;) {
    while (auto wire = transport_->try_recv_wire(kServerRank, rank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        out.crc_failures += 1;
        if (out.retries < config_.max_retries) {
          comm::NackMsg nack;
          nack.round = round_;
          nack.expected = comm::MessageType::kMetadataReport;
          transport_->send(kServerRank, rank,
                           comm::Envelope{comm::MessageType::kNack, nack.encode()});
          out.retries += 1;
        }
        continue;
      }
      if (env->type == comm::MessageType::kNack) {
        // The worker lost or rejected the downlink: retransmit, bounded.
        if (out.retries < config_.max_retries) {
          transport_->send(kServerRank, rank, downlink_env_);
          out.retries += 1;
        }
        continue;
      }
      if (env->type != comm::MessageType::kMetadataReport) {
        out.stale_discards += 1;  // e.g. last round's report still queued
        continue;
      }
      try {
        ByteReader reader(env->payload);
        const comm::MetadataMsg msg = comm::MetadataMsg::decode(reader);
        if (msg.round != round_) {
          out.stale_discards += 1;
          continue;
        }
        out.elapsed_s += transport_->model_transfer_seconds(wire->size());
        if (config_.uplink_deadline_s > 0.0 &&
            out.elapsed_s > config_.uplink_deadline_s) {
          out.deadline_missed = true;
          return out;
        }
        ClientUpdate md;
        md.client_id = msg.client_id;
        md.num_samples = msg.num_samples;
        md.inference_loss = msg.inference_loss;
        out.metadata = std::move(md);
        return out;
      } catch (const Error&) {
        out.stale_discards += 1;  // CRC-valid but structurally malformed
      }
    }
    // Nothing queued: a closed peer can never answer (dropout); a live
    // one gets remote_recv_timeout_s of wall clock before we give up.
    if (transport_->peer_closed(rank)) return out;
    if (wall.seconds() > config_.remote_recv_timeout_s) return out;
    transport_->poll(0.05);
  }
}

std::optional<ClientUpdate> Server::remote_participant_train(
    std::size_t client_index, ParticipantOutcome& counters) {
  const std::size_t rank = client_index + 1;
  const bool quant_on = config_.quant != comm::QuantMode::kNone;
  const comm::MessageType report_type = quant_on
                                            ? comm::MessageType::kQuantReport
                                            : comm::MessageType::kClientReport;
  Stopwatch wall;
  for (;;) {
    while (auto wire = transport_->try_recv_wire(kServerRank, rank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        counters.crc_failures += 1;
        if (counters.retries < config_.max_retries) {
          comm::NackMsg nack;
          nack.round = round_;
          nack.expected = report_type;
          transport_->send(kServerRank, rank,
                           comm::Envelope{comm::MessageType::kNack, nack.encode()});
          counters.retries += 1;
        }
        continue;
      }
      if (env->type == comm::MessageType::kNack) {
        if (counters.retries < config_.max_retries) {
          transport_->send(kServerRank, rank, downlink_env_);
          counters.retries += 1;
        }
        continue;
      }
      if (env->type != report_type) {
        counters.stale_discards += 1;
        continue;
      }
      try {
        ByteReader reader(env->payload);
        ClientUpdate update;
        if (quant_on) {
          comm::QuantReportMsg msg = comm::QuantReportMsg::decode(reader);
          if (msg.round != round_) {
            counters.stale_discards += 1;
            continue;
          }
          update.client_id = msg.client_id;
          update.num_samples = msg.num_samples;
          update.inference_loss = msg.inference_loss;
          update.weights = global_weights_;
          comm::dequantize_add(update.weights, msg.delta);
        } else {
          comm::ClientReportMsg msg = comm::ClientReportMsg::decode(reader);
          if (msg.round != round_) {
            counters.stale_discards += 1;
            continue;
          }
          if (msg.weights.size() != global_weights_.size()) {
            counters.stale_discards += 1;  // wrong model: never aggregated
            continue;
          }
          update.client_id = msg.client_id;
          update.num_samples = msg.num_samples;
          update.inference_loss = msg.inference_loss;
          update.weights = std::move(msg.weights);
        }
        counters.elapsed_s += transport_->model_transfer_seconds(wire->size());
        if (config_.uplink_deadline_s > 0.0 &&
            counters.elapsed_s > config_.uplink_deadline_s) {
          counters.deadline_missed = true;
          return std::nullopt;
        }
        return update;
      } catch (const Error&) {
        counters.stale_discards += 1;
      }
    }
    if (transport_->peer_closed(rank)) return std::nullopt;  // upload failure
    if (wall.seconds() > config_.remote_recv_timeout_s) return std::nullopt;
    transport_->poll(0.05);
  }
}

void Server::set_lr_schedule(std::unique_ptr<nn::LrSchedule> schedule) {
  lr_schedule_ = std::move(schedule);
}

void Server::save_checkpoint(const std::string& path, int version) const {
  FEDCAV_REQUIRE(version >= 2 && version <= 6,
                 "save_checkpoint: unsupported version requested");
  ByteBuffer buf;
  write_u64(buf, checkpoint_magic(version));
  write_u64(buf, round_);
  write_f32_span(buf, global_weights_);
  // The reverse target w_{t-1}: without it a resumed run that trips the
  // detector would "reverse" to whatever the loader improvised.
  write_f32_span(buf, cached_weights_);
  const std::optional<double> reference = detector_.reference_max();
  write_u8(buf, reference.has_value() ? 1 : 0);
  write_f64(buf, reference.value_or(0.0));
  sampler_.save_state(buf);
  write_rng_state(buf, straggler_rng_.state());
  write_u64(buf, clients_.size());
  for (const auto& client : clients_) {
    client->save_state(buf, /*with_quant_residual=*/version >= 5);
  }
  if (version >= 3) {
    // Fabric state: fault-RNG streams + in-flight wire images (and,
    // from v4, the traffic/fault accounting), so a resumed chaos run
    // replays the exact same fault sequence with its conservation
    // invariant intact.
    write_u8(buf, network_ != nullptr ? 1 : 0);
    if (network_ != nullptr) network_->save_state(buf, /*with_stats=*/version >= 4);
  }
  if (version >= 6) write_u8(buf, static_cast<std::uint8_t>(config_.rng_mode));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FEDCAV_REQUIRE(out.good(), "save_checkpoint: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  FEDCAV_REQUIRE(out.good(), "save_checkpoint: write failed for " + path);
}

void Server::load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FEDCAV_REQUIRE(in.good(), "load_checkpoint: cannot open " + path);
  ByteBuffer buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ByteReader reader(buf);
  const std::uint64_t magic = reader.read_u64();

  if (magic == kCheckpointMagicV1) {
    // Legacy file: weights + round only. The best available reverse
    // target is the restored model itself, and the detector has to
    // re-learn its reference.
    const std::uint64_t saved_round = reader.read_u64();
    std::vector<float> weights = reader.read_f32_vector();
    FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                   "load_checkpoint: weight count mismatch in " + path);
    round_ = saved_round;
    set_global_weights(std::move(weights));
    cached_weights_ = global_weights_;
    detector_.reset();
    return;
  }

  FEDCAV_REQUIRE(magic == kCheckpointMagicV2 || magic == kCheckpointMagicV3 ||
                     magic == kCheckpointMagicV4 || magic == kCheckpointMagicV5 ||
                     magic == kCheckpointMagicV6,
                 "load_checkpoint: bad magic in " + path);
  const std::uint64_t saved_round = reader.read_u64();
  std::vector<float> weights = reader.read_f32_vector();
  FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                 "load_checkpoint: weight count mismatch in " + path);
  std::vector<float> cached = reader.read_f32_vector();
  FEDCAV_REQUIRE(cached.size() == global_weights_.size(),
                 "load_checkpoint: cached weight count mismatch in " + path);
  const bool has_reference = reader.read_u8() != 0;
  const double reference = reader.read_f64();
  sampler_.load_state(reader);
  straggler_rng_.set_state(read_rng_state(reader));
  const std::uint64_t num_clients = reader.read_u64();
  FEDCAV_REQUIRE(num_clients == clients_.size(),
                 "load_checkpoint: client count mismatch in " + path);
  for (auto& client : clients_) {
    client->load_state(reader, global_weights_.size(),
                       /*with_quant_residual=*/magic == kCheckpointMagicV5 ||
                           magic == kCheckpointMagicV6);
  }
  if (magic != kCheckpointMagicV2) {
    const bool has_network = reader.read_u8() != 0;
    FEDCAV_REQUIRE(has_network == (network_ != nullptr),
                   "load_checkpoint: network presence mismatch in " + path);
    if (has_network) {
      network_->load_state(reader, /*with_stats=*/magic != kCheckpointMagicV3);
    }
  }
  // RngMode travels with the run (v6): pre-v6 files were written when
  // only the legacy streams existed, so they load in kLegacyStream no
  // matter what the server was configured with — bit-compat first.
  if (magic == kCheckpointMagicV6) {
    const std::uint8_t mode = reader.read_u8();
    FEDCAV_REQUIRE(mode <= static_cast<std::uint8_t>(RngMode::kDerived),
                   "load_checkpoint: bad rng_mode in " + path);
    config_.rng_mode = static_cast<RngMode>(mode);
  } else {
    config_.rng_mode = RngMode::kLegacyStream;
  }
  // v2 files load with the fabric left in its freshly-seeded state; v3
  // files restore the queues but restart the traffic/fault accounting
  // from zero (their layout never carried it).
  FEDCAV_REQUIRE(reader.exhausted(), "load_checkpoint: trailing bytes in " + path);

  round_ = saved_round;
  set_global_weights(std::move(weights));
  cached_weights_ = std::move(cached);
  detector_.restore_reference(has_reference ? std::optional<double>(reference)
                                            : std::nullopt);
}

void Server::write_telemetry(const std::string& trace_path,
                             const std::string& metrics_path) const {
  if (!obs::enabled()) return;
  if (transport_ != nullptr) transport_->publish_metrics();
  if (!trace_path.empty()) obs::Tracer::instance().write_chrome_trace_file(trace_path);
  if (!metrics_path.empty()) obs::registry().write_summary_file(metrics_path);
}

metrics::RoundRecord Server::run_round() {
  ++round_;
  if (lr_schedule_ != nullptr) effective_local_.lr = lr_schedule_->lr(round_);
  if (transport_ != nullptr) transport_->begin_round(round_);
  ensure_replica_pool();
  Stopwatch watch;
  metrics::RoundRecord record;
  record.round = round_;
  obs::Span round_span("round", "round");
  round_span.arg("round", static_cast<double>(round_));

  const std::uint64_t bytes_down_before =
      transport_ ? transport_->stats(kServerRank).bytes_sent : 0;
  std::uint64_t bytes_up_before = 0;
  if (transport_ != nullptr) {
    for (std::size_t i = 1; i <= clients_.size(); ++i) {
      bytes_up_before += transport_->stats(i).bytes_sent;
    }
  }

  std::vector<std::size_t> participants;
  {
    PhaseTimer phase("sample", round_, record.phases.sample);
    if (config_.rng_mode == RngMode::kDerived) {
      // Derived mode: the cohort is a pure function of (seed, round) —
      // the sampler's stream no longer depends on how many rounds ran
      // before or where (DESIGN.md §16).
      sampler_.reseed(derive_seed(config_.seed, round_, 0, RngStream::kSampler));
    }
    participants = sampler_.sample();
  }
  record.sampled = participants.size();

  // Sharded round engine (DESIGN.md §15): the cohort is split into
  // contiguous shards that stream independently, chained into one
  // fixed-order reduction — bit-identical at every shard count. 0 =
  // auto: the process default (normally 1; FEDCAV_TEST_SHARDS raises it
  // for whole-suite replays).
  const std::size_t shard_request =
      config_.shards != 0 ? config_.shards : default_round_shards();
  ShardedRoundEngine engine(pool(), participants.size(), shard_request);

  // Downlink broadcast: the global model is serialized once; the encoded
  // envelope is kept for the per-participant sends inside phase ① and
  // for NACK retransmissions. Queueing per-participant copies here would
  // put O(cohort × model) wire images in the fabric at once; sending
  // from the participant's own exchange bounds that at O(workers).
  //
  // Quantized runs code the broadcast here and ADOPT THE DECODED IMAGE as
  // the round's reference w̃_t: every later use of global_weights_ (the
  // clients' training start, the synthetic carried-mass update, the
  // strategy's base, the uplink-delta reconstruction) then agrees
  // bit-exactly with what a client decodes from the wire. fp16 makes the
  // round trip a no-op from round 2 on (requantizing an fp16 image is
  // exact); int8's per-round coding error is absorbed by the clients'
  // error-feedback residuals.
  if (config_.quant != comm::QuantMode::kNone) {
    PhaseTimer phase("broadcast", round_, record.phases.broadcast);
    comm::QuantizedDelta coded = comm::quantize(global_weights_, config_.quant);
    global_weights_ = comm::dequantize(coded);
    if (obs::enabled()) {
      static obs::Counter& saved = obs::registry().counter("comm.bytes_saved");
      const std::size_t dense = dense_payload_bytes(global_weights_.size(), 8);
      const std::size_t actual = 8 + coded.wire_size();
      if (dense > actual) saved.add(dense - actual);
    }
    if (transport_ != nullptr) {
      comm::QuantGlobalModelMsg down;
      down.round = round_;
      down.model = std::move(coded);
      downlink_env_ =
          comm::Envelope{comm::MessageType::kQuantGlobalModel, down.encode()};
    }
  } else if (transport_ != nullptr) {
    PhaseTimer phase("broadcast", round_, record.phases.broadcast);
    comm::GlobalModelMsg down;
    down.round = round_;
    down.weights = global_weights_;
    downlink_env_ = comm::Envelope{comm::MessageType::kGlobalModel, down.encode()};
  }

  // Phase ①: parallel metadata exchange (downlink + inference loss +
  // scalar report). Results land in fixed slots so every later loop is
  // deterministic (HPC-guide reduction idiom). No model-sized state per
  // participant survives this phase.
  std::vector<ParticipantOutcome> outcomes(participants.size());
  {
    PhaseTimer phase("metadata", round_, record.phases.metadata);
    if (remote_) {
      // Broadcast to every participant before collecting anything, so
      // all workers train concurrently; then collect serially in fixed
      // participant order (a SocketTransport is single-threaded).
      for (std::size_t i = 0; i < participants.size(); ++i) {
        transport_->send(kServerRank, participants[i] + 1, downlink_env_);
      }
    }
    engine.run_metadata(
        [&](std::size_t i) {
          outcomes[i] = run_participant_metadata(participants[i]);
        },
        remote_);
  }

  // Collect, in fixed participant order: sampled clients whose exchange
  // failed (crash, retry exhaustion, deadline) become dropouts — the
  // fault-fabric analogue of a straggler.
  std::vector<ClientUpdate> metadata;    // scalars only; weights stay empty
  std::vector<std::size_t> surviving;
  std::vector<std::size_t> survivor_slots;  // original sampled slot (shard owner)
  std::vector<double> survivor_elapsed;  // phase-① simulated time, carried into ②
  metadata.reserve(outcomes.size());
  surviving.reserve(outcomes.size());
  survivor_slots.reserve(outcomes.size());
  survivor_elapsed.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    record.retries += outcomes[i].retries;
    record.crc_failures += outcomes[i].crc_failures;
    record.stale_discards += outcomes[i].stale_discards;
    if (outcomes[i].deadline_missed) record.deadline_misses += 1;
    if (outcomes[i].metadata.has_value()) {
      metadata.push_back(std::move(*outcomes[i].metadata));
      surviving.push_back(participants[i]);
      survivor_slots.push_back(i);
      survivor_elapsed.push_back(outcomes[i].elapsed_s);
    } else {
      record.dropouts += 1;
      engine.note_dropout(i);
    }
  }
  outcomes.clear();

  // Stragglers: each received report is additionally lost independently
  // with the configured probability; the round proceeds with whoever
  // got through.
  if (config_.straggler_drop_prob > 0.0 && !metadata.empty()) {
    PhaseTimer phase("straggler_filter", round_, record.phases.straggler_filter);
    // Draw every survivor's bernoulli first (the RNG stream consumption
    // order is pinned by the golden runs), then apply the legacy
    // keep-first guarantee before committing anything to the ledgers.
    std::vector<char> keep(metadata.size(), 1);
    std::size_t kept_count = 0;
    if (config_.rng_mode == RngMode::kDerived) {
      // Derived mode: one pure coin per (round, client) — any process
      // that knows the seed reaches the same verdict, so a remote worker
      // decides its own fate locally (skips training + report) and the
      // server's filter here agrees without coordination. No keep-first
      // rescue: a worker deciding alone cannot know it was the last
      // survivor, so a fully-straggled round skips via quorum instead.
      for (std::size_t i = 0; i < metadata.size(); ++i) {
        if (derived_bernoulli(config_.seed, round_, metadata[i].client_id,
                              RngStream::kStraggler, config_.straggler_drop_prob)) {
          keep[i] = 0;
        } else {
          ++kept_count;
        }
      }
    } else {
      for (std::size_t i = 0; i < metadata.size(); ++i) {
        if (straggler_rng_.bernoulli(config_.straggler_drop_prob)) {
          keep[i] = 0;
        } else {
          ++kept_count;
        }
      }
      if (kept_count == 0 && config_.min_aggregate_clients <= 1) {
        // Everyone dropped: keep the first report so the round is defined
        // (legacy guarantee; a quorum > 1 skips the round instead).
        keep.front() = 1;
        kept_count = 1;
      }
    }
    std::vector<ClientUpdate> kept_meta;
    std::vector<std::size_t> kept_participants;
    std::vector<std::size_t> kept_slots;
    std::vector<double> kept_elapsed;
    kept_meta.reserve(kept_count);
    kept_participants.reserve(kept_count);
    kept_slots.reserve(kept_count);
    kept_elapsed.reserve(kept_count);
    for (std::size_t i = 0; i < metadata.size(); ++i) {
      if (keep[i]) {
        kept_meta.push_back(std::move(metadata[i]));
        kept_participants.push_back(surviving[i]);
        kept_slots.push_back(survivor_slots[i]);
        kept_elapsed.push_back(survivor_elapsed[i]);
      } else {
        engine.note_straggler(survivor_slots[i]);
      }
    }
    record.straggler_drops = metadata.size() - kept_meta.size();
    metadata = std::move(kept_meta);
    surviving = std::move(kept_participants);
    survivor_slots = std::move(kept_slots);
    survivor_elapsed = std::move(kept_elapsed);
  }
  record.participants = metadata.size();
  FEDCAV_REQUIRE(record.sampled ==
                     record.participants + record.dropouts + record.straggler_drops,
                 "Server: round accounting invariant violated");
  // Same invariant at shard granularity: every sampled slot's fate must
  // have been booked against its owning shard (DESIGN.md §15).
  engine.check_accounting(record.participants, record.dropouts,
                          record.straggler_drops);

  // Quorum: with fewer survivors than min_aggregate_clients the round is
  // skipped outright — no training, no attack, no detection, no
  // aggregation; the global model carries forward unchanged.
  record.skipped = metadata.size() < config_.min_aggregate_clients;
  if (record.skipped) {
    FEDCAV_LOG_INFO << "round " << round_ << ": quorum not met (" << metadata.size()
                    << " < " << config_.min_aggregate_clients << "), skipping round";
  }

  const bool attack_now = !record.skipped && adversary_ != nullptr &&
                          attack_rounds_.count(round_) > 0 && !metadata.empty();
  const bool streaming = strategy_->streaming_aggregation();
  // Pipeline window: how many participants may train (and thus how many
  // full updates may be materialized) ahead of the fold cursor in
  // phase ② — the same O(workers × model) bound the old wave barrier
  // enforced, without the barrier.
  const std::size_t wave = std::max<std::size_t>(std::size_t{1}, pool().size());

  // Phase ② driver: stream survivors [first_slot, end) through the
  // sharded engine — training overlaps the serial ascending-order folds
  // instead of phase-barriering each wave. `sink(slot, update)` receives
  // slots strictly in order (nullopt = upload failure), so the
  // downstream fold is independent of the worker count. Updates live in
  // a ring of `wave` cells: the scheduler guarantees train(s + wave)
  // cannot start before fold(s) freed its cell. Fresh per-slot counters
  // avoid double-counting the phase-① tallies already in the record.
  struct StreamSlot {
    std::optional<ClientUpdate> update;
    ParticipantOutcome counters;
  };
  auto run_stream = [&](std::size_t first_slot, auto&& sink) {
    const std::size_t n = surviving.size();
    if (first_slot >= n) return;
    // The span keeps the historical "local_update" name: training
    // dominates the stream, and the serial folds it overlaps get their
    // own agg.shard spans from the engine.
    obs::Span span("local_update", "round.phase");
    span.arg("round", static_cast<double>(round_));
    std::vector<StreamSlot> ring(std::min(wave, n - first_slot));
    auto train = [&](std::size_t i) {
      StreamSlot& slot = ring[i % ring.size()];
      slot.counters = ParticipantOutcome{};
      slot.counters.elapsed_s = survivor_elapsed[i];
      slot.update = run_participant_train(surviving[i],
                                          metadata[i].inference_loss,
                                          slot.counters);
    };
    auto fold = [&](std::size_t i) {
      StreamSlot& slot = ring[i % ring.size()];
      record.retries += slot.counters.retries;
      record.crc_failures += slot.counters.crc_failures;
      record.stale_discards += slot.counters.stale_discards;
      if (slot.counters.deadline_missed) record.deadline_misses += 1;
      sink(i, std::move(slot.update));
      slot.update.reset();
    };
    engine.run_streaming(
        first_slot, n, wave, train, fold,
        [&](std::size_t i) { return survivor_slots[i]; }, remote_);
  };

  // A phase-② upload failure after a successful metadata phase: the
  // client's γ mass was already committed, so fold the unchanged global
  // weights in its place — the weighted average then carries γ_j of w_t
  // forward instead of silently renormalizing over the survivors.
  auto make_synthetic = [&](std::size_t slot) {
    ClientUpdate synthetic;
    synthetic.client_id = metadata[slot].client_id;
    synthetic.num_samples = metadata[slot].num_samples;
    synthetic.inference_loss = metadata[slot].inference_loss;
    synthetic.weights = global_weights_;
    record.upload_failures += 1;
    engine.note_upload_failure(survivor_slots[slot]);
    return synthetic;
  };

  bool reversed = false;
  std::vector<double> losses(metadata.size());

  if (!record.skipped && streaming) {
    // Streaming path: γ is a pure function of the metadata scalars, so
    // detection and aggregation weights are decided before any full
    // update is materialized, and each report is folded into the
    // accumulator and freed — peak model memory stays O(wave × model).
    for (std::size_t i = 0; i < metadata.size(); ++i) {
      losses[i] = metadata[i].inference_loss;
    }

    // Attack rounds: train the victim (first survivor) up front so the
    // adversary has a real update to corrupt. The corrupted report is
    // what the server "received": its loss drives detection and its
    // scalars drive γ, exactly as in the materializing path.
    std::optional<ClientUpdate> victim_update;
    bool victim_trained = false;
    if (attack_now) {
      ParticipantOutcome victim_counters;
      {
        PhaseTimer phase("local_update", round_, record.phases.local_update);
        victim_counters.elapsed_s = survivor_elapsed[0];
        victim_update = run_participant_train(surviving[0], metadata[0].inference_loss,
                                              victim_counters);
      }
      victim_trained = true;
      record.retries += victim_counters.retries;
      record.crc_failures += victim_counters.crc_failures;
      record.stale_discards += victim_counters.stale_discards;
      if (victim_counters.deadline_missed) record.deadline_misses += 1;
      if (victim_update.has_value()) {
        PhaseTimer phase("attack", round_, record.phases.attack);
        attack::AttackContext ctx;
        ctx.global = &global_weights_;
        ctx.round = round_;
        // The cohort the adversary scales against is the one that
        // reaches aggregation, and the honest γ estimate needs only the
        // metadata scalars for a streaming strategy.
        ctx.participants = metadata.size();
        ctx.estimated_gamma = strategy_->aggregation_weights(metadata).front();
        *victim_update = adversary_->corrupt(std::move(*victim_update), ctx);
        metadata[0].inference_loss = victim_update->inference_loss;
        metadata[0].num_samples = victim_update->num_samples;
        losses[0] = victim_update->inference_loss;
        record.attacked = true;
      }
      // Victim upload failure: nothing reached the server to corrupt;
      // the round proceeds un-attacked and slot 0 folds as carried mass.
    }

    {
      PhaseTimer phase("detect", round_, record.phases.detect);
      sampler_.observe_losses(surviving, losses);
      record.mean_inference_loss = 0.0;
      for (double f : losses) record.mean_inference_loss += f;
      record.mean_inference_loss /= static_cast<double>(losses.size());
      record.max_inference_loss = *std::max_element(losses.begin(), losses.end());
      if (config_.detection_enabled) {
        const core::DetectionResult detection = detector_.check(losses);
        record.detection_fired = detection.abnormal;
        if (detection.abnormal) {
          FEDCAV_LOG_INFO << "round " << round_ << ": detector fired ("
                          << detection.votes << "/" << detection.voters
                          << " votes), reversing global model";
          global_weights_ = cached_weights_;
          reversed = true;
        }
      }
      record.reversed = reversed;
    }

    if (!reversed) {
      {
        PhaseTimer phase("aggregate", round_, record.phases.aggregate);
        cached_weights_ = global_weights_;
        if (config_.detection_enabled) detector_.commit(losses);
        strategy_->begin_aggregation(global_weights_, metadata);
        if (victim_trained) {
          if (victim_update.has_value()) {
            strategy_->accumulate(std::move(*victim_update));
          } else {
            strategy_->accumulate(make_synthetic(0));
          }
          victim_update.reset();
        }
      }
      run_stream(victim_trained ? 1 : 0,
                 [&](std::size_t slot, std::optional<ClientUpdate> u) {
                   if (u.has_value()) {
                     strategy_->accumulate(std::move(*u));
                   } else {
                     strategy_->accumulate(make_synthetic(slot));
                   }
                 });
      PhaseTimer phase("aggregate", round_, record.phases.aggregate);
      global_weights_ = strategy_->finish_aggregation();
    }
    // Reversed rounds skip phase ② for the remaining survivors entirely:
    // their full updates would be discarded anyway (DESIGN.md §11 — a
    // deliberate behavioral change from the materializing flow, which
    // trained everyone before detection could reject the round).
  } else if (!record.skipped) {
    // Materializing fallback for strategies that need every update at
    // once (order statistics like the robust rules, or user strategies
    // that don't opt into streaming). Exact pre-streaming semantics at
    // the old O(cohort × model) cost: train everyone, corrupt the first
    // survivor in place, detect on the post-corruption losses, then run
    // the classic one-shot aggregate().
    std::vector<ClientUpdate> updates(metadata.size());
    run_stream(0, [&](std::size_t slot, std::optional<ClientUpdate> u) {
      updates[slot] = u.has_value() ? std::move(*u) : make_synthetic(slot);
    });

    if (attack_now) {
      PhaseTimer phase("attack", round_, record.phases.attack);
      attack::AttackContext ctx;
      ctx.global = &global_weights_;
      ctx.round = round_;
      ctx.participants = updates.size();
      const std::vector<double> honest_gamma = strategy_->aggregation_weights(updates);
      ctx.estimated_gamma = honest_gamma.front();
      updates.front() = adversary_->corrupt(std::move(updates.front()), ctx);
      record.attacked = true;
    }

    {
      PhaseTimer phase("detect", round_, record.phases.detect);
      for (std::size_t i = 0; i < updates.size(); ++i) {
        losses[i] = updates[i].inference_loss;
      }
      sampler_.observe_losses(surviving, losses);
      record.mean_inference_loss = 0.0;
      for (double f : losses) record.mean_inference_loss += f;
      record.mean_inference_loss /= static_cast<double>(losses.size());
      record.max_inference_loss = *std::max_element(losses.begin(), losses.end());
      if (config_.detection_enabled) {
        const core::DetectionResult detection = detector_.check(losses);
        record.detection_fired = detection.abnormal;
        if (detection.abnormal) {
          FEDCAV_LOG_INFO << "round " << round_ << ": detector fired ("
                          << detection.votes << "/" << detection.voters
                          << " votes), reversing global model";
          global_weights_ = cached_weights_;
          reversed = true;
        }
      }
      record.reversed = reversed;
    }

    if (!reversed) {
      PhaseTimer phase("aggregate", round_, record.phases.aggregate);
      cached_weights_ = global_weights_;
      if (config_.detection_enabled) detector_.commit(losses);
      global_weights_ = strategy_->aggregate(global_weights_, updates);
    }
  }

  // Phase attribution for the overlapped stream: the serial fold side is
  // aggregation time; everything the pipeline ran concurrently with it
  // (training + uplink protocol) is local-update time. The two no longer
  // nest — overlapping them was the point — so the split is wall time
  // inside the fold callbacks vs. the remainder of the stream.
  record.phases.aggregate += engine.fold_seconds();
  record.phases.local_update +=
      std::max(0.0, engine.stream_seconds() - engine.fold_seconds());

  if (!record.skipped && obs::enabled()) {
    engine.publish_metrics();
    // Analytic peak of aggregation-owned tensor bytes: the streaming
    // path holds one f64 accumulator plus at most `wave` materialized f32
    // updates; the buffered path holds every survivor's update.
    const double dim = static_cast<double>(global_weights_.size());
    static obs::Gauge& peak_gauge = obs::registry().gauge("agg.peak_bytes");
    const double peak =
        streaming
            ? dim * (static_cast<double>(sizeof(double)) +
                     static_cast<double>(std::min(wave, metadata.size())) *
                         static_cast<double>(sizeof(float)))
            : dim * static_cast<double>(metadata.size()) *
                  static_cast<double>(sizeof(float));
    peak_gauge.set(peak);
  }

  {
    PhaseTimer phase("eval", round_, record.phases.eval);
    global_model_->set_weights(global_weights_);
    // Sharded over the round's thread pool + replica leases; the t_eval
    // CSV column reflects the fan-out. Per-batch fixed slots keep the
    // result bit-identical to the serial path at any pool size.
    const metrics::EvalResult eval =
        metrics::evaluate(*replica_pool_, global_weights_, test_set_, pool(),
                          config_.eval_batch_size);
    record.test_accuracy = eval.accuracy;
    record.test_loss = eval.mean_loss;
  }

  record.wall_seconds = watch.seconds();
  if (transport_ != nullptr) {
    record.bytes_down = transport_->stats(kServerRank).bytes_sent - bytes_down_before;
    std::uint64_t bytes_up_after = 0;
    for (std::size_t i = 1; i <= clients_.size(); ++i) {
      bytes_up_after += transport_->stats(i).bytes_sent;
    }
    record.bytes_up = bytes_up_after - bytes_up_before;
    if (obs::enabled()) transport_->publish_metrics();
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("server.rounds").add(1);
    reg.histogram("server.round_seconds").observe(record.wall_seconds);
    if (record.skipped) reg.counter("server.rounds_skipped").add(1);
    if (record.dropouts > 0) {
      reg.counter("server.dropouts").add(static_cast<std::uint64_t>(record.dropouts));
    }
    if (record.retries > 0) reg.counter("comm.retries").add(record.retries);
    if (record.crc_failures > 0) {
      reg.counter("comm.crc_failures").add(record.crc_failures);
    }
    if (record.stale_discards > 0) {
      reg.counter("comm.stale_discards").add(record.stale_discards);
    }
    if (record.deadline_misses > 0) {
      reg.counter("comm.deadline_misses")
          .add(static_cast<std::uint64_t>(record.deadline_misses));
    }
    if (record.upload_failures > 0) {
      reg.counter("server.upload_failures")
          .add(static_cast<std::uint64_t>(record.upload_failures));
    }
  }

  history_.add(record);
  return record;
}

void Server::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace fedcav::fl
