#include "src/fl/server.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iterator>

#include "src/metrics/evaluation.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::fl {

namespace {

constexpr std::size_t kServerRank = 0;

// Checkpoint formats. v1 (PR 2) carried only the round counter and the
// global weights; v2 adds everything needed for bit-identical resume;
// v3 appends the comm fabric's fault-RNG streams and in-flight
// messages so chaos runs also resume bit-identically.
constexpr std::uint64_t kCheckpointMagicV1 = 0xfedca5c4ec9017ULL;
constexpr std::uint64_t kCheckpointMagicV2 = 0xfedca5c4ec9018ULL;
constexpr std::uint64_t kCheckpointMagicV3 = 0xfedca5c4ec9019ULL;

/// Attributes a scope's wall time to one RoundPhases field and mirrors
/// it as a "round.phase" trace span. The Stopwatch is unconditional
/// (two steady-clock reads); the span is inert unless telemetry is on.
class PhaseTimer {
 public:
  PhaseTimer(const char* name, std::size_t round, double& out)
      : span_(name, "round.phase"), out_(out) {
    span_.arg("round", static_cast<double>(round));
  }
  ~PhaseTimer() { out_ += watch_.seconds(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  obs::Span span_;
  Stopwatch watch_;
  double& out_;
};

}  // namespace

void ServerConfig::validate(std::size_t num_clients) const {
  FEDCAV_REQUIRE(sample_ratio > 0.0 && sample_ratio <= 1.0,
                 "ServerConfig: sample_ratio must be in (0, 1]");
  FEDCAV_REQUIRE(num_clients >= 1, "ServerConfig: need at least one client");
  FEDCAV_REQUIRE(eval_batch_size > 0, "ServerConfig: zero eval batch size");
  FEDCAV_REQUIRE(straggler_drop_prob >= 0.0 && straggler_drop_prob < 1.0,
                 "ServerConfig: straggler_drop_prob must be in [0, 1)");
  FEDCAV_REQUIRE(min_aggregate_clients >= 1,
                 "ServerConfig: min_aggregate_clients must be >= 1");
  FEDCAV_REQUIRE(min_aggregate_clients <= num_clients,
                 "ServerConfig: min_aggregate_clients exceeds the client count");
  FEDCAV_REQUIRE(max_retries <= 16,
                 "ServerConfig: max_retries > 16 (exponential backoff overflows)");
  FEDCAV_REQUIRE(retry_backoff_s >= 0.0, "ServerConfig: negative retry_backoff_s");
  FEDCAV_REQUIRE(uplink_deadline_s >= 0.0, "ServerConfig: negative uplink_deadline_s");
}

Server::Server(std::unique_ptr<nn::Model> global_model,
               std::unique_ptr<AggregationStrategy> strategy,
               std::vector<std::unique_ptr<Client>> clients, data::Dataset test_set,
               ServerConfig config)
    : global_model_(std::move(global_model)),
      strategy_(std::move(strategy)),
      clients_(std::move(clients)),
      test_set_(std::move(test_set)),
      config_(config),
      effective_local_(config.local),
      detector_(config.detector),
      sampler_(config.sampler, clients_.size(), config.sample_ratio, config.seed),
      straggler_rng_(config.seed ^ 0x57a661e2ULL) {
  FEDCAV_REQUIRE(global_model_ != nullptr, "Server: null global model");
  FEDCAV_REQUIRE(strategy_ != nullptr, "Server: null strategy");
  FEDCAV_REQUIRE(!clients_.empty(), "Server: no clients");
  FEDCAV_REQUIRE(!test_set_.empty(), "Server: empty test set");
  config_.validate(clients_.size());
  strategy_->apply_local_overrides(effective_local_);
  if (config_.telemetry) obs::set_enabled(true);

  global_weights_ = global_model_->get_weights();
  cached_weights_ = global_weights_;
  if (config_.use_network) {
    comm::NetworkConfig net = config_.network;
    net.num_endpoints = clients_.size() + 1;
    network_ = std::make_unique<comm::InMemoryNetwork>(net);
  }
}

void Server::set_adversary(std::shared_ptr<attack::Adversary> adversary,
                           std::set<std::size_t> attack_rounds) {
  adversary_ = std::move(adversary);
  attack_rounds_ = std::move(attack_rounds);
}

void Server::set_global_weights(nn::Weights weights) {
  FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                 "Server::set_global_weights: size mismatch");
  global_weights_ = std::move(weights);
  global_model_->set_weights(global_weights_);
}

double Server::evaluate_accuracy() {
  global_model_->set_weights(global_weights_);
  return metrics::accuracy(*global_model_, test_set_, config_.eval_batch_size);
}

void Server::redistribute_data(std::vector<data::Dataset> per_client) {
  FEDCAV_REQUIRE(per_client.size() == clients_.size(),
                 "Server::redistribute_data: dataset count mismatch");
  for (std::size_t i = 0; i < clients_.size(); ++i) {
    clients_[i]->set_local_data(std::move(per_client[i]));
  }
}

ThreadPool& Server::pool() const {
  return pool_ != nullptr ? *pool_ : global_thread_pool();
}

ParticipantOutcome Server::run_participant(std::size_t client_index) {
  obs::Span span("participant", "client");
  span.arg("client", static_cast<double>(client_index));
  ParticipantOutcome out;
  Client& client = *clients_[client_index];
  if (network_ == nullptr) {
    out.update = client.local_update(global_weights_, effective_local_);
    return out;
  }
  // Weights travel through the fabric both ways so byte counters see
  // the genuine serialized payloads (Fig. 3 phases ① and ②). The
  // simulation plays both endpoints of each link on this thread, which
  // lets the NACK-and-retry protocol run synchronously: drain the link
  // until a CRC-clean message for this round appears, otherwise NACK
  // and retransmit with exponential simulated-time backoff, up to
  // max_retries. Every control and retransmitted message is metered
  // and fault-injected like any other traffic.
  const std::size_t rank = client_index + 1;

  // Phase ① downlink: the broadcast phase queued this round's global
  // model (and possibly faults mangled it in flight).
  std::optional<comm::GlobalModelMsg> down;
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !down; ++attempt) {
    while (auto wire = network_->try_recv_wire(rank, kServerRank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        out.crc_failures += 1;  // corrupted or truncated in flight
        continue;
      }
      if (env->type != comm::MessageType::kGlobalModel) {
        out.stale_discards += 1;  // e.g. a NACK left over from a past round
        continue;
      }
      ByteReader reader(env->payload);
      comm::GlobalModelMsg msg = comm::GlobalModelMsg::decode(reader);
      if (msg.round != round_) {
        out.stale_discards += 1;  // duplicate from an earlier round
        continue;
      }
      down = std::move(msg);
      break;
    }
    if (down.has_value() || attempt == config_.max_retries) break;
    comm::NackMsg nack;
    nack.round = round_;
    nack.expected = comm::MessageType::kGlobalModel;
    network_->send(rank, kServerRank,
                   comm::Envelope{comm::MessageType::kNack, nack.encode()});
    network_->add_link_delay(
        kServerRank, rank,
        config_.retry_backoff_s * static_cast<double>(1ULL << attempt));
    network_->send(kServerRank, rank, downlink_env_);
    out.retries += 1;
  }
  if (!down.has_value()) return out;  // unreachable client: dropout

  ClientUpdate update = client.local_update(down->weights, effective_local_);

  comm::ClientReportMsg up;
  up.round = round_;
  up.client_id = client.id();
  up.num_samples = update.num_samples;
  up.inference_loss = update.inference_loss;
  up.weights = update.weights;
  const comm::Envelope report_env{comm::MessageType::kClientReport, up.encode()};

  // Phase ② uplink: same protocol in the other direction, plus an
  // optional simulated-time deadline that turns a slow (heavily
  // retried) report into a straggler-equivalent dropout.
  double elapsed_s = 0.0;
  std::optional<comm::ClientReportMsg> report;
  for (std::size_t attempt = 0; attempt <= config_.max_retries && !report; ++attempt) {
    network_->send(rank, kServerRank, report_env);
    elapsed_s += network_->model_transfer_seconds(report_env.wire_size());
    while (auto wire = network_->try_recv_wire(kServerRank, rank)) {
      auto env = comm::Envelope::try_decode(*wire);
      if (!env.has_value()) {
        out.crc_failures += 1;
        continue;
      }
      if (env->type != comm::MessageType::kClientReport) {
        out.stale_discards += 1;
        continue;
      }
      ByteReader reader(env->payload);
      comm::ClientReportMsg msg = comm::ClientReportMsg::decode(reader);
      if (msg.round != round_) {
        out.stale_discards += 1;
        continue;
      }
      report = std::move(msg);
      break;
    }
    if (report.has_value() || attempt == config_.max_retries) break;
    comm::NackMsg nack;
    nack.round = round_;
    nack.expected = comm::MessageType::kClientReport;
    network_->send(kServerRank, rank,
                   comm::Envelope{comm::MessageType::kNack, nack.encode()});
    const double backoff =
        config_.retry_backoff_s * static_cast<double>(1ULL << attempt);
    network_->add_link_delay(rank, kServerRank, backoff);
    elapsed_s += backoff;
    out.retries += 1;
  }
  if (!report.has_value()) return out;  // uplink exhausted: dropout
  if (config_.uplink_deadline_s > 0.0 && elapsed_s > config_.uplink_deadline_s) {
    out.deadline_missed = true;
    return out;
  }
  update.weights = std::move(report->weights);
  update.inference_loss = report->inference_loss;
  out.update = std::move(update);
  return out;
}

void Server::set_lr_schedule(std::unique_ptr<nn::LrSchedule> schedule) {
  lr_schedule_ = std::move(schedule);
}

void Server::save_checkpoint(const std::string& path, int version) const {
  FEDCAV_REQUIRE(version == 2 || version == 3,
                 "save_checkpoint: unsupported version requested");
  ByteBuffer buf;
  write_u64(buf, version == 3 ? kCheckpointMagicV3 : kCheckpointMagicV2);
  write_u64(buf, round_);
  write_f32_span(buf, global_weights_);
  // The reverse target w_{t-1}: without it a resumed run that trips the
  // detector would "reverse" to whatever the loader improvised.
  write_f32_span(buf, cached_weights_);
  const std::optional<double> reference = detector_.reference_max();
  write_u8(buf, reference.has_value() ? 1 : 0);
  write_f64(buf, reference.value_or(0.0));
  sampler_.save_state(buf);
  write_rng_state(buf, straggler_rng_.state());
  write_u64(buf, clients_.size());
  for (const auto& client : clients_) client->save_state(buf);
  if (version == 3) {
    // Fabric state: fault-RNG streams + in-flight wire images, so a
    // resumed chaos run replays the exact same fault sequence.
    write_u8(buf, network_ != nullptr ? 1 : 0);
    if (network_ != nullptr) network_->save_state(buf);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FEDCAV_REQUIRE(out.good(), "save_checkpoint: cannot open " + path);
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
  FEDCAV_REQUIRE(out.good(), "save_checkpoint: write failed for " + path);
}

void Server::load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FEDCAV_REQUIRE(in.good(), "load_checkpoint: cannot open " + path);
  ByteBuffer buf((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ByteReader reader(buf);
  const std::uint64_t magic = reader.read_u64();

  if (magic == kCheckpointMagicV1) {
    // Legacy file: weights + round only. The best available reverse
    // target is the restored model itself, and the detector has to
    // re-learn its reference.
    const std::uint64_t saved_round = reader.read_u64();
    std::vector<float> weights = reader.read_f32_vector();
    FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                   "load_checkpoint: weight count mismatch in " + path);
    round_ = saved_round;
    set_global_weights(std::move(weights));
    cached_weights_ = global_weights_;
    detector_.reset();
    return;
  }

  FEDCAV_REQUIRE(magic == kCheckpointMagicV2 || magic == kCheckpointMagicV3,
                 "load_checkpoint: bad magic in " + path);
  const std::uint64_t saved_round = reader.read_u64();
  std::vector<float> weights = reader.read_f32_vector();
  FEDCAV_REQUIRE(weights.size() == global_weights_.size(),
                 "load_checkpoint: weight count mismatch in " + path);
  std::vector<float> cached = reader.read_f32_vector();
  FEDCAV_REQUIRE(cached.size() == global_weights_.size(),
                 "load_checkpoint: cached weight count mismatch in " + path);
  const bool has_reference = reader.read_u8() != 0;
  const double reference = reader.read_f64();
  sampler_.load_state(reader);
  straggler_rng_.set_state(read_rng_state(reader));
  const std::uint64_t num_clients = reader.read_u64();
  FEDCAV_REQUIRE(num_clients == clients_.size(),
                 "load_checkpoint: client count mismatch in " + path);
  for (auto& client : clients_) client->load_state(reader);
  if (magic == kCheckpointMagicV3) {
    const bool has_network = reader.read_u8() != 0;
    FEDCAV_REQUIRE(has_network == (network_ != nullptr),
                   "load_checkpoint: network presence mismatch in " + path);
    if (has_network) network_->load_state(reader);
  }
  // v2 files load with the fabric left in its freshly-seeded state.
  FEDCAV_REQUIRE(reader.exhausted(), "load_checkpoint: trailing bytes in " + path);

  round_ = saved_round;
  set_global_weights(std::move(weights));
  cached_weights_ = std::move(cached);
  detector_.restore_reference(has_reference ? std::optional<double>(reference)
                                            : std::nullopt);
}

void Server::write_telemetry(const std::string& trace_path,
                             const std::string& metrics_path) const {
  if (!obs::enabled()) return;
  if (network_ != nullptr) network_->publish_metrics();
  if (!trace_path.empty()) obs::Tracer::instance().write_chrome_trace_file(trace_path);
  if (!metrics_path.empty()) obs::registry().write_summary_file(metrics_path);
}

metrics::RoundRecord Server::run_round() {
  ++round_;
  if (lr_schedule_ != nullptr) effective_local_.lr = lr_schedule_->lr(round_);
  if (network_ != nullptr) network_->begin_round(round_);
  Stopwatch watch;
  metrics::RoundRecord record;
  record.round = round_;
  obs::Span round_span("round", "round");
  round_span.arg("round", static_cast<double>(round_));

  const std::uint64_t bytes_down_before =
      network_ ? network_->stats(kServerRank).bytes_sent : 0;
  std::uint64_t bytes_up_before = 0;
  if (network_ != nullptr) {
    for (std::size_t i = 1; i <= clients_.size(); ++i) {
      bytes_up_before += network_->stats(i).bytes_sent;
    }
  }

  std::vector<std::size_t> participants;
  {
    PhaseTimer phase("sample", round_, record.phases.sample);
    participants = sampler_.sample();
  }
  record.participants = participants.size();

  // Downlink broadcast: the global model is serialized once and queued
  // to every participant before any of them starts training. The
  // encoded envelope is kept for NACK retransmissions.
  if (network_ != nullptr) {
    PhaseTimer phase("broadcast", round_, record.phases.broadcast);
    comm::GlobalModelMsg down;
    down.round = round_;
    down.weights = global_weights_;
    downlink_env_ = comm::Envelope{comm::MessageType::kGlobalModel, down.encode()};
    for (std::size_t client_index : participants) {
      network_->send(kServerRank, client_index + 1, downlink_env_);
    }
  }

  // Phase ①+②ᶜˡⁱᵉⁿᵗ: parallel local work; results land in fixed slots so
  // aggregation order is deterministic (HPC-guide reduction idiom).
  std::vector<ParticipantOutcome> outcomes(participants.size());
  {
    PhaseTimer phase("local_update", round_, record.phases.local_update);
    pool().parallel_for(participants.size(), [&](std::size_t i) {
      outcomes[i] = run_participant(participants[i]);
    });
  }

  // Collect, in fixed participant order: sampled clients whose exchange
  // failed (crash, retry exhaustion, deadline) become dropouts — the
  // fault-fabric analogue of a straggler.
  std::vector<ClientUpdate> updates;
  std::vector<std::size_t> surviving;
  updates.reserve(outcomes.size());
  surviving.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    record.retries += outcomes[i].retries;
    record.crc_failures += outcomes[i].crc_failures;
    if (outcomes[i].update.has_value()) {
      updates.push_back(std::move(*outcomes[i].update));
      surviving.push_back(participants[i]);
    } else {
      record.dropouts += 1;
    }
  }
  record.participants = updates.size();

  // Stragglers: each received report is additionally lost independently
  // with the configured probability; the round proceeds with whoever
  // got through.
  if (config_.straggler_drop_prob > 0.0 && !updates.empty()) {
    PhaseTimer phase("straggler_filter", round_, record.phases.straggler_filter);
    std::vector<ClientUpdate> kept_updates;
    std::vector<std::size_t> kept_participants;
    for (std::size_t i = 0; i < updates.size(); ++i) {
      if (!straggler_rng_.bernoulli(config_.straggler_drop_prob)) {
        kept_updates.push_back(std::move(updates[i]));
        kept_participants.push_back(surviving[i]);
      }
    }
    if (kept_updates.empty() && config_.min_aggregate_clients <= 1) {
      // Everyone dropped: keep the first report so the round is defined
      // (legacy guarantee; a quorum > 1 skips the round instead).
      kept_updates.push_back(std::move(updates.front()));
      kept_participants.push_back(surviving.front());
    }
    updates = std::move(kept_updates);
    surviving = std::move(kept_participants);
    record.participants = updates.size();
  }

  // Quorum: with fewer surviving updates than min_aggregate_clients the
  // round is skipped outright — no attack, no detection, no
  // aggregation; the global model carries forward unchanged.
  record.skipped = updates.size() < config_.min_aggregate_clients;
  if (record.skipped) {
    FEDCAV_LOG_INFO << "round " << round_ << ": quorum not met (" << updates.size()
                    << " < " << config_.min_aggregate_clients << "), skipping round";
  }

  // Adversary hijacks the first surviving participant on attack rounds.
  const bool attack_now = !record.skipped && adversary_ != nullptr &&
                          attack_rounds_.count(round_) > 0 && !updates.empty();
  if (attack_now) {
    PhaseTimer phase("attack", round_, record.phases.attack);
    attack::AttackContext ctx;
    ctx.global = &global_weights_;
    ctx.round = round_;
    // The cohort the adversary scales against is the one that reaches
    // aggregation: after straggler filtering, participants.size() counts
    // reports the server never received, while estimated_gamma below is
    // already computed over the surviving updates.
    ctx.participants = updates.size();
    const std::vector<double> honest_gamma = strategy_->aggregation_weights(updates);
    ctx.estimated_gamma = honest_gamma.front();
    updates.front() = adversary_->corrupt(std::move(updates.front()), ctx);
    record.attacked = true;
  }

  // Phase ②ˢᵉʳᵛᵉʳ: detection on the fresh inference losses (they were
  // measured on w_t, i.e. on the *previous* round's aggregation result).
  bool reversed = false;
  std::vector<double> losses(updates.size());
  if (!record.skipped) {
    PhaseTimer phase("detect", round_, record.phases.detect);
    for (std::size_t i = 0; i < updates.size(); ++i) losses[i] = updates[i].inference_loss;
    sampler_.observe_losses(surviving, losses);
    record.mean_inference_loss = 0.0;
    for (double f : losses) record.mean_inference_loss += f;
    record.mean_inference_loss /= static_cast<double>(losses.size());
    record.max_inference_loss = *std::max_element(losses.begin(), losses.end());

    if (config_.detection_enabled) {
      const core::DetectionResult detection = detector_.check(losses);
      record.detection_fired = detection.abnormal;
      if (detection.abnormal) {
        // Reverse: discard this round's updates, restore the cached model.
        FEDCAV_LOG_INFO << "round " << round_ << ": detector fired (" << detection.votes
                        << "/" << detection.voters << " votes), reversing global model";
        global_weights_ = cached_weights_;
        reversed = true;
      }
    }
    record.reversed = reversed;
  }

  // Phase ③: aggregate (normal rounds only).
  if (!record.skipped && !reversed) {
    PhaseTimer phase("aggregate", round_, record.phases.aggregate);
    cached_weights_ = global_weights_;
    if (config_.detection_enabled) detector_.commit(losses);
    global_weights_ = strategy_->aggregate(global_weights_, updates);
  }

  {
    PhaseTimer phase("eval", round_, record.phases.eval);
    global_model_->set_weights(global_weights_);
    const metrics::EvalResult eval =
        metrics::evaluate(*global_model_, test_set_, config_.eval_batch_size);
    record.test_accuracy = eval.accuracy;
    record.test_loss = eval.mean_loss;
  }

  record.wall_seconds = watch.seconds();
  if (network_ != nullptr) {
    record.bytes_down = network_->stats(kServerRank).bytes_sent - bytes_down_before;
    std::uint64_t bytes_up_after = 0;
    for (std::size_t i = 1; i <= clients_.size(); ++i) {
      bytes_up_after += network_->stats(i).bytes_sent;
    }
    record.bytes_up = bytes_up_after - bytes_up_before;
    if (obs::enabled()) network_->publish_metrics();
  }
  if (obs::enabled()) {
    auto& reg = obs::registry();
    reg.counter("server.rounds").add(1);
    reg.histogram("server.round_seconds").observe(record.wall_seconds);
    if (record.skipped) reg.counter("server.rounds_skipped").add(1);
    if (record.dropouts > 0) {
      reg.counter("server.dropouts").add(static_cast<std::uint64_t>(record.dropouts));
    }
    if (record.retries > 0) reg.counter("comm.retries").add(record.retries);
    if (record.crc_failures > 0) {
      reg.counter("comm.crc_failures").add(record.crc_failures);
    }
  }

  history_.add(record);
  return record;
}

void Server::run(std::size_t rounds) {
  for (std::size_t r = 0; r < rounds; ++r) run_round();
}

}  // namespace fedcav::fl
