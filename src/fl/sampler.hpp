// Participant samplers: which clients join a round.
//
// The paper samples uniformly at random with ratio q (§5.1.4) — that is
// kUniform, the default. The alternatives implement the related-work
// selection families §2 discusses so they can be compared against
// contribution-aware *aggregation*:
//  * kRoundRobin — deterministic rotation (every client participates
//    equally often; a fairness baseline).
//  * kLossBiased — prefer clients whose last reported inference loss was
//    high (Fed-Focal/FAIR-style quality selection). Falls back to
//    uniform for clients that have never reported.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/tensor/serialize.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::fl {

enum class SamplerPolicy {
  kUniform,
  kRoundRobin,
  kLossBiased,
};

SamplerPolicy parse_sampler_policy(const std::string& name);  // uniform|roundrobin|lossbiased
std::string to_string(SamplerPolicy policy);

class ParticipantSampler {
 public:
  ParticipantSampler(SamplerPolicy policy, std::size_t num_clients, double sample_ratio,
                     std::uint64_t seed);

  /// Indices of this round's participants, sorted ascending (the server
  /// relies on the deterministic order for reproducible reductions).
  std::vector<std::size_t> sample();

  /// Replace the sampler's RNG stream. In RngMode::kDerived the server
  /// calls this before every sample() with
  /// derive_seed(seed, round, 0, kSampler), making the cohort a pure
  /// function of (seed, round) — resume- and schedule-independent. The
  /// rotation cursor and loss memory stay stateful either way (they are
  /// checkpointed, not derived).
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  /// Feed back the inference losses observed for `participants` this
  /// round (used by kLossBiased; ignored otherwise).
  void observe_losses(const std::vector<std::size_t>& participants,
                      const std::vector<double>& losses);

  SamplerPolicy policy() const { return policy_; }
  std::size_t cohort_size() const { return cohort_; }

  /// Serialize / restore the full mutable state (RNG stream, rotation
  /// cursor, per-client loss memory). Policy and cohort geometry come
  /// from the constructor, not the snapshot; load_state throws
  /// fedcav::Error when the snapshot's client count differs.
  void save_state(ByteBuffer& buf) const;
  void load_state(ByteReader& reader);

 private:
  SamplerPolicy policy_;
  std::size_t num_clients_;
  std::size_t cohort_;
  Rng rng_;
  std::size_t cursor_ = 0;               // round-robin position
  std::vector<double> last_loss_;        // per-client, kLossBiased
  std::vector<bool> has_loss_;
};

}  // namespace fedcav::fl
