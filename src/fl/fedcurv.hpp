// FedCurv-lite (related work [18], Shoham et al.): FedAvg aggregation
// plus an EWC-style curvature penalty in the local objective —
//   ℓ_i(w) + λ Σ_j F_j (w_j − w*_j)²
// where w* is the client's previous local optimum and F its diagonal
// Fisher estimate. The penalty "compels all local models to converge to
// a shared optimum" by protecting the parameters each client found
// important, countering catastrophic drift on non-IID shards.
//
// "Lite": the canonical FedCurv also exchanges Fisher terms through the
// server; here the state stays client-side (no extra uplink), which
// preserves the regularization effect the paper's §2 describes while
// keeping FedAvg's wire protocol.
#pragma once

#include "src/fl/fedavg.hpp"

namespace fedcav::fl {

class FedCurvLite : public FedAvg {
 public:
  explicit FedCurvLite(float lambda = 1.0f);

  void apply_local_overrides(LocalTrainConfig& config) const override;
  std::string name() const override;

  float lambda() const { return lambda_; }

 private:
  float lambda_;
};

}  // namespace fedcav::fl
