#include "src/fl/strategy.hpp"

#include "src/core/fedcav.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/fedcurv.hpp"
#include "src/fl/fedprox.hpp"
#include "src/fl/robust.hpp"
#include "src/utils/error.hpp"

namespace fedcav::fl {

void AggregationStrategy::begin_aggregation(const nn::Weights& global,
                                            const std::vector<ClientUpdate>& metadata) {
  buffered_global_ = global;
  buffered_updates_.clear();
  buffered_updates_.reserve(metadata.size());
}

void AggregationStrategy::accumulate(ClientUpdate update) {
  buffered_updates_.push_back(std::move(update));
}

nn::Weights AggregationStrategy::finish_aggregation() {
  FEDCAV_REQUIRE(!buffered_updates_.empty(),
                 "AggregationStrategy: finish_aggregation without updates");
  nn::Weights out = aggregate(buffered_global_, buffered_updates_);
  // Release the round's buffers eagerly — this path is O(n × model) by
  // design, but it should not stay that way between rounds.
  std::vector<ClientUpdate>().swap(buffered_updates_);
  nn::Weights().swap(buffered_global_);
  return out;
}

std::unique_ptr<AggregationStrategy> make_strategy(const std::string& name) {
  if (name == "fedavg") return std::make_unique<FedAvg>();
  if (name == "fedprox") return std::make_unique<FedProx>();
  if (name == "fedcav") return std::make_unique<core::FedCavStrategy>();
  if (name == "fedcav-noclip") {
    core::ContributionConfig config;
    config.clip = core::ClipPolicy::kNone;
    return std::make_unique<core::FedCavStrategy>(config);
  }
  if (name == "fedcurv") return std::make_unique<FedCurvLite>();
  if (name == "median") return std::make_unique<CoordinateMedian>();
  if (name == "trimmedmean") return std::make_unique<TrimmedMean>();
  if (name == "krum") return std::make_unique<Krum>();
  throw Error("make_strategy: unknown strategy '" + name + "'");
}

}  // namespace fedcav::fl
