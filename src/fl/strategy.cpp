#include "src/fl/strategy.hpp"

#include "src/core/fedcav.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/fedcurv.hpp"
#include "src/fl/fedprox.hpp"
#include "src/fl/robust.hpp"
#include "src/utils/error.hpp"

namespace fedcav::fl {

std::unique_ptr<AggregationStrategy> make_strategy(const std::string& name) {
  if (name == "fedavg") return std::make_unique<FedAvg>();
  if (name == "fedprox") return std::make_unique<FedProx>();
  if (name == "fedcav") return std::make_unique<core::FedCavStrategy>();
  if (name == "fedcav-noclip") {
    core::ContributionConfig config;
    config.clip = core::ClipPolicy::kNone;
    return std::make_unique<core::FedCavStrategy>(config);
  }
  if (name == "fedcurv") return std::make_unique<FedCurvLite>();
  if (name == "median") return std::make_unique<CoordinateMedian>();
  if (name == "trimmedmean") return std::make_unique<TrimmedMean>();
  if (name == "krum") return std::make_unique<Krum>();
  throw Error("make_strategy: unknown strategy '" + name + "'");
}

}  // namespace fedcav::fl
