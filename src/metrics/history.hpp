// Training history: one record per communication round, plus the
// derived statistics the paper reports (rounds-to-convergence, converged
// accuracy, recovery time after an attack).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace fedcav::metrics {

/// Wall-time attribution of one round across the Fig. 3 workflow
/// phases. Always measured (a handful of steady-clock reads per round);
/// the obs tracing layer mirrors these as chrome://tracing spans when
/// telemetry is enabled. The phases partition run_round, so sum() tracks
/// RoundRecord::wall_seconds to within the unmeasured glue (< a few µs).
struct RoundPhases {
  double sample = 0.0;            // participant selection
  double broadcast = 0.0;         // global model serialization + downlink
  double metadata = 0.0;          // phase ①: downlink + inference losses
  double local_update = 0.0;      // parallel client training + uplink
  double straggler_filter = 0.0;  // drop simulation + cohort compaction
  double attack = 0.0;            // adversary corruption (attack rounds)
  double detect = 0.0;            // loss bookkeeping + Eq. 13 + reversal
  double aggregate = 0.0;         // strategy aggregation + model cache
  double eval = 0.0;              // held-out evaluation

  double sum() const {
    return sample + broadcast + metadata + local_update + straggler_filter +
           attack + detect + aggregate + eval;
  }
};

struct RoundRecord {
  std::size_t round = 0;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  /// Mean of the participating clients' reported inference losses.
  double mean_inference_loss = 0.0;
  /// Max of the participating clients' reported inference losses (the
  /// detector's reference value, Eq. 13).
  double max_inference_loss = 0.0;
  /// Cohort size drawn by the sampler this round, before any failure or
  /// straggler filtering. Invariant:
  ///   sampled == participants + dropouts + straggler_drops.
  std::size_t sampled = 0;
  /// Participants whose metadata survived to the aggregation phase
  /// (post-dropout, post-straggler). On skipped rounds this is the
  /// survivor count that failed to meet quorum.
  std::size_t participants = 0;
  /// Sampled participants whose metadata never reached the server this
  /// round: crashed clients, retry-exhausted links, and deadline misses.
  std::size_t dropouts = 0;
  /// Participants removed by the straggler simulation after a successful
  /// metadata exchange.
  std::size_t straggler_drops = 0;
  /// Participants whose phase-② full report failed after a successful
  /// metadata phase; their γ mass is carried by the unchanged global
  /// weights (see DESIGN.md §11).
  std::size_t upload_failures = 0;
  /// Total retransmissions (downlink + uplink) the retry protocol
  /// performed this round.
  std::uint64_t retries = 0;
  /// Wire images rejected by the Envelope CRC this round.
  std::uint64_t crc_failures = 0;
  /// Well-formed but wrong-round/wrong-type messages drained and
  /// discarded by the retry protocol this round.
  std::uint64_t stale_discards = 0;
  /// Participants dropped because their simulated exchange time exceeded
  /// uplink_deadline_s (a subset of `dropouts`).
  std::size_t deadline_misses = 0;
  bool detection_fired = false;   // detector voted "abnormal" this round
  bool reversed = false;          // global model rolled back this round
  bool attacked = false;          // an adversary corrupted this round
  /// True when fewer than min_aggregate_clients updates survived and
  /// the round was skipped (global model carried forward unchanged).
  bool skipped = false;
  double wall_seconds = 0.0;      // host time spent on the round
  std::uint64_t bytes_up = 0;     // client -> server traffic
  std::uint64_t bytes_down = 0;   // server -> client traffic
  RoundPhases phases;             // wall_seconds attributed per phase
};

class TrainingHistory {
 public:
  void add(RoundRecord record);

  std::size_t rounds() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const RoundRecord& operator[](std::size_t i) const;
  const std::vector<RoundRecord>& records() const { return records_; }
  const RoundRecord& back() const;

  /// Best test accuracy seen so far.
  double best_accuracy() const;
  /// Mean accuracy of the last `window` rounds (the "converged accuracy"
  /// the paper's Table 4 reports).
  double converged_accuracy(std::size_t window = 5) const;
  /// First round whose accuracy reaches `target`, if any.
  std::optional<std::size_t> rounds_to_accuracy(double target) const;
  /// Rounds between an attack and the first round back at `fraction`
  /// of the pre-attack accuracy, if an attack happened and recovery
  /// completed.
  std::optional<std::size_t> recovery_rounds(double fraction = 0.9) const;

  /// CSV with a header; one line per round. `include_timings = false`
  /// drops the wall-clock columns (wall_seconds and every t_*), leaving
  /// only deterministic fields — the chaos determinism tests compare
  /// this form byte-for-byte across thread-pool sizes.
  void write_csv(std::ostream& out, bool include_timings = true) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace fedcav::metrics
