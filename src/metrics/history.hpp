// Training history: one record per communication round, plus the
// derived statistics the paper reports (rounds-to-convergence, converged
// accuracy, recovery time after an attack).
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace fedcav::metrics {

struct RoundRecord {
  std::size_t round = 0;
  double test_accuracy = 0.0;
  double test_loss = 0.0;
  /// Mean of the participating clients' reported inference losses.
  double mean_inference_loss = 0.0;
  /// Max of the participating clients' reported inference losses (the
  /// detector's reference value, Eq. 13).
  double max_inference_loss = 0.0;
  std::size_t participants = 0;
  bool detection_fired = false;   // detector voted "abnormal" this round
  bool reversed = false;          // global model rolled back this round
  bool attacked = false;          // an adversary corrupted this round
  double wall_seconds = 0.0;      // host time spent on the round
  std::uint64_t bytes_up = 0;     // client -> server traffic
  std::uint64_t bytes_down = 0;   // server -> client traffic
};

class TrainingHistory {
 public:
  void add(RoundRecord record);

  std::size_t rounds() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const RoundRecord& operator[](std::size_t i) const;
  const std::vector<RoundRecord>& records() const { return records_; }
  const RoundRecord& back() const;

  /// Best test accuracy seen so far.
  double best_accuracy() const;
  /// Mean accuracy of the last `window` rounds (the "converged accuracy"
  /// the paper's Table 4 reports).
  double converged_accuracy(std::size_t window = 5) const;
  /// First round whose accuracy reaches `target`, if any.
  std::optional<std::size_t> rounds_to_accuracy(double target) const;
  /// Rounds between an attack and the first round back at `fraction`
  /// of the pre-attack accuracy, if an attack happened and recovery
  /// completed.
  std::optional<std::size_t> recovery_rounds(double fraction = 0.9) const;

  /// CSV with a header; one line per round.
  void write_csv(std::ostream& out) const;

 private:
  std::vector<RoundRecord> records_;
};

}  // namespace fedcav::metrics
