#include "src/metrics/per_class.hpp"

#include "src/metrics/evaluation.hpp"
#include "src/utils/error.hpp"

namespace fedcav::metrics {

PerClassTracker::PerClassTracker(std::size_t num_classes) : num_classes_(num_classes) {
  FEDCAV_REQUIRE(num_classes > 0, "PerClassTracker: zero classes");
}

void PerClassTracker::record(nn::Model& model, const data::Dataset& test,
                             std::size_t batch_size) {
  FEDCAV_REQUIRE(test.num_classes() == num_classes_,
                 "PerClassTracker: class count mismatch");
  const EvalResult result = evaluate(model, test, batch_size);
  std::vector<double> recalls(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) recalls[c] = result.per_class[c].recall;
  history_.push_back(std::move(recalls));
}

double PerClassTracker::recall(std::size_t r, std::size_t c) const {
  FEDCAV_REQUIRE(r < history_.size(), "PerClassTracker: round out of range");
  FEDCAV_REQUIRE(c < num_classes_, "PerClassTracker: class out of range");
  return history_[r][c];
}

double PerClassTracker::group_recall(std::size_t r,
                                     const std::vector<std::size_t>& classes) const {
  FEDCAV_REQUIRE(r < history_.size(), "PerClassTracker: round out of range");
  FEDCAV_REQUIRE(!classes.empty(), "PerClassTracker: empty class group");
  double acc = 0.0;
  for (std::size_t c : classes) {
    FEDCAV_REQUIRE(c < num_classes_, "PerClassTracker: class out of range");
    acc += history_[r][c];
  }
  return acc / static_cast<double>(classes.size());
}

std::size_t PerClassTracker::rounds_to_group_recall(
    const std::vector<std::size_t>& classes, double target) const {
  for (std::size_t r = 0; r < history_.size(); ++r) {
    if (group_recall(r, classes) >= target) return r;
  }
  return history_.size();
}

}  // namespace fedcav::metrics
