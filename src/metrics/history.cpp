#include "src/metrics/history.hpp"

#include <algorithm>

#include "src/utils/csv.hpp"
#include "src/utils/error.hpp"

namespace fedcav::metrics {

void TrainingHistory::add(RoundRecord record) { records_.push_back(record); }

const RoundRecord& TrainingHistory::operator[](std::size_t i) const {
  FEDCAV_REQUIRE(i < records_.size(), "TrainingHistory: index out of range");
  return records_[i];
}

const RoundRecord& TrainingHistory::back() const {
  FEDCAV_REQUIRE(!records_.empty(), "TrainingHistory: empty history");
  return records_.back();
}

double TrainingHistory::best_accuracy() const {
  double best = 0.0;
  for (const auto& r : records_) best = std::max(best, r.test_accuracy);
  return best;
}

double TrainingHistory::converged_accuracy(std::size_t window) const {
  FEDCAV_REQUIRE(!records_.empty(), "converged_accuracy: empty history");
  const std::size_t n = std::min(window, records_.size());
  double acc = 0.0;
  for (std::size_t i = records_.size() - n; i < records_.size(); ++i) {
    acc += records_[i].test_accuracy;
  }
  return acc / static_cast<double>(n);
}

std::optional<std::size_t> TrainingHistory::rounds_to_accuracy(double target) const {
  for (const auto& r : records_) {
    if (r.test_accuracy >= target) return r.round;
  }
  return std::nullopt;
}

std::optional<std::size_t> TrainingHistory::recovery_rounds(double fraction) const {
  // Find the first attacked round; the pre-attack baseline is the best
  // accuracy strictly before it.
  std::size_t attack_idx = records_.size();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (records_[i].attacked) {
      attack_idx = i;
      break;
    }
  }
  if (attack_idx == records_.size()) return std::nullopt;
  double baseline = 0.0;
  for (std::size_t i = 0; i < attack_idx; ++i) {
    baseline = std::max(baseline, records_[i].test_accuracy);
  }
  if (baseline <= 0.0) return std::nullopt;
  for (std::size_t i = attack_idx + 1; i < records_.size(); ++i) {
    if (records_[i].test_accuracy >= fraction * baseline) return i - attack_idx;
  }
  return std::nullopt;
}

void TrainingHistory::write_csv(std::ostream& out, bool include_timings) const {
  CsvWriter csv(out);
  std::vector<std::string> header = {
      "round", "test_accuracy", "test_loss", "mean_inference_loss",
      "max_inference_loss", "sampled", "participants", "dropouts",
      "straggler_drops", "upload_failures", "retries", "crc_failures",
      "stale_discards", "deadline_misses",
      "detection_fired", "reversed", "attacked", "skipped"};
  if (include_timings) header.push_back("wall_seconds");
  header.push_back("bytes_up");
  header.push_back("bytes_down");
  if (include_timings) {
    for (const char* t : {"t_sample", "t_broadcast", "t_metadata",
                          "t_local_update", "t_straggler_filter", "t_attack",
                          "t_detect", "t_aggregate", "t_eval"}) {
      header.push_back(t);
    }
  }
  csv.header(header);
  for (const auto& r : records_) {
    csv.cell(static_cast<long long>(r.round))
        .cell(r.test_accuracy, 6)
        .cell(r.test_loss, 6)
        .cell(r.mean_inference_loss, 6)
        .cell(r.max_inference_loss, 6)
        .cell(static_cast<long long>(r.sampled))
        .cell(static_cast<long long>(r.participants))
        .cell(static_cast<long long>(r.dropouts))
        .cell(static_cast<long long>(r.straggler_drops))
        .cell(static_cast<long long>(r.upload_failures))
        .cell(static_cast<long long>(r.retries))
        .cell(static_cast<long long>(r.crc_failures))
        .cell(static_cast<long long>(r.stale_discards))
        .cell(static_cast<long long>(r.deadline_misses))
        .cell(std::string(r.detection_fired ? "1" : "0"))
        .cell(std::string(r.reversed ? "1" : "0"))
        .cell(std::string(r.attacked ? "1" : "0"))
        .cell(std::string(r.skipped ? "1" : "0"));
    if (include_timings) csv.cell(r.wall_seconds, 4);
    csv.cell(static_cast<long long>(r.bytes_up))
        .cell(static_cast<long long>(r.bytes_down));
    if (include_timings) {
      csv.cell(r.phases.sample, 6)
          .cell(r.phases.broadcast, 6)
          .cell(r.phases.metadata, 6)
          .cell(r.phases.local_update, 6)
          .cell(r.phases.straggler_filter, 6)
          .cell(r.phases.attack, 6)
          .cell(r.phases.detect, 6)
          .cell(r.phases.aggregate, 6)
          .cell(r.phases.eval, 6);
    }
    csv.end_row();
  }
}

}  // namespace fedcav::metrics
