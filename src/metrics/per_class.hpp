// Per-class accuracy tracking across rounds.
//
// The fresh-class experiment (Fig. 4) is really a claim about *which*
// classes improve: FedCav upweights the clients holding fresh classes,
// so their recall should climb faster. This tracker records per-class
// recall each round and reports class-group trajectories.
#pragma once

#include <cstddef>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/model.hpp"

namespace fedcav::metrics {

class PerClassTracker {
 public:
  explicit PerClassTracker(std::size_t num_classes);

  /// Evaluate `model` on `test` and append this round's per-class recall.
  void record(nn::Model& model, const data::Dataset& test, std::size_t batch_size = 64);

  std::size_t rounds() const { return history_.size(); }
  std::size_t num_classes() const { return num_classes_; }

  /// Recall of class `c` at round index `r`.
  double recall(std::size_t r, std::size_t c) const;

  /// Mean recall over a set of classes at round index `r` (e.g. the
  /// fresh classes vs the common classes).
  double group_recall(std::size_t r, const std::vector<std::size_t>& classes) const;

  /// First round index where the group's mean recall reaches `target`,
  /// or rounds() if never.
  std::size_t rounds_to_group_recall(const std::vector<std::size_t>& classes,
                                     double target) const;

 private:
  std::size_t num_classes_;
  std::vector<std::vector<double>> history_;  // [round][class]
};

}  // namespace fedcav::metrics
