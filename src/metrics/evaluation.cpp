#include "src/metrics/evaluation.hpp"

#include <algorithm>

#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::metrics {

namespace {
// Derive precision/recall/F1 per class from the filled confusion matrix
// — the shared tail of the serial and sharded evaluate paths.
void finalize_per_class(EvalResult& result, std::size_t classes) {
  result.per_class.resize(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t tp = result.confusion[c][c];
    std::size_t fn = 0;
    std::size_t fp = 0;
    for (std::size_t j = 0; j < classes; ++j) {
      if (j != c) {
        fn += result.confusion[c][j];
        fp += result.confusion[j][c];
      }
    }
    ClassMetrics& m = result.per_class[c];
    m.support = tp + fn;
    m.precision =
        (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
    m.recall =
        (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
    m.f1 = (m.precision + m.recall) == 0.0
               ? 0.0
               : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
}
}  // namespace

double EvalResult::macro_f1() const {
  if (per_class.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& c : per_class) acc += c.f1;
  return acc / static_cast<double>(per_class.size());
}

EvalResult evaluate(nn::Model& model, const data::Dataset& test, std::size_t batch_size) {
  FEDCAV_REQUIRE(!test.empty(), "evaluate: empty test set");
  FEDCAV_REQUIRE(batch_size > 0, "evaluate: zero batch size");
  const std::size_t classes = test.num_classes();

  EvalResult result;
  result.confusion.assign(classes, std::vector<std::size_t>(classes, 0));

  std::size_t correct = 0;
  double loss_sum = 0.0;
  std::vector<std::size_t> indices(batch_size);
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(test.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = test.make_batch(indices, &labels);
    Tensor logits = model.predict(batch);
    loss_sum += static_cast<double>(model.loss().forward(logits, labels)) *
                static_cast<double>(labels.size());
    const std::size_t cols = logits.shape()[1];
    for (std::size_t b = 0; b < labels.size(); ++b) {
      const std::size_t pred =
          ops::argmax(std::span(logits.data() + b * cols, cols));
      result.confusion[labels[b]][pred] += 1;
      if (pred == labels[b]) ++correct;
    }
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  result.mean_loss = loss_sum / static_cast<double>(test.size());
  finalize_per_class(result, classes);
  return result;
}

EvalResult evaluate(nn::ReplicaPool& replicas, const nn::Weights& weights,
                    const data::Dataset& test, ThreadPool& pool,
                    std::size_t batch_size) {
  FEDCAV_REQUIRE(!test.empty(), "evaluate: empty test set");
  FEDCAV_REQUIRE(batch_size > 0, "evaluate: zero batch size");
  const std::size_t classes = test.num_classes();
  const std::size_t num_batches = (test.size() + batch_size - 1) / batch_size;

  // One slot per batch. The shard boundaries below depend on the worker
  // count, but since every batch writes only its own slot and the fold
  // walks the slots in batch order, the result does not.
  struct BatchSlot {
    double loss_sum = 0.0;
    std::vector<std::size_t> labels;
    std::vector<std::size_t> preds;
  };
  std::vector<BatchSlot> slots(num_batches);

  const std::size_t shards = std::min(num_batches, pool.size());
  const std::size_t per_shard = (num_batches + shards - 1) / shards;
  pool.parallel_for(shards, [&](std::size_t shard) {
    const std::size_t b_begin = shard * per_shard;
    const std::size_t b_end = std::min(num_batches, b_begin + per_shard);
    if (b_begin >= b_end) return;
    nn::ReplicaPool::Lease lease = replicas.acquire();
    lease->set_weights(weights);
    std::vector<std::size_t> indices;
    for (std::size_t bi = b_begin; bi < b_end; ++bi) {
      const std::size_t begin = bi * batch_size;
      const std::size_t end = std::min(test.size(), begin + batch_size);
      indices.resize(end - begin);
      for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
      BatchSlot& slot = slots[bi];
      Tensor batch = test.make_batch(indices, &slot.labels);
      Tensor logits = lease->predict(batch);
      slot.loss_sum = static_cast<double>(lease->loss().forward(logits, slot.labels)) *
                      static_cast<double>(slot.labels.size());
      const std::size_t cols = logits.shape()[1];
      slot.preds.resize(slot.labels.size());
      for (std::size_t b = 0; b < slot.labels.size(); ++b) {
        slot.preds[b] = ops::argmax(std::span(logits.data() + b * cols, cols));
      }
    }
  });

  EvalResult result;
  result.confusion.assign(classes, std::vector<std::size_t>(classes, 0));
  std::size_t correct = 0;
  double loss_sum = 0.0;
  for (const BatchSlot& slot : slots) {
    loss_sum += slot.loss_sum;
    for (std::size_t b = 0; b < slot.labels.size(); ++b) {
      result.confusion[slot.labels[b]][slot.preds[b]] += 1;
      if (slot.preds[b] == slot.labels[b]) ++correct;
    }
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  result.mean_loss = loss_sum / static_cast<double>(test.size());
  finalize_per_class(result, classes);
  return result;
}

double accuracy(nn::Model& model, const data::Dataset& test, std::size_t batch_size) {
  FEDCAV_REQUIRE(!test.empty(), "accuracy: empty test set");
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(test.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = test.make_batch(indices, &labels);
    Tensor logits = model.predict(batch);
    const std::size_t cols = logits.shape()[1];
    for (std::size_t b = 0; b < labels.size(); ++b) {
      if (ops::argmax(std::span(logits.data() + b * cols, cols)) == labels[b]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double inference_loss(nn::Model& model, const data::Dataset& dataset,
                      std::size_t batch_size) {
  FEDCAV_REQUIRE(!dataset.empty(), "inference_loss: empty dataset");
  double loss_sum = 0.0;
  std::vector<std::size_t> indices;
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(dataset.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = dataset.make_batch(indices, &labels);
    loss_sum += static_cast<double>(model.compute_loss(batch, labels)) *
                static_cast<double>(labels.size());
  }
  return loss_sum / static_cast<double>(dataset.size());
}

}  // namespace fedcav::metrics
