#include "src/metrics/evaluation.hpp"

#include <algorithm>

#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::metrics {

double EvalResult::macro_f1() const {
  if (per_class.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& c : per_class) acc += c.f1;
  return acc / static_cast<double>(per_class.size());
}

EvalResult evaluate(nn::Model& model, const data::Dataset& test, std::size_t batch_size) {
  FEDCAV_REQUIRE(!test.empty(), "evaluate: empty test set");
  FEDCAV_REQUIRE(batch_size > 0, "evaluate: zero batch size");
  const std::size_t classes = test.num_classes();

  EvalResult result;
  result.confusion.assign(classes, std::vector<std::size_t>(classes, 0));

  std::size_t correct = 0;
  double loss_sum = 0.0;
  std::vector<std::size_t> indices(batch_size);
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(test.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = test.make_batch(indices, &labels);
    Tensor logits = model.predict(batch);
    loss_sum += static_cast<double>(model.loss().forward(logits, labels)) *
                static_cast<double>(labels.size());
    const std::size_t cols = logits.shape()[1];
    for (std::size_t b = 0; b < labels.size(); ++b) {
      const std::size_t pred =
          ops::argmax(std::span(logits.data() + b * cols, cols));
      result.confusion[labels[b]][pred] += 1;
      if (pred == labels[b]) ++correct;
    }
  }
  result.accuracy = static_cast<double>(correct) / static_cast<double>(test.size());
  result.mean_loss = loss_sum / static_cast<double>(test.size());

  result.per_class.resize(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    std::size_t tp = result.confusion[c][c];
    std::size_t fn = 0;
    std::size_t fp = 0;
    for (std::size_t j = 0; j < classes; ++j) {
      if (j != c) {
        fn += result.confusion[c][j];
        fp += result.confusion[j][c];
      }
    }
    ClassMetrics& m = result.per_class[c];
    m.support = tp + fn;
    m.precision = (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
    m.recall = (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
    m.f1 = (m.precision + m.recall) == 0.0
               ? 0.0
               : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  }
  return result;
}

double accuracy(nn::Model& model, const data::Dataset& test, std::size_t batch_size) {
  FEDCAV_REQUIRE(!test.empty(), "accuracy: empty test set");
  std::size_t correct = 0;
  std::vector<std::size_t> indices;
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(test.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = test.make_batch(indices, &labels);
    Tensor logits = model.predict(batch);
    const std::size_t cols = logits.shape()[1];
    for (std::size_t b = 0; b < labels.size(); ++b) {
      if (ops::argmax(std::span(logits.data() + b * cols, cols)) == labels[b]) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

double inference_loss(nn::Model& model, const data::Dataset& dataset,
                      std::size_t batch_size) {
  FEDCAV_REQUIRE(!dataset.empty(), "inference_loss: empty dataset");
  double loss_sum = 0.0;
  std::vector<std::size_t> indices;
  std::vector<std::size_t> labels;
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(dataset.size(), begin + batch_size);
    indices.resize(end - begin);
    for (std::size_t i = begin; i < end; ++i) indices[i - begin] = i;
    Tensor batch = dataset.make_batch(indices, &labels);
    loss_sum += static_cast<double>(model.compute_loss(batch, labels)) *
                static_cast<double>(labels.size());
  }
  return loss_sum / static_cast<double>(dataset.size());
}

}  // namespace fedcav::metrics
