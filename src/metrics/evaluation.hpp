// Model evaluation: top-1 accuracy, confusion matrix, per-class
// precision / recall / F1. The paper reports top-1 test accuracy
// (§5.2.1) but notes recall/precision/F1 matter when test sets are
// imbalanced — all are provided.
#pragma once

#include <vector>

#include "src/data/dataset.hpp"
#include "src/nn/model.hpp"
#include "src/nn/replica_pool.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::metrics {

struct ClassMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t support = 0;
};

struct EvalResult {
  double accuracy = 0.0;
  double mean_loss = 0.0;
  std::vector<std::vector<std::size_t>> confusion;  // [true][predicted]
  std::vector<ClassMetrics> per_class;

  double macro_f1() const;
};

/// Evaluate in mini-batches of `batch_size` to bound peak memory.
EvalResult evaluate(nn::Model& model, const data::Dataset& test,
                    std::size_t batch_size = 64);

/// Parallel evaluation over leased model replicas. The test batches are
/// fixed slots: batch i's per-example predictions and loss land in slot
/// i no matter which worker computed them, and the slots fold in
/// ascending batch order — bit-identical to evaluate() at any pool
/// size (DESIGN.md §13 fixed-slot contract). `weights` is loaded into
/// every leased replica before it predicts.
EvalResult evaluate(nn::ReplicaPool& replicas, const nn::Weights& weights,
                    const data::Dataset& test, ThreadPool& pool,
                    std::size_t batch_size = 64);

/// Accuracy only (cheaper; skips the confusion matrix bookkeeping).
double accuracy(nn::Model& model, const data::Dataset& test, std::size_t batch_size = 64);

/// Mean loss of the model on a dataset — the paper's inference loss
/// f_i(w) when `dataset` is a client's local data (Eq. 1, normalized by
/// sample count so clients of different sizes are comparable).
double inference_loss(nn::Model& model, const data::Dataset& dataset,
                      std::size_t batch_size = 64);

}  // namespace fedcav::metrics
