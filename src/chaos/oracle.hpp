// Invariant oracle: run one ChaosPlan through a short federated round
// sequence and check every protocol invariant the repo pins.
//
// Checks, in order (first failure wins):
//   * liveness / no-throw: the run completes without a fedcav::Error
//     escaping ("exception");
//   * round accounting: sampled == participants + dropouts +
//     straggler_drops for every round ("accounting");
//   * message conservation: messages_sent + duplicated == delivered +
//     dropped + crash_dropped + pending for the fabric after every
//     round ("conservation");
//   * quorum skip: a skipped round carries the global model forward
//     bit-identically ("skip_carry_forward");
//   * streaming parity: a run whose strategy is wrapped to force the
//     buffered aggregation path is bit-identical (deterministic CSV +
//     final weights) to the streaming run ("streaming_parity");
//   * shard parity: when the plan runs multi-sharded, a forced
//     single-shard replay is bit-identical ("shard_parity");
//   * resume: run checkpoint_round rounds, save, restore into a fresh
//     simulation, finish — post-resume records, final weights, and the
//     conservation invariant must match a run that never stopped
//     ("resume_identity" / "resume_conservation");
//   * derived-seed schedule independence (DESIGN.md §16): for plans
//     that sample or drop participants, a derived-mode replay whose
//     per-client RNG streams were deliberately scrambled beforehand
//     must be bit-identical to an unscrambled derived-mode replay —
//     stream *history* may not leak into results
//     ("derived_schedule_independence").
//
// The oracle is deterministic given the plan (per-link fault RNGs plus
// an optionally pinned thread pool), so any failing plan is a committed
// reproducer: see tests/chaos_seeds/.
#pragma once

#include <string>

#include "src/chaos/plan.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav::chaos {

struct OracleOptions {
  /// Run the federated rounds on this pool instead of the process-wide
  /// one (nullptr = global pool). The determinism suite pins 1-worker
  /// and N-worker pools and compares search reports byte-for-byte.
  ThreadPool* pool = nullptr;
  /// Individual checks can be disabled to speed up broad sweeps; the
  /// base run with accounting/conservation/skip checks always executes.
  bool check_streaming_parity = true;
  bool check_resume = true;
  /// Shard-parity (DESIGN.md §15): when the plan's effective shard count
  /// is > 1, a forced single-shard replay must be bit-identical
  /// (deterministic CSV + final weights) to the sharded run.
  bool check_shard_parity = true;
  /// Derived-seed schedule independence (DESIGN.md §16), gated on plans
  /// with sampling or straggler drops — the configs whose legacy
  /// streams advance on schedule-dependent orders.
  bool check_derived_parity = true;
};

struct OracleResult {
  bool passed = true;
  /// Did the plan produce observable fault activity (dropouts, retries,
  /// CRC failures, stale discards, deadline misses, skips, straggler
  /// drops, upload failures, or nonzero fabric FaultStats)? This is the
  /// learning sampler's reward signal.
  bool triggered = false;
  /// Name of the first violated invariant (empty when passed).
  std::string invariant;
  /// Human-readable context for the failure (empty when passed).
  std::string detail;
};

/// Run `plan` against every enabled invariant. Never throws on an
/// invariant violation — violations come back as a failed result; only
/// programming errors (bad plan construction) propagate.
OracleResult run_oracle(const ChaosPlan& plan, const OracleOptions& options = {});

}  // namespace fedcav::chaos
