#include "src/chaos/oracle.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <sstream>

#include "src/fl/round_engine.hpp"
#include "src/fl/simulation.hpp"
#include "src/utils/error.hpp"

namespace fedcav::chaos {
namespace {

/// Tiny, fast federated run shape shared by every oracle sub-run. Only
/// the plan's knobs vary across trials; dataset/model/seed are pinned so
/// a trial's behavior is a function of the plan alone.
fl::SimulationConfig config_for(const ChaosPlan& plan) {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.strategy = "fedcav";
  config.train_samples_per_class = 8;
  config.test_samples_per_class = 4;
  config.partition.num_clients = plan.num_clients;
  config.seed = 2021;
  config.server.sample_ratio = plan.sample_ratio;
  config.server.local.epochs = 1;
  config.server.local.batch_size = 8;
  config.server.min_aggregate_clients = plan.min_aggregate_clients;
  config.server.max_retries = plan.max_retries;
  config.server.retry_backoff_s = plan.retry_backoff_s;
  config.server.uplink_deadline_s = plan.uplink_deadline_s;
  config.server.straggler_drop_prob = plan.straggler_drop_prob;
  config.server.network.faults = plan.faults;
  config.server.shards = plan.shards;  // 0 = auto (process default)
  return config;
}

/// Forces the buffered aggregation path while delegating the actual
/// math: inherits the base class's buffering begin/accumulate/finish
/// (which call our aggregate(), which calls the wrapped strategy's) and
/// reports streaming_aggregation() == false.
class BufferedWrapper final : public fl::AggregationStrategy {
 public:
  explicit BufferedWrapper(std::unique_ptr<fl::AggregationStrategy> inner)
      : inner_(std::move(inner)) {}

  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<fl::ClientUpdate>& updates) override {
    return inner_->aggregate(global, updates);
  }
  std::vector<double> aggregation_weights(
      const std::vector<fl::ClientUpdate>& updates) const override {
    return inner_->aggregation_weights(updates);
  }
  void apply_local_overrides(fl::LocalTrainConfig& config) const override {
    inner_->apply_local_overrides(config);
  }
  std::string name() const override { return inner_->name() + "-buffered"; }

 private:
  std::unique_ptr<fl::AggregationStrategy> inner_;
};

bool bits_equal(const nn::Weights& a, const nn::Weights& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

bool conserved(const comm::InMemoryNetwork& net) {
  const comm::FaultStats f = net.fault_stats();
  return net.total_stats().messages_sent + f.duplicated ==
         f.delivered + f.dropped + f.crash_dropped + net.pending_messages();
}

std::string conservation_detail(const comm::InMemoryNetwork& net) {
  const comm::FaultStats f = net.fault_stats();
  std::ostringstream out;
  out << "sent=" << net.total_stats().messages_sent << " dup=" << f.duplicated
      << " delivered=" << f.delivered << " dropped=" << f.dropped
      << " crash=" << f.crash_dropped << " pending=" << net.pending_messages();
  return out.str();
}

bool record_triggered(const metrics::RoundRecord& rec) {
  return rec.dropouts > 0 || rec.straggler_drops > 0 || rec.upload_failures > 0 ||
         rec.retries > 0 || rec.crc_failures > 0 || rec.stale_discards > 0 ||
         rec.deadline_misses > 0 || rec.skipped;
}

bool stats_triggered(const comm::InMemoryNetwork* net) {
  if (net == nullptr) return false;
  const comm::FaultStats f = net->fault_stats();
  return f.dropped + f.crash_dropped + f.duplicated + f.reordered + f.corrupted +
                 f.truncated >
             0 ||
         f.jitter_seconds > 0.0;
}

/// The deterministic per-round fields the resume check compares
/// (everything in the timing-free CSV that belongs to one round).
std::string record_summary(const metrics::RoundRecord& rec) {
  std::ostringstream out;
  out << rec.round << '|' << rec.sampled << '|' << rec.participants << '|'
      << rec.dropouts << '|' << rec.straggler_drops << '|' << rec.upload_failures
      << '|' << rec.retries << '|' << rec.crc_failures << '|'
      << rec.stale_discards << '|' << rec.deadline_misses << '|' << rec.skipped
      << '|' << rec.bytes_up << '|' << rec.bytes_down << '|';
  // Hex-exact floats: the comparison is bit-identity, not closeness.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a|%a|%a|%a", rec.test_accuracy, rec.test_loss,
                rec.mean_inference_loss, rec.max_inference_loss);
  out << buf;
  return out.str();
}

std::string deterministic_csv(const fl::Server& server) {
  std::ostringstream out;
  server.history().write_csv(out, /*include_timings=*/false);
  return out.str();
}

std::string checkpoint_scratch_path() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id = counter.fetch_add(1);
  std::ostringstream name;
  name << "fedcav_chaos_" << ::getpid() << '_' << id << ".ckpt";
  return (std::filesystem::temp_directory_path() / name.str()).string();
}

struct RunOutcome {
  fl::Simulation sim;  // owns the server (and its history/network)
  bool failed = false;
  std::string invariant;
  std::string detail;
  bool triggered = false;
};

/// Base run: round-by-round with accounting, conservation, and
/// skip-carry-forward checked after every round.
RunOutcome run_checked(const ChaosPlan& plan, ThreadPool* pool) {
  RunOutcome out;
  out.sim = fl::build_simulation(config_for(plan));
  fl::Server& server = *out.sim.server;
  if (pool != nullptr) server.set_thread_pool(pool);
  for (std::size_t r = 1; r <= plan.rounds; ++r) {
    const nn::Weights before = server.global_weights();
    metrics::RoundRecord rec;
    try {
      rec = server.run_round();
    } catch (const Error& e) {
      out.failed = true;
      out.invariant = "exception";
      out.detail = std::string("round ") + std::to_string(r) + ": " + e.what();
      return out;
    }
    out.triggered = out.triggered || record_triggered(rec);
    if (rec.sampled != rec.participants + rec.dropouts + rec.straggler_drops) {
      out.failed = true;
      out.invariant = "accounting";
      out.detail = record_summary(rec);
      return out;
    }
    if (server.network() != nullptr && !conserved(*server.network())) {
      out.failed = true;
      out.invariant = "conservation";
      out.detail =
          "round " + std::to_string(r) + ": " + conservation_detail(*server.network());
      return out;
    }
    if (rec.skipped && !bits_equal(before, server.global_weights())) {
      out.failed = true;
      out.invariant = "skip_carry_forward";
      out.detail = "round " + std::to_string(r) + ": skipped round changed weights";
      return out;
    }
  }
  out.triggered = out.triggered || stats_triggered(server.network());
  return out;
}

}  // namespace

OracleResult run_oracle(const ChaosPlan& plan, const OracleOptions& options) {
  plan.validate();
  OracleResult result;

  RunOutcome base = run_checked(plan, options.pool);
  result.triggered = base.triggered;
  if (base.failed) {
    result.passed = false;
    result.invariant = base.invariant;
    result.detail = base.detail;
    result.triggered = true;  // a violated invariant is the strongest signal
    return result;
  }
  const fl::Server& base_server = *base.sim.server;

  if (options.check_streaming_parity) {
    fl::Simulation buffered = fl::build_simulation(config_for(plan));
    buffered.server->set_strategy(std::make_unique<BufferedWrapper>(
        fl::make_strategy(config_for(plan).strategy)));
    if (options.pool != nullptr) buffered.server->set_thread_pool(options.pool);
    try {
      buffered.server->run(plan.rounds);
    } catch (const Error& e) {
      result.passed = false;
      result.invariant = "exception";
      result.detail = std::string("buffered run: ") + e.what();
      result.triggered = true;
      return result;
    }
    if (deterministic_csv(*buffered.server) != deterministic_csv(base_server) ||
        !bits_equal(buffered.server->global_weights(),
                    base_server.global_weights())) {
      result.passed = false;
      result.invariant = "streaming_parity";
      result.detail = "buffered aggregation diverged from streaming run";
      result.triggered = true;
      return result;
    }
  }

  // Shard parity (DESIGN.md §15): the shard count must be invisible to
  // results. A forced single-shard replay of the same plan has to match
  // the base run bit-for-bit — fold order is the chained ascending-slot
  // reduction either way, so any divergence is an engine bug.
  const std::size_t effective_shards =
      plan.shards != 0 ? plan.shards : fl::default_round_shards();
  if (options.check_shard_parity && effective_shards != 1) {
    fl::SimulationConfig single = config_for(plan);
    single.server.shards = 1;
    fl::Simulation flat = fl::build_simulation(single);
    if (options.pool != nullptr) flat.server->set_thread_pool(options.pool);
    try {
      flat.server->run(plan.rounds);
    } catch (const Error& e) {
      result.passed = false;
      result.invariant = "exception";
      result.detail = std::string("single-shard run: ") + e.what();
      result.triggered = true;
      return result;
    }
    if (deterministic_csv(*flat.server) != deterministic_csv(base_server) ||
        !bits_equal(flat.server->global_weights(),
                    base_server.global_weights())) {
      result.passed = false;
      result.invariant = "shard_parity";
      result.detail = "shards=" + std::to_string(effective_shards) +
                      " diverged from the single-shard run";
      result.triggered = true;
      return result;
    }
  }

  // Derived-seed schedule independence (DESIGN.md §16): in derived mode
  // every RNG consumer reseeds per round from (seed, round, id, stream),
  // so the *history* of a client's stream must be invisible. Replay the
  // plan in derived mode twice — the second time with every client's
  // stream deliberately scrambled before round 1 — and require
  // bit-identity. Any divergence means some consumer still reads a
  // long-lived stream (the cross-process divergence bug, in miniature).
  if (options.check_derived_parity &&
      (plan.sample_ratio < 1.0 || plan.straggler_drop_prob > 0.0)) {
    fl::SimulationConfig derived_cfg = config_for(plan);
    derived_cfg.server.rng_mode = RngMode::kDerived;
    fl::Simulation clean = fl::build_simulation(derived_cfg);
    fl::Simulation dirty = fl::build_simulation(derived_cfg);
    if (options.pool != nullptr) {
      clean.server->set_thread_pool(options.pool);
      dirty.server->set_thread_pool(options.pool);
    }
    for (std::size_t c = 0; c < dirty.server->num_clients(); ++c) {
      dirty.server->client_at(c).reseed_for_round(0x5eedc0deULL + c, 9999);
    }
    try {
      clean.server->run(plan.rounds);
      dirty.server->run(plan.rounds);
    } catch (const Error& e) {
      result.passed = false;
      result.invariant = "exception";
      result.detail = std::string("derived-mode run: ") + e.what();
      result.triggered = true;
      return result;
    }
    if (deterministic_csv(*dirty.server) != deterministic_csv(*clean.server) ||
        !bits_equal(dirty.server->global_weights(),
                    clean.server->global_weights())) {
      result.passed = false;
      result.invariant = "derived_schedule_independence";
      result.detail =
          "derived-mode run depends on pre-run client RNG stream state";
      result.triggered = true;
      return result;
    }
  }

  const bool resume_applicable =
      plan.checkpoint_round >= 1 && plan.checkpoint_round < plan.rounds;
  if (options.check_resume && resume_applicable) {
    const std::string path = checkpoint_scratch_path();
    try {
      fl::Simulation first = fl::build_simulation(config_for(plan));
      if (options.pool != nullptr) first.server->set_thread_pool(options.pool);
      first.server->run(plan.checkpoint_round);
      first.server->save_checkpoint(path);

      fl::Simulation resumed = fl::build_simulation(config_for(plan));
      if (options.pool != nullptr) resumed.server->set_thread_pool(options.pool);
      resumed.server->load_checkpoint(path);
      resumed.server->run(plan.rounds - plan.checkpoint_round);
      std::filesystem::remove(path);

      if (!bits_equal(resumed.server->global_weights(),
                      base_server.global_weights())) {
        result.passed = false;
        result.invariant = "resume_identity";
        result.detail = "final weights diverged after checkpoint resume";
        result.triggered = true;
        return result;
      }
      const auto& base_records = base_server.history().records();
      const auto& resumed_records = resumed.server->history().records();
      for (std::size_t i = 0; i < resumed_records.size(); ++i) {
        const std::string got = record_summary(resumed_records[i]);
        const std::string want = record_summary(base_records[plan.checkpoint_round + i]);
        if (got != want) {
          result.passed = false;
          result.invariant = "resume_identity";
          result.detail = "post-resume record diverged: got [" + got +
                          "] want [" + want + "]";
          result.triggered = true;
          return result;
        }
      }
      if (resumed.server->network() != nullptr &&
          !conserved(*resumed.server->network())) {
        result.passed = false;
        result.invariant = "resume_conservation";
        result.detail = conservation_detail(*resumed.server->network());
        result.triggered = true;
        return result;
      }
    } catch (const Error& e) {
      std::filesystem::remove(path);
      result.passed = false;
      result.invariant = "exception";
      result.detail = std::string("resume run: ") + e.what();
      result.triggered = true;
      return result;
    }
  }

  return result;
}

}  // namespace fedcav::chaos
