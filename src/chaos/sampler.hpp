// Samplers over the chaos parameter space.
//
// The space is a cross product of small per-axis level sets (drop
// probability, duplicate probability, ..., quorum, retry budget); a
// sampler emits one level index per axis. Two implementations:
//
//   * random  — uniform over every axis; the coverage baseline.
//   * learning — per-axis epsilon-greedy bandit (the k-race idiom):
//     each axis tracks trials and fault-trigger counts per level, and
//     exploitation picks the level with the best observed trigger rate
//     (untried levels first, lowest index on ties). With epsilon
//     exploration the sampler still covers the whole space, but its
//     mass concentrates on fault-triggering regions as evidence
//     accumulates — more trials land where invariants are stressed.
//
// Both are deterministic given their seed, and both are driven
// sequentially by the search loop, so a chaos search is reproducible
// regardless of thread-pool size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/chaos/plan.hpp"

namespace fedcav::chaos {

/// One searchable dimension: a name (stable, used in reports) and the
/// discrete levels the sampler may pick for it.
struct Axis {
  std::string name;
  std::vector<double> levels;
};

/// The cross-product space. A `choice` is one level index per axis
/// (choice.size() == axes.size(), choice[i] < axes[i].levels.size()).
struct ParamSpace {
  std::vector<Axis> axes;

  /// The protocol search space used by the chaos_search tool: fault
  /// axes (drop/duplicate/reorder/corrupt/truncate/jitter/crash count)
  /// plus the protocol knobs they interact with (straggler probability,
  /// quorum, retry budget, uplink deadline).
  static ParamSpace protocol_space();

  /// Turn a choice into a runnable plan. `fault_seed` becomes
  /// plan.faults.seed so every trial replays its own fault stream.
  /// Throws fedcav::Error on a malformed choice or unknown axis name.
  ChaosPlan materialize(const std::vector<std::size_t>& choice,
                        std::uint64_t fault_seed) const;

  std::size_t num_axes() const { return axes.size(); }
};

/// Per-axis trial/trigger tallies a sampler accumulates; exposed so the
/// search report can show where the sampler concentrated.
struct AxisTally {
  std::vector<std::uint64_t> trials;    // one per level
  std::vector<std::uint64_t> triggers;  // trials that triggered faults
};

class Sampler {
 public:
  virtual ~Sampler() = default;

  /// Emit the next choice (one level index per axis).
  virtual std::vector<std::size_t> next() = 0;

  /// Feed back whether the trial at `choice` triggered fault activity
  /// (dropouts, retries, CRC failures, skips, nonzero FaultStats, ...).
  virtual void report(const std::vector<std::size_t>& choice, bool triggered) = 0;

  /// Per-axis tallies (same order as the space's axes).
  virtual const std::vector<AxisTally>& tallies() const = 0;

  virtual std::string name() const = 0;
};

std::unique_ptr<Sampler> make_random_sampler(const ParamSpace& space,
                                             std::uint64_t seed);
std::unique_ptr<Sampler> make_learning_sampler(const ParamSpace& space,
                                               std::uint64_t seed,
                                               double epsilon = 0.25);

}  // namespace fedcav::chaos
