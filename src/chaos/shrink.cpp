#include "src/chaos/shrink.hpp"

#include <vector>

#include "src/utils/error.hpp"

namespace fedcav::chaos {
namespace {

constexpr double kProbFloor = 1e-3;  // below this, just zero the axis

/// All single-step simplifications of `plan`, most aggressive first
/// (zeroing before halving) so the greedy pass takes big steps when it
/// can. Order is fixed — shrinking is deterministic.
std::vector<ChaosPlan> candidates(const ChaosPlan& plan) {
  std::vector<ChaosPlan> out;
  const auto with = [&out, &plan](auto&& mutate) {
    ChaosPlan candidate = plan;
    mutate(candidate);
    if (!(candidate == plan)) out.push_back(std::move(candidate));
  };
  // Fault probability axes: zero, then halve (with a floor).
  const auto prob_axis = [&with](auto&& set, double value) {
    if (value == 0.0) return;
    with([&set](ChaosPlan& p) { set(p, 0.0); });
    if (value > kProbFloor) {
      with([&set, value](ChaosPlan& p) { set(p, value / 2.0); });
    }
  };
  prob_axis([](ChaosPlan& p, double v) { p.faults.drop_prob = v; },
            plan.faults.drop_prob);
  prob_axis([](ChaosPlan& p, double v) { p.faults.duplicate_prob = v; },
            plan.faults.duplicate_prob);
  prob_axis([](ChaosPlan& p, double v) { p.faults.reorder_prob = v; },
            plan.faults.reorder_prob);
  prob_axis([](ChaosPlan& p, double v) { p.faults.corrupt_prob = v; },
            plan.faults.corrupt_prob);
  prob_axis([](ChaosPlan& p, double v) { p.faults.truncate_prob = v; },
            plan.faults.truncate_prob);
  prob_axis([](ChaosPlan& p, double v) { p.faults.jitter_s = v; },
            plan.faults.jitter_s);
  prob_axis([](ChaosPlan& p, double v) { p.straggler_drop_prob = v; },
            plan.straggler_drop_prob);

  // Deadline: remove it (0 disables), then double it (a looser deadline
  // is the simpler configuration — fewer misses).
  if (plan.uplink_deadline_s > 0.0) {
    with([](ChaosPlan& p) { p.uplink_deadline_s = 0.0; });
    with([](ChaosPlan& p) { p.uplink_deadline_s *= 2.0; });
  }

  // Crash windows: drop each one, then narrow multi-round windows.
  for (std::size_t i = 0; i < plan.faults.crashes.size(); ++i) {
    with([i](ChaosPlan& p) {
      p.faults.crashes.erase(p.faults.crashes.begin() +
                             static_cast<std::ptrdiff_t>(i));
    });
    if (plan.faults.crashes[i].last_round > plan.faults.crashes[i].first_round) {
      with([i](ChaosPlan& p) { p.faults.crashes[i].last_round -= 1; });
    }
  }

  // Protocol knobs toward their inert defaults.
  if (plan.min_aggregate_clients > 1) {
    with([](ChaosPlan& p) { p.min_aggregate_clients = 1; });
    if (plan.min_aggregate_clients > 2) {
      with([](ChaosPlan& p) { p.min_aggregate_clients -= 1; });
    }
  }
  if (plan.max_retries > 0) {
    with([](ChaosPlan& p) { p.max_retries -= 1; });
  }

  // Run shape: fewer rounds (keep the checkpoint split valid), fewer
  // clients (quorum must stay satisfiable).
  if (plan.rounds > 2 && plan.checkpoint_round < plan.rounds - 1) {
    with([](ChaosPlan& p) { p.rounds -= 1; });
  }
  if (plan.num_clients > 2 && plan.num_clients > plan.min_aggregate_clients) {
    with([&plan](ChaosPlan& p) {
      p.num_clients -= 1;
      // Drop crash windows that named the removed client's rank.
      std::vector<comm::CrashWindow> kept;
      for (const comm::CrashWindow& w : p.faults.crashes) {
        if (w.rank <= p.num_clients) kept.push_back(w);
      }
      p.faults.crashes = std::move(kept);
      (void)plan;
    });
  }

  return out;
}

}  // namespace

ShrinkResult shrink_plan(const ChaosPlan& plan, const OracleFn& oracle) {
  ShrinkResult result;
  result.plan = plan;
  result.failure = oracle(plan);
  ++result.trials;
  FEDCAV_REQUIRE(!result.failure.passed,
                 "shrink_plan: plan passes the oracle; nothing to shrink");
  const std::string invariant = result.failure.invariant;

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (const ChaosPlan& candidate : candidates(result.plan)) {
      OracleResult verdict = oracle(candidate);
      ++result.trials;
      if (!verdict.passed && verdict.invariant == invariant) {
        result.plan = candidate;
        result.failure = verdict;
        ++result.steps;
        progressed = true;
        break;  // restart candidate generation from the smaller plan
      }
    }
  }
  return result;
}

ShrinkResult shrink_plan(const ChaosPlan& plan, const OracleOptions& options) {
  return shrink_plan(plan, [&options](const ChaosPlan& candidate) {
    return run_oracle(candidate, options);
  });
}

}  // namespace fedcav::chaos
