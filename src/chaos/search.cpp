#include "src/chaos/search.hpp"

#include <sstream>

#include "src/utils/logging.hpp"
#include "src/utils/rng.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::chaos {

std::string SearchReport::to_string() const {
  std::ostringstream out;
  out << "chaos search: sampler=" << sampler_name << " seed=" << seed
      << " explored=" << explored << " triggered=" << triggered << " failures="
      << failures.size() << '\n';
  out << "axis concentration (level: trials/triggers):\n";
  for (std::size_t i = 0; i < space.axes.size() && i < tallies.size(); ++i) {
    out << "  " << space.axes[i].name << ':';
    for (std::size_t level = 0; level < space.axes[i].levels.size(); ++level) {
      out << ' ' << format_double(space.axes[i].levels[level], 3) << ": "
          << tallies[i].trials[level] << '/' << tallies[i].triggers[level];
    }
    out << '\n';
  }
  for (const SearchFailure& f : failures) {
    out << "FAILURE trial=" << f.trial << " invariant=" << f.result.invariant
        << " detail=" << f.result.detail << '\n';
    out << "  sampled plan:   " << f.plan.describe() << '\n';
    out << "  minimized plan: " << f.minimized.describe() << " (after "
        << f.shrink_trials << " shrink trials)\n";
  }
  return out.str();
}

SearchReport run_search(const SearchConfig& config) {
  const ParamSpace space = ParamSpace::protocol_space();
  std::unique_ptr<Sampler> sampler =
      config.learning ? make_learning_sampler(space, config.seed)
                      : make_random_sampler(space, config.seed);

  SearchReport report;
  report.sampler_name = sampler->name();
  report.seed = config.seed;
  report.space = space;

  // Per-trial fault seeds: an independent splitmix64 stream off the
  // search seed, so trial i's fault pattern never depends on sampler
  // internals (random and learning runs explore the same seed sequence).
  std::uint64_t seed_state = config.seed ^ 0xc4a05e71ULL;

  for (std::size_t trial = 1; trial <= config.budget; ++trial) {
    const std::vector<std::size_t> choice = sampler->next();
    const std::uint64_t fault_seed = splitmix64(seed_state);
    const ChaosPlan plan = space.materialize(choice, fault_seed);
    const OracleResult verdict = run_oracle(plan, config.oracle);
    sampler->report(choice, verdict.triggered);
    ++report.explored;
    if (verdict.triggered) ++report.triggered;
    if (!verdict.passed) {
      FEDCAV_LOG_WARN << "chaos trial " << trial << " violated '"
                      << verdict.invariant << "': " << plan.describe();
      SearchFailure failure;
      failure.plan = plan;
      failure.minimized = plan;
      failure.result = verdict;
      failure.trial = trial;
      if (config.minimize) {
        const ShrinkResult shrunk = shrink_plan(plan, config.oracle);
        failure.minimized = shrunk.plan;
        failure.result = shrunk.failure;
        failure.shrink_trials = shrunk.trials;
      }
      report.failures.push_back(std::move(failure));
    }
  }

  report.tallies = sampler->tallies();
  return report;
}

}  // namespace fedcav::chaos
