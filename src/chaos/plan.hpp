// ChaosPlan: one point in the fault/protocol parameter space the chaos
// search explores.
//
// A plan bundles a comm::FaultPlan (per-link drop/duplicate/reorder/
// corrupt/truncate probabilities, latency jitter, crash windows) with
// the protocol knobs that interact with it (quorum, retry budget,
// uplink deadline, straggler probability) and the shape of the short
// federated run the invariant oracle executes (cohort size, rounds,
// where the checkpoint-resume check splits the run). Plans serialize to
// a line-oriented `key=value` text format so a failing configuration
// minimizes into a small committed reproducer (tests/chaos_seeds/
// *.plan) that replays forever as a pinned regression test.
#pragma once

#include <string>

#include "src/comm/faults.hpp"

namespace fedcav::chaos {

struct ChaosPlan {
  /// Fault injection for the run's fabric (faults.seed is the per-trial
  /// RNG root; a zeroed FaultPlan with a seed is armed but inert).
  comm::FaultPlan faults;

  // --- shape of the oracle's short federated run -------------------
  std::size_t num_clients = 5;
  std::size_t rounds = 2;
  double sample_ratio = 0.8;
  /// Round after which the resume check saves a checkpoint (a value in
  /// [1, rounds-1]; anything else disables the resume invariant for
  /// this plan).
  std::size_t checkpoint_round = 1;

  // --- protocol knobs under test -----------------------------------
  std::size_t min_aggregate_clients = 1;
  std::size_t max_retries = 2;
  double retry_backoff_s = 0.01;
  double uplink_deadline_s = 0.0;  // 0 = no deadline
  double straggler_drop_prob = 0.0;
  /// Round-engine shard count (DESIGN.md §15). 0 = auto (the process
  /// default, so committed seed plans also replay under the
  /// FEDCAV_TEST_SHARDS hook); N pins the run to N shards — results
  /// must be invariant, which is exactly what the oracle's shard-parity
  /// check proves against a forced single-shard replay.
  std::size_t shards = 0;

  /// Throws fedcav::Error on out-of-range values (delegates the fault
  /// axes to FaultPlan::validate against num_clients + 1 endpoints).
  void validate() const;

  /// One-line summary for reports ("drop=0.5 dup=0.1 ... quorum=2").
  /// Axes at their inert defaults are omitted.
  std::string describe() const;

  /// Line-oriented `key=value` serialization (stable key order, '#'
  /// comments and blank lines ignored on parse). parse() throws
  /// fedcav::Error on unknown keys, malformed values, or duplicates.
  std::string to_text() const;
  static ChaosPlan parse(const std::string& text);

  bool operator==(const ChaosPlan&) const = default;
};

/// File forms of to_text()/parse(). Throw fedcav::Error on IO failure.
void save_plan_file(const ChaosPlan& plan, const std::string& path);
ChaosPlan load_plan_file(const std::string& path);

/// Render crash windows back into parse_crash_spec's
/// "rank:first-last[,...]" form (empty string for no windows).
std::string format_crash_spec(const std::vector<comm::CrashWindow>& windows);

}  // namespace fedcav::chaos
