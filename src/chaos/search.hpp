// Chaos-search driver: sampler → materialize → oracle → feedback loop.
//
// Each trial draws a choice from the sampler, materializes it into a
// ChaosPlan (with a per-trial fault seed derived from the search seed
// via splitmix64), runs the invariant oracle, and feeds the trigger
// signal back. Failing plans are (optionally) shrunk to locally-minimal
// reproducers. The driver is strictly sequential and every RNG it owns
// is seeded from the search seed, so a search report is byte-identical
// for a given (sampler, seed, budget) regardless of thread-pool size —
// the deflake guarantee the determinism suite pins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/oracle.hpp"
#include "src/chaos/sampler.hpp"
#include "src/chaos/shrink.hpp"

namespace fedcav::chaos {

struct SearchConfig {
  std::size_t budget = 200;   // number of plans to explore
  std::uint64_t seed = 1;     // sampler + fault-seed derivation root
  bool learning = true;       // epsilon-greedy sampler (else uniform random)
  bool minimize = true;       // shrink failing plans
  OracleOptions oracle;
};

struct SearchFailure {
  ChaosPlan plan;            // as sampled
  ChaosPlan minimized;       // after shrinking (== plan when not minimized)
  OracleResult result;       // verdict on `minimized`
  std::size_t trial = 0;     // 1-based trial index that found it
  std::size_t shrink_trials = 0;
};

struct SearchReport {
  std::size_t explored = 0;
  std::size_t triggered = 0;  // trials with observable fault activity
  std::vector<SearchFailure> failures;
  std::string sampler_name;
  std::uint64_t seed = 0;
  /// Per-axis (trials, triggers) histograms copied from the sampler —
  /// shows where the learning sampler concentrated.
  ParamSpace space;
  std::vector<AxisTally> tallies;

  bool ok() const { return failures.empty(); }
  /// Full human-readable report (also the determinism suite's
  /// byte-comparison artifact — no timestamps, no pointers).
  std::string to_string() const;
};

/// Run the search. Deterministic given `config` (modulo the oracle's
/// thread pool, which the fabric's per-link RNG design makes
/// irrelevant to results).
SearchReport run_search(const SearchConfig& config);

}  // namespace fedcav::chaos
