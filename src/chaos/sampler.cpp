#include "src/chaos/sampler.hpp"

#include <cmath>

#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::chaos {

ParamSpace ParamSpace::protocol_space() {
  ParamSpace space;
  space.axes = {
      {"drop_prob", {0.0, 0.05, 0.2, 0.5}},
      {"duplicate_prob", {0.0, 0.05, 0.2, 0.5}},
      {"reorder_prob", {0.0, 0.2, 0.5}},
      {"corrupt_prob", {0.0, 0.05, 0.2}},
      {"truncate_prob", {0.0, 0.05, 0.2}},
      {"jitter_s", {0.0, 0.01, 0.1}},
      // Number of clients with a scheduled outage (client i crashes for
      // round i+1 — staggered so quorum interactions vary by count).
      {"crash_clients", {0.0, 1.0, 2.0}},
      {"straggler_drop_prob", {0.0, 0.3, 0.7}},
      {"min_aggregate_clients", {1.0, 2.0, 3.0}},
      {"max_retries", {0.0, 1.0, 3.0}},
      {"uplink_deadline_s", {0.0, 1.0, 20.0}},
      // Round-engine shard count (DESIGN.md §15): shard × fault ×
      // quorum interactions — the per-shard accounting ledger and the
      // shard-parity oracle both run at whatever this picks.
      {"shards", {1.0, 2.0, 4.0}},
  };
  return space;
}

ChaosPlan ParamSpace::materialize(const std::vector<std::size_t>& choice,
                                  std::uint64_t fault_seed) const {
  FEDCAV_REQUIRE(choice.size() == axes.size(),
                 "ParamSpace::materialize: choice/axis count mismatch");
  ChaosPlan plan;
  plan.faults.seed = fault_seed;
  for (std::size_t i = 0; i < axes.size(); ++i) {
    const Axis& axis = axes[i];
    FEDCAV_REQUIRE(choice[i] < axis.levels.size(),
                   "ParamSpace::materialize: level index out of range for '" +
                       axis.name + "'");
    const double v = axis.levels[choice[i]];
    if (axis.name == "drop_prob") {
      plan.faults.drop_prob = v;
    } else if (axis.name == "duplicate_prob") {
      plan.faults.duplicate_prob = v;
    } else if (axis.name == "reorder_prob") {
      plan.faults.reorder_prob = v;
    } else if (axis.name == "corrupt_prob") {
      plan.faults.corrupt_prob = v;
    } else if (axis.name == "truncate_prob") {
      plan.faults.truncate_prob = v;
    } else if (axis.name == "jitter_s") {
      plan.faults.jitter_s = v;
    } else if (axis.name == "crash_clients") {
      const auto count = static_cast<std::size_t>(v);
      for (std::size_t c = 0; c < count && c < plan.num_clients; ++c) {
        // Client c (fabric rank c + 1) is offline for round c + 1.
        comm::CrashWindow w;
        w.rank = c + 1;
        w.first_round = c + 1;
        w.last_round = c + 1;
        plan.faults.crashes.push_back(w);
      }
    } else if (axis.name == "straggler_drop_prob") {
      plan.straggler_drop_prob = v;
    } else if (axis.name == "min_aggregate_clients") {
      plan.min_aggregate_clients = static_cast<std::size_t>(v);
    } else if (axis.name == "max_retries") {
      plan.max_retries = static_cast<std::size_t>(v);
    } else if (axis.name == "uplink_deadline_s") {
      plan.uplink_deadline_s = v;
    } else if (axis.name == "shards") {
      plan.shards = static_cast<std::size_t>(v);
    } else {
      throw Error("ParamSpace::materialize: unknown axis '" + axis.name + "'");
    }
  }
  plan.validate();
  return plan;
}

namespace {

std::vector<AxisTally> make_tallies(const ParamSpace& space) {
  std::vector<AxisTally> tallies(space.axes.size());
  for (std::size_t i = 0; i < space.axes.size(); ++i) {
    tallies[i].trials.assign(space.axes[i].levels.size(), 0);
    tallies[i].triggers.assign(space.axes[i].levels.size(), 0);
  }
  return tallies;
}

class SamplerBase : public Sampler {
 public:
  SamplerBase(const ParamSpace& space, std::uint64_t seed)
      : space_(space), rng_(seed), tallies_(make_tallies(space)) {}

  void report(const std::vector<std::size_t>& choice, bool triggered) override {
    FEDCAV_REQUIRE(choice.size() == tallies_.size(),
                   "Sampler::report: choice/axis count mismatch");
    for (std::size_t i = 0; i < choice.size(); ++i) {
      FEDCAV_REQUIRE(choice[i] < tallies_[i].trials.size(),
                     "Sampler::report: level index out of range");
      ++tallies_[i].trials[choice[i]];
      if (triggered) ++tallies_[i].triggers[choice[i]];
    }
  }

  const std::vector<AxisTally>& tallies() const override { return tallies_; }

 protected:
  ParamSpace space_;
  Rng rng_;
  std::vector<AxisTally> tallies_;
};

class RandomSampler final : public SamplerBase {
 public:
  using SamplerBase::SamplerBase;

  std::vector<std::size_t> next() override {
    std::vector<std::size_t> choice(space_.axes.size());
    for (std::size_t i = 0; i < choice.size(); ++i) {
      choice[i] = static_cast<std::size_t>(
          rng_.uniform_int(space_.axes[i].levels.size()));
    }
    return choice;
  }

  std::string name() const override { return "random"; }
};

/// Per-axis epsilon-greedy: each axis is an independent bandit whose
/// reward is the empirical fault-trigger rate of its levels.
class LearningSampler final : public SamplerBase {
 public:
  LearningSampler(const ParamSpace& space, std::uint64_t seed, double epsilon)
      : SamplerBase(space, seed), epsilon_(epsilon) {
    FEDCAV_REQUIRE(epsilon >= 0.0 && epsilon <= 1.0,
                   "LearningSampler: epsilon must be in [0, 1]");
  }

  std::vector<std::size_t> next() override {
    std::vector<std::size_t> choice(space_.axes.size());
    for (std::size_t i = 0; i < choice.size(); ++i) {
      const std::size_t levels = space_.axes[i].levels.size();
      if (rng_.bernoulli(epsilon_)) {
        choice[i] = static_cast<std::size_t>(rng_.uniform_int(levels));
        continue;
      }
      // Exploit: first untried level (optimism), else best trigger rate.
      // Strictly-greater comparisons make ties resolve to the lowest
      // index — fully deterministic, no hidden RNG draws.
      std::size_t best = 0;
      double best_rate = -1.0;
      bool found_untried = false;
      for (std::size_t level = 0; level < levels; ++level) {
        const AxisTally& t = tallies_[i];
        if (t.trials[level] == 0) {
          best = level;
          found_untried = true;
          break;
        }
        const double rate = static_cast<double>(t.triggers[level]) /
                            static_cast<double>(t.trials[level]);
        if (rate > best_rate) {
          best_rate = rate;
          best = level;
        }
      }
      (void)found_untried;
      choice[i] = best;
    }
    return choice;
  }

  std::string name() const override { return "greedy"; }

 private:
  double epsilon_;
};

}  // namespace

std::unique_ptr<Sampler> make_random_sampler(const ParamSpace& space,
                                             std::uint64_t seed) {
  return std::make_unique<RandomSampler>(space, seed);
}

std::unique_ptr<Sampler> make_learning_sampler(const ParamSpace& space,
                                               std::uint64_t seed,
                                               double epsilon) {
  return std::make_unique<LearningSampler>(space, seed, epsilon);
}

}  // namespace fedcav::chaos
