#include "src/chaos/plan.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::chaos {
namespace {

// %.17g round-trips any finite double exactly; format_double's fixed
// precision would truncate large magnitudes.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::size_t parse_size(const std::string& value, const std::string& key) {
  const long long v = parse_int(value);
  FEDCAV_REQUIRE(v >= 0, "ChaosPlan: negative value for '" + key + "'");
  return static_cast<std::size_t>(v);
}

}  // namespace

void ChaosPlan::validate() const {
  faults.validate(num_clients + 1);
  FEDCAV_REQUIRE(num_clients >= 1, "ChaosPlan: need at least one client");
  FEDCAV_REQUIRE(rounds >= 1, "ChaosPlan: need at least one round");
  FEDCAV_REQUIRE(sample_ratio > 0.0 && sample_ratio <= 1.0,
                 "ChaosPlan: sample_ratio must be in (0, 1]");
  FEDCAV_REQUIRE(min_aggregate_clients >= 1,
                 "ChaosPlan: min_aggregate_clients must be >= 1");
  FEDCAV_REQUIRE(retry_backoff_s >= 0.0,
                 "ChaosPlan: retry_backoff_s must be >= 0");
  FEDCAV_REQUIRE(uplink_deadline_s >= 0.0,
                 "ChaosPlan: uplink_deadline_s must be >= 0");
  FEDCAV_REQUIRE(straggler_drop_prob >= 0.0 && straggler_drop_prob <= 1.0,
                 "ChaosPlan: straggler_drop_prob must be in [0, 1]");
}

std::string ChaosPlan::describe() const {
  std::ostringstream out;
  out << "seed=" << faults.seed;
  const auto axis = [&out](const char* name, double v) {
    if (v != 0.0) out << ' ' << name << '=' << format_double(v, 3);
  };
  axis("drop", faults.drop_prob);
  axis("dup", faults.duplicate_prob);
  axis("reorder", faults.reorder_prob);
  axis("corrupt", faults.corrupt_prob);
  axis("trunc", faults.truncate_prob);
  axis("jitter", faults.jitter_s);
  axis("straggle", straggler_drop_prob);
  axis("deadline", uplink_deadline_s);
  if (!faults.crashes.empty()) out << " crashes=" << format_crash_spec(faults.crashes);
  if (min_aggregate_clients > 1) out << " quorum=" << min_aggregate_clients;
  if (shards > 0) out << " shards=" << shards;
  out << " retries=" << max_retries << " clients=" << num_clients
      << " rounds=" << rounds;
  return out.str();
}

std::string ChaosPlan::to_text() const {
  std::ostringstream out;
  out << "# fedcav chaos plan\n";
  out << "seed=" << faults.seed << '\n';
  out << "drop_prob=" << fmt_double(faults.drop_prob) << '\n';
  out << "duplicate_prob=" << fmt_double(faults.duplicate_prob) << '\n';
  out << "reorder_prob=" << fmt_double(faults.reorder_prob) << '\n';
  out << "corrupt_prob=" << fmt_double(faults.corrupt_prob) << '\n';
  out << "truncate_prob=" << fmt_double(faults.truncate_prob) << '\n';
  out << "jitter_s=" << fmt_double(faults.jitter_s) << '\n';
  out << "crashes=" << format_crash_spec(faults.crashes) << '\n';
  out << "num_clients=" << num_clients << '\n';
  out << "rounds=" << rounds << '\n';
  out << "sample_ratio=" << fmt_double(sample_ratio) << '\n';
  out << "checkpoint_round=" << checkpoint_round << '\n';
  out << "min_aggregate_clients=" << min_aggregate_clients << '\n';
  out << "max_retries=" << max_retries << '\n';
  out << "retry_backoff_s=" << fmt_double(retry_backoff_s) << '\n';
  out << "uplink_deadline_s=" << fmt_double(uplink_deadline_s) << '\n';
  out << "straggler_drop_prob=" << fmt_double(straggler_drop_prob) << '\n';
  out << "shards=" << shards << '\n';
  return out.str();
}

ChaosPlan ChaosPlan::parse(const std::string& text) {
  ChaosPlan plan;
  std::unordered_set<std::string> seen;
  for (const std::string& raw : split(text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find('=');
    FEDCAV_REQUIRE(eq != std::string::npos,
                   "ChaosPlan: expected key=value, got '" + line + "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    FEDCAV_REQUIRE(seen.insert(key).second,
                   "ChaosPlan: duplicate key '" + key + "'");
    if (key == "seed") {
      plan.faults.seed = static_cast<std::uint64_t>(parse_size(value, key));
    } else if (key == "drop_prob") {
      plan.faults.drop_prob = parse_double(value);
    } else if (key == "duplicate_prob") {
      plan.faults.duplicate_prob = parse_double(value);
    } else if (key == "reorder_prob") {
      plan.faults.reorder_prob = parse_double(value);
    } else if (key == "corrupt_prob") {
      plan.faults.corrupt_prob = parse_double(value);
    } else if (key == "truncate_prob") {
      plan.faults.truncate_prob = parse_double(value);
    } else if (key == "jitter_s") {
      plan.faults.jitter_s = parse_double(value);
    } else if (key == "crashes") {
      plan.faults.crashes = comm::parse_crash_spec(value);
    } else if (key == "num_clients") {
      plan.num_clients = parse_size(value, key);
    } else if (key == "rounds") {
      plan.rounds = parse_size(value, key);
    } else if (key == "sample_ratio") {
      plan.sample_ratio = parse_double(value);
    } else if (key == "checkpoint_round") {
      plan.checkpoint_round = parse_size(value, key);
    } else if (key == "min_aggregate_clients") {
      plan.min_aggregate_clients = parse_size(value, key);
    } else if (key == "max_retries") {
      plan.max_retries = parse_size(value, key);
    } else if (key == "retry_backoff_s") {
      plan.retry_backoff_s = parse_double(value);
    } else if (key == "uplink_deadline_s") {
      plan.uplink_deadline_s = parse_double(value);
    } else if (key == "straggler_drop_prob") {
      plan.straggler_drop_prob = parse_double(value);
    } else if (key == "shards") {
      plan.shards = parse_size(value, key);
    } else {
      throw Error("ChaosPlan: unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

void save_plan_file(const ChaosPlan& plan, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  FEDCAV_REQUIRE(out.good(), "ChaosPlan: cannot open '" + path + "' for write");
  out << plan.to_text();
  out.flush();
  FEDCAV_REQUIRE(out.good(), "ChaosPlan: write to '" + path + "' failed");
}

ChaosPlan load_plan_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FEDCAV_REQUIRE(in.good(), "ChaosPlan: cannot open '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return ChaosPlan::parse(text.str());
}

std::string format_crash_spec(const std::vector<comm::CrashWindow>& windows) {
  std::vector<std::string> parts;
  parts.reserve(windows.size());
  for (const comm::CrashWindow& w : windows) {
    std::ostringstream part;
    part << w.rank << ':' << w.first_round << '-' << w.last_round;
    parts.push_back(part.str());
  }
  return join(parts, ",");
}

}  // namespace fedcav::chaos
