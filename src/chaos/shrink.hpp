// Greedy plan minimizer: given a plan the oracle rejects, repeatedly
// try simpler candidate plans (zero an axis, halve a probability, drop
// a crash window, shrink the run) and keep any candidate that still
// fails with the SAME invariant. Runs to a fixed point, so the result
// is locally minimal: no single simplification step preserves the
// failure. Deterministic — candidates are generated and tested in a
// fixed order — so a minimized reproducer is stable across machines.
#pragma once

#include <cstddef>
#include <functional>

#include "src/chaos/oracle.hpp"
#include "src/chaos/plan.hpp"

namespace fedcav::chaos {

struct ShrinkResult {
  ChaosPlan plan;          // the minimized plan (== input if nothing shrank)
  OracleResult failure;    // the oracle's verdict on `plan`
  std::size_t steps = 0;   // accepted simplification steps
  std::size_t trials = 0;  // oracle runs spent shrinking
};

/// Any plan → verdict function; the search uses run_oracle, tests plug
/// in synthetic predicates to pin the minimizer's behavior.
using OracleFn = std::function<OracleResult(const ChaosPlan&)>;

/// Minimize `plan`, which must fail `oracle` (throws fedcav::Error if
/// it passes — there is nothing to shrink). Keeps only candidates
/// failing with the same invariant name, so the reproducer still
/// witnesses the original bug, not a different one uncovered on the
/// way down.
ShrinkResult shrink_plan(const ChaosPlan& plan, const OracleFn& oracle);

/// Convenience overload over run_oracle(plan, options).
ShrinkResult shrink_plan(const ChaosPlan& plan, const OracleOptions& options = {});

}  // namespace fedcav::chaos
