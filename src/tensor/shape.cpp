#include "src/tensor/shape.hpp"

#include "src/utils/error.hpp"

namespace fedcav {

Shape::Shape(std::initializer_list<std::size_t> dims) {
  FEDCAV_REQUIRE(dims.size() <= kMaxRank, "Shape: rank exceeds kMaxRank");
  for (std::size_t d : dims) dims_[rank_++] = d;
}

Shape Shape::of(std::size_t d0) { return Shape{d0}; }
Shape Shape::of(std::size_t d0, std::size_t d1) { return Shape{d0, d1}; }
Shape Shape::of(std::size_t d0, std::size_t d1, std::size_t d2) { return Shape{d0, d1, d2}; }
Shape Shape::of(std::size_t d0, std::size_t d1, std::size_t d2, std::size_t d3) {
  return Shape{d0, d1, d2, d3};
}

std::size_t Shape::operator[](std::size_t axis) const {
  FEDCAV_REQUIRE(axis < rank_, "Shape: axis out of range");
  return dims_[axis];
}

std::size_t Shape::numel() const {
  std::size_t n = 1;
  for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
  return n;
}

std::size_t Shape::offset(std::size_t i0) const {
  FEDCAV_REQUIRE(rank_ == 1, "Shape::offset: rank mismatch");
  return i0;
}

std::size_t Shape::offset(std::size_t i0, std::size_t i1) const {
  FEDCAV_REQUIRE(rank_ == 2, "Shape::offset: rank mismatch");
  return i0 * dims_[1] + i1;
}

std::size_t Shape::offset(std::size_t i0, std::size_t i1, std::size_t i2) const {
  FEDCAV_REQUIRE(rank_ == 3, "Shape::offset: rank mismatch");
  return (i0 * dims_[1] + i1) * dims_[2] + i2;
}

std::size_t Shape::offset(std::size_t i0, std::size_t i1, std::size_t i2,
                          std::size_t i3) const {
  FEDCAV_REQUIRE(rank_ == 4, "Shape::offset: rank mismatch");
  return ((i0 * dims_[1] + i1) * dims_[2] + i2) * dims_[3] + i3;
}

bool Shape::operator==(const Shape& other) const {
  if (rank_ != other.rank_) return false;
  for (std::size_t i = 0; i < rank_; ++i) {
    if (dims_[i] != other.dims_[i]) return false;
  }
  return true;
}

std::string Shape::to_string() const {
  std::string s = "[";
  for (std::size_t i = 0; i < rank_; ++i) {
    if (i > 0) s += ", ";
    s += std::to_string(dims_[i]);
  }
  return s + "]";
}

}  // namespace fedcav
