#include "src/tensor/im2col.hpp"

#include <algorithm>
#include <cstring>

#include "src/utils/error.hpp"

namespace fedcav {

namespace {

// The x-positions whose source column sx = x*stride + k - pad lands
// inside [0, in_w) form one contiguous interval [x_lo, x_hi); computing
// it once per row replaces the per-element bounds branch, which the
// profile showed costing as much as the GEMMs themselves.
void valid_range(std::size_t count, std::size_t stride, std::size_t k,
                 std::size_t pad, std::size_t limit, std::size_t& lo,
                 std::size_t& hi) {
  const long long off = static_cast<long long>(k) - static_cast<long long>(pad);
  const long long s = static_cast<long long>(stride);
  lo = off >= 0 ? 0
                : std::min(count, static_cast<std::size_t>((-off + s - 1) / s));
  const long long len = static_cast<long long>(limit) - off;
  hi = len > 0 ? std::min(count, static_cast<std::size_t>((len + s - 1) / s))
               : 0;
  if (hi < lo) hi = lo;
}

}  // namespace

void Conv2dGeometry::validate() const {
  FEDCAV_REQUIRE(in_channels > 0 && in_h > 0 && in_w > 0, "Conv2dGeometry: empty input");
  FEDCAV_REQUIRE(kernel_h > 0 && kernel_w > 0, "Conv2dGeometry: empty kernel");
  FEDCAV_REQUIRE(stride > 0, "Conv2dGeometry: zero stride");
  FEDCAV_REQUIRE(in_h + 2 * pad >= kernel_h && in_w + 2 * pad >= kernel_w,
                 "Conv2dGeometry: kernel larger than padded input");
}

void im2col(const Conv2dGeometry& g, const float* image, float* cols, std::size_t ld) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      std::size_t y_lo, y_hi;
      valid_range(oh, g.stride, kh, g.pad, g.in_h, y_lo, y_hi);
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        std::size_t x_lo, x_hi;
        valid_range(ow, g.stride, kw, g.pad, g.in_w, x_lo, x_hi);
        const long long x_off =
            static_cast<long long>(kw) - static_cast<long long>(g.pad);
        float* dst = cols + row * ld;
        if (y_lo > 0) std::memset(dst, 0, y_lo * ow * sizeof(float));
        if (y_hi < oh) {
          std::memset(dst + y_hi * ow, 0, (oh - y_hi) * ow * sizeof(float));
        }
        for (std::size_t y = y_lo; y < y_hi; ++y) {
          const std::size_t sy = y * g.stride + kh - g.pad;
          const float* srow = chan + sy * g.in_w;
          float* d = dst + y * ow;
          for (std::size_t x = 0; x < x_lo; ++x) d[x] = 0.0f;
          if (g.stride == 1) {
            // An open-coded copy, not memcpy: rows here are a handful of
            // floats (≤ out_w) and the call overhead of a libc memcpy
            // dwarfs the copy itself at that size.
            const float* __restrict__ s =
                srow + static_cast<std::size_t>(
                           static_cast<long long>(x_lo) + x_off);
            float* __restrict__ dr = d + x_lo;
            const std::size_t len = x_hi - x_lo;
            for (std::size_t x = 0; x < len; ++x) dr[x] = s[x];
          } else {
            for (std::size_t x = x_lo; x < x_hi; ++x) {
              d[x] = srow[static_cast<std::size_t>(
                  static_cast<long long>(x * g.stride) + x_off)];
            }
          }
          for (std::size_t x = x_hi; x < ow; ++x) d[x] = 0.0f;
        }
      }
    }
  }
}

void im2col(const Conv2dGeometry& g, const float* image, Tensor& cols) {
  FEDCAV_REQUIRE(cols.shape().rank() == 2 && cols.shape()[0] == g.col_rows() &&
                     cols.shape()[1] == g.col_cols(),
                 "im2col: cols shape mismatch");
  im2col(g, image, cols.data(), g.col_cols());
}

void col2im(const Conv2dGeometry& g, const float* cols, std::size_t ld,
            float* grad_image) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* chan = grad_image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      std::size_t y_lo, y_hi;
      valid_range(oh, g.stride, kh, g.pad, g.in_h, y_lo, y_hi);
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        std::size_t x_lo, x_hi;
        valid_range(ow, g.stride, kw, g.pad, g.in_w, x_lo, x_hi);
        const long long x_off =
            static_cast<long long>(kw) - static_cast<long long>(g.pad);
        const float* src = cols + row * ld;
        for (std::size_t y = y_lo; y < y_hi; ++y) {
          const std::size_t sy = y * g.stride + kh - g.pad;
          float* drow = chan + sy * g.in_w;
          // restrict: the column matrix and the image gradient are
          // always distinct buffers; without the promise the += loop
          // cannot vectorize.
          const float* __restrict__ s = src + y * ow;
          if (g.stride == 1) {
            float* __restrict__ d =
                drow + static_cast<std::size_t>(
                           static_cast<long long>(x_lo) + x_off);
            const std::size_t len = x_hi - x_lo;
            for (std::size_t x = 0; x < len; ++x) d[x] += s[x_lo + x];
          } else {
            for (std::size_t x = x_lo; x < x_hi; ++x) {
              drow[static_cast<std::size_t>(
                  static_cast<long long>(x * g.stride) + x_off)] += s[x];
            }
          }
        }
      }
    }
  }
}

void im2col_padded(const Conv2dGeometry& g, const float* padded, float* cols,
                   std::size_t ld) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t pw = g.in_w + 2 * g.pad;
  const std::size_t pplane = (g.in_h + 2 * g.pad) * pw;
  const std::size_t s = g.stride;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* chan = padded + c * pplane;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* base = chan + kh * pw + kw;
        float* dst = cols + row * ld;
        if (s == 1) {
          for (std::size_t y = 0; y < oh; ++y) {
            const float* __restrict__ sr = base + y * pw;
            float* __restrict__ d = dst + y * ow;
            for (std::size_t x = 0; x < ow; ++x) d[x] = sr[x];
          }
        } else {
          for (std::size_t y = 0; y < oh; ++y) {
            const float* __restrict__ sr = base + y * s * pw;
            float* __restrict__ d = dst + y * ow;
            for (std::size_t x = 0; x < ow; ++x) d[x] = sr[x * s];
          }
        }
      }
    }
  }
}

void col2im_padded(const Conv2dGeometry& g, const float* cols, std::size_t ld,
                   float* padded) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  const std::size_t pw = g.in_w + 2 * g.pad;
  const std::size_t pplane = (g.in_h + 2 * g.pad) * pw;
  const std::size_t s = g.stride;
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* chan = padded + c * pplane;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* base = chan + kh * pw + kw;
        const float* src = cols + row * ld;
        if (s == 1) {
          for (std::size_t y = 0; y < oh; ++y) {
            const float* __restrict__ sr = src + y * ow;
            float* __restrict__ d = base + y * pw;
            for (std::size_t x = 0; x < ow; ++x) d[x] += sr[x];
          }
        } else {
          for (std::size_t y = 0; y < oh; ++y) {
            const float* __restrict__ sr = src + y * ow;
            float* __restrict__ d = base + y * s * pw;
            for (std::size_t x = 0; x < ow; ++x) d[x * s] += sr[x];
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeometry& g, const Tensor& cols, float* grad_image) {
  FEDCAV_REQUIRE(cols.shape().rank() == 2 && cols.shape()[0] == g.col_rows() &&
                     cols.shape()[1] == g.col_cols(),
                 "col2im: cols shape mismatch");
  col2im(g, cols.data(), g.col_cols(), grad_image);
}

}  // namespace fedcav
