#include "src/tensor/im2col.hpp"

#include "src/utils/error.hpp"

namespace fedcav {

void Conv2dGeometry::validate() const {
  FEDCAV_REQUIRE(in_channels > 0 && in_h > 0 && in_w > 0, "Conv2dGeometry: empty input");
  FEDCAV_REQUIRE(kernel_h > 0 && kernel_w > 0, "Conv2dGeometry: empty kernel");
  FEDCAV_REQUIRE(stride > 0, "Conv2dGeometry: zero stride");
  FEDCAV_REQUIRE(in_h + 2 * pad >= kernel_h && in_w + 2 * pad >= kernel_w,
                 "Conv2dGeometry: kernel larger than padded input");
}

void im2col(const Conv2dGeometry& g, const float* image, Tensor& cols) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  FEDCAV_REQUIRE(cols.shape().rank() == 2 && cols.shape()[0] == g.col_rows() &&
                     cols.shape()[1] == g.col_cols(),
                 "im2col: cols shape mismatch");
  float* out = cols.data();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* dst = out + row * (oh * ow);
        for (std::size_t y = 0; y < oh; ++y) {
          // Signed source coordinates: padding can push them negative.
          const long long sy = static_cast<long long>(y * g.stride + kh) -
                               static_cast<long long>(g.pad);
          for (std::size_t x = 0; x < ow; ++x) {
            const long long sx = static_cast<long long>(x * g.stride + kw) -
                                 static_cast<long long>(g.pad);
            const bool inside = sy >= 0 && sy < static_cast<long long>(g.in_h) &&
                                sx >= 0 && sx < static_cast<long long>(g.in_w);
            dst[y * ow + x] =
                inside ? chan[static_cast<std::size_t>(sy) * g.in_w +
                              static_cast<std::size_t>(sx)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeometry& g, const Tensor& cols, float* grad_image) {
  const std::size_t oh = g.out_h();
  const std::size_t ow = g.out_w();
  FEDCAV_REQUIRE(cols.shape().rank() == 2 && cols.shape()[0] == g.col_rows() &&
                     cols.shape()[1] == g.col_cols(),
                 "col2im: cols shape mismatch");
  const float* in = cols.data();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.in_channels; ++c) {
    float* chan = grad_image + c * g.in_h * g.in_w;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* src = in + row * (oh * ow);
        for (std::size_t y = 0; y < oh; ++y) {
          const long long sy = static_cast<long long>(y * g.stride + kh) -
                               static_cast<long long>(g.pad);
          if (sy < 0 || sy >= static_cast<long long>(g.in_h)) continue;
          for (std::size_t x = 0; x < ow; ++x) {
            const long long sx = static_cast<long long>(x * g.stride + kw) -
                                 static_cast<long long>(g.pad);
            if (sx < 0 || sx >= static_cast<long long>(g.in_w)) continue;
            chan[static_cast<std::size_t>(sy) * g.in_w + static_cast<std::size_t>(sx)] +=
                src[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace fedcav
