#include "src/tensor/gemm.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::ops {

namespace {

constexpr std::size_t kMr = kGemmMr;
constexpr std::size_t kNr = kGemmNr;

// B-panel scratch, reused across calls on the same thread. Clients train
// concurrently on the shared pool, so this must be thread_local rather
// than a single static buffer.
std::vector<float>& b_panel_scratch() {
  thread_local std::vector<float> panel;
  return panel;
}

/// Contraction-axis block size. Panels are kc × kNr = 16 KB, so the B
/// panel stays L1-resident while every A tile streams against it — the
/// batch-fused conv GEMMs contract over k = batch·out_plane (thousands),
/// and an unblocked panel would be re-streamed from L2/L3 once per A
/// tile.
constexpr std::size_t kKc = 256;

/// Pack the k-rows [k0, k0+kc) of NR columns [j0, j0+nr) of op(B) into
/// `panel` (kc × kNr, k-major, zero padded on the right when nr < kNr).
void pack_b_panel(Trans tb, std::size_t n, const float* b, std::size_t ldb,
                  std::size_t j0, std::size_t k0, std::size_t kc, float* panel) {
  const std::size_t nr = std::min(kNr, n - j0);
  if (tb == Trans::kNo) {
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float* src = b + (k0 + kk) * ldb + j0;
      float* dst = panel + kk * kNr;
      for (std::size_t c = 0; c < nr; ++c) dst[c] = src[c];
      for (std::size_t c = nr; c < kNr; ++c) dst[c] = 0.0f;
    }
  } else {
    // op(B)(kk, j) = B(j, kk): columns of op(B) are rows of B.
    for (std::size_t kk = 0; kk < kc; ++kk) {
      float* dst = panel + kk * kNr;
      for (std::size_t c = 0; c < nr; ++c) dst[c] = b[(j0 + c) * ldb + k0 + kk];
      for (std::size_t c = nr; c < kNr; ++c) dst[c] = 0.0f;
    }
  }
}

/// The register-tiled inner kernel: C[i0:i0+mr, j0:j0+nr] gets the
/// length-k contraction of one packed A panel with one packed B panel.
/// The k-loop is branch-free and touches only the two panels; the MR×NR
/// accumulator block stays in registers.
///
/// The hot path spells the tile out with GNU vector extensions (one
/// kNr-wide vector per accumulator row, scalar-broadcast FMA against the
/// B vector) because the autovectorizer picks the 4-wide row axis for
/// the equivalent scalar loop nest. GCC lowers the 64-byte vector to
/// whatever the target has (2×AVX2 or 1×AVX-512 op per row).
#if defined(__GNUC__) || defined(__clang__)
#define FEDCAV_GEMM_VECTOR_KERNEL 1
using VecNr = float __attribute__((vector_size(kNr * sizeof(float))));

VecNr load_vec(const float* p) {
  VecNr v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load
  return v;
}
#endif

void micro_kernel(const float* a_panel, const float* b_panel, std::size_t k,
                  std::size_t mr, std::size_t nr, float beta, float* c,
                  std::size_t ldc) {
  static_assert(kMr == 4, "micro_kernel unrolls exactly kMr accumulator rows");
  float acc[kMr][kNr];
#ifdef FEDCAV_GEMM_VECTOR_KERNEL
  if (mr <= 2) {
    // Short tile: an m-edge of 1–2 rows (e.g. a 6-channel conv leaves a
    // 2-row remainder) would waste half the k-loop on zero-padded
    // accumulator rows; this variant carries only two.
    VecNr acc0{}, acc1{};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a_panel + kk * kMr;
      const VecNr bv = load_vec(b_panel + kk * kNr);
      acc0 += arow[0] * bv;
      acc1 += arow[1] * bv;
    }
    __builtin_memcpy(acc[0], &acc0, sizeof(acc0));
    __builtin_memcpy(acc[1], &acc1, sizeof(acc1));
    for (std::size_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t col = 0; col < nr; ++col) {
        crow[col] = (beta == 0.0f ? 0.0f : beta * crow[col]) + acc[r][col];
      }
    }
    return;
  }
  VecNr acc0{}, acc1{}, acc2{}, acc3{};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a_panel + kk * kMr;
    const VecNr bv = load_vec(b_panel + kk * kNr);
    acc0 += arow[0] * bv;
    acc1 += arow[1] * bv;
    acc2 += arow[2] * bv;
    acc3 += arow[3] * bv;
  }
  __builtin_memcpy(acc[0], &acc0, sizeof(acc0));
  __builtin_memcpy(acc[1], &acc1, sizeof(acc1));
  __builtin_memcpy(acc[2], &acc2, sizeof(acc2));
  __builtin_memcpy(acc[3], &acc3, sizeof(acc3));
#else
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t col = 0; col < kNr; ++col) acc[r][col] = 0.0f;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a_panel + kk * kMr;
    const float* brow = b_panel + kk * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::size_t col = 0; col < kNr; ++col) acc[r][col] += av * brow[col];
    }
  }
#endif
  if (mr == kMr && nr == kNr) {
    if (beta == 0.0f) {
      for (std::size_t r = 0; r < kMr; ++r) {
        float* crow = c + r * ldc;
        for (std::size_t col = 0; col < kNr; ++col) crow[col] = acc[r][col];
      }
    } else {
      for (std::size_t r = 0; r < kMr; ++r) {
        float* crow = c + r * ldc;
        for (std::size_t col = 0; col < kNr; ++col) {
          crow[col] = beta * crow[col] + acc[r][col];
        }
      }
    }
    return;
  }
  // Edge tile: bounds-checked scalar writeback.
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t col = 0; col < nr; ++col) {
      crow[col] = (beta == 0.0f ? 0.0f : beta * crow[col]) + acc[r][col];
    }
  }
}

}  // namespace

PackedA pack_a(Trans ta, std::size_t m, std::size_t k, const float* a,
               std::size_t lda) {
  PackedA packed;
  pack_a_into(ta, m, k, a, lda, packed);
  return packed;
}

void pack_a_into(Trans ta, std::size_t m, std::size_t k, const float* a,
                 std::size_t lda, PackedA& packed) {
  packed.m = m;
  packed.k = k;
  const std::size_t tiles = (m + kMr - 1) / kMr;
  // assign() reuses the vector's capacity, so repacking the same logical
  // shape every step touches no heap.
  packed.data.assign(tiles * k * kMr, 0.0f);
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t i0 = t * kMr;
    const std::size_t mr = std::min(kMr, m - i0);
    float* panel = packed.data.data() + t * k * kMr;
    if (ta == Trans::kNo) {
      for (std::size_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r) * lda;
        for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kMr + r] = src[kk];
      }
    } else {
      // op(A)(i, kk) = A(kk, i): walk A row-by-row so reads stay
      // contiguous and the strided writes hit the small packed panel.
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* src = a + kk * lda + i0;
        float* dst = panel + kk * kMr;
        for (std::size_t r = 0; r < mr; ++r) dst[r] = src[r];
      }
    }
  }
}

void gemm_prepacked(const PackedA& a, Trans tb, std::size_t n, const float* b,
                    std::size_t ldb, float beta, float* c, std::size_t ldc) {
  const std::size_t m = a.m;
  const std::size_t k = a.k;
  if (m == 0 || n == 0) return;
  if (obs::enabled()) {
    // Every GEMM entry point funnels through here, so one pair of
    // counters covers the whole library's matrix-multiply volume.
    static obs::Counter& calls = obs::registry().counter("gemm.calls");
    static obs::Counter& flops = obs::registry().counter("gemm.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  }
  if (k == 0) {
    // Degenerate contraction: C = beta·C.
    for (std::size_t r = 0; r < m; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t col = 0; col < n; ++col) {
        crow[col] = beta == 0.0f ? 0.0f : beta * crow[col];
      }
    }
    return;
  }
  std::vector<float>& panel = b_panel_scratch();
  panel.resize(std::min(k, kKc) * kNr);
  const std::size_t a_tiles = (m + kMr - 1) / kMr;
  for (std::size_t j0 = 0; j0 < n; j0 += kNr) {
    const std::size_t nr = std::min(kNr, n - j0);
    for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
      const std::size_t kc = std::min(kKc, k - k0);
      pack_b_panel(tb, n, b, ldb, j0, k0, kc, panel.data());
      // The first k-block applies the caller's beta; later blocks
      // accumulate onto the partial C tile.
      const float blk_beta = k0 == 0 ? beta : 1.0f;
      for (std::size_t t = 0; t < a_tiles; ++t) {
        const std::size_t i0 = t * kMr;
        const std::size_t mr = std::min(kMr, m - i0);
        micro_kernel(a.data.data() + t * k * kMr + k0 * kMr, panel.data(), kc,
                     mr, nr, blk_beta, c + i0 * ldc + j0, ldc);
      }
    }
  }
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  const PackedA packed = pack_a(ta, m, k, a, lda);
  gemm_prepacked(packed, tb, n, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, const Tensor& a, const Tensor& b, Tensor& c,
          float beta) {
  FEDCAV_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                     c.shape().rank() == 2,
                 "gemm: rank-2 tensors required");
  const std::size_t m = ta == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k = ta == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t kb = tb == Trans::kNo ? b.shape()[0] : b.shape()[1];
  const std::size_t n = tb == Trans::kNo ? b.shape()[1] : b.shape()[0];
  FEDCAV_REQUIRE(kb == k, "gemm: inner dimensions differ (" +
                              a.shape().to_string() + " vs " +
                              b.shape().to_string() + ")");
  FEDCAV_REQUIRE(c.shape()[0] == m && c.shape()[1] == n,
                 "gemm: output shape mismatch, want (" + std::to_string(m) +
                     " x " + std::to_string(n) + "), got " +
                     c.shape().to_string());
  gemm(ta, tb, m, n, k, a.data(), a.shape()[1], b.data(), b.shape()[1], beta,
       c.data(), c.shape()[1]);
}

}  // namespace fedcav::ops
