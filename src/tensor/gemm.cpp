#include "src/tensor/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/error.hpp"

namespace fedcav::ops {

namespace {

constexpr std::size_t kMr = kGemmMr;
constexpr std::size_t kNr = kGemmNr;

// B-panel scratch, reused across calls on the same thread. Clients train
// concurrently on the shared pool, and the parallel j-tile path below
// packs panels from several kernel-pool workers at once, so this must be
// thread_local rather than a single static buffer.
std::vector<float>& b_panel_scratch() {
  thread_local std::vector<float> panel;
  return panel;
}

/// Contraction-axis block size. Panels are kc × kNr = 16 KB, so the B
/// panel stays L1-resident while every A tile streams against it — the
/// batch-fused conv GEMMs contract over k = batch·out_plane (thousands),
/// and an unblocked panel would be re-streamed from L2/L3 once per A
/// tile.
constexpr std::size_t kKc = 256;

/// Below this many flops (2·m·n·k) a GEMM stays on the single-thread
/// path: the fork/join of even one parallel_for costs more than the
/// whole multiply for the LeNet/MLP shapes.
constexpr std::size_t kGemmParallelMinFlops = std::size_t{1} << 21;

/// Pack the k-rows [k0, k0+kc) of NR columns [j0, j0+nr) of op(B) into
/// `panel` (kc × kNr, k-major, zero padded on the right when nr < kNr).
void pack_b_panel(Trans tb, std::size_t n, const float* b, std::size_t ldb,
                  std::size_t j0, std::size_t k0, std::size_t kc, float* panel) {
  const std::size_t nr = std::min(kNr, n - j0);
  if (tb == Trans::kNo) {
    for (std::size_t kk = 0; kk < kc; ++kk) {
      const float* src = b + (k0 + kk) * ldb + j0;
      float* dst = panel + kk * kNr;
      for (std::size_t c = 0; c < nr; ++c) dst[c] = src[c];
      for (std::size_t c = nr; c < kNr; ++c) dst[c] = 0.0f;
    }
  } else {
    // op(B)(kk, j) = B(j, kk): columns of op(B) are rows of B.
    for (std::size_t kk = 0; kk < kc; ++kk) {
      float* dst = panel + kk * kNr;
      for (std::size_t c = 0; c < nr; ++c) dst[c] = b[(j0 + c) * ldb + k0 + kk];
      for (std::size_t c = nr; c < kNr; ++c) dst[c] = 0.0f;
    }
  }
}

/// The register-tiled inner kernel: C[i0:i0+mr, j0:j0+nr] gets the
/// length-k contraction of one packed A panel with one packed B panel.
/// The k-loop is branch-free and touches only the two panels; the MR×NR
/// accumulator block stays in registers.
///
/// The hot path spells the tile out with GNU vector extensions
/// (scalar-broadcast FMA against the B vectors) because the
/// autovectorizer picks the 4-wide row axis for the equivalent scalar
/// loop nest. The kernel is compiled at two hardware lane widths —
/// L = 16 (one 64-byte vector per accumulator row, 1×AVX-512 op) and
/// L = 8 (two 32-byte vectors per row, 2×AVX2 ops) — and one of them is
/// selected exactly once at startup (see select_micro_kernel). Per-lane
/// float semantics are identical, so the two variants are bit-identical;
/// the width only decides which vector ISA the loop occupies.
#if defined(__GNUC__) || defined(__clang__)
#define FEDCAV_GEMM_VECTOR_KERNEL 1

template <std::size_t L>
struct VecOf {
  typedef float type __attribute__((vector_size(L * sizeof(float))));
};

template <std::size_t L>
inline typename VecOf<L>::type load_lanes(const float* p) {
  typename VecOf<L>::type v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load
  return v;
}

template <std::size_t L>
void micro_kernel_t(const float* a_panel, const float* b_panel, std::size_t k,
                    std::size_t mr, std::size_t nr, float beta, float* c,
                    std::size_t ldc) {
  static_assert(kMr == 4, "micro_kernel unrolls exactly kMr accumulator rows");
  static_assert(kNr % L == 0, "lane width must divide the register tile");
  using V = typename VecOf<L>::type;
  constexpr std::size_t NV = kNr / L;  // hardware vectors per C row
  float acc[kMr][kNr];
  if (mr <= 2) {
    // Short tile: an m-edge of 1–2 rows (e.g. a 6-channel conv leaves a
    // 2-row remainder) would waste half the k-loop on zero-padded
    // accumulator rows; this variant carries only two.
    V a0[NV] = {}, a1[NV] = {};
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float* arow = a_panel + kk * kMr;
      for (std::size_t v = 0; v < NV; ++v) {
        const V bv = load_lanes<L>(b_panel + kk * kNr + v * L);
        a0[v] += arow[0] * bv;
        a1[v] += arow[1] * bv;
      }
    }
    __builtin_memcpy(acc[0], a0, sizeof(a0));
    __builtin_memcpy(acc[1], a1, sizeof(a1));
    for (std::size_t r = 0; r < mr; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t col = 0; col < nr; ++col) {
        crow[col] = (beta == 0.0f ? 0.0f : beta * crow[col]) + acc[r][col];
      }
    }
    return;
  }
  V a0[NV] = {}, a1[NV] = {}, a2[NV] = {}, a3[NV] = {};
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a_panel + kk * kMr;
    for (std::size_t v = 0; v < NV; ++v) {
      const V bv = load_lanes<L>(b_panel + kk * kNr + v * L);
      a0[v] += arow[0] * bv;
      a1[v] += arow[1] * bv;
      a2[v] += arow[2] * bv;
      a3[v] += arow[3] * bv;
    }
  }
  __builtin_memcpy(acc[0], a0, sizeof(a0));
  __builtin_memcpy(acc[1], a1, sizeof(a1));
  __builtin_memcpy(acc[2], a2, sizeof(a2));
  __builtin_memcpy(acc[3], a3, sizeof(a3));
  if (mr == kMr && nr == kNr) {
    if (beta == 0.0f) {
      for (std::size_t r = 0; r < kMr; ++r) {
        float* crow = c + r * ldc;
        for (std::size_t col = 0; col < kNr; ++col) crow[col] = acc[r][col];
      }
    } else {
      for (std::size_t r = 0; r < kMr; ++r) {
        float* crow = c + r * ldc;
        for (std::size_t col = 0; col < kNr; ++col) {
          crow[col] = beta * crow[col] + acc[r][col];
        }
      }
    }
    return;
  }
  // Edge tile: bounds-checked scalar writeback.
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t col = 0; col < nr; ++col) {
      crow[col] = (beta == 0.0f ? 0.0f : beta * crow[col]) + acc[r][col];
    }
  }
}

#else  // portable scalar fallback

void micro_kernel_scalar(const float* a_panel, const float* b_panel,
                         std::size_t k, std::size_t mr, std::size_t nr,
                         float beta, float* c, std::size_t ldc) {
  float acc[kMr][kNr];
  for (std::size_t r = 0; r < kMr; ++r) {
    for (std::size_t col = 0; col < kNr; ++col) acc[r][col] = 0.0f;
  }
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = a_panel + kk * kMr;
    const float* brow = b_panel + kk * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      for (std::size_t col = 0; col < kNr; ++col) acc[r][col] += av * brow[col];
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    float* crow = c + r * ldc;
    for (std::size_t col = 0; col < nr; ++col) {
      crow[col] = (beta == 0.0f ? 0.0f : beta * crow[col]) + acc[r][col];
    }
  }
}

#endif

using MicroKernelFn = void (*)(const float*, const float*, std::size_t,
                               std::size_t, std::size_t, float, float*,
                               std::size_t);

/// 0 = use the startup selection; 8/16 = forced by force_simd_width().
std::atomic<std::size_t> g_forced_lanes{0};

/// Startup selection: prefer the 16-lane build when the CPU has 512-bit
/// vectors, else the 8-lane one (which GCC lowers to AVX2/NEON-width
/// ops). FEDCAV_SIMD=8|16 overrides for A/B testing. Evaluated once.
std::size_t detect_lanes() {
#ifdef FEDCAV_GEMM_VECTOR_KERNEL
  if (const char* env = std::getenv("FEDCAV_SIMD")) {
    if (std::strcmp(env, "8") == 0) return 8;
    if (std::strcmp(env, "16") == 0) return 16;
  }
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") ? 16 : 8;
#else
  return 16;  // one wide GNU vector; the compiler splits it as needed
#endif
#else
  return 0;  // scalar fallback build
#endif
}

std::size_t startup_lanes() {
  static const std::size_t lanes = detect_lanes();
  return lanes;
}

MicroKernelFn micro_kernel_for(std::size_t lanes) {
#ifdef FEDCAV_GEMM_VECTOR_KERNEL
  return lanes == 8 ? &micro_kernel_t<8> : &micro_kernel_t<16>;
#else
  (void)lanes;
  return &micro_kernel_scalar;
#endif
}

MicroKernelFn active_micro_kernel() {
  const std::size_t forced = g_forced_lanes.load(std::memory_order_relaxed);
  return micro_kernel_for(forced != 0 ? forced : startup_lanes());
}

}  // namespace

std::size_t simd_width() {
  const std::size_t forced = g_forced_lanes.load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  const std::size_t lanes = startup_lanes();
  return lanes == 0 ? 1 : lanes;
}

void force_simd_width(std::size_t lanes) {
  FEDCAV_REQUIRE(lanes == 0 || lanes == 8 || lanes == 16,
                 "force_simd_width: lanes must be 0, 8, or 16");
  g_forced_lanes.store(lanes, std::memory_order_relaxed);
}

PackedA pack_a(Trans ta, std::size_t m, std::size_t k, const float* a,
               std::size_t lda) {
  PackedA packed;
  pack_a_into(ta, m, k, a, lda, packed);
  return packed;
}

void pack_a_into(Trans ta, std::size_t m, std::size_t k, const float* a,
                 std::size_t lda, PackedA& packed) {
  packed.m = m;
  packed.k = k;
  const std::size_t tiles = (m + kMr - 1) / kMr;
  // assign() reuses the vector's capacity, so repacking the same logical
  // shape every step touches no heap.
  packed.data.assign(tiles * k * kMr, 0.0f);
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t i0 = t * kMr;
    const std::size_t mr = std::min(kMr, m - i0);
    float* panel = packed.data.data() + t * k * kMr;
    if (ta == Trans::kNo) {
      for (std::size_t r = 0; r < mr; ++r) {
        const float* src = a + (i0 + r) * lda;
        for (std::size_t kk = 0; kk < k; ++kk) panel[kk * kMr + r] = src[kk];
      }
    } else {
      // op(A)(i, kk) = A(kk, i): walk A row-by-row so reads stay
      // contiguous and the strided writes hit the small packed panel.
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float* src = a + kk * lda + i0;
        float* dst = panel + kk * kMr;
        for (std::size_t r = 0; r < mr; ++r) dst[r] = src[r];
      }
    }
  }
}

void gemm_prepacked(const PackedA& a, Trans tb, std::size_t n, const float* b,
                    std::size_t ldb, float beta, float* c, std::size_t ldc) {
  const std::size_t m = a.m;
  const std::size_t k = a.k;
  if (m == 0 || n == 0) return;
  if (obs::enabled()) {
    // Every GEMM entry point funnels through here, so one pair of
    // counters covers the whole library's matrix-multiply volume.
    static obs::Counter& calls = obs::registry().counter("gemm.calls");
    static obs::Counter& flops = obs::registry().counter("gemm.flops");
    calls.add(1);
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  }
  if (k == 0) {
    // Degenerate contraction: C = beta·C.
    for (std::size_t r = 0; r < m; ++r) {
      float* crow = c + r * ldc;
      for (std::size_t col = 0; col < n; ++col) {
        crow[col] = beta == 0.0f ? 0.0f : beta * crow[col];
      }
    }
    return;
  }
  const MicroKernelFn kernel = active_micro_kernel();
  const std::size_t a_tiles = (m + kMr - 1) / kMr;
  const std::size_t j_tiles = (n + kNr - 1) / kNr;
  // One j-tile (kNr C columns, full m and k) is the unit of parallel
  // work: its C columns are written by no other tile, so any partition
  // of the tile range is bit-identical to the serial loop (the k-order
  // per C element never changes). Each worker packs B panels into its
  // own thread_local scratch.
  auto run_tiles = [&](std::size_t jt_begin, std::size_t jt_end) {
    std::vector<float>& panel = b_panel_scratch();
    panel.resize(std::min(k, kKc) * kNr);
    for (std::size_t jt = jt_begin; jt < jt_end; ++jt) {
      const std::size_t j0 = jt * kNr;
      const std::size_t nr = std::min(kNr, n - j0);
      (void)nr;
      for (std::size_t k0 = 0; k0 < k; k0 += kKc) {
        const std::size_t kc = std::min(kKc, k - k0);
        pack_b_panel(tb, n, b, ldb, j0, k0, kc, panel.data());
        // The first k-block applies the caller's beta; later blocks
        // accumulate onto the partial C tile.
        const float blk_beta = k0 == 0 ? beta : 1.0f;
        for (std::size_t t = 0; t < a_tiles; ++t) {
          const std::size_t i0 = t * kMr;
          const std::size_t mr = std::min(kMr, m - i0);
          kernel(a.data.data() + t * k * kMr + k0 * kMr, panel.data(), kc, mr,
                 std::min(kNr, n - j0), blk_beta, c + i0 * ldc + j0, ldc);
        }
      }
    }
  };
  const std::size_t ways = kernel_ways();
  const std::size_t flops = 2 * m * n * k;
  if (ways > 1 && j_tiles > 1 && flops >= kGemmParallelMinFlops) {
    if (obs::enabled()) {
      static obs::Counter& par_tiles =
          obs::registry().counter("gemm.parallel_tiles");
      par_tiles.add(j_tiles);
    }
    parallel_chunks(j_tiles, ways,
                    [&](std::size_t b0, std::size_t e0, std::size_t) {
                      run_tiles(b0, e0);
                    });
  } else {
    run_tiles(0, j_tiles);
  }
}

void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  const PackedA packed = pack_a(ta, m, k, a, lda);
  gemm_prepacked(packed, tb, n, b, ldb, beta, c, ldc);
}

void gemm(Trans ta, Trans tb, const Tensor& a, const Tensor& b, Tensor& c,
          float beta) {
  FEDCAV_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2 &&
                     c.shape().rank() == 2,
                 "gemm: rank-2 tensors required");
  const std::size_t m = ta == Trans::kNo ? a.shape()[0] : a.shape()[1];
  const std::size_t k = ta == Trans::kNo ? a.shape()[1] : a.shape()[0];
  const std::size_t kb = tb == Trans::kNo ? b.shape()[0] : b.shape()[1];
  const std::size_t n = tb == Trans::kNo ? b.shape()[1] : b.shape()[0];
  FEDCAV_REQUIRE(kb == k, "gemm: inner dimensions differ (" +
                              a.shape().to_string() + " vs " +
                              b.shape().to_string() + ")");
  FEDCAV_REQUIRE(c.shape()[0] == m && c.shape()[1] == n,
                 "gemm: output shape mismatch, want (" + std::to_string(m) +
                     " x " + std::to_string(n) + "), got " +
                     c.shape().to_string());
  gemm(ta, tb, m, n, k, a.data(), a.shape()[1], b.data(), b.shape()[1], beta,
       c.data(), c.shape()[1]);
}

}  // namespace fedcav::ops
