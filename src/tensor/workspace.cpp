#include "src/tensor/workspace.hpp"

#include "src/utils/error.hpp"

namespace fedcav {

const Tensor& Workspace::at(std::size_t slot) const {
  FEDCAV_REQUIRE(slot < slots_.size(), "Workspace::at: slot never populated");
  return slots_[slot];
}

Tensor& Workspace::get(std::size_t slot, const Shape& shape) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  Tensor& t = slots_[slot];
  t.resize_uninitialized(shape);
  return t;
}

Tensor& Workspace::zeroed(std::size_t slot, const Shape& shape) {
  Tensor& t = get(slot, shape);
  t.fill(0.0f);
  return t;
}

void Workspace::release() { slots_.clear(); }

}  // namespace fedcav
