#include "src/tensor/workspace.hpp"

#include "src/utils/error.hpp"

namespace fedcav {

const Tensor& Workspace::at(std::size_t slot) const {
  FEDCAV_REQUIRE(slot < slots_.size(), "Workspace::at: slot never populated");
  return slots_[slot];
}

Tensor& Workspace::get(std::size_t slot, const Shape& shape) {
  if (slot >= slots_.size()) slots_.resize(slot + 1);
  Tensor& t = slots_[slot];
  t.resize_uninitialized(shape);
  return t;
}

Tensor& Workspace::zeroed(std::size_t slot, const Shape& shape) {
  Tensor& t = get(slot, shape);
  t.fill(0.0f);
  return t;
}

Tensor& Workspace::zeroed_once(std::size_t slot, const Shape& shape) {
  Tensor& t = get(slot, shape);
  if (slot >= zeroed_shapes_.size()) zeroed_shapes_.resize(slot + 1);
  if (zeroed_shapes_[slot] != shape) {
    t.fill(0.0f);
    zeroed_shapes_[slot] = shape;
  }
  return t;
}

void Workspace::release() {
  slots_.clear();
  zeroed_shapes_.clear();
}

void WorkspaceArena::reserve(std::size_t chunks) {
  while (slots_.size() < chunks) slots_.emplace_back();
}

Workspace& WorkspaceArena::slot(std::size_t c) {
  if (c >= slots_.size()) reserve(c + 1);  // serial-path convenience
  return slots_[c];
}

void WorkspaceArena::release() { slots_.clear(); }

}  // namespace fedcav
