#include "src/tensor/serialize.hpp"

#include <cstring>

#include "src/utils/error.hpp"

namespace fedcav {

void write_u8(ByteBuffer& buf, std::uint8_t v) { buf.push_back(v); }

void write_u32(ByteBuffer& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void write_u64(ByteBuffer& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void write_f32(ByteBuffer& buf, float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>((bits >> (8 * i)) & 0xff));
}

void write_f64(ByteBuffer& buf, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(buf, bits);
}

void write_f32_span(ByteBuffer& buf, std::span<const float> data) {
  write_u64(buf, data.size());
  if (data.empty()) return;  // memcpy from a null span is UB even at size 0
  const std::size_t offset = buf.size();
  buf.resize(offset + data.size() * sizeof(float));
  std::memcpy(buf.data() + offset, data.data(), data.size() * sizeof(float));
}

void ByteReader::require(std::size_t n) {
  FEDCAV_REQUIRE(pos_ + n <= data_.size(), "ByteReader: truncated message");
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

float ByteReader::read_f32() {
  require(4);
  std::uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) bits |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::read_f64() {
  const std::uint64_t bits = read_u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::vector<float> ByteReader::read_f32_vector() {
  const std::uint64_t n = read_u64();
  // Divide instead of multiplying: a hostile length prefix near 2^64
  // would wrap n * sizeof(float) back into range and sail past require().
  FEDCAV_REQUIRE(n <= remaining() / sizeof(float), "ByteReader: truncated message");
  std::vector<float> out(n);
  if (n == 0) return out;  // out.data() may be null; memcpy(null, ..) is UB
  std::memcpy(out.data(), data_.data() + pos_, n * sizeof(float));
  pos_ += n * sizeof(float);
  return out;
}

void write_tensor(ByteBuffer& buf, const Tensor& t) {
  write_u64(buf, t.shape().rank());
  for (std::size_t i = 0; i < t.shape().rank(); ++i) write_u64(buf, t.shape()[i]);
  write_f32_span(buf, t.span());
}

Tensor read_tensor(ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  FEDCAV_REQUIRE(rank <= Shape::kMaxRank, "read_tensor: rank too large");
  std::size_t dims[Shape::kMaxRank] = {0, 0, 0, 0};
  for (std::uint64_t i = 0; i < rank; ++i) dims[i] = reader.read_u64();
  Shape shape;
  switch (rank) {
    case 0: shape = Shape{}; break;
    case 1: shape = Shape::of(dims[0]); break;
    case 2: shape = Shape::of(dims[0], dims[1]); break;
    case 3: shape = Shape::of(dims[0], dims[1], dims[2]); break;
    default: shape = Shape::of(dims[0], dims[1], dims[2], dims[3]); break;
  }
  std::vector<float> data = reader.read_f32_vector();
  return Tensor(shape, std::move(data));
}

void write_rng_state(ByteBuffer& buf, const RngState& state) {
  for (std::size_t i = 0; i < 4; ++i) write_u64(buf, state.s[i]);
  write_u8(buf, state.has_cached_normal ? 1 : 0);
  write_f64(buf, state.cached_normal);
}

RngState read_rng_state(ByteReader& reader) {
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) state.s[i] = reader.read_u64();
  state.has_cached_normal = reader.read_u8() != 0;
  state.cached_normal = reader.read_f64();
  return state;
}

}  // namespace fedcav
