#include "src/tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "src/tensor/gemm.hpp"
#include "src/utils/error.hpp"

namespace fedcav::ops {

namespace {
void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  FEDCAV_REQUIRE(a.same_shape(b), std::string(op) + ": shape mismatch " +
                                      a.shape().to_string() + " vs " +
                                      b.shape().to_string());
}
}  // namespace

void add_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) pa[i] += pb[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) pa[i] -= pb[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) pa[i] *= pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) pa[i] *= s;
}

void axpy_inplace(Tensor& y, float alpha, const Tensor& x) {
  require_same_shape(y, x, "axpy_inplace");
  float* py = y.data();
  const float* px = x.data();
  for (std::size_t i = 0, n = y.numel(); i < n; ++i) py[i] += alpha * px[i];
}

Tensor add(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  add_inplace(c, b);
  return c;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  sub_inplace(c, b);
  return c;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  Tensor c = a;
  mul_inplace(c, b);
  return c;
}

Tensor scale(const Tensor& a, float s) {
  Tensor c = a;
  scale_inplace(c, s);
  return c;
}

void axpy(std::span<float> y, float alpha, std::span<const float> x) {
  FEDCAV_REQUIRE(y.size() == x.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<float> y, float s) {
  for (auto& v : y) v *= s;
}

float dot(std::span<const float> a, std::span<const float> b) {
  FEDCAV_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;  // double accumulator for stability on long vectors
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float l2_norm(std::span<const float> a) {
  double acc = 0.0;
  for (float v : a) acc += static_cast<double>(v) * static_cast<double>(v);
  return static_cast<float>(std::sqrt(acc));
}

float l2_distance(std::span<const float> a, std::span<const float> b) {
  FEDCAV_REQUIRE(a.size() == b.size(), "l2_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return static_cast<float>(std::sqrt(acc));
}

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDCAV_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2, "matmul: rank-2 inputs required");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[1];
  FEDCAV_REQUIRE(b.shape()[0] == k, "matmul: inner dimensions differ");
  FEDCAV_REQUIRE(c.shape().rank() == 2 && c.shape()[0] == m && c.shape()[1] == n,
                 "matmul: output shape mismatch");
  gemm(Trans::kNo, Trans::kNo, m, n, k, a.data(), k, b.data(), n, 0.0f,
       c.data(), n);
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c(Shape::of(a.shape()[0], b.shape()[1]));
  matmul(a, b, c);
  return c;
}

void matmul_transposed_b(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDCAV_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul_transposed_b: rank-2 inputs required");
  const std::size_t m = a.shape()[0];
  const std::size_t k = a.shape()[1];
  const std::size_t n = b.shape()[0];
  FEDCAV_REQUIRE(b.shape()[1] == k, "matmul_transposed_b: inner dimensions differ");
  FEDCAV_REQUIRE(c.shape().rank() == 2 && c.shape()[0] == m && c.shape()[1] == n,
                 "matmul_transposed_b: output shape mismatch");
  gemm(Trans::kNo, Trans::kYes, m, n, k, a.data(), k, b.data(), k, 0.0f,
       c.data(), n);
}

void matmul_transposed_a(const Tensor& a, const Tensor& b, Tensor& c) {
  FEDCAV_REQUIRE(a.shape().rank() == 2 && b.shape().rank() == 2,
                 "matmul_transposed_a: rank-2 inputs required");
  const std::size_t k = a.shape()[0];
  const std::size_t m = a.shape()[1];
  const std::size_t n = b.shape()[1];
  FEDCAV_REQUIRE(b.shape()[0] == k, "matmul_transposed_a: inner dimensions differ");
  FEDCAV_REQUIRE(c.shape().rank() == 2 && c.shape()[0] == m && c.shape()[1] == n,
                 "matmul_transposed_a: output shape mismatch");
  gemm(Trans::kYes, Trans::kNo, m, n, k, a.data(), m, b.data(), n, 0.0f,
       c.data(), n);
}

Tensor transpose(const Tensor& a) {
  FEDCAV_REQUIRE(a.shape().rank() == 2, "transpose: rank-2 input required");
  const std::size_t m = a.shape()[0];
  const std::size_t n = a.shape()[1];
  Tensor t(Shape::of(n, m));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t(j, i) = a(i, j);
  }
  return t;
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (std::size_t i = 0, n = a.numel(); i < n; ++i) acc += static_cast<double>(a[i]);
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  FEDCAV_REQUIRE(a.numel() > 0, "mean: empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  FEDCAV_REQUIRE(a.numel() > 0, "max_value: empty tensor");
  float m = a[0];
  for (std::size_t i = 1, n = a.numel(); i < n; ++i) m = std::max(m, a[i]);
  return m;
}

std::size_t argmax(std::span<const float> v) {
  FEDCAV_REQUIRE(!v.empty(), "argmax: empty span");
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] > v[best]) best = i;
  }
  return best;
}

Tensor softmax_rows(const Tensor& logits) {
  Tensor out;
  softmax_rows_into(logits, out);
  return out;
}

void softmax_rows_into(const Tensor& logits, Tensor& out) {
  FEDCAV_REQUIRE(logits.shape().rank() == 2, "softmax_rows: rank-2 input required");
  const std::size_t rows = logits.shape()[0];
  const std::size_t cols = logits.shape()[1];
  out.resize_uninitialized(logits.shape());
  for (std::size_t r = 0; r < rows; ++r) {
    const float* in = logits.data() + r * cols;
    float* o = out.data() + r * cols;
    float mx = in[0];
    for (std::size_t c = 1; c < cols; ++c) mx = std::max(mx, in[c]);
    double denom = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      const double e = std::exp(static_cast<double>(in[c] - mx));
      o[c] = static_cast<float>(e);
      denom += e;
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::size_t c = 0; c < cols; ++c) o[c] *= inv;
  }
}

std::vector<double> stable_softmax(const std::vector<double>& x) {
  FEDCAV_REQUIRE(!x.empty(), "stable_softmax: empty input");
  const double mx = *std::max_element(x.begin(), x.end());
  std::vector<double> out(x.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::exp(x[i] - mx);
    denom += out[i];
  }
  for (auto& v : out) v /= denom;
  return out;
}

double log_sum_exp(const std::vector<double>& x) {
  FEDCAV_REQUIRE(!x.empty(), "log_sum_exp: empty input");
  const double mx = *std::max_element(x.begin(), x.end());
  double acc = 0.0;
  for (double v : x) acc += std::exp(v - mx);
  return mx + std::log(acc);
}

}  // namespace fedcav::ops
