// im2col / col2im: lower convolution to GEMM.
//
// Layout convention: images are CHW (channels, height, width); the column
// matrix is (C*KH*KW) × (OH*OW) so that `weights(OC, C*KH*KW) * cols`
// yields the (OC, OH*OW) output feature map in one matmul.
#pragma once

#include <cstddef>

#include "src/tensor/tensor.hpp"

namespace fedcav {

struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0;
  std::size_t in_w = 0;
  std::size_t kernel_h = 0;
  std::size_t kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::size_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
  std::size_t col_rows() const { return in_channels * kernel_h * kernel_w; }
  std::size_t col_cols() const { return out_h() * out_w(); }

  /// Throws if the kernel does not fit the padded input.
  void validate() const;
};

/// Expand one CHW image (`image` has numel C*H*W) into the column matrix
/// `cols` (col_rows × col_cols, preallocated). Zero padding.
void im2col(const Conv2dGeometry& g, const float* image, Tensor& cols);

/// Raw-pointer, strided variant for batch-fused convolution: row r of
/// the expansion lands at cols + r*ld (ld >= col_cols()). A whole batch
/// shares one (col_rows × batch·col_cols) matrix by passing, for image
/// b, `cols = base + b*col_cols()` with `ld = batch*col_cols()`.
void im2col(const Conv2dGeometry& g, const float* image, float* cols, std::size_t ld);

/// Scatter-add the column-matrix gradient back into an image gradient
/// (`grad_image` has numel C*H*W and is accumulated into, not zeroed).
void col2im(const Conv2dGeometry& g, const Tensor& cols, float* grad_image);

/// Strided raw-pointer variant mirroring the strided im2col above.
void col2im(const Conv2dGeometry& g, const float* cols, std::size_t ld, float* grad_image);

/// Fast lowering from a PRE-PADDED image: `padded` holds C planes of
/// (in_h+2·pad) rows × (in_w+2·pad) floats with the pad lanes zero.
/// Because every source coordinate is in bounds by construction, the
/// per-element bounds logic of the plain im2col disappears and each
/// expansion row is a branch-free strided copy — the plain variant's
/// range bookkeeping costs more than the GEMMs on sub-8×8 planes.
/// Writes exactly the same values as im2col(g, image, cols, ld).
void im2col_padded(const Conv2dGeometry& g, const float* padded, float* cols,
                   std::size_t ld);

/// Scatter-add the column gradient into a PRE-ZEROED padded image buffer
/// (same layout as im2col_padded's input; the caller unpads afterwards,
/// dropping the gradient the pad ring absorbed). Accumulation order per
/// destination pixel is the (kh, kw) ascending walk of the plain col2im,
/// so unpadding into a zeroed image gradient reproduces it bit-exactly.
void col2im_padded(const Conv2dGeometry& g, const float* cols, std::size_t ld,
                   float* padded);

}  // namespace fedcav
