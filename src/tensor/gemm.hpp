// Packed register-tiled single-precision GEMM micro-kernel.
//
// This is the one matrix-multiply engine in the repo: the three
// `ops::matmul*` entries and the Dense/Conv2D layers all funnel into
// `gemm()` below. The design follows the classic BLIS decomposition,
// shrunk to the model-zoo problem sizes (m, n, k ≤ a few hundred):
//
//  * op(A) is packed once per call into MR-row panels, op(B) into
//    NR-column panels; transposition is absorbed by the packers, so the
//    micro-kernel only ever sees contiguous, zero-padded tiles.
//  * The micro-kernel keeps an MR×NR (4×16) block of C in registers and
//    runs a branch-free FMA loop over k — with `-O3 -march=native` the
//    compiler lowers it to broadcast/load/FMA vector code.
//  * Edge tiles are packed with explicit zero padding and written back
//    through bounds-checked scalar loops, so no shape is special-cased
//    inside the hot loop.
//
// Accumulation policy (load-bearing for test tolerances): all products
// are accumulated in float32, in k-order within a tile. The seed kernels
// disagreed with each other (`matmul` accumulated in float while
// `matmul_transposed_b` accumulated in double); the unified policy is
// fp32 everywhere, which bounds the error of a length-k dot product by
// ~k·eps relative to the double-precision reference (see
// tests/test_gemm.cpp for the derived tolerance).
#pragma once

#include <cstddef>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace fedcav::ops {

enum class Trans : bool { kNo = false, kYes = true };

/// Register-tile footprint of the micro-kernel. 4 rows × 16 columns of
/// float32 C accumulators = 8 AVX2 vectors, leaving registers for the A
/// broadcast and two B loads.
inline constexpr std::size_t kGemmMr = 4;
inline constexpr std::size_t kGemmNr = 16;

/// op(A) packed into kGemmMr-row panels (k-major within a panel), zero
/// padded to a multiple of kGemmMr rows. Build once with pack_a() and
/// reuse across gemm_prepacked() calls whose A operand is unchanged —
/// Conv2D does this across the per-image im2col loop, since the weight
/// matrix is invariant within a batch.
struct PackedA {
  std::vector<float> data;
  std::size_t m = 0;  // logical rows of op(A)
  std::size_t k = 0;  // logical cols of op(A)
};

/// Pack op(A) where A is a row-major m×k (ta == kNo) or k×m (ta == kYes)
/// matrix with leading dimension `lda`.
PackedA pack_a(Trans ta, std::size_t m, std::size_t k, const float* a, std::size_t lda);

/// Same, packing into an existing PackedA whose buffer is reused when
/// large enough — the allocation-free path for per-step repacking (the
/// weight matrix changes every optimizer step, but its packed footprint
/// does not).
void pack_a_into(Trans ta, std::size_t m, std::size_t k, const float* a,
                 std::size_t lda, PackedA& out);

/// C = op(A)·op(B) + beta·C over raw row-major buffers.
/// op(A) is m×k, op(B) is k×n, C is m×n with leading dimension `ldc`.
/// beta is either 0 (overwrite C) or an arbitrary scale on the existing
/// contents (1 accumulates, as in gradient buffers).
void gemm(Trans ta, Trans tb, std::size_t m, std::size_t n, std::size_t k,
          const float* a, std::size_t lda, const float* b, std::size_t ldb,
          float beta, float* c, std::size_t ldc);

/// Same, with op(A) already packed.
void gemm_prepacked(const PackedA& a, Trans tb, std::size_t n, const float* b,
                    std::size_t ldb, float beta, float* c, std::size_t ldc);

/// Hardware lane width the micro-kernel currently runs at: 16 (one
/// 64-byte vector per accumulator row) or 8 (two 32-byte vectors), both
/// bit-identical per lane; 1 on the portable scalar fallback. Selected
/// once at startup from CPU capability (FEDCAV_SIMD=8|16 overrides).
std::size_t simd_width();

/// Test hook: force the micro-kernel lane width (8 or 16); 0 restores
/// the startup selection. test_parallel_kernels asserts the two widths
/// produce bit-identical results.
void force_simd_width(std::size_t lanes);

/// Tensor-level entry with shape validation: C = op(A)·op(B) + beta·C.
/// Shapes: op(A) m×k, op(B) k×n, C preallocated m×n.
void gemm(Trans ta, Trans tb, const Tensor& a, const Tensor& b, Tensor& c,
          float beta = 0.0f);

}  // namespace fedcav::ops
