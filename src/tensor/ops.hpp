// Tensor operations: elementwise kernels, reductions and the
// numerically-stable softmax family. Elementwise kernels are straight
// loops over contiguous memory so the compiler can vectorize; the three
// matmul* entries (which dominate training time through the Dense and
// im2col'd Conv2D layers) are thin shims over the packed register-tiled
// kernel in src/tensor/gemm.hpp and share its fp32 accumulation policy.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace fedcav::ops {

// ---- elementwise (shapes must match) ----
void add_inplace(Tensor& a, const Tensor& b);            // a += b
void sub_inplace(Tensor& a, const Tensor& b);            // a -= b
void mul_inplace(Tensor& a, const Tensor& b);            // a *= b (Hadamard)
void scale_inplace(Tensor& a, float s);                  // a *= s
void axpy_inplace(Tensor& y, float alpha, const Tensor& x);  // y += alpha*x

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor scale(const Tensor& a, float s);

// ---- flat-buffer variants used on model weight vectors ----
void axpy(std::span<float> y, float alpha, std::span<const float> x);
void scale(std::span<float> y, float s);
float dot(std::span<const float> a, std::span<const float> b);
float l2_norm(std::span<const float> a);
float l2_distance(std::span<const float> a, std::span<const float> b);

// ---- linear algebra ----
// All three variants dispatch to ops::gemm (src/tensor/gemm.hpp) and
// accumulate in float32, in k-order; see that header for the error
// bound. (Historically matmul_transposed_b accumulated in double, so
// its results differed in precision from the other two.)
/// C = A(m×k) * B(k×n). C must be preallocated m×n; it is overwritten.
void matmul(const Tensor& a, const Tensor& b, Tensor& c);
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A(m×k) * B^T where B is n×k.
void matmul_transposed_b(const Tensor& a, const Tensor& b, Tensor& c);
/// C = A^T(k×m -> m rows become cols) * B(k×n) giving m×n.
void matmul_transposed_a(const Tensor& a, const Tensor& b, Tensor& c);
Tensor transpose(const Tensor& a);  // 2-D only

// ---- reductions ----
float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);
std::size_t argmax(std::span<const float> v);

// ---- softmax family ----
/// Row-wise stable softmax of a 2-D tensor (batch × classes).
Tensor softmax_rows(const Tensor& logits);
/// Same, writing into `out` (resized in place; allocation-free once
/// out's capacity covers the batch — the hot-path entry for losses).
void softmax_rows_into(const Tensor& logits, Tensor& out);
/// Stable softmax of a plain vector (used for FedCav aggregation
/// weights; subtracts the max per the paper's overflow note §4.2.3).
std::vector<double> stable_softmax(const std::vector<double>& x);
/// log(sum_i exp(x_i)) computed stably; this is the paper's global loss
/// F(w) = ln(sum_i e^{f_i(w)}) (Eq. 7).
double log_sum_exp(const std::vector<double>& x);

}  // namespace fedcav::ops
