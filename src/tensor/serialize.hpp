// Byte-level serialization for tensors and flat float vectors.
//
// Used by the comm substrate to meter exactly how many bytes each
// federated message carries (the paper's §6 claims FedCav costs one
// extra float per client per round — the overhead bench verifies this
// with these counters). Format: little-endian, u64 sizes, raw f32 data.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"

namespace fedcav {

using ByteBuffer = std::vector<std::uint8_t>;

/// Append primitives to a buffer.
void write_u8(ByteBuffer& buf, std::uint8_t v);
void write_u32(ByteBuffer& buf, std::uint32_t v);
void write_u64(ByteBuffer& buf, std::uint64_t v);
void write_f32(ByteBuffer& buf, float v);
void write_f64(ByteBuffer& buf, double v);
void write_f32_span(ByteBuffer& buf, std::span<const float> data);

/// Cursor-based reader; throws fedcav::Error on truncated input.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint64_t read_u64();
  std::uint32_t read_u32();
  std::uint8_t read_u8();
  float read_f32();
  double read_f64();
  std::vector<float> read_f32_vector();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  void require(std::size_t n);
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Tensor framing: shape rank + dims + payload.
void write_tensor(ByteBuffer& buf, const Tensor& t);
Tensor read_tensor(ByteReader& reader);

/// RNG state framing (4×u64 xoshiro words + Box-Muller cache) — the
/// checkpoint format uses this to resume every random stream exactly.
void write_rng_state(ByteBuffer& buf, const RngState& state);
RngState read_rng_state(ByteReader& reader);

}  // namespace fedcav
