#include "src/tensor/tensor.hpp"

#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav {

Tensor::Tensor(Shape shape, float fill_value)
    : shape_(shape), data_(shape.numel(), fill_value) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), data_(std::move(data)) {
  FEDCAV_REQUIRE(data_.size() == shape_.numel(),
                 "Tensor: data size does not match shape " + shape_.to_string());
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(shape);
  for (auto& v : t.data_) v = rng.uniform_f(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(shape);
  for (auto& v : t.data_) {
    v = static_cast<float>(rng.normal(static_cast<double>(mean), static_cast<double>(stddev)));
  }
  return t;
}

float& Tensor::at(std::size_t i) {
  FEDCAV_REQUIRE(i < data_.size(), "Tensor::at: index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  FEDCAV_REQUIRE(i < data_.size(), "Tensor::at: index out of range");
  return data_[i];
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FEDCAV_REQUIRE(new_shape.numel() == numel(),
                 "Tensor::reshaped: numel mismatch " + shape_.to_string() + " -> " +
                     new_shape.to_string());
  return Tensor(new_shape, data_);
}

}  // namespace fedcav
