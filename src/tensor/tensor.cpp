#include "src/tensor/tensor.hpp"

#include <atomic>
#include <cstring>
#include <new>

#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav {

namespace {

// 64-byte alignment keeps buffers cache-line- and AVX-512-aligned for the
// GEMM kernel's unaligned-but-contiguous loads.
constexpr std::size_t kTensorAlign = 64;

#ifdef FEDCAV_ALLOC_STATS
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_live_bytes{0};
std::atomic<std::uint64_t> g_peak_live_bytes{0};

// CAS-loop max: the peak is monotone between resets, so racing updaters
// converge; relaxed ordering suffices (the counters are diagnostics, the
// buffer pointer itself carries the synchronization that matters).
void raise_peak(std::uint64_t live) {
  std::uint64_t peak = g_peak_live_bytes.load(std::memory_order_relaxed);
  while (live > peak &&
         !g_peak_live_bytes.compare_exchange_weak(peak, live, std::memory_order_relaxed)) {
  }
}
#endif

float* allocate_buffer(std::size_t n) {
  if (n == 0) return nullptr;
#ifdef FEDCAV_ALLOC_STATS
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n * sizeof(float), std::memory_order_relaxed);
  const std::uint64_t live =
      g_live_bytes.fetch_add(n * sizeof(float), std::memory_order_relaxed) +
      n * sizeof(float);
  raise_peak(live);
#endif
  return static_cast<float*>(
      ::operator new(n * sizeof(float), std::align_val_t{kTensorAlign}));
}

// `n` is the element capacity originally requested from allocate_buffer —
// needed to keep the live-bytes gauge balanced (operator delete has no size).
void free_buffer(float* p, [[maybe_unused]] std::size_t n) {
  if (p == nullptr) return;
#ifdef FEDCAV_ALLOC_STATS
  g_live_bytes.fetch_sub(n * sizeof(float), std::memory_order_relaxed);
#endif
  ::operator delete(p, std::align_val_t{kTensorAlign});
}

}  // namespace

TensorAllocStats Tensor::alloc_stats() {
  TensorAllocStats s;
#ifdef FEDCAV_ALLOC_STATS
  s.allocations = g_alloc_count.load(std::memory_order_relaxed);
  s.bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  s.live_bytes = g_live_bytes.load(std::memory_order_relaxed);
  s.peak_live_bytes = g_peak_live_bytes.load(std::memory_order_relaxed);
#endif
  return s;
}

void Tensor::reset_alloc_stats() {
#ifdef FEDCAV_ALLOC_STATS
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_alloc_bytes.store(0, std::memory_order_relaxed);
  // live_bytes is ground truth and survives; the peak re-arms at the
  // current live level so a post-reset measurement window reports the
  // high-water mark of *that window* only.
  g_peak_live_bytes.store(g_live_bytes.load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
#endif
}

void Tensor::ensure_capacity(std::size_t n) {
  if (n <= capacity_) return;
  free_buffer(data_, capacity_);
  data_ = allocate_buffer(n);
  capacity_ = n;
}

Tensor::Tensor(Shape shape, float fill_value) : shape_(shape), numel_(shape.numel()) {
  ensure_capacity(numel_);
  fill(fill_value);
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(shape), numel_(shape.numel()) {
  FEDCAV_REQUIRE(data.size() == numel_,
                 "Tensor: data size does not match shape " + shape_.to_string());
  ensure_capacity(numel_);
  std::memcpy(data_, data.data(), numel_ * sizeof(float));
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_), numel_(other.numel_) {
  ensure_capacity(numel_);
  if (numel_ > 0) std::memcpy(data_, other.data_, numel_ * sizeof(float));
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  ensure_capacity(other.numel_);
  shape_ = other.shape_;
  numel_ = other.numel_;
  if (numel_ > 0) std::memcpy(data_, other.data_, numel_ * sizeof(float));
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(other.shape_),
      numel_(other.numel_),
      capacity_(other.capacity_),
      data_(other.data_) {
  other.shape_ = Shape();
  other.numel_ = 0;
  other.capacity_ = 0;
  other.data_ = nullptr;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  free_buffer(data_, capacity_);
  shape_ = other.shape_;
  numel_ = other.numel_;
  capacity_ = other.capacity_;
  data_ = other.data_;
  other.shape_ = Shape();
  other.numel_ = 0;
  other.capacity_ = 0;
  other.data_ = nullptr;
  return *this;
}

Tensor::~Tensor() { free_buffer(data_, capacity_); }

Tensor Tensor::uninitialized(Shape shape) {
  Tensor t;
  t.resize_uninitialized(shape);
  return t;
}

void Tensor::resize_uninitialized(const Shape& shape) {
  const std::size_t n = shape.numel();
  ensure_capacity(n);
  shape_ = shape;
  numel_ = n;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Tensor::uninitialized(shape);
  for (std::size_t i = 0; i < t.numel_; ++i) t.data_[i] = rng.uniform_f(lo, hi);
  return t;
}

Tensor Tensor::normal(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t = Tensor::uninitialized(shape);
  for (std::size_t i = 0; i < t.numel_; ++i) {
    t.data_[i] =
        static_cast<float>(rng.normal(static_cast<double>(mean), static_cast<double>(stddev)));
  }
  return t;
}

float& Tensor::at(std::size_t i) {
  FEDCAV_REQUIRE(i < numel_, "Tensor::at: index out of range");
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  FEDCAV_REQUIRE(i < numel_, "Tensor::at: index out of range");
  return data_[i];
}

void Tensor::fill(float value) {
  for (std::size_t i = 0; i < numel_; ++i) data_[i] = value;
}

Tensor Tensor::reshaped(Shape new_shape) const {
  FEDCAV_REQUIRE(new_shape.numel() == numel_,
                 "Tensor::reshaped: numel mismatch " + shape_.to_string() + " -> " +
                     new_shape.to_string());
  Tensor t = Tensor::uninitialized(new_shape);
  if (numel_ > 0) std::memcpy(t.data_, data_, numel_ * sizeof(float));
  return t;
}

}  // namespace fedcav
