// Workspace: a small set of persistent, grow-only tensor slots.
//
// Every layer owns one. Hot-path temporaries (outputs, column matrices,
// gradient buffers) are drawn from numbered slots instead of being
// freshly constructed per batch: the first pass through a shape
// allocates, every later pass reuses the buffer (Tensor's grow-only
// capacity), so a steady-state train step performs zero heap
// allocations — asserted by tests/test_alloc_stats.cpp via the
// FEDCAV_ALLOC_STATS counters.
//
// Ownership rules (DESIGN.md §8):
//  * Slot contents are valid until the next get()/zeroed() on the same
//    slot. Layers hand out `const Tensor&` views of their slots; callers
//    that need the data past the layer's next forward/backward must copy.
//  * Copying a Workspace yields an *empty* one: workspaces are caches,
//    not state, so cloned models start cold instead of duplicating
//    scratch buffers.
#pragma once

#include <cstddef>
#include <deque>

#include "src/tensor/tensor.hpp"

namespace fedcav {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) {}  // clones start cold
  Workspace& operator=(const Workspace&) { return *this; }
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

  /// The slot tensor resized (contents indeterminate) to `shape`.
  /// Allocation-free once the slot's capacity covers the shape.
  Tensor& get(std::size_t slot, const Shape& shape);

  /// Same, but zero-filled (for accumulation targets like col2im's dx).
  Tensor& zeroed(std::size_t slot, const Shape& shape);

  /// An existing slot, contents preserved (throws if never populated).
  /// Used by backward passes to read buffers their forward pass filled.
  const Tensor& at(std::size_t slot) const;

  /// Drop every buffer (used by tests; layers normally never shrink).
  void release();

 private:
  // deque, not vector: growing for a new slot must not move existing
  // Tensors — layers hold references into earlier slots while later
  // slots are created (e.g. Conv2D's cols across gemm_out/out).
  std::deque<Tensor> slots_;
};

}  // namespace fedcav
