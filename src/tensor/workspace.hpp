// Workspace: a small set of persistent, grow-only tensor slots.
//
// Every layer owns one. Hot-path temporaries (outputs, column matrices,
// gradient buffers) are drawn from numbered slots instead of being
// freshly constructed per batch: the first pass through a shape
// allocates, every later pass reuses the buffer (Tensor's grow-only
// capacity), so a steady-state train step performs zero heap
// allocations — asserted by tests/test_alloc_stats.cpp via the
// FEDCAV_ALLOC_STATS counters.
//
// Ownership rules (DESIGN.md §8):
//  * Slot contents are valid until the next get()/zeroed() on the same
//    slot. Layers hand out `const Tensor&` views of their slots; callers
//    that need the data past the layer's next forward/backward must copy.
//  * Copying a Workspace yields an *empty* one: workspaces are caches,
//    not state, so cloned models start cold instead of duplicating
//    scratch buffers.
#pragma once

#include <cstddef>
#include <deque>

#include "src/tensor/tensor.hpp"

namespace fedcav {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) {}  // clones start cold
  Workspace& operator=(const Workspace&) { return *this; }
  Workspace(Workspace&&) noexcept = default;
  Workspace& operator=(Workspace&&) noexcept = default;

  /// The slot tensor resized (contents indeterminate) to `shape`.
  /// Allocation-free once the slot's capacity covers the shape.
  Tensor& get(std::size_t slot, const Shape& shape);

  /// Same, but zero-filled (for accumulation targets like col2im's dx).
  Tensor& zeroed(std::size_t slot, const Shape& shape);

  /// Zero-filled on the FIRST pass through a shape only; later passes
  /// return the buffer as-is. For buffers whose zero regions are
  /// invariant across uses (Conv2D's padded planes: the pad lanes stay
  /// zero forever, only the data rows are rewritten per image), this
  /// drops the per-use memset from the hot path.
  Tensor& zeroed_once(std::size_t slot, const Shape& shape);

  /// An existing slot, contents preserved (throws if never populated).
  /// Used by backward passes to read buffers their forward pass filled.
  const Tensor& at(std::size_t slot) const;

  /// Drop every buffer (used by tests; layers normally never shrink).
  void release();

 private:
  // deque, not vector: growing for a new slot must not move existing
  // Tensors — layers hold references into earlier slots while later
  // slots are created (e.g. Conv2D's cols across gemm_out/out).
  std::deque<Tensor> slots_;
  // Per-slot shape of the last zeroed_once() fill (empty = never).
  std::deque<Shape> zeroed_shapes_;
};

/// Per-chunk workspaces for parallel kernels: chunk c of a
/// parallel_chunks fan-out draws its scratch from slot(c), so concurrent
/// chunks never share a buffer. Same grow-only, copy-cold semantics as
/// Workspace. Usage contract: the coordinating (serial) thread calls
/// reserve(chunks) before fanning out; workers then call slot(c) for
/// distinct c only, which touches no shared state.
class WorkspaceArena {
 public:
  WorkspaceArena() = default;
  WorkspaceArena(const WorkspaceArena&) {}  // clones start cold
  WorkspaceArena& operator=(const WorkspaceArena&) { return *this; }
  WorkspaceArena(WorkspaceArena&&) noexcept = default;
  WorkspaceArena& operator=(WorkspaceArena&&) noexcept = default;

  /// Grow to at least `chunks` workspaces (serial phase only).
  void reserve(std::size_t chunks);

  /// Workspace for chunk `c`; must be < the reserved count when called
  /// from a worker. deque-backed, so growth never moves earlier slots.
  Workspace& slot(std::size_t c);

  void release();

 private:
  std::deque<Workspace> slots_;
};

}  // namespace fedcav
