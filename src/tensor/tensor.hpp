// Dense float32 N-D tensor with owned, contiguous row-major storage.
//
// This is the numeric workhorse of the NN substrate. Design choices:
//  * float32 only — matches the paper's training stack and halves memory
//    traffic versus double on the aggregation path.
//  * Value semantics with cheap moves; explicit `zeros_like` etc. rather
//    than implicit broadcasting, so every allocation is visible.
//  * Element access goes through Shape::offset, which bounds-checks the
//    rank; per-element bounds checks are debug-only via at().
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/tensor/shape.hpp"

namespace fedcav {

class Rng;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(shape, 0.0f); }
  static Tensor full(Shape shape, float value) { return Tensor(shape, value); }
  /// iid U(lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  /// iid N(mean, stddev) entries.
  static Tensor normal(Shape shape, Rng& rng, float mean, float stddev);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access (throws on out-of-range).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  float& operator()(std::size_t i0) { return data_[shape_.offset(i0)]; }
  float operator()(std::size_t i0) const { return data_[shape_.offset(i0)]; }
  float& operator()(std::size_t i0, std::size_t i1) { return data_[shape_.offset(i0, i1)]; }
  float operator()(std::size_t i0, std::size_t i1) const { return data_[shape_.offset(i0, i1)]; }
  float& operator()(std::size_t i0, std::size_t i1, std::size_t i2) {
    return data_[shape_.offset(i0, i1, i2)];
  }
  float operator()(std::size_t i0, std::size_t i1, std::size_t i2) const {
    return data_[shape_.offset(i0, i1, i2)];
  }
  float& operator()(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
    return data_[shape_.offset(i0, i1, i2, i3)];
  }
  float operator()(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
    return data_[shape_.offset(i0, i1, i2, i3)];
  }

  void fill(float value);

  /// Reinterpret storage with a new shape of identical numel.
  Tensor reshaped(Shape new_shape) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fedcav
