// Dense float32 N-D tensor with owned, contiguous row-major storage.
//
// This is the numeric workhorse of the NN substrate. Design choices:
//  * float32 only — matches the paper's training stack and halves memory
//    traffic versus double on the aggregation path.
//  * Value semantics with cheap moves; explicit `zeros_like` etc. rather
//    than implicit broadcasting, so every allocation is visible.
//  * Storage is a grow-only, 64-byte-aligned buffer with an explicit
//    capacity: copy-assignment and resize_uninitialized() reuse the
//    existing allocation whenever it is large enough, which is what lets
//    the training hot path reach zero heap allocations in steady state
//    (see src/tensor/workspace.hpp and DESIGN.md §8).
//  * Element access goes through Shape::offset, which bounds-checks the
//    rank; per-element bounds checks are debug-only via at().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/shape.hpp"

namespace fedcav {

class Rng;

/// Snapshot of the process-wide tensor-buffer heap counters (enabled by
/// the FEDCAV_ALLOC_STATS build option, on by default). Only genuine
/// buffer allocations count — capacity reuse is free — so a steady-state
/// train step can *prove* it allocates nothing (tests/test_alloc_stats).
struct TensorAllocStats {
  std::uint64_t allocations = 0;  ///< number of heap buffer allocations
  std::uint64_t bytes = 0;        ///< total bytes of those allocations
  /// Bytes of tensor buffers currently alive (allocated, not yet freed).
  /// Unlike `allocations`/`bytes` this is not affected by reset — it is
  /// the ground truth of the process's tensor heap footprint.
  std::uint64_t live_bytes = 0;
  /// High-water mark of live_bytes since the last reset_alloc_stats()
  /// (a reset re-arms the peak at the current live_bytes). This is what
  /// the cohort-scaling memory gate measures: a round's peak must track
  /// the replica-pool size, not the cohort size.
  std::uint64_t peak_live_bytes = 0;
};

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape, float fill = 0.0f);
  Tensor(Shape shape, std::vector<float> data);

  Tensor(const Tensor& other);
  /// Capacity-reusing: keeps the existing buffer when it is big enough.
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  static Tensor zeros(Shape shape) { return Tensor(shape, 0.0f); }
  static Tensor full(Shape shape, float value) { return Tensor(shape, value); }
  /// Storage with *indeterminate contents*: skips the zero-fill memset of
  /// Tensor(shape). For hot-path temporaries that are fully overwritten
  /// before being read (conv/dense/pool/loss outputs).
  static Tensor uninitialized(Shape shape);
  /// iid U(lo, hi) entries.
  static Tensor uniform(Shape shape, Rng& rng, float lo, float hi);
  /// iid N(mean, stddev) entries.
  static Tensor normal(Shape shape, Rng& rng, float mean, float stddev);

  /// Re-shape in place, contents indeterminate afterwards. Grow-only:
  /// reuses the current buffer when capacity allows and never shrinks,
  /// so after one warm-up pass repeated calls with the same (or smaller)
  /// shapes perform no heap work.
  void resize_uninitialized(const Shape& shape);

  const Shape& shape() const { return shape_; }
  std::size_t numel() const { return numel_; }
  /// Buffer capacity in elements (>= numel; grow-only).
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return numel_ == 0; }

  float* data() { return data_; }
  const float* data() const { return data_; }
  std::span<float> span() { return {data_, numel_}; }
  std::span<const float> span() const { return {data_, numel_}; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Checked flat access (throws on out-of-range).
  float& at(std::size_t i);
  float at(std::size_t i) const;

  float& operator()(std::size_t i0) { return data_[shape_.offset(i0)]; }
  float operator()(std::size_t i0) const { return data_[shape_.offset(i0)]; }
  float& operator()(std::size_t i0, std::size_t i1) { return data_[shape_.offset(i0, i1)]; }
  float operator()(std::size_t i0, std::size_t i1) const { return data_[shape_.offset(i0, i1)]; }
  float& operator()(std::size_t i0, std::size_t i1, std::size_t i2) {
    return data_[shape_.offset(i0, i1, i2)];
  }
  float operator()(std::size_t i0, std::size_t i1, std::size_t i2) const {
    return data_[shape_.offset(i0, i1, i2)];
  }
  float& operator()(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) {
    return data_[shape_.offset(i0, i1, i2, i3)];
  }
  float operator()(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const {
    return data_[shape_.offset(i0, i1, i2, i3)];
  }

  void fill(float value);

  /// Reinterpret storage with a new shape of identical numel (copies).
  Tensor reshaped(Shape new_shape) const;

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Whether the library was built with allocation telemetry
  /// (FEDCAV_ALLOC_STATS CMake option). When false the counters below
  /// read as all-zero.
  static constexpr bool alloc_stats_enabled() {
#ifdef FEDCAV_ALLOC_STATS
    return true;
#else
    return false;
#endif
  }
  /// Process-wide counters of tensor buffer allocations since the last
  /// reset (thread-safe).
  static TensorAllocStats alloc_stats();
  static void reset_alloc_stats();

 private:
  /// Make capacity_ >= n, discarding contents on reallocation. The only
  /// place that touches the heap.
  void ensure_capacity(std::size_t n);

  Shape shape_;
  std::size_t numel_ = 0;
  std::size_t capacity_ = 0;
  float* data_ = nullptr;
};

}  // namespace fedcav
