// Intra-op kernel parallelism plumbing.
//
// The tensor/nn kernels (GEMM macro-tiles, Conv2D batch slabs, the
// elementwise/pool/softmax tails) consult one process-wide, non-owning
// ThreadPool pointer. Null (the default) keeps every kernel on the
// single-thread path, so library users who never call set_kernel_pool()
// see exactly the behavior this repo always had.
//
// Determinism contract (DESIGN.md §13): kernels may only use
// parallel_chunks() in two ways.
//  * Disjoint outputs — each chunk writes its own output range and no
//    chunk reads another's. Any chunk count gives bit-identical results,
//    so chunks may (and do) scale with the worker count.
//  * Fixed-slot reductions — the chunk count and boundaries are a pure
//    function of the problem SHAPE (never of the worker count), each
//    chunk accumulates into its own slot, and the caller folds the slots
//    in ascending chunk order. Results are then bit-identical at any
//    worker count, including 1.
#pragma once

#include <cstddef>
#include <functional>

#include "src/utils/threadpool.hpp"

namespace fedcav::ops {

/// Attach (or detach, with nullptr) the pool the kernels fan out on.
/// Non-owning; the pool must outlive the attachment. Typically set once
/// at startup (quickstart --threads, bench --threads) or around a test.
void set_kernel_pool(ThreadPool* pool);
ThreadPool* kernel_pool();

/// How many ways a kernel can usefully fan out right now: the kernel
/// pool's worker count, or 1 when no pool is attached or the caller is
/// already running on one of its workers (nested kernel parallelism runs
/// inline — the federated round already owns the pool's threads).
std::size_t kernel_ways();

/// Run body(begin, end, chunk) over contiguous sub-ranges of [0, n),
/// splitting into at most `chunks` pieces (dense chunk ids, ascending
/// ranges). The ranges depend only on n and `chunks`; with kernel_ways()
/// == 1 the chunks run inline in ascending order, which is the same
/// schedule a 1-worker pool would produce.
void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& body);

}  // namespace fedcav::ops
