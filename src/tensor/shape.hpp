// Tensor shape: a small fixed-capacity dimension list with row-major
// stride/offset arithmetic. Kept separate from Tensor so layers can do
// shape algebra without touching storage.
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <string>

namespace fedcav {

/// Up to kMaxRank dimensions, row-major. Rank-0 (scalar) is allowed and
/// has numel() == 1.
class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;
  Shape(std::initializer_list<std::size_t> dims);

  static Shape of(std::size_t d0);
  static Shape of(std::size_t d0, std::size_t d1);
  static Shape of(std::size_t d0, std::size_t d1, std::size_t d2);
  static Shape of(std::size_t d0, std::size_t d1, std::size_t d2, std::size_t d3);

  std::size_t rank() const { return rank_; }
  std::size_t operator[](std::size_t axis) const;
  std::size_t numel() const;

  /// Row-major linear offset of a multi-index (rank must match).
  std::size_t offset(std::size_t i0) const;
  std::size_t offset(std::size_t i0, std::size_t i1) const;
  std::size_t offset(std::size_t i0, std::size_t i1, std::size_t i2) const;
  std::size_t offset(std::size_t i0, std::size_t i1, std::size_t i2, std::size_t i3) const;

  bool operator==(const Shape& other) const;
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// "[2, 3, 4]" for diagnostics.
  std::string to_string() const;

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace fedcav
