#include "src/tensor/parallel.hpp"

#include <atomic>

namespace fedcav::ops {

namespace {
std::atomic<ThreadPool*> g_kernel_pool{nullptr};
}  // namespace

void set_kernel_pool(ThreadPool* pool) {
  g_kernel_pool.store(pool, std::memory_order_release);
}

ThreadPool* kernel_pool() {
  return g_kernel_pool.load(std::memory_order_acquire);
}

std::size_t kernel_ways() {
  ThreadPool* pool = kernel_pool();
  if (pool == nullptr || pool->size() <= 1) return 1;
  // A kernel invoked from one of the pool's own workers (a federated
  // client training inside the round's fan-out) must not re-enter the
  // pool; parallel_for would run it inline anyway, so report 1 and let
  // the caller keep its cheaper serial path.
  if (pool->in_worker_thread()) return 1;
  return pool->size();
}

void parallel_chunks(std::size_t n, std::size_t chunks,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& body) {
  if (n == 0) return;
  if (chunks == 0) chunks = 1;
  const std::size_t step = (n + chunks - 1) / chunks;
  const std::size_t actual = (n + step - 1) / step;
  ThreadPool* pool = kernel_pool();
  if (actual == 1 || pool == nullptr || pool->in_worker_thread()) {
    for (std::size_t c = 0; c < actual; ++c) {
      const std::size_t begin = c * step;
      body(begin, std::min(n, begin + step), c);
    }
    return;
  }
  pool->parallel_for(actual, [&](std::size_t c) {
    const std::size_t begin = c * step;
    body(begin, std::min(n, begin + step), c);
  });
}

}  // namespace fedcav::ops
