// Model: a network + loss pair with flat-vector weight exchange.
//
// This is the unit the federated runtime manipulates. The flat weight
// vector (concatenation of every parameter tensor in registration order)
// is what travels over the comm substrate and what aggregation strategies
// average — matching the w / w_i^t vectors in the paper's formulation.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/layer.hpp"
#include "src/nn/loss.hpp"

namespace fedcav::nn {

using Weights = std::vector<float>;

class Model {
 public:
  Model(std::unique_ptr<Layer> network, std::unique_ptr<Loss> loss, std::string name);

  /// Forward pass only (inference).
  Tensor predict(const Tensor& input);

  /// Mean loss of the current weights on a batch, no gradient update.
  /// This is the paper's inference loss f_i(w) evaluated on one batch.
  float compute_loss(const Tensor& input, const std::vector<std::size_t>& labels);

  /// One forward+backward pass; leaves gradients accumulated in the
  /// layers and returns the batch loss. Caller applies an optimizer step.
  float forward_backward(const Tensor& input, const std::vector<std::size_t>& labels);

  void zero_grad();

  /// Total number of trainable scalars.
  std::size_t num_params() const { return num_params_; }

  /// Snapshot all parameters into one flat vector.
  Weights get_weights() const;
  /// Load parameters from a flat vector (size must equal num_params()).
  void set_weights(std::span<const float> flat);
  /// Snapshot all gradients (same layout as get_weights()).
  Weights get_gradients() const;

  std::vector<ParamView>& params() { return params_; }
  Loss& loss() { return *loss_; }
  const std::string& name() const { return name_; }

  /// Deep copy with identical weights and a fresh loss/grad state.
  std::unique_ptr<Model> clone() const;

 private:
  std::unique_ptr<Layer> network_;
  std::unique_ptr<Loss> loss_;
  std::string name_;
  std::vector<ParamView> params_;  // cached from network_->params()
  std::size_t num_params_ = 0;
};

}  // namespace fedcav::nn
