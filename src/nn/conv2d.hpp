// 2-D convolution lowered to GEMM via im2col.
//
// Input: (batch × C_in × H × W); output: (batch × C_out × OH × OW).
// Weights are stored as a (C_out × C_in*KH*KW) matrix so forward is a
// single matmul per image against the column expansion.
#pragma once

#include "src/nn/layer.hpp"
#include "src/tensor/im2col.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
         Rng& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t out_channels() const { return out_channels_; }
  std::size_t out_h() const { return geometry_.out_h(); }
  std::size_t out_w() const { return geometry_.out_w(); }

 private:
  Conv2D(const Conv2D&) = default;

  Conv2dGeometry geometry_;
  std::size_t out_channels_;
  Tensor weight_;       // (C_out × C_in*KH*KW)
  Tensor bias_;         // (C_out)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor cached_input_;           // (B × C_in × H × W)
  std::vector<Tensor> cached_cols_;  // per-image column matrices
};

}  // namespace fedcav::nn
