// 2-D convolution, three execution paths by geometry (DESIGN.md §8).
//
// Input: (batch × C_in × H × W); output: (batch × C_out × OH × OW).
// Weights are stored as a (C_out × C_in*KH*KW) matrix. When one image's
// output plane (OH·OW) is too narrow to fill the GEMM's register tile,
// the whole batch is expanded into ONE (C_in*KH*KW × batch·OH·OW) column
// matrix so forward is a single wide GEMM. Wide planes run per image:
// small stride-1 kernels (support ≤ 32, rows ≤ 16 floats) skip im2col
// entirely and convolve directly over a padded plane copy with a
// 16-lane vector row accumulator (backward = transpose convolution);
// the rest lower each image into one reused L1-resident column scratch
// and GEMM straight into the output tensor. All temporaries live in a
// persistent Workspace, so steady-state training allocates nothing.
#pragma once

#include "src/nn/layer.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/im2col.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

class Conv2D : public Layer {
 public:
  Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
         std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
         Rng& rng);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t out_channels() const { return out_channels_; }
  std::size_t out_h() const { return geometry_.out_h(); }
  std::size_t out_w() const { return geometry_.out_w(); }

 private:
  Conv2D(const Conv2D&) = default;

  // Small stride-1 kernels skip the im2col lowering entirely on the
  // per-image path: forward and dx run as direct (transpose)
  // convolutions over a padded plane copy. See conv2d.cpp.
  bool use_direct() const;
  // Whether this geometry runs the fused (whole-batch column matrix)
  // layout; see conv2d.cpp for the plane-size crossover rules.
  bool use_fused() const;
  // Narrow "same"-padded direct geometries (rows ≤ 8 lanes incl. pad)
  // interleave TWO images per 16-lane vector row, doubling lane
  // occupancy over the 8-lane kernels; see conv2d.cpp.
  bool use_pair() const;
  // Vector lane width (8 or 16) the direct kernels run at for this
  // geometry; per-lane math is identical, so it never changes results.
  std::size_t direct_width() const;

  const Tensor& forward_fused(const Tensor& input, std::size_t batch);
  const Tensor& forward_per_image(const Tensor& input, std::size_t batch, bool training);
  const Tensor& backward_fused(const Tensor& grad_output, std::size_t batch);
  const Tensor& backward_per_image(const Tensor& grad_output, std::size_t batch);

  // Workspace slots (see DESIGN.md §8). On the fused (narrow-plane) path
  // kCols holds the batch-wide expansion and survives from forward to
  // backward — it replaces the per-image cached_cols_ copies the
  // pre-batched implementation made; kGemmOut/kGmat are fused-only. On
  // the per-image (wide-plane) path kCols/kDcols are single-image
  // scratches and training caches the raw input (cached_in_) instead —
  // it is kernel² smaller than its expansion, and backward re-lowers
  // each image on the fly.
  enum Slot : std::size_t {
    kCols = 0, kGemmOut, kOut, kGmat, kDcols, kDx,
    kPadIn,  // direct path: zero-padded input planes for one image
    kPadG,   // direct path: transpose-padded gradient planes for one image
    kPairOut,  // pair path: 16-wide kernel output before de-interleaving
  };

  Conv2dGeometry geometry_;
  std::size_t out_channels_;
  Tensor weight_;       // (C_out × C_in*KH*KW)
  Tensor bias_;         // (C_out)
  Tensor weight_grad_;
  Tensor bias_grad_;
  Shape in_shape_;      // of the last training forward's input
  bool has_cols_ = false;  // the last training forward's lowering state is live
  Tensor cached_in_;    // per-image path: input copy for backward re-lowering
  Workspace ws_;
  // Per-chunk scratch for the batch fan-outs (padded planes, per-image
  // column matrices, dW slice partials); slot 0 doubles as the serial
  // path's scratch, so single-thread runs pay nothing extra.
  WorkspaceArena arena_;
  ops::PackedA packed_w_;   // scratch for the forward weight packing
  ops::PackedA packed_wt_;  // scratch for the backward Wᵀ packing
};

}  // namespace fedcav::nn
