#include "src/nn/model.hpp"

#include <cstring>

#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

Model::Model(std::unique_ptr<Layer> network, std::unique_ptr<Loss> loss, std::string name)
    : network_(std::move(network)), loss_(std::move(loss)), name_(std::move(name)) {
  FEDCAV_REQUIRE(network_ != nullptr, "Model: null network");
  FEDCAV_REQUIRE(loss_ != nullptr, "Model: null loss");
  params_ = network_->params();
  for (const ParamView& p : params_) {
    FEDCAV_REQUIRE(p.value != nullptr && p.grad != nullptr, "Model: null param view");
    FEDCAV_REQUIRE(p.value->numel() == p.grad->numel(), "Model: param/grad size mismatch");
    num_params_ += p.value->numel();
  }
}

Tensor Model::predict(const Tensor& input) {
  // Copy out of the network's workspace: callers keep prediction tensors
  // across subsequent forward passes.
  return network_->forward(input, /*training=*/false);
}

float Model::compute_loss(const Tensor& input, const std::vector<std::size_t>& labels) {
  const Tensor& logits = network_->forward(input, /*training=*/false);
  return loss_->forward(logits, labels);
}

float Model::forward_backward(const Tensor& input, const std::vector<std::size_t>& labels) {
  // Whole step chains workspace-backed references: zero heap allocations
  // once every layer's buffers have reached steady-state capacity.
  const Tensor* logits = nullptr;
  {
    obs::Span span("forward", "nn");
    logits = &network_->forward(input, /*training=*/true);
  }
  float value = 0.0f;
  {
    obs::Span span("loss", "nn");
    value = loss_->forward(*logits, labels);
  }
  {
    obs::Span span("backward", "nn");
    network_->backward(loss_->backward());
  }
  return value;
}

void Model::zero_grad() { network_->zero_grad(); }

Weights Model::get_weights() const {
  Weights flat(num_params_);
  std::size_t offset = 0;
  for (const ParamView& p : params_) {
    std::memcpy(flat.data() + offset, p.value->data(), p.value->numel() * sizeof(float));
    offset += p.value->numel();
  }
  return flat;
}

void Model::set_weights(std::span<const float> flat) {
  FEDCAV_REQUIRE(flat.size() == num_params_,
                 "Model::set_weights: expected " + std::to_string(num_params_) +
                     " values, got " + std::to_string(flat.size()));
  std::size_t offset = 0;
  for (const ParamView& p : params_) {
    std::memcpy(p.value->data(), flat.data() + offset, p.value->numel() * sizeof(float));
    offset += p.value->numel();
  }
}

Weights Model::get_gradients() const {
  Weights flat(num_params_);
  std::size_t offset = 0;
  for (const ParamView& p : params_) {
    std::memcpy(flat.data() + offset, p.grad->data(), p.grad->numel() * sizeof(float));
    offset += p.grad->numel();
  }
  return flat;
}

std::unique_ptr<Model> Model::clone() const {
  return std::make_unique<Model>(network_->clone(), loss_->clone(), name_);
}

}  // namespace fedcav::nn
