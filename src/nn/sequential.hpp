// Sequential container: runs layers in order forward, reverse backward.
// Holds no activation buffers of its own — forward/backward chain the
// child layers' workspace-backed references straight through.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i);

 private:
  /// Stable "index:LayerName" label for per-layer trace spans (built
  /// lazily, only on traced passes).
  const char* layer_label(std::size_t i);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::string> labels_;  // trace labels, parallel to layers_
};

}  // namespace fedcav::nn
