// Layer abstraction for the explicit-backprop NN substrate.
//
// Layers are stateful: forward() caches whatever backward() needs, and
// backward() accumulates parameter gradients in place while returning the
// gradient w.r.t. the layer input. This matches the fixed-architecture
// training loop FL needs and avoids the compile cost of a tape autograd.
//
// Input conventions:
//  * Dense layers take rank-2 (batch × features).
//  * Conv/pool layers take rank-4 (batch × channels × height × width).
//  * Flatten bridges the two.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace fedcav::nn {

/// Non-owning handle to one parameter tensor and its gradient buffer.
struct ParamView {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs; `training` toggles train-only behaviour. Caches
  /// activations for backward().
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Given dL/d(output), accumulate dL/d(params) into grad buffers and
  /// return dL/d(input). Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Views remain
  /// valid for the life of the layer.
  virtual std::vector<ParamView> params() { return {}; }

  /// Zero all gradient buffers.
  void zero_grad();

  virtual std::string name() const = 0;

  /// Deep copy, including current parameter values (gradients are
  /// zeroed). Needed to replicate a model per federated client.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace fedcav::nn
