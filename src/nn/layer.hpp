// Layer abstraction for the explicit-backprop NN substrate.
//
// Layers are stateful: forward() caches whatever backward() needs, and
// backward() accumulates parameter gradients in place while returning the
// gradient w.r.t. the layer input. This matches the fixed-architecture
// training loop FL needs and avoids the compile cost of a tape autograd.
//
// Input conventions:
//  * Dense layers take rank-2 (batch × features).
//  * Conv/pool layers take rank-4 (batch × channels × height × width).
//  * Flatten bridges the two.
//
// Buffer ownership (DESIGN.md §8): forward() and backward() return a
// reference to a buffer the layer owns (its Workspace). The reference is
// valid until the next forward/backward call on the same layer; callers
// that must retain the values copy (`Tensor out = layer.forward(...)`).
// This is what makes a steady-state train step allocation-free: the
// whole forward/backward chain is reference passing between persistent
// per-layer buffers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"
#include "src/tensor/workspace.hpp"

namespace fedcav::nn {

/// Non-owning handle to one parameter tensor and its gradient buffer.
struct ParamView {
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Compute outputs; `training` toggles train-only behaviour. Caches
  /// activations for backward(). The returned reference is owned by the
  /// layer and valid until its next forward/backward call.
  virtual const Tensor& forward(const Tensor& input, bool training) = 0;

  /// Given dL/d(output), accumulate dL/d(params) into grad buffers and
  /// return dL/d(input) (layer-owned, same lifetime rule as forward()).
  /// Must be called after a matching forward().
  virtual const Tensor& backward(const Tensor& grad_output) = 0;

  /// Trainable parameters (empty for stateless layers). Views remain
  /// valid for the life of the layer.
  virtual std::vector<ParamView> params() { return {}; }

  /// Zero all gradient buffers.
  void zero_grad();

  virtual std::string name() const = 0;

  /// Deep copy, including current parameter values (gradients are
  /// zeroed). Needed to replicate a model per federated client.
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace fedcav::nn
