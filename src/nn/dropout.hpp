// Inverted dropout: active only in training mode; inference is identity.
// Each layer instance owns a private RNG stream so per-client model
// replicas drop independently.
#pragma once

#include "src/nn/layer.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

class Dropout : public Layer {
 public:
  explicit Dropout(float drop_probability, std::uint64_t seed = 0x0d20ff);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  float drop_probability() const { return p_; }

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  float p_;
  std::uint64_t seed_;
  Rng rng_;
  Tensor mask_;         // scaled keep mask cached for backward
  bool active_ = false; // last forward was a dropping (training) pass
  Workspace ws_;
};

}  // namespace fedcav::nn
