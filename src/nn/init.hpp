// Weight initialization schemes.
#pragma once

#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suits tanh-ish layers and is a safe default for output heads.
void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng);

/// Kaiming/He normal: N(0, sqrt(2 / fan_in)); default for ReLU stacks.
void he_normal(Tensor& w, std::size_t fan_in, Rng& rng);

}  // namespace fedcav::nn
