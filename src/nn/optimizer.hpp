// Optimizers. All step() implementations read accumulated gradients from
// the model's ParamViews and update the values in place.
//
// Sgd carries an optional proximal term μ‖w − w_anchor‖²/2 toward an
// anchor weight vector: with μ=0 it is plain (momentum) SGD, with μ>0 it
// is exactly FedProx's local objective modification (Li et al., the
// paper's baseline [11]). The anchor is the round's global model.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/nn/model.hpp"

namespace fedcav::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Apply one update using the gradients currently in `model`; zeroes
  /// the gradients afterwards.
  virtual void step(Model& model) = 0;

  virtual std::string name() const = 0;
};

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  /// FedProx proximal coefficient μ; 0 disables the proximal term.
  float prox_mu = 0.0f;
};

class Sgd : public Optimizer {
 public:
  explicit Sgd(SgdConfig config);

  void step(Model& model) override;
  std::string name() const override;

  /// Set the proximal anchor (the downloaded global weights). Required
  /// before step() when prox_mu > 0; cleared with an empty span.
  void set_prox_anchor(std::span<const float> anchor);

  /// Per-coordinate quadratic penalty λ·F_j·(w_j − a_j)² (EWC/FedCurv
  /// style): adds λ·F_j·(w_j − a_j) to each gradient. Pass empty spans
  /// to clear. `anchor` and `importance` must be the same length.
  void set_quadratic_penalty(std::span<const float> anchor,
                             std::span<const float> importance, float lambda);

  const SgdConfig& config() const { return config_; }

 private:
  SgdConfig config_;
  std::vector<float> velocity_;  // lazily sized to num_params
  std::vector<float> anchor_;
  std::vector<float> penalty_anchor_;
  std::vector<float> penalty_importance_;
  float penalty_lambda_ = 0.0f;
};

struct AdamConfig {
  float lr = 0.001f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam : public Optimizer {
 public:
  explicit Adam(AdamConfig config);

  void step(Model& model) override;
  std::string name() const override { return "Adam"; }

 private:
  AdamConfig config_;
  std::vector<float> m_;
  std::vector<float> v_;
  std::size_t t_ = 0;
};

}  // namespace fedcav::nn
