#include "src/nn/loss.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/tensor/ops.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

namespace {
void check_batch(const Tensor& logits, const std::vector<std::size_t>& labels,
                 const char* who) {
  FEDCAV_REQUIRE(logits.shape().rank() == 2, std::string(who) + ": rank-2 logits required");
  FEDCAV_REQUIRE(logits.shape()[0] == labels.size(),
                 std::string(who) + ": batch size mismatch");
  const std::size_t classes = logits.shape()[1];
  for (std::size_t y : labels) {
    FEDCAV_REQUIRE(y < classes, std::string(who) + ": label out of range");
  }
}
constexpr float kProbFloor = 1e-12f;

// Fan-out width over batch rows. The softmax rows are independent; the
// loss total folds the per-row slots in ascending row order, so any
// width is bit-identical (fixed-slot reduction, DESIGN.md §13).
constexpr std::size_t kLossParallelMinOps = std::size_t{1} << 14;
std::size_t row_fanout(std::size_t rows, std::size_t total_ops) {
  const std::size_t ways = ops::kernel_ways();
  if (ways <= 1 || rows < 2 || total_ops < kLossParallelMinOps) return 1;
  return std::min(ways, rows);
}
}  // namespace

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   const std::vector<std::size_t>& labels) {
  check_batch(logits, labels, "SoftmaxCrossEntropy");
  logits_ = logits;  // capacity-reusing copy; backward reads it
  labels_ = labels;
  const std::size_t batch = labels.size();
  const std::size_t classes = logits.shape()[1];
  rowmax_.resize(batch);
  rowsum_.resize(batch);
  rowloss_.resize(batch);
  ops::parallel_chunks(
      batch, row_fanout(batch, batch * classes),
      [&](std::size_t b0, std::size_t b1, std::size_t) {
        for (std::size_t b = b0; b < b1; ++b) {
          const float* row = logits.data() + b * classes;
          // Online softmax: one traversal keeps a running max m and the
          // sum of exp(x - m), rescaling the partial sum whenever the
          // max moves.
          float m = -std::numeric_limits<float>::infinity();
          float s = 0.0f;
          for (std::size_t j = 0; j < classes; ++j) {
            const float x = row[j];
            if (x > m) {
              s = s * std::exp(m - x) + 1.0f;  // rescale old partials, count x
              m = x;
            } else {
              s += std::exp(x - m);
            }
          }
          rowmax_[b] = m;
          rowsum_[b] = s;
          const double py =
              std::max(static_cast<double>(kProbFloor),
                       std::exp(static_cast<double>(row[labels_[b]] - m)) /
                           static_cast<double>(s));
          rowloss_[b] = -std::log(py);
        }
      });
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) total += rowloss_[b];
  return static_cast<float>(total / static_cast<double>(batch));
}

const Tensor& SoftmaxCrossEntropy::backward() {
  FEDCAV_REQUIRE(logits_.numel() > 0, "SoftmaxCrossEntropy::backward before forward");
  const std::size_t batch = labels_.size();
  const std::size_t classes = logits_.shape()[1];
  const float inv_batch = 1.0f / static_cast<float>(batch);
  grad_.resize_uninitialized(logits_.shape());
  ops::parallel_chunks(
      batch, row_fanout(batch, batch * classes),
      [&](std::size_t b0, std::size_t b1, std::size_t) {
        for (std::size_t b = b0; b < b1; ++b) {
          const float* row = logits_.data() + b * classes;
          float* dst = grad_.data() + b * classes;
          const float m = rowmax_[b];
          const float inv_s = 1.0f / rowsum_[b];
          const std::size_t y = labels_[b];
          for (std::size_t j = 0; j < classes; ++j) {
            const float p = std::exp(row[j] - m) * inv_s;
            dst[j] = (p - (j == y ? 1.0f : 0.0f)) * inv_batch;
          }
        }
      });
  return grad_;
}

std::unique_ptr<Loss> SoftmaxCrossEntropy::clone() const {
  return std::make_unique<SoftmaxCrossEntropy>();
}

FocalLoss::FocalLoss(float gamma) : gamma_(gamma) {
  FEDCAV_REQUIRE(gamma >= 0.0f, "FocalLoss: gamma must be non-negative");
}

float FocalLoss::forward(const Tensor& logits, const std::vector<std::size_t>& labels) {
  check_batch(logits, labels, "FocalLoss");
  ops::softmax_rows_into(logits, probs_);
  labels_ = labels;
  const std::size_t batch = labels.size();
  const std::size_t classes = logits.shape()[1];
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const double pt = std::max(static_cast<double>(kProbFloor),
                               static_cast<double>(probs_.data()[b * classes + labels[b]]));
    total -= std::pow(1.0 - pt, static_cast<double>(gamma_)) * std::log(pt);
  }
  return static_cast<float>(total / static_cast<double>(batch));
}

const Tensor& FocalLoss::backward() {
  FEDCAV_REQUIRE(probs_.numel() > 0, "FocalLoss::backward before forward");
  const std::size_t batch = labels_.size();
  const std::size_t classes = probs_.shape()[1];
  const double g = static_cast<double>(gamma_);
  grad_.resize_uninitialized(probs_.shape());
  // dFL/dz_j = p_j * s - [j == y] * s_y-term, derived from
  // FL = -(1-p_y)^g log(p_y) with softmax p. Let
  //   A = g (1-p_y)^{g-1} p_y log(p_y) - (1-p_y)^g
  // then dFL/dz_j = -A * (delta_{jy} - p_j) ... expanded below.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* p = probs_.data() + b * classes;
    float* dst = grad_.data() + b * classes;
    const std::size_t y = labels_[b];
    const double py = std::max(static_cast<double>(kProbFloor), static_cast<double>(p[y]));
    const double one_minus = std::max(0.0, 1.0 - py);
    const double a = g * std::pow(one_minus, g - 1.0) * py * std::log(py) -
                     std::pow(one_minus, g);
    for (std::size_t j = 0; j < classes; ++j) {
      const double delta = (j == y) ? 1.0 : 0.0;
      dst[j] = static_cast<float>(a * (delta - static_cast<double>(p[j])) /
                                  static_cast<double>(batch));
    }
  }
  return grad_;
}

std::unique_ptr<Loss> FocalLoss::clone() const {
  return std::make_unique<FocalLoss>(gamma_);
}

float MseLoss::forward(const Tensor& logits, const std::vector<std::size_t>& labels) {
  check_batch(logits, labels, "MseLoss");
  logits_ = logits;
  labels_ = labels;
  const std::size_t batch = labels.size();
  const std::size_t classes = logits.shape()[1];
  double total = 0.0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.data() + b * classes;
    for (std::size_t j = 0; j < classes; ++j) {
      const double target = (j == labels[b]) ? 1.0 : 0.0;
      const double d = static_cast<double>(row[j]) - target;
      total += d * d;
    }
  }
  return static_cast<float>(total / static_cast<double>(batch * classes));
}

const Tensor& MseLoss::backward() {
  FEDCAV_REQUIRE(logits_.numel() > 0, "MseLoss::backward before forward");
  const std::size_t batch = labels_.size();
  const std::size_t classes = logits_.shape()[1];
  const float scale = 2.0f / static_cast<float>(batch * classes);
  grad_.resize_uninitialized(logits_.shape());
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits_.data() + b * classes;
    float* dst = grad_.data() + b * classes;
    for (std::size_t j = 0; j < classes; ++j) {
      const float target = (j == labels_[b]) ? 1.0f : 0.0f;
      dst[j] = scale * (row[j] - target);
    }
  }
  return grad_;
}

std::unique_ptr<Loss> MseLoss::clone() const { return std::make_unique<MseLoss>(); }

}  // namespace fedcav::nn
