// Pointwise activation layers: ReLU, LeakyReLU, Tanh. Shape-agnostic.
#pragma once

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor mask_;  // 1 where input > 0
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_(negative_slope) {}

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  float slope_;
  Tensor cached_input_;
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Tensor cached_output_;
};

}  // namespace fedcav::nn
