// Pointwise activation layers: ReLU, LeakyReLU, Tanh. Shape-agnostic.
#pragma once

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class ReLU : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  Tensor mask_;  // 1 where input > 0
  Workspace ws_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_(negative_slope) {}

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override { return "LeakyReLU"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  float slope_;
  Tensor cached_input_;
  Workspace ws_;
};

class Tanh : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override { return "Tanh"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  Tensor cached_output_;
  Workspace ws_;
};

}  // namespace fedcav::nn
