#include "src/nn/optimizer.hpp"

#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::nn {

Sgd::Sgd(SgdConfig config) : config_(config) {
  FEDCAV_REQUIRE(config.lr > 0.0f, "Sgd: learning rate must be positive");
  FEDCAV_REQUIRE(config.momentum >= 0.0f && config.momentum < 1.0f,
                 "Sgd: momentum must be in [0, 1)");
  FEDCAV_REQUIRE(config.prox_mu >= 0.0f, "Sgd: prox_mu must be non-negative");
}

void Sgd::set_prox_anchor(std::span<const float> anchor) {
  anchor_.assign(anchor.begin(), anchor.end());
}

void Sgd::set_quadratic_penalty(std::span<const float> anchor,
                                std::span<const float> importance, float lambda) {
  FEDCAV_REQUIRE(anchor.size() == importance.size(),
                 "Sgd: penalty anchor/importance size mismatch");
  FEDCAV_REQUIRE(lambda >= 0.0f, "Sgd: penalty lambda must be non-negative");
  penalty_anchor_.assign(anchor.begin(), anchor.end());
  penalty_importance_.assign(importance.begin(), importance.end());
  penalty_lambda_ = lambda;
}

void Sgd::step(Model& model) {
  const bool use_prox = config_.prox_mu > 0.0f;
  if (use_prox) {
    FEDCAV_REQUIRE(anchor_.size() == model.num_params(),
                   "Sgd: prox anchor size mismatch (set_prox_anchor required)");
  }
  const bool use_momentum = config_.momentum > 0.0f;
  if (use_momentum && velocity_.size() != model.num_params()) {
    velocity_.assign(model.num_params(), 0.0f);
  }
  const bool use_penalty = penalty_lambda_ > 0.0f && !penalty_anchor_.empty();
  if (use_penalty) {
    FEDCAV_REQUIRE(penalty_anchor_.size() == model.num_params(),
                   "Sgd: quadratic penalty size mismatch");
  }

  std::size_t offset = 0;
  for (ParamView& p : model.params()) {
    float* w = p.value->data();
    float* g = p.grad->data();
    const std::size_t n = p.value->numel();
    for (std::size_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (config_.weight_decay > 0.0f) grad += config_.weight_decay * w[i];
      if (use_prox) grad += config_.prox_mu * (w[i] - anchor_[offset + i]);
      if (use_penalty) {
        grad += penalty_lambda_ * penalty_importance_[offset + i] *
                (w[i] - penalty_anchor_[offset + i]);
      }
      if (use_momentum) {
        float& v = velocity_[offset + i];
        v = config_.momentum * v + grad;
        grad = v;
      }
      w[i] -= config_.lr * grad;
      g[i] = 0.0f;
    }
    offset += n;
  }
}

std::string Sgd::name() const {
  std::string s = "Sgd(lr=" + std::to_string(config_.lr);
  if (config_.momentum > 0.0f) s += ", momentum=" + std::to_string(config_.momentum);
  if (config_.prox_mu > 0.0f) s += ", prox_mu=" + std::to_string(config_.prox_mu);
  return s + ")";
}

Adam::Adam(AdamConfig config) : config_(config) {
  FEDCAV_REQUIRE(config.lr > 0.0f, "Adam: learning rate must be positive");
  FEDCAV_REQUIRE(config.beta1 >= 0.0f && config.beta1 < 1.0f, "Adam: beta1 out of range");
  FEDCAV_REQUIRE(config.beta2 >= 0.0f && config.beta2 < 1.0f, "Adam: beta2 out of range");
}

void Adam::step(Model& model) {
  if (m_.size() != model.num_params()) {
    m_.assign(model.num_params(), 0.0f);
    v_.assign(model.num_params(), 0.0f);
    t_ = 0;
  }
  ++t_;
  const double bias1 = 1.0 - std::pow(static_cast<double>(config_.beta1), static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(static_cast<double>(config_.beta2), static_cast<double>(t_));

  std::size_t offset = 0;
  for (ParamView& p : model.params()) {
    float* w = p.value->data();
    float* g = p.grad->data();
    const std::size_t n = p.value->numel();
    for (std::size_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (config_.weight_decay > 0.0f) grad += config_.weight_decay * w[i];
      float& m = m_[offset + i];
      float& v = v_[offset + i];
      m = config_.beta1 * m + (1.0f - config_.beta1) * grad;
      v = config_.beta2 * v + (1.0f - config_.beta2) * grad * grad;
      const double mhat = static_cast<double>(m) / bias1;
      const double vhat = static_cast<double>(v) / bias2;
      w[i] -= static_cast<float>(static_cast<double>(config_.lr) * mhat /
                                 (std::sqrt(vhat) + static_cast<double>(config_.epsilon)));
      g[i] = 0.0f;
    }
    offset += n;
  }
}

}  // namespace fedcav::nn
