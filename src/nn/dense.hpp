// Fully-connected layer: y = x W^T + b.
#pragma once

#include "src/nn/layer.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

class Dense : public Layer {
 public:
  /// Weights W are (out × in), He-initialized; bias b is zero-initialized.
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  Dense(const Dense&) = default;

  enum Slot : std::size_t { kOut = 0, kDx };

  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // (out × in)
  Tensor bias_;         // (out)
  Tensor weight_grad_;  // (out × in)
  Tensor bias_grad_;    // (out)
  Tensor cached_input_;
  Workspace ws_;
};

}  // namespace fedcav::nn
