#include "src/nn/sequential.hpp"

#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  FEDCAV_REQUIRE(layer != nullptr, "Sequential::add: null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

const char* Sequential::layer_label(std::size_t i) {
  // Built once per container so the traced path hands Span a stable
  // C string instead of formatting per call.
  if (labels_.size() != layers_.size()) {
    labels_.clear();
    labels_.reserve(layers_.size());
    for (std::size_t j = 0; j < layers_.size(); ++j) {
      labels_.push_back(std::to_string(j) + ":" + layers_[j]->name());
    }
  }
  return labels_[i].c_str();
}

const Tensor& Sequential::forward(const Tensor& input, bool training) {
  FEDCAV_REQUIRE(!layers_.empty(), "Sequential::forward: empty container");
  const Tensor* x = &input;
  if (obs::enabled()) {
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      obs::Span span(layer_label(i), "nn.forward");
      x = &layers_[i]->forward(*x, training);
    }
    return *x;
  }
  for (auto& l : layers_) x = &l->forward(*x, training);
  return *x;
}

const Tensor& Sequential::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(!layers_.empty(), "Sequential::backward: empty container");
  const Tensor* g = &grad_output;
  if (obs::enabled()) {
    for (std::size_t i = layers_.size(); i-- > 0;) {
      obs::Span span(layer_label(i), "nn.backward");
      g = &layers_[i]->backward(*g);
    }
    return *g;
  }
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = &(*it)->backward(*g);
  return *g;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (auto& l : layers_) {
    for (ParamView p : l->params()) out.push_back(p);
  }
  return out;
}

std::string Sequential::name() const {
  std::string s = "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i > 0) s += ", ";
    s += layers_[i]->name();
  }
  return s + "]";
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto copy = std::make_unique<Sequential>();
  for (const auto& l : layers_) copy->add(l->clone());
  return copy;
}

Layer& Sequential::layer(std::size_t i) {
  FEDCAV_REQUIRE(i < layers_.size(), "Sequential::layer: index out of range");
  return *layers_[i];
}

}  // namespace fedcav::nn
