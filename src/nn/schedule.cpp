#include "src/nn/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/utils/error.hpp"

namespace fedcav::nn {

ConstantLr::ConstantLr(float base) : base_(base) {
  FEDCAV_REQUIRE(base > 0.0f, "ConstantLr: base must be positive");
}

float ConstantLr::lr(std::size_t round) const {
  (void)round;
  return base_;
}

StepDecayLr::StepDecayLr(float base, std::size_t step, float gamma)
    : base_(base), step_(step), gamma_(gamma) {
  FEDCAV_REQUIRE(base > 0.0f, "StepDecayLr: base must be positive");
  FEDCAV_REQUIRE(step > 0, "StepDecayLr: step must be positive");
  FEDCAV_REQUIRE(gamma > 0.0f && gamma <= 1.0f, "StepDecayLr: gamma must be in (0, 1]");
}

float StepDecayLr::lr(std::size_t round) const {
  FEDCAV_REQUIRE(round >= 1, "StepDecayLr: rounds are 1-based");
  const std::size_t decays = (round - 1) / step_;
  return base_ * std::pow(gamma_, static_cast<float>(decays));
}

CosineLr::CosineLr(float base, float floor, std::size_t horizon)
    : base_(base), floor_(floor), horizon_(horizon) {
  FEDCAV_REQUIRE(base > 0.0f, "CosineLr: base must be positive");
  FEDCAV_REQUIRE(floor >= 0.0f && floor <= base, "CosineLr: floor must be in [0, base]");
  FEDCAV_REQUIRE(horizon >= 1, "CosineLr: horizon must be positive");
}

float CosineLr::lr(std::size_t round) const {
  FEDCAV_REQUIRE(round >= 1, "CosineLr: rounds are 1-based");
  if (round >= horizon_) return floor_;
  const double progress = static_cast<double>(round - 1) / static_cast<double>(horizon_ - 1);
  const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
  return floor_ + static_cast<float>(cosine) * (base_ - floor_);
}

std::unique_ptr<LrSchedule> make_schedule(const std::string& name, float base,
                                          std::size_t rounds) {
  if (name == "constant") return std::make_unique<ConstantLr>(base);
  if (name == "step") {
    return std::make_unique<StepDecayLr>(base, std::max<std::size_t>(1, rounds / 3), 0.5f);
  }
  if (name == "cosine") return std::make_unique<CosineLr>(base, base * 0.1f, rounds);
  throw Error("make_schedule: unknown schedule '" + name + "'");
}

}  // namespace fedcav::nn
