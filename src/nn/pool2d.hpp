// Max and average pooling over non-overlapping-or-strided windows.
// Input/output are rank-4 (batch × channels × height × width).
#pragma once

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t window, std::size_t stride);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat source index per output cell
  Workspace ws_;
};

class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::size_t window, std::size_t stride);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  Workspace ws_;
};

/// Global average pool: (B × C × H × W) -> (B × C). Used by ResNetLite's
/// head in place of a large dense layer.
class GlobalAvgPool : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  Shape input_shape_;
  Workspace ws_;
};

}  // namespace fedcav::nn
