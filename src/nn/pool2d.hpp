// Max and average pooling over non-overlapping-or-strided windows.
// Input/output are rank-4 (batch × channels × height × width).
#pragma once

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class MaxPool2D : public Layer {
 public:
  MaxPool2D(std::size_t window, std::size_t stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
  std::vector<std::size_t> argmax_;  // flat source index per output cell
};

class AvgPool2D : public Layer {
 public:
  AvgPool2D(std::size_t window, std::size_t stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  std::size_t stride_;
  Shape input_shape_;
};

/// Global average pool: (B × C × H × W) -> (B × C). Used by ResNetLite's
/// head in place of a large dense layer.
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  Shape input_shape_;
};

}  // namespace fedcav::nn
