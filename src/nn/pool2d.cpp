#include "src/nn/pool2d.hpp"

#include <limits>

#include "src/tensor/parallel.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

namespace {
void check_pool_input(const Shape& s, std::size_t window, const char* who) {
  FEDCAV_REQUIRE(s.rank() == 4, std::string(who) + ": rank-4 input required");
  FEDCAV_REQUIRE(s[2] >= window && s[3] >= window,
                 std::string(who) + ": window larger than input");
}

// Fan-out width over (batch × channel) planes. Every pooling loop below
// reads and writes only within one plane — an output element's window
// and (for max-pool backward) its argmax both live in the element's own
// plane — so chunking by plane is the disjoint-output case of the
// DESIGN.md §13 determinism contract.
constexpr std::size_t kPoolParallelMinOps = std::size_t{1} << 16;
std::size_t plane_fanout(std::size_t planes, std::size_t total_ops) {
  const std::size_t ways = ops::kernel_ways();
  if (ways <= 1 || planes < 2 || total_ops < kPoolParallelMinOps) return 1;
  return std::min(ways, planes);
}
}  // namespace

MaxPool2D::MaxPool2D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  FEDCAV_REQUIRE(window > 0 && stride > 0, "MaxPool2D: zero window or stride");
}

const Tensor& MaxPool2D::forward(const Tensor& input, bool training) {
  check_pool_input(input.shape(), window_, "MaxPool2D");
  input_shape_ = input.shape();
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;

  Tensor& out = ws_.get(kOut, Shape::of(batch, channels, oh, ow));
  // resize, not assign: every element is overwritten below, and assign's
  // zero pass costs a full traversal per step.
  if (training) argmax_.resize(out.numel());

  const std::size_t planes = batch * channels;
  const std::size_t out_plane = oh * ow;
  const std::size_t fan =
      plane_fanout(planes, planes * out_plane * window_ * window_);
  ops::parallel_chunks(planes, fan, [&](std::size_t p0, std::size_t p1,
                                        std::size_t) {
    for (std::size_t p = p0; p < p1; ++p) {
      const float* plane = input.data() + p * h * w;
      const std::size_t plane_base = p * h * w;
      std::size_t oi = p * out_plane;
      if (window_ == 2 && stride_ == 2) {
        // The zoo's only pooling geometry: a branchless 2×2 tournament.
        // Data-dependent if-chains mispredict on ~random activations;
        // ternaries compile to cmov/blend. Comparison directions keep
        // the generic loop's first-max-wins tie semantics: on a tie the
        // earlier element (row-major order) survives every round.
        for (std::size_t y = 0; y < oh; ++y) {
          const std::size_t ry = 2 * y * w;
          const float* r0 = plane + ry;
          const float* r1 = r0 + w;
          for (std::size_t x = 0; x < ow; ++x, ++oi) {
            const std::size_t rx = 2 * x;
            const float v0 = r0[rx], v1 = r0[rx + 1];
            const float v2 = r1[rx], v3 = r1[rx + 1];
            const bool t01 = v1 > v0;
            const bool t23 = v3 > v2;
            const float m01 = t01 ? v1 : v0;
            const float m23 = t23 ? v3 : v2;
            const bool tf = m23 > m01;
            out[oi] = tf ? m23 : m01;
            if (training) {
              const std::size_t i01 = ry + rx + (t01 ? 1 : 0);
              const std::size_t i23 = ry + w + rx + (t23 ? 1 : 0);
              argmax_[oi] = plane_base + (tf ? i23 : i01);
            }
          }
        }
        continue;
      }
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            const float* row = plane + (y * stride_ + dy) * w + x * stride_;
            for (std::size_t dx = 0; dx < window_; ++dx) {
              if (row[dx] > best) {
                best = row[dx];
                best_idx = (y * stride_ + dy) * w + x * stride_ + dx;
              }
            }
          }
          out[oi] = best;
          if (training) argmax_[oi] = plane_base + best_idx;
        }
      }
    }
  });
  return out;
}

const Tensor& MaxPool2D::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(!argmax_.empty(), "MaxPool2D::backward before forward(training=true)");
  FEDCAV_REQUIRE(grad_output.numel() == argmax_.size(),
                 "MaxPool2D::backward: grad_output size mismatch");
  Tensor& dx = ws_.zeroed(kDx, input_shape_);
  const std::size_t planes = input_shape_[0] * input_shape_[1];
  const std::size_t out_plane = argmax_.size() / planes;
  ops::parallel_chunks(planes, plane_fanout(planes, argmax_.size()),
                       [&](std::size_t p0, std::size_t p1, std::size_t) {
                         for (std::size_t i = p0 * out_plane, e = p1 * out_plane;
                              i < e; ++i) {
                           dx[argmax_[i]] += grad_output[i];
                         }
                       });
  return dx;
}

std::string MaxPool2D::name() const {
  return "MaxPool2D(w=" + std::to_string(window_) + ", s=" + std::to_string(stride_) + ")";
}

std::unique_ptr<Layer> MaxPool2D::clone() const {
  return std::make_unique<MaxPool2D>(window_, stride_);
}

AvgPool2D::AvgPool2D(std::size_t window, std::size_t stride)
    : window_(window), stride_(stride) {
  FEDCAV_REQUIRE(window > 0 && stride > 0, "AvgPool2D: zero window or stride");
}

const Tensor& AvgPool2D::forward(const Tensor& input, bool training) {
  (void)training;
  check_pool_input(input.shape(), window_, "AvgPool2D");
  input_shape_ = input.shape();
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;
  const float inv = 1.0f / static_cast<float>(window_ * window_);

  Tensor& out = ws_.get(kOut, Shape::of(batch, channels, oh, ow));
  const std::size_t planes = batch * channels;
  const std::size_t out_plane = oh * ow;
  const std::size_t fan =
      plane_fanout(planes, planes * out_plane * window_ * window_);
  ops::parallel_chunks(planes, fan, [&](std::size_t p0, std::size_t p1,
                                        std::size_t) {
    for (std::size_t p = p0; p < p1; ++p) {
      const float* plane = input.data() + p * h * w;
      std::size_t oi = p * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          float acc = 0.0f;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx = 0; dx < window_; ++dx) {
              acc += plane[(y * stride_ + dy) * w + (x * stride_ + dx)];
            }
          }
          out[oi] = acc * inv;
        }
      }
    }
  });
  return out;
}

const Tensor& AvgPool2D::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(input_shape_.rank() == 4, "AvgPool2D::backward before forward");
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t h = input_shape_[2];
  const std::size_t w = input_shape_[3];
  const std::size_t oh = (h - window_) / stride_ + 1;
  const std::size_t ow = (w - window_) / stride_ + 1;
  const float inv = 1.0f / static_cast<float>(window_ * window_);

  Tensor& dx = ws_.zeroed(kDx, input_shape_);
  const std::size_t planes = batch * channels;
  const std::size_t out_plane = oh * ow;
  const std::size_t fan =
      plane_fanout(planes, planes * out_plane * window_ * window_);
  ops::parallel_chunks(planes, fan, [&](std::size_t p0, std::size_t p1,
                                        std::size_t) {
    for (std::size_t p = p0; p < p1; ++p) {
      float* plane = dx.data() + p * h * w;
      std::size_t oi = p * out_plane;
      for (std::size_t y = 0; y < oh; ++y) {
        for (std::size_t x = 0; x < ow; ++x, ++oi) {
          const float g = grad_output[oi] * inv;
          for (std::size_t dy = 0; dy < window_; ++dy) {
            for (std::size_t dx2 = 0; dx2 < window_; ++dx2) {
              plane[(y * stride_ + dy) * w + (x * stride_ + dx2)] += g;
            }
          }
        }
      }
    }
  });
  return dx;
}

std::string AvgPool2D::name() const {
  return "AvgPool2D(w=" + std::to_string(window_) + ", s=" + std::to_string(stride_) + ")";
}

std::unique_ptr<Layer> AvgPool2D::clone() const {
  return std::make_unique<AvgPool2D>(window_, stride_);
}

const Tensor& GlobalAvgPool::forward(const Tensor& input, bool training) {
  (void)training;
  FEDCAV_REQUIRE(input.shape().rank() == 4, "GlobalAvgPool: rank-4 input required");
  input_shape_ = input.shape();
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t plane = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(plane);

  Tensor& out = ws_.get(kOut, Shape::of(batch, channels));
  const std::size_t planes = batch * channels;
  ops::parallel_chunks(planes, plane_fanout(planes, planes * plane),
                       [&](std::size_t p0, std::size_t p1, std::size_t) {
                         for (std::size_t p = p0; p < p1; ++p) {
                           const float* src = input.data() + p * plane;
                           double acc = 0.0;
                           for (std::size_t i = 0; i < plane; ++i) {
                             acc += static_cast<double>(src[i]);
                           }
                           out[p] = static_cast<float>(acc) * inv;
                         }
                       });
  return out;
}

const Tensor& GlobalAvgPool::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(input_shape_.rank() == 4, "GlobalAvgPool::backward before forward");
  const std::size_t batch = input_shape_[0];
  const std::size_t channels = input_shape_[1];
  const std::size_t plane = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(plane);

  Tensor& dx = ws_.get(kDx, input_shape_);
  const std::size_t planes = batch * channels;
  ops::parallel_chunks(planes, plane_fanout(planes, planes * plane),
                       [&](std::size_t p0, std::size_t p1, std::size_t) {
                         for (std::size_t p = p0; p < p1; ++p) {
                           const float g = grad_output[p] * inv;
                           float* dst = dx.data() + p * plane;
                           for (std::size_t i = 0; i < plane; ++i) dst[i] = g;
                         }
                       });
  return dx;
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>();
}

}  // namespace fedcav::nn
