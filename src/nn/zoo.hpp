// Model zoo: the three architectures used in the paper's evaluation,
// scaled to the synthetic dataset resolutions (see DESIGN.md §1):
//  * LeNet5Lite  — MNIST substitute  (1×14×14), mirrors LeNet-5.
//  * Cnn9Lite    — FMNIST substitute (1×14×14), mirrors the 9-layer CNN.
//  * ResNetLite  — CIFAR substitute  (3×16×16), mirrors ResNet-18 with
//                  three residual stages and a global-average-pool head.
// Plus an MLP for fast unit tests and the quickstart example.
#pragma once

#include <functional>
#include <memory>

#include "src/nn/model.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::nn {

inline constexpr std::size_t kNumClasses = 10;

/// Digits/fashion image geometry (single channel).
inline constexpr std::size_t kGrayChannels = 1;
inline constexpr std::size_t kGraySide = 14;
/// Colour image geometry.
inline constexpr std::size_t kColorChannels = 3;
inline constexpr std::size_t kColorSide = 16;

std::unique_ptr<Model> make_mlp(std::size_t input_dim, std::size_t hidden,
                                std::size_t classes, Rng& rng);
std::unique_ptr<Model> make_lenet5_lite(Rng& rng);
std::unique_ptr<Model> make_cnn9_lite(Rng& rng);
std::unique_ptr<Model> make_resnet_lite(Rng& rng);

/// Callable factory handed to the federated runtime; every invocation
/// builds a structurally identical model (fresh storage) so clients can
/// train concurrently without sharing buffers.
using ModelBuilder = std::function<std::unique_ptr<Model>(Rng&)>;

/// Look up a builder by name: "mlp", "lenet5", "cnn9", "resnet".
/// Throws fedcav::Error on unknown names.
ModelBuilder model_builder(const std::string& name);

}  // namespace fedcav::nn
