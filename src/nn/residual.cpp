#include "src/nn/residual.hpp"

#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

ResidualBlock::ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                             std::size_t stride, std::size_t in_h, std::size_t in_w,
                             Rng& rng) {
  conv1_ = std::make_unique<Conv2D>(in_channels, out_channels, /*kernel=*/3, stride,
                                    /*pad=*/1, in_h, in_w, rng);
  conv2_ = std::make_unique<Conv2D>(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
                                    /*pad=*/1, conv1_->out_h(), conv1_->out_w(), rng);
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Conv2D>(in_channels, out_channels, /*kernel=*/1, stride,
                                           /*pad=*/0, in_h, in_w, rng);
  }
}

Tensor ResidualBlock::forward(const Tensor& input, bool training) {
  Tensor h = conv1_->forward(input, training);
  // In-block ReLU with a cached mask (same trick as the ReLU layer).
  if (training) relu1_mask_ = Tensor(h.shape());
  {
    float* p = h.data();
    float* m = training ? relu1_mask_.data() : nullptr;
    for (std::size_t i = 0, n = h.numel(); i < n; ++i) {
      const bool pos = p[i] > 0.0f;
      if (!pos) p[i] = 0.0f;
      if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
    }
  }
  Tensor f = conv2_->forward(h, training);
  Tensor skip = projection_ ? projection_->forward(input, training) : input;
  ops::add_inplace(f, skip);
  if (training) relu_out_mask_ = Tensor(f.shape());
  {
    float* p = f.data();
    float* m = training ? relu_out_mask_.data() : nullptr;
    for (std::size_t i = 0, n = f.numel(); i < n; ++i) {
      const bool pos = p[i] > 0.0f;
      if (!pos) p[i] = 0.0f;
      if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
    }
  }
  return f;
}

Tensor ResidualBlock::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(relu_out_mask_.same_shape(grad_output),
                 "ResidualBlock::backward: shape mismatch");
  Tensor g = grad_output;
  {
    float* p = g.data();
    const float* m = relu_out_mask_.data();
    for (std::size_t i = 0, n = g.numel(); i < n; ++i) p[i] *= m[i];
  }
  // g flows to both the conv branch and the skip branch.
  Tensor gh = conv2_->backward(g);
  {
    float* p = gh.data();
    const float* m = relu1_mask_.data();
    for (std::size_t i = 0, n = gh.numel(); i < n; ++i) p[i] *= m[i];
  }
  Tensor dx = conv1_->backward(gh);
  if (projection_) {
    Tensor dskip = projection_->backward(g);
    ops::add_inplace(dx, dskip);
  } else {
    ops::add_inplace(dx, g);
  }
  return dx;
}

std::vector<ParamView> ResidualBlock::params() {
  std::vector<ParamView> out = conv1_->params();
  for (ParamView p : conv2_->params()) out.push_back(p);
  if (projection_) {
    for (ParamView p : projection_->params()) out.push_back(p);
  }
  return out;
}

std::string ResidualBlock::name() const {
  return "ResidualBlock(" + conv1_->name() + " + " + conv2_->name() +
         (projection_ ? ", projected skip)" : ", identity skip)");
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  auto copy = std::unique_ptr<ResidualBlock>(new ResidualBlock());
  copy->conv1_ = std::unique_ptr<Conv2D>(static_cast<Conv2D*>(conv1_->clone().release()));
  copy->conv2_ = std::unique_ptr<Conv2D>(static_cast<Conv2D*>(conv2_->clone().release()));
  if (projection_) {
    copy->projection_ =
        std::unique_ptr<Conv2D>(static_cast<Conv2D*>(projection_->clone().release()));
  }
  return copy;
}

}  // namespace fedcav::nn
