#include "src/nn/residual.hpp"

#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

ResidualBlock::ResidualBlock(std::size_t in_channels, std::size_t out_channels,
                             std::size_t stride, std::size_t in_h, std::size_t in_w,
                             Rng& rng) {
  conv1_ = std::make_unique<Conv2D>(in_channels, out_channels, /*kernel=*/3, stride,
                                    /*pad=*/1, in_h, in_w, rng);
  conv2_ = std::make_unique<Conv2D>(out_channels, out_channels, /*kernel=*/3, /*stride=*/1,
                                    /*pad=*/1, conv1_->out_h(), conv1_->out_w(), rng);
  if (stride != 1 || in_channels != out_channels) {
    projection_ = std::make_unique<Conv2D>(in_channels, out_channels, /*kernel=*/1, stride,
                                           /*pad=*/0, in_h, in_w, rng);
  }
}

const Tensor& ResidualBlock::forward(const Tensor& input, bool training) {
  const Tensor& h = conv1_->forward(input, training);
  // In-block ReLU with a cached mask (same trick as the ReLU layer); the
  // conv output stays untouched in conv1_'s workspace, the activated copy
  // lives in ours.
  Tensor& a1 = ws_.get(kAct1, h.shape());
  if (training) relu1_mask_.resize_uninitialized(h.shape());
  {
    const float* p = h.data();
    float* q = a1.data();
    float* m = training ? relu1_mask_.data() : nullptr;
    for (std::size_t i = 0, n = a1.numel(); i < n; ++i) {
      const bool pos = p[i] > 0.0f;
      q[i] = pos ? p[i] : 0.0f;
      if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
    }
  }
  const Tensor& f = conv2_->forward(a1, training);
  const Tensor& skip = projection_ ? projection_->forward(input, training) : input;
  FEDCAV_REQUIRE(f.same_shape(skip), "ResidualBlock: branch/skip shape mismatch");
  // Fused add + ReLU + mask in one traversal.
  Tensor& out = ws_.get(kOut, f.shape());
  if (training) relu_out_mask_.resize_uninitialized(f.shape());
  {
    const float* pf = f.data();
    const float* ps = skip.data();
    float* q = out.data();
    float* m = training ? relu_out_mask_.data() : nullptr;
    for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
      const float v = pf[i] + ps[i];
      const bool pos = v > 0.0f;
      q[i] = pos ? v : 0.0f;
      if (m != nullptr) m[i] = pos ? 1.0f : 0.0f;
    }
  }
  return out;
}

const Tensor& ResidualBlock::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(relu_out_mask_.same_shape(grad_output),
                 "ResidualBlock::backward: shape mismatch");
  Tensor& g = ws_.get(kG, grad_output.shape());
  {
    const float* p = grad_output.data();
    const float* m = relu_out_mask_.data();
    float* q = g.data();
    for (std::size_t i = 0, n = g.numel(); i < n; ++i) q[i] = p[i] * m[i];
  }
  // g flows to both the conv branch and the skip branch.
  const Tensor& gh_conv = conv2_->backward(g);
  Tensor& gh = ws_.get(kGh, gh_conv.shape());
  {
    const float* p = gh_conv.data();
    const float* m = relu1_mask_.data();
    float* q = gh.data();
    for (std::size_t i = 0, n = gh.numel(); i < n; ++i) q[i] = p[i] * m[i];
  }
  const Tensor& dx1 = conv1_->backward(gh);
  const Tensor& dskip = projection_ ? projection_->backward(g) : g;
  FEDCAV_REQUIRE(dx1.same_shape(dskip), "ResidualBlock::backward: skip grad mismatch");
  Tensor& dx = ws_.get(kDx, dx1.shape());
  {
    const float* a = dx1.data();
    const float* b = dskip.data();
    float* q = dx.data();
    for (std::size_t i = 0, n = dx.numel(); i < n; ++i) q[i] = a[i] + b[i];
  }
  return dx;
}

std::vector<ParamView> ResidualBlock::params() {
  std::vector<ParamView> out = conv1_->params();
  for (ParamView p : conv2_->params()) out.push_back(p);
  if (projection_) {
    for (ParamView p : projection_->params()) out.push_back(p);
  }
  return out;
}

std::string ResidualBlock::name() const {
  return "ResidualBlock(" + conv1_->name() + " + " + conv2_->name() +
         (projection_ ? ", projected skip)" : ", identity skip)");
}

std::unique_ptr<Layer> ResidualBlock::clone() const {
  auto copy = std::unique_ptr<ResidualBlock>(new ResidualBlock());
  copy->conv1_ = std::unique_ptr<Conv2D>(static_cast<Conv2D*>(conv1_->clone().release()));
  copy->conv2_ = std::unique_ptr<Conv2D>(static_cast<Conv2D*>(conv2_->clone().release()));
  if (projection_) {
    copy->projection_ =
        std::unique_ptr<Conv2D>(static_cast<Conv2D*>(projection_->clone().release()));
  }
  return copy;
}

}  // namespace fedcav::nn
