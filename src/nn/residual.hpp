// Residual block: y = ReLU(F(x) + P(x)) where F is conv-ReLU-conv and P
// is identity or a 1×1 projection when channel count / spatial size
// change. This is the building unit of ResNetLite (the CIFAR-10 model
// substitute for the paper's ResNet-18).
#pragma once

#include "src/nn/conv2d.hpp"
#include "src/nn/layer.hpp"

namespace fedcav::nn {

class ResidualBlock : public Layer {
 public:
  /// `stride` applies to the first conv; when stride > 1 or channels
  /// change, a 1×1 projection conv is inserted on the skip path.
  ResidualBlock(std::size_t in_channels, std::size_t out_channels, std::size_t stride,
                std::size_t in_h, std::size_t in_w, Rng& rng);

  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::vector<ParamView> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  std::size_t out_h() const { return conv2_->out_h(); }
  std::size_t out_w() const { return conv2_->out_w(); }
  std::size_t out_channels() const { return conv2_->out_channels(); }

 private:
  ResidualBlock() = default;

  enum Slot : std::size_t { kAct1 = 0, kOut, kG, kGh, kDx };

  std::unique_ptr<Conv2D> conv1_;
  std::unique_ptr<Conv2D> conv2_;
  std::unique_ptr<Conv2D> projection_;  // nullptr when identity skip works
  Tensor relu1_mask_;
  Tensor relu_out_mask_;
  Workspace ws_;
};

}  // namespace fedcav::nn
