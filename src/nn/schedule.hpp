// Learning-rate schedules over communication rounds.
//
// The paper holds η fixed; schedules are provided as an extension for
// the long-horizon runs where fixed-η FL plateaus (the ablation bench
// compares them on the σ=900 workload).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace fedcav::nn {

class LrSchedule {
 public:
  virtual ~LrSchedule() = default;

  /// Learning rate for 1-based round `round`.
  virtual float lr(std::size_t round) const = 0;

  virtual std::string name() const = 0;
};

/// lr(t) = base.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float base);
  float lr(std::size_t round) const override;
  std::string name() const override { return "constant"; }

 private:
  float base_;
};

/// lr(t) = base · gamma^⌊t / step⌋.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base, std::size_t step, float gamma);
  float lr(std::size_t round) const override;
  std::string name() const override { return "step"; }

 private:
  float base_;
  std::size_t step_;
  float gamma_;
};

/// Cosine annealing from base to floor over `horizon` rounds, flat after.
class CosineLr : public LrSchedule {
 public:
  CosineLr(float base, float floor, std::size_t horizon);
  float lr(std::size_t round) const override;
  std::string name() const override { return "cosine"; }

 private:
  float base_;
  float floor_;
  std::size_t horizon_;
};

/// "constant" | "step" | "cosine" with sane defaults scaled to `rounds`.
std::unique_ptr<LrSchedule> make_schedule(const std::string& name, float base,
                                          std::size_t rounds);

}  // namespace fedcav::nn
