#include "src/nn/replica_pool.hpp"

#include "src/obs/metrics.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

ReplicaPool::ReplicaPool(const Model& prototype, std::size_t max_replicas)
    : prototype_(prototype), max_replicas_(max_replicas) {
  FEDCAV_REQUIRE(max_replicas_ > 0, "ReplicaPool: max_replicas must be > 0");
}

ReplicaPool::Lease ReplicaPool::acquire() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (!idle_.empty()) {
      std::unique_ptr<Model> model = std::move(idle_.back());
      idle_.pop_back();
      ++in_use_;
      if (obs::enabled()) {
        static obs::Gauge& occupancy = obs::registry().gauge("pool.occupancy");
        occupancy.set(static_cast<double>(in_use_));
      }
      return Lease(this, std::move(model));
    }
    if (created_ < max_replicas_) {
      ++created_;
      ++in_use_;
      const std::size_t in_use_now = in_use_;
      // Clone outside the lock: a deep model copy is the expensive part
      // and other threads may want idle replicas meanwhile.
      lock.unlock();
      if (obs::enabled()) {
        static obs::Gauge& occupancy = obs::registry().gauge("pool.occupancy");
        occupancy.set(static_cast<double>(in_use_now));
        static obs::Counter& clones = obs::registry().counter("pool.replica_clones");
        clones.add(1);
      }
      return Lease(this, prototype_.clone());
    }
    available_.wait(lock);
  }
}

std::size_t ReplicaPool::created() const {
  std::lock_guard<std::mutex> lock(mu_);
  return created_;
}

std::size_t ReplicaPool::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

void ReplicaPool::put_back(std::unique_ptr<Model> model) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(std::move(model));
    --in_use_;
  }
  available_.notify_one();
}

void ReplicaPool::Lease::release() {
  if (pool_ != nullptr && model_ != nullptr) {
    pool_->put_back(std::move(model_));
  }
  pool_ = nullptr;
  model_.reset();
}

}  // namespace fedcav::nn
