#include "src/nn/activation.hpp"

#include <cmath>

#include "src/tensor/parallel.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

namespace {
// Fan-out width for the elementwise tails. Each chunk owns a disjoint
// output range (DESIGN.md §13), so any width is bit-identical; below
// the threshold the fork/join costs more than the loop.
constexpr std::size_t kElementwiseMinN = std::size_t{1} << 15;
std::size_t elementwise_fanout(std::size_t n) {
  const std::size_t ways = ops::kernel_ways();
  if (ways <= 1 || n < kElementwiseMinN) return 1;
  return ways;
}
}  // namespace

const Tensor& ReLU::forward(const Tensor& input, bool training) {
  Tensor& out = ws_.get(kOut, input.shape());
  if (training) mask_.resize_uninitialized(input.shape());
  // restrict: input, output and mask are distinct buffers — the promise
  // lets the compare/select loops vectorize.
  const float* __restrict__ pi = input.data();
  float* __restrict__ po = out.data();
  const std::size_t n = out.numel();
  const std::size_t fan = elementwise_fanout(n);
  if (training) {
    float* __restrict__ pm = mask_.data();
    ops::parallel_chunks(n, fan, [&](std::size_t i0, std::size_t i1, std::size_t) {
      for (std::size_t i = i0; i < i1; ++i) {
        const bool positive = pi[i] > 0.0f;
        po[i] = positive ? pi[i] : 0.0f;
        pm[i] = positive ? 1.0f : 0.0f;
      }
    });
  } else {
    ops::parallel_chunks(n, fan, [&](std::size_t i0, std::size_t i1, std::size_t) {
      for (std::size_t i = i0; i < i1; ++i) po[i] = pi[i] > 0.0f ? pi[i] : 0.0f;
    });
  }
  return out;
}

const Tensor& ReLU::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(mask_.same_shape(grad_output), "ReLU::backward: shape mismatch");
  Tensor& dx = ws_.get(kDx, grad_output.shape());
  const float* __restrict__ pg = grad_output.data();
  float* __restrict__ pd = dx.data();
  const float* __restrict__ pm = mask_.data();
  const std::size_t n = dx.numel();
  ops::parallel_chunks(n, elementwise_fanout(n),
                       [&](std::size_t i0, std::size_t i1, std::size_t) {
                         for (std::size_t i = i0; i < i1; ++i) pd[i] = pg[i] * pm[i];
                       });
  return dx;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

const Tensor& LeakyReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor& out = ws_.get(kOut, input.shape());
  const float* pi = input.data();
  float* po = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    po[i] = pi[i] < 0.0f ? pi[i] * slope_ : pi[i];
  }
  return out;
}

const Tensor& LeakyReLU::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_input_.same_shape(grad_output), "LeakyReLU::backward: shape mismatch");
  Tensor& dx = ws_.get(kDx, grad_output.shape());
  const float* pg = grad_output.data();
  float* pd = dx.data();
  const float* pi = cached_input_.data();
  for (std::size_t i = 0, n = dx.numel(); i < n; ++i) {
    pd[i] = pi[i] < 0.0f ? pg[i] * slope_ : pg[i];
  }
  return dx;
}

std::unique_ptr<Layer> LeakyReLU::clone() const {
  return std::make_unique<LeakyReLU>(slope_);
}

const Tensor& Tanh::forward(const Tensor& input, bool training) {
  Tensor& out = ws_.get(kOut, input.shape());
  const float* pi = input.data();
  float* po = out.data();
  const std::size_t n = out.numel();
  ops::parallel_chunks(n, elementwise_fanout(n),
                       [&](std::size_t i0, std::size_t i1, std::size_t) {
                         for (std::size_t i = i0; i < i1; ++i) po[i] = std::tanh(pi[i]);
                       });
  if (training) cached_output_ = out;
  return out;
}

const Tensor& Tanh::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_output_.same_shape(grad_output), "Tanh::backward: shape mismatch");
  Tensor& dx = ws_.get(kDx, grad_output.shape());
  const float* pg = grad_output.data();
  float* pd = dx.data();
  const float* py = cached_output_.data();
  const std::size_t n = dx.numel();
  ops::parallel_chunks(n, elementwise_fanout(n),
                       [&](std::size_t i0, std::size_t i1, std::size_t) {
                         for (std::size_t i = i0; i < i1; ++i) {
                           pd[i] = pg[i] * (1.0f - py[i] * py[i]);
                         }
                       });
  return dx;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace fedcav::nn
