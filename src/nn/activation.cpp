#include "src/nn/activation.hpp"

#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::nn {

Tensor ReLU::forward(const Tensor& input, bool training) {
  Tensor out = input;
  if (training) mask_ = Tensor(input.shape());
  float* po = out.data();
  float* pm = training ? mask_.data() : nullptr;
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    const bool positive = po[i] > 0.0f;
    if (!positive) po[i] = 0.0f;
    if (pm != nullptr) pm[i] = positive ? 1.0f : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(mask_.same_shape(grad_output), "ReLU::backward: shape mismatch");
  Tensor dx = grad_output;
  float* pd = dx.data();
  const float* pm = mask_.data();
  for (std::size_t i = 0, n = dx.numel(); i < n; ++i) pd[i] *= pm[i];
  return dx;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Tensor LeakyReLU::forward(const Tensor& input, bool training) {
  if (training) cached_input_ = input;
  Tensor out = input;
  float* po = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    if (po[i] < 0.0f) po[i] *= slope_;
  }
  return out;
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_input_.same_shape(grad_output), "LeakyReLU::backward: shape mismatch");
  Tensor dx = grad_output;
  float* pd = dx.data();
  const float* pi = cached_input_.data();
  for (std::size_t i = 0, n = dx.numel(); i < n; ++i) {
    if (pi[i] < 0.0f) pd[i] *= slope_;
  }
  return dx;
}

std::unique_ptr<Layer> LeakyReLU::clone() const {
  return std::make_unique<LeakyReLU>(slope_);
}

Tensor Tanh::forward(const Tensor& input, bool training) {
  Tensor out = input;
  float* po = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) po[i] = std::tanh(po[i]);
  if (training) cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_output_.same_shape(grad_output), "Tanh::backward: shape mismatch");
  Tensor dx = grad_output;
  float* pd = dx.data();
  const float* py = cached_output_.data();
  for (std::size_t i = 0, n = dx.numel(); i < n; ++i) pd[i] *= 1.0f - py[i] * py[i];
  return dx;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace fedcav::nn
