#include "src/nn/flatten.hpp"

#include <cstring>

#include "src/utils/error.hpp"

namespace fedcav::nn {

const Tensor& Flatten::forward(const Tensor& input, bool training) {
  (void)training;
  const Shape& s = input.shape();
  FEDCAV_REQUIRE(s.rank() >= 2, "Flatten: rank >= 2 input required");
  input_shape_ = s;
  const std::size_t batch = s[0];
  Tensor& out = ws_.get(kOut, Shape::of(batch, input.numel() / batch));
  std::memcpy(out.data(), input.data(), input.numel() * sizeof(float));
  return out;
}

const Tensor& Flatten::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(input_shape_.rank() >= 2, "Flatten::backward before forward");
  Tensor& dx = ws_.get(kDx, input_shape_);
  std::memcpy(dx.data(), grad_output.data(), grad_output.numel() * sizeof(float));
  return dx;
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

}  // namespace fedcav::nn
