#include "src/nn/flatten.hpp"

#include "src/utils/error.hpp"

namespace fedcav::nn {

Tensor Flatten::forward(const Tensor& input, bool training) {
  (void)training;
  const Shape& s = input.shape();
  FEDCAV_REQUIRE(s.rank() >= 2, "Flatten: rank >= 2 input required");
  input_shape_ = s;
  const std::size_t batch = s[0];
  return input.reshaped(Shape::of(batch, input.numel() / batch));
}

Tensor Flatten::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(input_shape_.rank() >= 2, "Flatten::backward before forward");
  return grad_output.reshaped(input_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const { return std::make_unique<Flatten>(); }

}  // namespace fedcav::nn
