#include "src/nn/layer.hpp"

namespace fedcav::nn {

void Layer::zero_grad() {
  for (ParamView p : params()) {
    if (p.grad != nullptr) p.grad->fill(0.0f);
  }
}

}  // namespace fedcav::nn
