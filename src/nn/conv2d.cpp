#include "src/nn/conv2d.hpp"

#include <cstring>

#include "src/nn/init.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

namespace {

// Layout crossover. A plane narrower than this cannot keep the GEMM's
// kGemmNr-wide register tile busy per image (a 3×3 plane fills 9 of 16
// lanes), so such layers fuse the batch into one wide matrix. At or
// above it the per-image panel is already tile-efficient, and the fused
// layout's strided columns + re-interleave passes only add cache
// traffic, so each image keeps a contiguous block.
constexpr std::size_t kFusedPlaneMax = 2 * ops::kGemmNr;

// A small stride-1 convolution (kernel support C_in·K² ≤ kDirectMaxCr)
// is overhead-bound under im2col+GEMM: the expansion duplicates the
// image K²-fold only to be copied through tiny per-row segments, and
// the GEMM then spends more on packing and edge tiles than on math. The
// direct path pads the image once (no interval logic, no branches) and
// runs fixed-length row FMAs straight off the padded planes.
constexpr std::size_t kDirectMaxCr = 2 * ops::kGemmNr;
// One output row must fit the 16-lane vector accumulator below.
constexpr std::size_t kDirectMaxW = 16;
// The row loads read a full 16-lane vector from arbitrary kw offsets, so
// padded buffers carry this much zeroed slack past the last plane.
constexpr std::size_t kDirectSlack = kDirectMaxW;

#if defined(__GNUC__) || defined(__clang__)
#define FEDCAV_CONV_VECTOR_DIRECT 1
// Same trick as the GEMM micro-kernel: a 64-byte GNU vector keeps the
// whole output row in registers across the kernel walk, so each (kh,kw)
// tap is one unaligned load + one FMA. GCC lowers it to 2×AVX2 or
// 1×AVX-512 per op.
using VecW = float __attribute__((vector_size(kDirectMaxW * sizeof(float))));

inline VecW load_vecw(const float* p) {
  VecW v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load
  return v;
}

inline void store_row(const VecW& acc, float* __restrict__ d, std::size_t ow) {
  float buf[kDirectMaxW];
  __builtin_memcpy(buf, &acc, sizeof(acc));
  for (std::size_t x = 0; x < ow; ++x) d[x] = buf[x];
}
#endif

// Copy `planes` (h × w) planes into a zeroed (h+2p × w+2p) buffer each,
// including kDirectSlack zeroed floats of tail slack (the vector loads
// overrun rows by up to kDirectMaxW-1 lanes; those lanes are discarded
// at the store, but must read mapped, finite memory). Open-coded row
// copies: rows are a handful of floats here.
void pad_planes(const float* src, std::size_t planes, std::size_t h,
                std::size_t w, std::size_t pad, float* dst) {
  const std::size_t pw = w + 2 * pad;
  const std::size_t ph = h + 2 * pad;
  std::memset(dst, 0, (planes * ph * pw + kDirectSlack) * sizeof(float));
  for (std::size_t pl = 0; pl < planes; ++pl) {
    for (std::size_t y = 0; y < h; ++y) {
      const float* __restrict__ s = src + (pl * h + y) * w;
      float* __restrict__ d = dst + pl * ph * pw + (y + pad) * pw + pad;
      for (std::size_t x = 0; x < w; ++x) d[x] = s[x];
    }
  }
}

// out[c][y][x] = bias[c] + Σ_{ci,kh,kw} W(c, ci·K²+kh·K+kw) ·
// pin[ci][y+kh][x+kw]. The weight walk matches the im2col row order, so
// the contraction order is the GEMM's.
void conv_fwd_padded(const float* pin, std::size_t pplane, std::size_t pw,
                     const float* w, const float* bias, std::size_t oc,
                     std::size_t cin, std::size_t k, std::size_t oh,
                     std::size_t ow, float* out) {
  for (std::size_t c = 0; c < oc; ++c) {
    const float* wc = w + c * cin * k * k;
    const float bc = bias[c];
    for (std::size_t y = 0; y < oh; ++y) {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
      VecW acc;
      for (std::size_t l = 0; l < kDirectMaxW; ++l) acc[l] = bc;
      const float* wk = wc;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* pch = pin + ci * pplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pw;
          for (std::size_t kw = 0; kw < k; ++kw) {
            acc += *wk++ * load_vecw(prow + kw);
          }
        }
      }
      store_row(acc, out + (c * oh + y) * ow, ow);
#else
      float acc[kDirectMaxW];
      for (std::size_t x = 0; x < ow; ++x) acc[x] = bc;
      const float* wk = wc;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* pch = pin + ci * pplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pw;
          for (std::size_t kw = 0; kw < k; ++kw) {
            const float wv = *wk++;
            const float* __restrict__ pr = prow + kw;
            for (std::size_t x = 0; x < ow; ++x) acc[x] += wv * pr[x];
          }
        }
      }
      float* __restrict__ d = out + (c * oh + y) * ow;
      for (std::size_t x = 0; x < ow; ++x) d[x] = acc[x];
#endif
    }
  }
}

// dW(c, ci·K²+kh·K+kw) += Σ_{y,x} g[c][y][x] · pin[ci][y+kh][x+kw],
// computed as one vector accumulator per weight tap swept down the rows,
// with a single lane sum at the end. Reads the TRANSPOSE-padded gradient
// so the lanes past out_w land on padding zeros and contribute nothing;
// the caller guarantees kDirectMaxW - ow ≤ 2·tpad (or ow == kDirectMaxW)
// so that zero run is long enough.
void conv_dw_padded(const float* pin, std::size_t pplane, std::size_t pw,
                    const float* pg, std::size_t pgplane, std::size_t pgw,
                    std::size_t tpad, std::size_t oc, std::size_t cin,
                    std::size_t k, std::size_t oh, std::size_t ow, float* dw) {
  for (std::size_t c = 0; c < oc; ++c) {
    const float* gplane = pg + c * pgplane;
    for (std::size_t ci = 0; ci < cin; ++ci) {
      const float* pch = pin + ci * pplane;
      float* dwtap = dw + (c * cin + ci) * k * k;
      for (std::size_t kh = 0; kh < k; ++kh) {
        for (std::size_t kw = 0; kw < k; ++kw) {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
          VecW acc{};
          for (std::size_t y = 0; y < oh; ++y) {
            const float* grow = gplane + (y + tpad) * pgw + tpad;
            const float* prow = pch + (y + kh) * pw + kw;
            acc += load_vecw(grow) * load_vecw(prow);
          }
          float buf[kDirectMaxW];
          __builtin_memcpy(buf, &acc, sizeof(acc));
          float s = 0.0f;
          for (std::size_t l = 0; l < kDirectMaxW; ++l) s += buf[l];
#else
          float s = 0.0f;
          for (std::size_t y = 0; y < oh; ++y) {
            const float* __restrict__ grow = gplane + (y + tpad) * pgw + tpad;
            const float* __restrict__ prow = pch + (y + kh) * pw + kw;
            for (std::size_t x = 0; x < ow; ++x) s += grow[x] * prow[x];
          }
#endif
          dwtap[kh * k + kw] += s;
        }
      }
    }
  }
}

// The transpose: dx[ci][y][x] = Σ_{c,kh,kw} W(c, ci·K²+kh·K+kw) ·
// g[c][y-kh+p][x-kw+p], evaluated branch-free against the gradient
// padded by K-1-p (the transpose-convolution padding identity).
void conv_bwd_dx_padded(const float* pg, std::size_t pgplane, std::size_t pgw,
                        const float* w, std::size_t oc, std::size_t cin,
                        std::size_t k, std::size_t h, std::size_t wid,
                        float* dx) {
  for (std::size_t ci = 0; ci < cin; ++ci) {
    for (std::size_t y = 0; y < h; ++y) {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
      VecW acc{};
      for (std::size_t c = 0; c < oc; ++c) {
        const float* wbase = w + c * cin * k * k + ci * k * k;
        const float* pch = pg + c * pgplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pgw;
          const float* wrow = wbase + (k - 1 - kh) * k;
          for (std::size_t kw = 0; kw < k; ++kw) {
            acc += wrow[k - 1 - kw] * load_vecw(prow + kw);
          }
        }
      }
      store_row(acc, dx + (ci * h + y) * wid, wid);
#else
      float acc[kDirectMaxW];
      for (std::size_t x = 0; x < wid; ++x) acc[x] = 0.0f;
      for (std::size_t c = 0; c < oc; ++c) {
        const float* wbase = w + c * cin * k * k + ci * k * k;
        const float* pch = pg + c * pgplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pgw;
          const float* wrow = wbase + (k - 1 - kh) * k;
          for (std::size_t kw = 0; kw < k; ++kw) {
            const float wv = wrow[k - 1 - kw];
            const float* __restrict__ pr = prow + kw;
            for (std::size_t x = 0; x < wid; ++x) acc[x] += wv * pr[x];
          }
        }
      }
      float* __restrict__ d = dx + (ci * h + y) * wid;
      for (std::size_t x = 0; x < wid; ++x) d[x] = acc[x];
#endif
    }
  }
}

// dW += g_b · cols_bᵀ for a tiny (C_out × col_rows) output, where the
// packed GEMM is all packing and edge writeback. Each entry is a length-
// plane dot; 16 independent partial sums keep it vectorized without
// reassociating a single serial reduction (which -O3 alone may not).
void conv_dw_direct(const float* g, const float* cols, std::size_t oc,
                    std::size_t cr, std::size_t plane, float* dw) {
  constexpr std::size_t kLanes = 16;
  for (std::size_t c = 0; c < oc; ++c) {
    const float* __restrict__ gc = g + c * plane;
    for (std::size_t r = 0; r < cr; ++r) {
      const float* __restrict__ cri = cols + r * plane;
      float lanes[kLanes] = {0.0f};
      std::size_t i = 0;
      for (; i + kLanes <= plane; i += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          lanes[l] += gc[i + l] * cri[i + l];
        }
      }
      float s = 0.0f;
      for (; i < plane; ++i) s += gc[i] * cri[i];
      for (std::size_t l = 0; l < kLanes; ++l) s += lanes[l];
      dw[c * cr + r] += s;
    }
  }
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
               Rng& rng)
    : geometry_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      weight_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_(Shape::of(out_channels)),
      weight_grad_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_grad_(Shape::of(out_channels)) {
  geometry_.validate();
  FEDCAV_REQUIRE(out_channels > 0, "Conv2D: zero output channels");
  he_normal(weight_, geometry_.col_rows(), rng);
}

bool Conv2D::use_direct() const {
  // in_w bounds the TRANSPOSE convolution's row store (dx rows), out_w
  // the forward's; both must fit the vector accumulator.
  return geometry_.stride == 1 && geometry_.kernel_h == geometry_.kernel_w &&
         geometry_.pad < geometry_.kernel_h &&
         geometry_.col_rows() <= kDirectMaxCr &&
         geometry_.out_w() <= kDirectMaxW && geometry_.in_w <= kDirectMaxW;
}

const Tensor& Conv2D::forward(const Tensor& input, bool training) {
  const auto& s = input.shape();
  FEDCAV_REQUIRE(s.rank() == 4 && s[1] == geometry_.in_channels &&
                     s[2] == geometry_.in_h && s[3] == geometry_.in_w,
                 "Conv2D::forward: input shape mismatch, got " + s.to_string());
  const std::size_t batch = s[0];
  if (training) {
    in_shape_ = s;
    has_cols_ = true;
  }
  ops::pack_a_into(ops::Trans::kNo, out_channels_, geometry_.col_rows(),
                   weight_.data(), geometry_.col_rows(), packed_w_);
  return geometry_.col_cols() < kFusedPlaneMax
             ? forward_fused(input, batch)
             : forward_per_image(input, batch, training);
}

// Narrow planes: one column matrix for the whole batch, image b owning
// columns [b·plane, (b+1)·plane). Rows stride by n, so W·cols is ONE
// GEMM; a re-interleave pass folds the bias while scattering
// (C_out × batch·plane) back to (batch × C_out × plane).
const Tensor& Conv2D::forward_fused(const Tensor& input, std::size_t batch) {
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t plane = oh * ow;
  const std::size_t n = batch * plane;
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;

  Tensor& cols = ws_.get(kCols, Shape::of(geometry_.col_rows(), n));
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(geometry_, input.data() + b * image_size, cols.data() + b * plane, n);
  }

  Tensor& gemm_out = ws_.get(kGemmOut, Shape::of(out_channels_, n));
  ops::gemm_prepacked(packed_w_, ops::Trans::kNo, n, cols.data(), n,
                      /*beta=*/0.0f, gemm_out.data(), n);

  Tensor& out = ws_.get(kOut, Shape::of(batch, out_channels_, oh, ow));
  for (std::size_t b = 0; b < batch; ++b) {
    float* dst_img = out.data() + b * out_channels_ * plane;
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float bc = bias_(c);
      const float* src = gemm_out.data() + c * n + b * plane;
      float* d = dst_img + c * plane;
      for (std::size_t i = 0; i < plane; ++i) d[i] = src[i] + bc;
    }
  }
  return out;
}

// Wide planes: one (col_rows × plane) column scratch, reused image by
// image so it stays L1-resident instead of streaming a batch-wide
// expansion through L2; each image's GEMM writes straight into the
// output tensor (ldc = plane) — no wide intermediate, no re-interleave.
// The bias is added per image while its output block is still cache-hot.
// Training caches the INPUT (k² smaller than its expansion) and backward
// re-lowers each image, which the interval-based im2col makes cheaper
// than re-reading a cold column matrix.
const Tensor& Conv2D::forward_per_image(const Tensor& input, std::size_t batch,
                                        bool training) {
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t plane = oh * ow;
  const std::size_t cr = geometry_.col_rows();
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;

  if (training) cached_in_ = input;  // capacity-reusing copy
  Tensor& out = ws_.get(kOut, Shape::of(batch, out_channels_, oh, ow));
  if (use_direct()) {
    const std::size_t k = geometry_.kernel_h;
    const std::size_t pad = geometry_.pad;
    const std::size_t pw = geometry_.in_w + 2 * pad;
    const std::size_t pplane = (geometry_.in_h + 2 * pad) * pw;
    Tensor& pin =
        ws_.get(kPadIn, Shape::of(geometry_.in_channels * pplane + kDirectSlack));
    for (std::size_t b = 0; b < batch; ++b) {
      // Copied even for pad == 0: the vector row loads overrun into the
      // buffer's zeroed slack, which the raw input tensor doesn't have.
      pad_planes(input.data() + b * image_size, geometry_.in_channels,
                 geometry_.in_h, geometry_.in_w, pad, pin.data());
      conv_fwd_padded(pin.data(), pplane, pw, weight_.data(), bias_.data(),
                      out_channels_, geometry_.in_channels, k, oh, ow,
                      out.data() + b * out_channels_ * plane);
    }
    return out;
  }
  Tensor& cols = ws_.get(kCols, Shape::of(cr, plane));
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(geometry_, input.data() + b * image_size, cols.data(), plane);
    float* ob = out.data() + b * out_channels_ * plane;
    ops::gemm_prepacked(packed_w_, ops::Trans::kNo, plane, cols.data(), plane,
                        /*beta=*/0.0f, ob, plane);
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float bc = bias_(c);
      float* d = ob + c * plane;
      for (std::size_t i = 0; i < plane; ++i) d[i] += bc;
    }
  }
  return out;
}

const Tensor& Conv2D::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(has_cols_, "Conv2D::backward before forward(training=true)");
  const std::size_t batch = in_shape_[0];
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  FEDCAV_REQUIRE(grad_output.shape().rank() == 4 && grad_output.shape()[0] == batch &&
                     grad_output.shape()[1] == out_channels_ &&
                     grad_output.shape()[2] == oh && grad_output.shape()[3] == ow,
                 "Conv2D::backward: grad_output shape mismatch");
  ops::pack_a_into(ops::Trans::kYes, geometry_.col_rows(), out_channels_,
                   weight_.data(), geometry_.col_rows(), packed_wt_);
  return geometry_.col_cols() < kFusedPlaneMax
             ? backward_fused(grad_output, batch)
             : backward_per_image(grad_output, batch);
}

const Tensor& Conv2D::backward_fused(const Tensor& grad_output, std::size_t batch) {
  const std::size_t plane = geometry_.col_cols();
  const std::size_t n = batch * plane;
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  const Tensor& cols = ws_.at(kCols);  // the training forward's expansion
  FEDCAV_REQUIRE(cols.shape() == Shape::of(geometry_.col_rows(), n),
                 "Conv2D::backward: stale column matrix (intervening forward?)");

  // View the batch's output gradient as one (C_out × batch·plane) matrix
  // matching the column layout — a strided re-interleave, not a per-image
  // heap copy — and fold the bias row-sums into the same pass.
  Tensor& g = ws_.get(kGmat, Shape::of(out_channels_, n));
  for (std::size_t c = 0; c < out_channels_; ++c) {
    float* grow = g.data() + c * n;
    double acc = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = grad_output.data() + (b * out_channels_ + c) * plane;
      float* dst = grow + b * plane;
      for (std::size_t i = 0; i < plane; ++i) {
        dst[i] = src[i];
        acc += static_cast<double>(src[i]);
      }
    }
    bias_grad_(c) += static_cast<float>(acc);
  }

  // dW += G · colsᵀ  ((C_out × batch·plane) · (batch·plane × col_rows)):
  // one whole-batch GEMM accumulated straight into the grad buffer.
  ops::gemm(ops::Trans::kNo, ops::Trans::kYes, out_channels_, geometry_.col_rows(), n,
            g.data(), n, cols.data(), n, /*beta=*/1.0f, weight_grad_.data(),
            geometry_.col_rows());

  // dcols = Wᵀ · G  ((col_rows × C_out) · (C_out × batch·plane)).
  Tensor& dcols = ws_.get(kDcols, Shape::of(geometry_.col_rows(), n));
  ops::gemm_prepacked(packed_wt_, ops::Trans::kNo, n, g.data(), n,
                      /*beta=*/0.0f, dcols.data(), n);

  Tensor& dx = ws_.zeroed(kDx, in_shape_);
  for (std::size_t b = 0; b < batch; ++b) {
    col2im(geometry_, dcols.data() + b * plane, n, dx.data() + b * image_size);
  }
  return dx;
}

// Wide planes: the incoming gradient already IS per-image (C_out × plane)
// matrices — no re-interleave, no copy. Each image's columns are
// re-lowered from the cached input into a single scratch (cheaper than
// streaming a batch-wide expansion back through L2), contributing one
// accumulated dW panel (beta = 1) and one dcols panel scattered back
// while still cache-hot.
const Tensor& Conv2D::backward_per_image(const Tensor& grad_output, std::size_t batch) {
  const std::size_t plane = geometry_.col_cols();
  const std::size_t cr = geometry_.col_rows();
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  FEDCAV_REQUIRE(cached_in_.shape() == in_shape_,
                 "Conv2D::backward: stale cached input (intervening forward?)");

  for (std::size_t c = 0; c < out_channels_; ++c) {
    double acc = 0.0;
    for (std::size_t b = 0; b < batch; ++b) {
      const float* src = grad_output.data() + (b * out_channels_ + c) * plane;
      for (std::size_t i = 0; i < plane; ++i) acc += static_cast<double>(src[i]);
    }
    bias_grad_(c) += static_cast<float>(acc);
  }

  const bool direct = use_direct();
  const std::size_t k = geometry_.kernel_h;
  const std::size_t tpad = k - 1 - geometry_.pad;  // transpose-conv padding
  const std::size_t pgw = ow + 2 * tpad;
  const std::size_t pgplane = (oh + 2 * tpad) * pgw;
  if (direct) {
    // Direct path: dx is the transpose convolution of the padded
    // gradient, and dW the padded correlation of gradient × input — no
    // dcols intermediate, no col2im scatter, and (when the gradient's
    // zero run covers the vector overrun) no im2col either. Every dx
    // element is overwritten by the row stores, so no zero pass.
    const std::size_t pad = geometry_.pad;
    const std::size_t pw = geometry_.in_w + 2 * pad;
    const std::size_t pplane = (geometry_.in_h + 2 * pad) * pw;
    // conv_dw_padded needs the lanes past out_w of every gradient row to
    // read zeros: tpad right-pad zeros then the next row's tpad left-pad
    // zeros, 2·tpad in all (an exact-width row never overruns).
    const bool padded_dw =
        ow == kDirectMaxW || kDirectMaxW - ow <= 2 * tpad;
    Tensor& dx = ws_.get(kDx, in_shape_);
    Tensor& pg =
        ws_.get(kPadG, Shape::of(out_channels_ * pgplane + kDirectSlack));
    Tensor& pin = ws_.get(
        kPadIn, Shape::of(geometry_.in_channels * pplane + kDirectSlack));
    Tensor* cols = padded_dw ? nullptr : &ws_.get(kCols, Shape::of(cr, plane));
    for (std::size_t b = 0; b < batch; ++b) {
      const float* gb = grad_output.data() + b * out_channels_ * plane;
      pad_planes(gb, out_channels_, oh, ow, tpad, pg.data());
      if (padded_dw) {
        pad_planes(cached_in_.data() + b * image_size, geometry_.in_channels,
                   geometry_.in_h, geometry_.in_w, pad, pin.data());
        conv_dw_padded(pin.data(), pplane, pw, pg.data(), pgplane, pgw, tpad,
                       out_channels_, geometry_.in_channels, k, oh, ow,
                       weight_grad_.data());
      } else {
        im2col(geometry_, cached_in_.data() + b * image_size, cols->data(),
               plane);
        conv_dw_direct(gb, cols->data(), out_channels_, cr, plane,
                       weight_grad_.data());
      }
      conv_bwd_dx_padded(pg.data(), pgplane, pgw, weight_.data(),
                         out_channels_, geometry_.in_channels, k,
                         geometry_.in_h, geometry_.in_w,
                         dx.data() + b * image_size);
    }
    return dx;
  }

  // dW is a tiny (C_out × col_rows) panel for the layers this path
  // serves; length-plane dots beat a packed GEMM that is all packing and
  // edge writeback at that size.
  const bool direct_dw = out_channels_ * cr <= 256;
  Tensor& cols = ws_.get(kCols, Shape::of(cr, plane));
  Tensor& dx = ws_.zeroed(kDx, in_shape_);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* gb = grad_output.data() + b * out_channels_ * plane;
    im2col(geometry_, cached_in_.data() + b * image_size, cols.data(), plane);
    // dW += g_b · cols_bᵀ.
    if (direct_dw) {
      conv_dw_direct(gb, cols.data(), out_channels_, cr, plane,
                     weight_grad_.data());
    } else {
      ops::pack_a_into(ops::Trans::kNo, out_channels_, plane, gb, plane,
                       packed_g_);
      ops::gemm_prepacked(packed_g_, ops::Trans::kYes, cr, cols.data(), plane,
                          /*beta=*/1.0f, weight_grad_.data(), cr);
    }
    // dcols_b = Wᵀ · g_b, then scatter-add into the image gradient.
    Tensor& dcols = ws_.get(kDcols, Shape::of(cr, plane));
    ops::gemm_prepacked(packed_wt_, ops::Trans::kNo, plane, gb, plane,
                        /*beta=*/0.0f, dcols.data(), plane);
    col2im(geometry_, dcols.data(), plane, dx.data() + b * image_size);
  }
  return dx;
}

std::vector<ParamView> Conv2D::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(geometry_.kernel_h) +
         ", s=" + std::to_string(geometry_.stride) + ", p=" + std::to_string(geometry_.pad) +
         ")";
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::unique_ptr<Conv2D>(new Conv2D(*this));
  copy->weight_grad_.fill(0.0f);
  copy->bias_grad_.fill(0.0f);
  copy->in_shape_ = Shape();
  copy->has_cols_ = false;
  copy->cached_in_ = Tensor();
  return copy;
}

}  // namespace fedcav::nn
