#include "src/nn/conv2d.hpp"

#include <algorithm>
#include <cstring>

#include "src/nn/init.hpp"
#include "src/tensor/ops.hpp"
#include "src/tensor/parallel.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

namespace {

// Layout crossover. A plane narrower than this cannot keep the GEMM's
// kGemmNr-wide register tile busy per image (a 3×3 plane fills 9 of 16
// lanes), so such layers fuse the batch into one wide matrix. At or
// above it the per-image panel is already tile-efficient, and the fused
// layout's strided columns + re-interleave passes only add cache
// traffic, so each image keeps a contiguous block.
constexpr std::size_t kFusedPlaneMax = 2 * ops::kGemmNr;

// Upper plane bound for choosing the fused layout on layers the direct
// kernels can't take (strided convs, stride-2 1×1 projections). Their
// per-image GEMMs are packing-bound at these sizes; one whole-batch GEMM
// over n = batch·plane columns is not. Per-element contraction order of
// a GEMM is independent of its n extent, so the layout switch does not
// change forward results (dW's accumulation order does change — those
// layers are tolerance-tested, not pinned).
constexpr std::size_t kFusedWideMax = 64;

// A stride-1 convolution whose rows fit the vector accumulators below is
// overhead-bound under im2col+GEMM: the expansion duplicates the image
// K²-fold only to be copied through tiny per-row segments, and the GEMM
// then spends more on lowering, packing and edge tiles than on math. The
// direct path pads the image once (no interval logic, no branches) and
// runs fixed-length row FMAs straight off the padded planes. The support
// bound exists only to keep the weight walk of one output row inside L1;
// every conv in the model zoo is far below it.
constexpr std::size_t kDirectMaxCr = 512;
// One output row must fit the widest vector accumulator below.
constexpr std::size_t kDirectMaxW = 16;
// The row loads read a full vector from arbitrary kw offsets, so padded
// buffers carry this much zeroed slack past the last plane.
constexpr std::size_t kDirectSlack = kDirectMaxW;

// Intra-op fan-out thresholds. Below kConvParallelMinFlops a layer call
// stays on the single-thread path — the LeNet/MLP shapes lose more to
// fork/join than they gain (and the golden digits/lenet5 run must keep
// its exact serial schedule). The dW slice decomposition additionally
// requires kDwSliceMinFlops, because slicing changes the fold order of
// the per-image contributions (see backward_per_image).
constexpr std::size_t kConvParallelMinFlops = std::size_t{1} << 21;
constexpr std::size_t kDwSliceMinFlops = std::size_t{1} << 22;
// Images per dW slice. The slice boundaries are a pure function of the
// batch size — never of the worker count — so the slice-partial fold is
// bit-identical at any thread count (DESIGN.md §13).
constexpr std::size_t kDwSliceImages = 8;

#if defined(__GNUC__) || defined(__clang__)
#define FEDCAV_CONV_VECTOR_DIRECT 1
#endif

// Same trick as the GEMM micro-kernel: a GNU vector keeps a whole output
// row in registers across the kernel walk, so each (kh,kw) tap is one
// unaligned load + one FMA. The kernels are compiled at two lane widths:
// W = 16 (one AVX-512 op per row) for planes up to 16 wide, and W = 8
// (one AVX2 op) for planes no wider than 8, where the wide vector would
// waste over half its lanes. Per-lane float semantics are identical, so
// the width choice never changes results — only occupancy.
template <std::size_t W>
struct VecOf {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
  typedef float type __attribute__((vector_size(W * sizeof(float))));
#else
  struct type {  // portable fallback: a plain lane array
    float l[W];
    type operator+(const type&) const = delete;  // unused; kernels below
  };
#endif
};

#ifdef FEDCAV_CONV_VECTOR_DIRECT

template <std::size_t W>
inline typename VecOf<W>::type load_vecw(const float* p) {
  typename VecOf<W>::type v;
  __builtin_memcpy(&v, p, sizeof(v));  // unaligned load
  return v;
}

template <std::size_t W>
inline void store_row(const typename VecOf<W>::type& acc, float* __restrict__ d,
                      std::size_t ow) {
  float buf[W];
  __builtin_memcpy(buf, &acc, sizeof(acc));
  for (std::size_t x = 0; x < ow; ++x) d[x] = buf[x];
}

template <std::size_t W>
inline float lane_sum(const typename VecOf<W>::type& acc) {
  float buf[W];
  __builtin_memcpy(buf, &acc, sizeof(acc));
  float s = 0.0f;
  for (std::size_t l = 0; l < W; ++l) s += buf[l];
  return s;
}

// Pairwise tree fold: log₂(W) rounds of independent adds instead of one
// W-long dependency chain (~4× lower latency at W=16). Used by the k==3
// dW specialization, whose layers are tolerance-tested; the generic dW
// walk keeps the ascending lane_sum above, whose order the golden
// lenet5 run pins. Both orders are worker-count independent.
template <std::size_t W>
inline float lane_sum_tree(const typename VecOf<W>::type& acc) {
  float buf[W];
  __builtin_memcpy(buf, &acc, sizeof(acc));
  for (std::size_t h = W / 2; h > 0; h /= 2) {
    for (std::size_t i = 0; i < h; ++i) buf[i] += buf[i + h];
  }
  return buf[0];
}

#endif

// Sum `rows` rows of `row_len` floats (rows `row_stride` apart) into one
// double. The serial variant is ONE dependency chain in historical
// (ascending) order — the order the golden lenet5 run pins. The striped
// variant runs kBiasStripes independent chains (vectorizable: ~8× the
// throughput of the serial chain) and folds them in ascending stripe
// order, then the tail — deterministic and worker-count independent,
// but a DIFFERENT order, so it is gated on the BATCH size (a pure
// function of the input shape): batches below kBiasStripeBatch keep the
// serial chain, which the golden configurations (batch 10) sit below.
constexpr std::size_t kBiasStripes = 16;
constexpr std::size_t kBiasStripeBatch = 16;

double sum_rows_serial(const float* base, std::size_t rows,
                       std::size_t row_len, std::size_t row_stride) {
  double acc = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* __restrict__ p = base + r * row_stride;
    for (std::size_t i = 0; i < row_len; ++i) acc += static_cast<double>(p[i]);
  }
  return acc;
}

double sum_rows_striped(const float* base, std::size_t rows,
                        std::size_t row_len, std::size_t row_stride) {
  double stripe[kBiasStripes] = {0.0};
  double tail = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const float* __restrict__ p = base + r * row_stride;
    std::size_t i = 0;
    for (; i + kBiasStripes <= row_len; i += kBiasStripes) {
      for (std::size_t j = 0; j < kBiasStripes; ++j) {
        stripe[j] += static_cast<double>(p[i + j]);
      }
    }
    for (; i < row_len; ++i) tail += static_cast<double>(p[i]);
  }
  double acc = 0.0;
  for (std::size_t j = 0; j < kBiasStripes; ++j) acc += stripe[j];
  return acc + tail;
}

double sum_rows(const float* base, std::size_t rows, std::size_t row_len,
                std::size_t row_stride, std::size_t batch) {
  return batch >= kBiasStripeBatch
             ? sum_rows_striped(base, rows, row_len, row_stride)
             : sum_rows_serial(base, rows, row_len, row_stride);
}

// Copy `planes` (h × w) planes into a PRE-ZEROED buffer of (h+2p) rows
// of (w + 2p + extra_right) floats each, plus kDirectSlack floats of
// tail slack (the vector loads overrun rows by up to kDirectMaxW-1
// lanes; those lanes are discarded at the store or multiplied by zero,
// but must read mapped, finite memory). extra_right widens the zero run
// after each row's data so conv_dw_padded's full-lane reductions only
// ever sum zeros past out_w. Only the data rows are written: the buffer
// comes from Workspace::zeroed_once (shape Shape::of(planes·ph·pw +
// kDirectSlack)), every image rewrites the same data extents, and the
// kernels never write the buffer — so the pad lanes stay zero for the
// layer's lifetime and the per-image memset is gone.
void pad_planes(const float* src, std::size_t src_readable, std::size_t planes,
                std::size_t h, std::size_t w, std::size_t pad,
                std::size_t extra_right, float* dst) {
  const std::size_t pw = w + 2 * pad + extra_right;
  const std::size_t ph = h + 2 * pad;
#ifdef FEDCAV_CONV_VECTOR_DIRECT
  if (w <= 16) {
    // Masked vector copy: one 16-lane store per row, lanes ≥ w forced to
    // zero. The zero lanes re-zero every pad lane the store covers, so
    // the zeroed_once invariant holds even though the store may spill
    // past the row (only zeros land there, and ascending y/plane order
    // rewrites any spilled-over data lanes afterwards; the buffer's
    // kDirectSlack absorbs the final row's spill). The vector LOAD reads
    // 16 floats from the row start; rows within 16 floats of the
    // caller's readable extent (src_readable — the distance to the END
    // of the underlying tensor, not of this image) take the scalar walk
    // so the load never crosses the allocation.
    using V = typename VecOf<16>::type;
    V mask{};
    for (std::size_t l = 0; l < 16; ++l) mask[l] = l < w ? 1.0f : 0.0f;
    for (std::size_t pl = 0; pl < planes; ++pl) {
      for (std::size_t y = 0; y < h; ++y) {
        const std::size_t row_off = (pl * h + y) * w;
        const float* s = src + row_off;
        float* d = dst + pl * ph * pw + (y + pad) * pw + pad;
        if (row_off + 16 > src_readable) {
          for (std::size_t x = 0; x < w; ++x) d[x] = s[x];
        } else {
          const V v = load_vecw<16>(s) * mask;
          __builtin_memcpy(d, &v, sizeof(v));
        }
      }
    }
    return;
  }
#endif
  for (std::size_t pl = 0; pl < planes; ++pl) {
    for (std::size_t y = 0; y < h; ++y) {
      const float* __restrict__ s = src + (pl * h + y) * w;
      float* __restrict__ d = dst + pl * ph * pw + (y + pad) * pw + pad;
      for (std::size_t x = 0; x < w; ++x) d[x] = s[x];
    }
  }
}

// Pair-interleaved padding: images A and B share each 16-lane row, each
// owning an 8-lane segment laid out [pad zeros][row data][zeros]. Every
// data row is written FULL-width (pads re-zeroed each time), so only the
// all-zero top/bottom pad rows rely on the zeroed_once invariant. A null
// srcB (odd batch tail) zero-fills the B lanes. See the pair-path note
// above Conv2D::use_pair() for why the segment borrowing is sound.
void pad_planes_pair(const float* srcA, const float* srcB, std::size_t planes,
                     std::size_t h, std::size_t w, std::size_t pad,
                     float* dst) {
  const std::size_t ph = h + 2 * pad;
  for (std::size_t pl = 0; pl < planes; ++pl) {
    for (std::size_t y = 0; y < h; ++y) {
      float buf[16] = {0.0f};
      const float* __restrict__ sa = srcA + (pl * h + y) * w;
      for (std::size_t x = 0; x < w; ++x) buf[pad + x] = sa[x];
      if (srcB != nullptr) {
        const float* __restrict__ sb = srcB + (pl * h + y) * w;
        for (std::size_t x = 0; x < w; ++x) buf[8 + pad + x] = sb[x];
      }
      __builtin_memcpy(dst + (pl * ph + y + pad) * 16, buf, sizeof(buf));
    }
  }
}

// out[c][y][x] = bias[c] + Σ_{ci,kh,kw} W(c, ci·K²+kh·K+kw) ·
// pin[ci][y+kh][x+kw]. The weight walk matches the im2col row order, so
// the contraction order is the GEMM's. Rows are processed four at a time
// — one weight broadcast feeds four row FMAs, lifting the FMA:load ratio
// from 1:2 to 4:5 — which regroups work ACROSS output elements only;
// each element's tap order is untouched, so the blocking is bit-identical
// to the single-row loop (which handles the oh % 4 remainder).
#ifdef FEDCAV_CONV_VECTOR_DIRECT

// One (C output channels × R output rows) register block of the forward
// convolution: the C·R accumulators share every input-row load (R rows ×
// one load per kw) against C weight broadcasts, which is what moves the
// kernel from load-bound (1 FMA per 1.25 loads at C=1,R=4) to FMA-bound
// (8 FMAs per 6 loads at C=2,R=4). Each output element still owns one
// accumulator fed in ci→kh→kw tap order, so any (C,R) tiling is
// bit-identical to the C=1,R=1 loop.
template <std::size_t W, std::size_t R, std::size_t C>
inline void conv_fwd_block(const float* pin, std::size_t pplane,
                           std::size_t pw, const float* w, std::size_t c0,
                           const float* bias, std::size_t cin, std::size_t k,
                           std::size_t y, std::size_t oh, std::size_t ow,
                           float* out) {
  using V = typename VecOf<W>::type;
  V acc[C][R];
  const float* wk[C];
  for (std::size_t cc = 0; cc < C; ++cc) {
    V b;
    for (std::size_t l = 0; l < W; ++l) b[l] = bias[c0 + cc];
    for (std::size_t r = 0; r < R; ++r) acc[cc][r] = b;
    wk[cc] = w + (c0 + cc) * cin * k * k;
  }
  for (std::size_t ci = 0; ci < cin; ++ci) {
    const float* pch = pin + ci * pplane;
    for (std::size_t kh = 0; kh < k; ++kh) {
      const float* row0 = pch + (y + kh) * pw;
      for (std::size_t kw = 0; kw < k; ++kw) {
        V rv[R];
        for (std::size_t r = 0; r < R; ++r) {
          rv[r] = load_vecw<W>(row0 + r * pw + kw);
        }
        for (std::size_t cc = 0; cc < C; ++cc) {
          const float wv = *wk[cc]++;
          for (std::size_t r = 0; r < R; ++r) acc[cc][r] += wv * rv[r];
        }
      }
    }
  }
  for (std::size_t cc = 0; cc < C; ++cc) {
    float* orow = out + ((c0 + cc) * oh + y) * ow;
    for (std::size_t r = 0; r < R; ++r) {
      store_row<W>(acc[cc][r], orow + r * ow, ow);
    }
  }
}

template <std::size_t W, std::size_t C>
inline void conv_fwd_rows(const float* pin, std::size_t pplane, std::size_t pw,
                          const float* w, std::size_t c0, const float* bias,
                          std::size_t cin, std::size_t k, std::size_t oh,
                          std::size_t ow, float* out) {
  std::size_t y = 0;
  for (; y + 4 <= oh; y += 4) {
    conv_fwd_block<W, 4, C>(pin, pplane, pw, w, c0, bias, cin, k, y, oh, ow, out);
  }
  if (y + 2 <= oh) {
    conv_fwd_block<W, 2, C>(pin, pplane, pw, w, c0, bias, cin, k, y, oh, ow, out);
    y += 2;
  }
  if (y < oh) {
    conv_fwd_block<W, 1, C>(pin, pplane, pw, w, c0, bias, cin, k, y, oh, ow, out);
  }
}

#endif

template <std::size_t W>
void conv_fwd_padded(const float* pin, std::size_t pplane, std::size_t pw,
                     const float* w, const float* bias, std::size_t oc,
                     std::size_t cin, std::size_t k, std::size_t oh,
                     std::size_t ow, float* out) {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
  std::size_t c = 0;
  for (; c + 2 <= oc; c += 2) {
    conv_fwd_rows<W, 2>(pin, pplane, pw, w, c, bias, cin, k, oh, ow, out);
  }
  if (c < oc) {
    conv_fwd_rows<W, 1>(pin, pplane, pw, w, c, bias, cin, k, oh, ow, out);
  }
#else
  for (std::size_t c = 0; c < oc; ++c) {
    const float* wc = w + c * cin * k * k;
    const float bc = bias[c];
    for (std::size_t y = 0; y < oh; ++y) {
      float acc[kDirectMaxW];
      for (std::size_t x = 0; x < ow; ++x) acc[x] = bc;
      const float* wk = wc;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* pch = pin + ci * pplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pw;
          for (std::size_t kw = 0; kw < k; ++kw) {
            const float wv = *wk++;
            const float* __restrict__ pr = prow + kw;
            for (std::size_t x = 0; x < ow; ++x) acc[x] += wv * pr[x];
          }
        }
      }
      float* __restrict__ d = out + (c * oh + y) * ow;
      for (std::size_t x = 0; x < ow; ++x) d[x] = acc[x];
    }
  }
#endif
}

// dW(c, ci·K²+kh·K+kw) += Σ_{y,x} g[c][y][x] · pin[ci][y+kh][x+kw],
// computed as one vector accumulator per weight tap swept down the rows,
// with a single lane sum at the end. Reads the TRANSPOSE-padded gradient
// whose rows pad_planes() right-extended, so the lanes past out_w land
// on padding zeros and contribute nothing. C output channels are swept
// together so the input-row loads are shared (the k==3 specialization
// additionally shares each gradient-row load across the three kw taps);
// every tap keeps its own accumulator fed in ascending y with the same
// ascending lane sum, so the (C, kw) grouping never changes results.
#ifdef FEDCAV_CONV_VECTOR_DIRECT

// `nimg` padded images (pin/pg strides apart) are swept per call. The
// k==3 specialization accumulates each tap's vector across ALL images
// before its one horizontal fold — at 7-row planes the fold is ~half the
// kernel's work when done per image, and the image count per call is a
// pure function of the batch size (the dW slice), never of the worker
// count. The generic-k walk folds PER IMAGE in ascending image order,
// which is exactly the historical per-image call sequence the golden
// lenet5 run pins (each dw scalar receives the same per-image partials
// in the same order).
template <std::size_t W, std::size_t C>
inline void conv_dw_chans(const float* pin, std::size_t pin_stride,
                          std::size_t pplane, std::size_t pw, const float* pg,
                          std::size_t pg_stride, std::size_t pgplane,
                          std::size_t pgw, std::size_t nimg, std::size_t tpad,
                          std::size_t c0, std::size_t cin, std::size_t k,
                          std::size_t oh, float* dw) {
  using V = typename VecOf<W>::type;
  for (std::size_t ci = 0; ci < cin; ++ci) {
    float* dwtap[C];
    for (std::size_t cc = 0; cc < C; ++cc) {
      dwtap[cc] = dw + ((c0 + cc) * cin + ci) * k * k;
    }
    if (k == 3) {
      for (std::size_t kh = 0; kh < 3; ++kh) {
        V q[C][3];
        for (std::size_t cc = 0; cc < C; ++cc) {
          for (std::size_t j = 0; j < 3; ++j) q[cc][j] = V{};
        }
        for (std::size_t img = 0; img < nimg; ++img) {
          const float* pch = pin + img * pin_stride + ci * pplane;
          const float* gplane[C];
          for (std::size_t cc = 0; cc < C; ++cc) {
            gplane[cc] = pg + img * pg_stride + (c0 + cc) * pgplane +
                         tpad * pgw + tpad;
          }
          for (std::size_t y = 0; y < oh; ++y) {
            const float* prow = pch + (y + kh) * pw;
            const V p0 = load_vecw<W>(prow);
            const V p1 = load_vecw<W>(prow + 1);
            const V p2 = load_vecw<W>(prow + 2);
            for (std::size_t cc = 0; cc < C; ++cc) {
              const V gv = load_vecw<W>(gplane[cc] + y * pgw);
              q[cc][0] += gv * p0;
              q[cc][1] += gv * p1;
              q[cc][2] += gv * p2;
            }
          }
        }
        for (std::size_t cc = 0; cc < C; ++cc) {
          for (std::size_t j = 0; j < 3; ++j) {
            dwtap[cc][kh * 3 + j] += lane_sum_tree<W>(q[cc][j]);
          }
        }
      }
      continue;
    }
    for (std::size_t img = 0; img < nimg; ++img) {
      const float* pch = pin + img * pin_stride + ci * pplane;
      const float* gplane[C];
      for (std::size_t cc = 0; cc < C; ++cc) {
        gplane[cc] =
            pg + img * pg_stride + (c0 + cc) * pgplane + tpad * pgw + tpad;
      }
      for (std::size_t kh = 0; kh < k; ++kh) {
        for (std::size_t kw = 0; kw < k; ++kw) {
          V acc[C];
          for (std::size_t cc = 0; cc < C; ++cc) acc[cc] = V{};
          for (std::size_t y = 0; y < oh; ++y) {
            const V pv = load_vecw<W>(pch + (y + kh) * pw + kw);
            for (std::size_t cc = 0; cc < C; ++cc) {
              acc[cc] += load_vecw<W>(gplane[cc] + y * pgw) * pv;
            }
          }
          for (std::size_t cc = 0; cc < C; ++cc) {
            dwtap[cc][kh * k + kw] += lane_sum<W>(acc[cc]);
          }
        }
      }
    }
  }
}

#endif

template <std::size_t W>
void conv_dw_padded(const float* pin, std::size_t pin_stride,
                    std::size_t pplane, std::size_t pw, const float* pg,
                    std::size_t pg_stride, std::size_t pgplane,
                    std::size_t pgw, std::size_t nimg, std::size_t tpad,
                    std::size_t oc, std::size_t cin, std::size_t k,
                    std::size_t oh, std::size_t ow, float* dw) {
  (void)ow;
#ifdef FEDCAV_CONV_VECTOR_DIRECT
  std::size_t c = 0;
  if (W == 16) {
    // 32 vector registers at this width: a 4-channel group (12 tap
    // accumulators + 4 gradient rows + shared input rows) still fits.
    for (; c + 4 <= oc; c += 4) {
      conv_dw_chans<W, 4>(pin, pin_stride, pplane, pw, pg, pg_stride, pgplane,
                          pgw, nimg, tpad, c, cin, k, oh, dw);
    }
  }
  for (; c + 2 <= oc; c += 2) {
    conv_dw_chans<W, 2>(pin, pin_stride, pplane, pw, pg, pg_stride, pgplane,
                        pgw, nimg, tpad, c, cin, k, oh, dw);
  }
  if (c < oc) {
    conv_dw_chans<W, 1>(pin, pin_stride, pplane, pw, pg, pg_stride, pgplane,
                        pgw, nimg, tpad, c, cin, k, oh, dw);
  }
#else
  for (std::size_t img = 0; img < nimg; ++img) {
    for (std::size_t c = 0; c < oc; ++c) {
      const float* gplane = pg + img * pg_stride + c * pgplane;
      for (std::size_t ci = 0; ci < cin; ++ci) {
        const float* pch = pin + img * pin_stride + ci * pplane;
        float* dwtap = dw + (c * cin + ci) * k * k;
        for (std::size_t kh = 0; kh < k; ++kh) {
          for (std::size_t kw = 0; kw < k; ++kw) {
            float s = 0.0f;
            for (std::size_t y = 0; y < oh; ++y) {
              const float* __restrict__ grow = gplane + (y + tpad) * pgw + tpad;
              const float* __restrict__ prow = pch + (y + kh) * pw + kw;
              for (std::size_t x = 0; x < ow; ++x) s += grow[x] * prow[x];
            }
            dwtap[kh * k + kw] += s;
          }
        }
      }
    }
  }
#endif
}

// The transpose: dx[ci][y][x] = Σ_{c,kh,kw} W(c, ci·K²+kh·K+kw) ·
// g[c][y-kh+p][x-kw+p], evaluated branch-free against the gradient
// padded by K-1-p (the transpose-convolution padding identity), with the
// same (C input channels × R rows) register blocking as the forward —
// here the C accumulator groups share the gradient-row loads against C
// weight broadcasts. Per-element tap order (c→kh→kw) is unchanged by
// either grouping.
#ifdef FEDCAV_CONV_VECTOR_DIRECT

template <std::size_t W, std::size_t R, std::size_t C>
inline void conv_dx_block(const float* pg, std::size_t pgplane,
                          std::size_t pgw, const float* w, std::size_t ci0,
                          std::size_t oc, std::size_t cin, std::size_t k,
                          std::size_t y, std::size_t h, std::size_t wid,
                          float* dx) {
  using V = typename VecOf<W>::type;
  V acc[C][R];
  for (std::size_t cc = 0; cc < C; ++cc) {
    for (std::size_t r = 0; r < R; ++r) acc[cc][r] = V{};
  }
  for (std::size_t c = 0; c < oc; ++c) {
    const float* pch = pg + c * pgplane;
    const float* wci = w + c * cin * k * k + ci0 * k * k;
    for (std::size_t kh = 0; kh < k; ++kh) {
      const float* row0 = pch + (y + kh) * pgw;
      for (std::size_t kw = 0; kw < k; ++kw) {
        V rv[R];
        for (std::size_t r = 0; r < R; ++r) {
          rv[r] = load_vecw<W>(row0 + r * pgw + kw);
        }
        for (std::size_t cc = 0; cc < C; ++cc) {
          const float wv = wci[cc * k * k + (k - 1 - kh) * k + (k - 1 - kw)];
          for (std::size_t r = 0; r < R; ++r) acc[cc][r] += wv * rv[r];
        }
      }
    }
  }
  for (std::size_t cc = 0; cc < C; ++cc) {
    float* drow = dx + ((ci0 + cc) * h + y) * wid;
    for (std::size_t r = 0; r < R; ++r) {
      store_row<W>(acc[cc][r], drow + r * wid, wid);
    }
  }
}

template <std::size_t W, std::size_t C>
inline void conv_dx_rows(const float* pg, std::size_t pgplane, std::size_t pgw,
                         const float* w, std::size_t ci0, std::size_t oc,
                         std::size_t cin, std::size_t k, std::size_t h,
                         std::size_t wid, float* dx) {
  std::size_t y = 0;
  for (; y + 4 <= h; y += 4) {
    conv_dx_block<W, 4, C>(pg, pgplane, pgw, w, ci0, oc, cin, k, y, h, wid, dx);
  }
  if (y + 2 <= h) {
    conv_dx_block<W, 2, C>(pg, pgplane, pgw, w, ci0, oc, cin, k, y, h, wid, dx);
    y += 2;
  }
  if (y < h) {
    conv_dx_block<W, 1, C>(pg, pgplane, pgw, w, ci0, oc, cin, k, y, h, wid, dx);
  }
}

#endif

template <std::size_t W>
void conv_bwd_dx_padded(const float* pg, std::size_t pgplane, std::size_t pgw,
                        const float* w, std::size_t oc, std::size_t cin,
                        std::size_t k, std::size_t h, std::size_t wid,
                        float* dx) {
#ifdef FEDCAV_CONV_VECTOR_DIRECT
  std::size_t ci = 0;
  for (; ci + 2 <= cin; ci += 2) {
    conv_dx_rows<W, 2>(pg, pgplane, pgw, w, ci, oc, cin, k, h, wid, dx);
  }
  if (ci < cin) {
    conv_dx_rows<W, 1>(pg, pgplane, pgw, w, ci, oc, cin, k, h, wid, dx);
  }
#else
  for (std::size_t ci = 0; ci < cin; ++ci) {
    for (std::size_t y = 0; y < h; ++y) {
      float acc[kDirectMaxW];
      for (std::size_t x = 0; x < wid; ++x) acc[x] = 0.0f;
      for (std::size_t c = 0; c < oc; ++c) {
        const float* wbase = w + c * cin * k * k + ci * k * k;
        const float* pch = pg + c * pgplane;
        for (std::size_t kh = 0; kh < k; ++kh) {
          const float* prow = pch + (y + kh) * pgw;
          const float* wrow = wbase + (k - 1 - kh) * k;
          for (std::size_t kw = 0; kw < k; ++kw) {
            const float wv = wrow[k - 1 - kw];
            const float* __restrict__ pr = prow + kw;
            for (std::size_t x = 0; x < wid; ++x) acc[x] += wv * pr[x];
          }
        }
      }
      float* __restrict__ d = dx + (ci * h + y) * wid;
      for (std::size_t x = 0; x < wid; ++x) d[x] = acc[x];
    }
  }
#endif
}

// dW += g_b · cols_bᵀ for a tiny (C_out × col_rows) output, where the
// packed GEMM is all packing and edge writeback. Each entry is a length-
// plane dot; 16 independent partial sums keep it vectorized without
// reassociating a single serial reduction (which -O3 alone may not).
void conv_dw_direct(const float* g, const float* cols, std::size_t oc,
                    std::size_t cr, std::size_t plane, float* dw) {
  constexpr std::size_t kLanes = 16;
  for (std::size_t c = 0; c < oc; ++c) {
    const float* __restrict__ gc = g + c * plane;
    for (std::size_t r = 0; r < cr; ++r) {
      const float* __restrict__ cri = cols + r * plane;
      float lanes[kLanes] = {0.0f};
      std::size_t i = 0;
      for (; i + kLanes <= plane; i += kLanes) {
        for (std::size_t l = 0; l < kLanes; ++l) {
          lanes[l] += gc[i + l] * cri[i + l];
        }
      }
      float s = 0.0f;
      for (; i < plane; ++i) s += gc[i] * cri[i];
      for (std::size_t l = 0; l < kLanes; ++l) s += lanes[l];
      dw[c * cr + r] += s;
    }
  }
}

/// Fan-out width for disjoint-output batch work: 1 (serial) unless a
/// kernel pool is attached, the work is divisible, and the layer is big
/// enough to amortize the fork/join.
std::size_t batch_fanout(std::size_t items, std::size_t total_flops) {
  const std::size_t ways = ops::kernel_ways();
  if (ways <= 1 || items < 2 || total_flops < kConvParallelMinFlops) return 1;
  return std::min(ways, items);
}

}  // namespace

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
               Rng& rng)
    : geometry_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      weight_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_(Shape::of(out_channels)),
      weight_grad_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_grad_(Shape::of(out_channels)) {
  geometry_.validate();
  FEDCAV_REQUIRE(out_channels > 0, "Conv2D: zero output channels");
  he_normal(weight_, geometry_.col_rows(), rng);
}

bool Conv2D::use_direct() const {
  // in_w bounds the TRANSPOSE convolution's row store (dx rows), out_w
  // the forward's; both must fit the vector accumulator. 2·pad < kernel
  // keeps the transpose-padded gradient tall enough for the dx row walk
  // (every "valid"/"same" conv satisfies it).
  return geometry_.stride == 1 && geometry_.kernel_h == geometry_.kernel_w &&
         2 * geometry_.pad < geometry_.kernel_h &&
         geometry_.col_rows() <= kDirectMaxCr &&
         geometry_.out_w() <= kDirectMaxW && geometry_.in_w <= kDirectMaxW;
}

std::size_t Conv2D::direct_width() const {
  // Planes no wider than 8 run the 8-lane kernels — the 16-lane vector
  // would waste over half its lanes there. Width never changes per-lane
  // math, only occupancy.
  return std::max(geometry_.out_w(), geometry_.in_w) <= 8 ? 8 : 16;
}

// Pair-interleaved direct path: for "same"-padded geometries (2p+1 = k,
// so out_w = in_w and the transpose pad equals p) whose padded rows fit
// 8 lanes (in_w + p ≤ 8), images A and B share each 16-lane vector row —
// A in lanes 0..7, B in lanes 8..15, each segment [p zeros][data][zeros].
// The construction is self-padding: A's rightmost taps read B's leading
// zeros, B's rightmost taps read the NEXT row's leading zeros (row
// stride is 16, so the vector load's trailing lanes wrap into it), and
// lanes holding wrapped data are either discarded at the store (forward
// / dx write a full 16-wide scratch that the caller de-interleaves) or
// multiplied by a zero gradient lane (dW). The W = 16 kernels run on the
// pair buffers UNMODIFIED with pw = 16: per-lane tap order is identical
// to the per-image walk, so forward and dx are bit-identical to it; only
// dW's full-lane reduction changes (A's and B's contribution fold in one
// lane_sum instead of image order), which no golden-pinned geometry
// observes — lenet5's convs are either wider than 8 (conv1) or fused
// (conv2), so pair eligibility covers tolerance-tested layers only
// (cnn9's 7×7-plane convs). Pairing is a pure function of the batch
// index (b, b+1), never of the worker count.
bool Conv2D::use_pair() const {
  return use_direct() && 2 * geometry_.pad + 1 == geometry_.kernel_h &&
         geometry_.in_w + geometry_.pad <= 8;
}

const Tensor& Conv2D::forward(const Tensor& input, bool training) {
  const auto& s = input.shape();
  FEDCAV_REQUIRE(s.rank() == 4 && s[1] == geometry_.in_channels &&
                     s[2] == geometry_.in_h && s[3] == geometry_.in_w,
                 "Conv2D::forward: input shape mismatch, got " + s.to_string());
  const std::size_t batch = s[0];
  if (training) {
    in_shape_ = s;
    has_cols_ = true;
  }
  ops::pack_a_into(ops::Trans::kNo, out_channels_, geometry_.col_rows(),
                   weight_.data(), geometry_.col_rows(), packed_w_);
  return use_fused() ? forward_fused(input, batch)
                     : forward_per_image(input, batch, training);
}

bool Conv2D::use_fused() const {
  // Planes below kFusedPlaneMax cannot fill the GEMM tile per image.
  // Between that and kFusedWideMax, fused is chosen only when the direct
  // kernels don't apply (strided convs, 1×1 projections at stride 2):
  // there the per-image GEMMs are packing-bound, and batching the images
  // into one wide GEMM amortizes it. The order matters: a layer that
  // qualifies for BOTH direct and mid-fused (e.g. a 7×7 stride-1 conv)
  // must keep the direct path, and small planes must stay fused even
  // when use_direct() would accept them (lenet5's conv2 — pinned by the
  // golden run).
  const std::size_t plane = geometry_.col_cols();
  if (plane < kFusedPlaneMax) return true;
  return !use_direct() && plane <= kFusedWideMax;
}

// Narrow planes: one column matrix for the whole batch, image b owning
// columns [b·plane, (b+1)·plane). Rows stride by n, so W·cols is ONE
// GEMM; a re-interleave pass folds the bias while scattering
// (C_out × batch·plane) back to (batch × C_out × plane). The im2col and
// re-interleave loops fan out over images (disjoint column blocks /
// output blocks); the GEMM parallelizes internally over its j-tiles.
const Tensor& Conv2D::forward_fused(const Tensor& input, std::size_t batch) {
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t plane = oh * ow;
  const std::size_t n = batch * plane;
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  const std::size_t flops = 2 * out_channels_ * n * geometry_.col_rows();
  const std::size_t fan = batch_fanout(batch, flops);

  // Pad each image once into per-chunk scratch, then lower with the
  // branch-free padded walk — same values as the bounds-checked im2col,
  // a fraction of its cost on the small planes this path owns.
  const std::size_t ppw = geometry_.in_w + 2 * geometry_.pad;
  const std::size_t pplane = (geometry_.in_h + 2 * geometry_.pad) * ppw;
  Tensor& cols = ws_.get(kCols, Shape::of(geometry_.col_rows(), n));
  arena_.reserve(fan);
  ops::parallel_chunks(batch, fan, [&](std::size_t b0, std::size_t b1,
                                       std::size_t chunk) {
    Tensor& pin = arena_.slot(chunk).zeroed_once(
        kPadIn, Shape::of(geometry_.in_channels * pplane + kDirectSlack));
    for (std::size_t b = b0; b < b1; ++b) {
      pad_planes(input.data() + b * image_size, input.numel() - b * image_size,
                 geometry_.in_channels, geometry_.in_h, geometry_.in_w,
                 geometry_.pad, /*extra_right=*/0, pin.data());
      im2col_padded(geometry_, pin.data(), cols.data() + b * plane, n);
    }
  });

  Tensor& gemm_out = ws_.get(kGemmOut, Shape::of(out_channels_, n));
  ops::gemm_prepacked(packed_w_, ops::Trans::kNo, n, cols.data(), n,
                      /*beta=*/0.0f, gemm_out.data(), n);

  Tensor& out = ws_.get(kOut, Shape::of(batch, out_channels_, oh, ow));
  ops::parallel_chunks(batch, fan, [&](std::size_t b0, std::size_t b1,
                                       std::size_t) {
    for (std::size_t b = b0; b < b1; ++b) {
      float* dst_img = out.data() + b * out_channels_ * plane;
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float bc = bias_(c);
        const float* src = gemm_out.data() + c * n + b * plane;
        float* d = dst_img + c * plane;
        for (std::size_t i = 0; i < plane; ++i) d[i] = src[i] + bc;
      }
    }
  });
  return out;
}

// Wide planes, per image. Small stride-1 kernels run the direct padded
// kernels (no lowering at all); the rest lower one image at a time into
// an L1-resident column scratch and GEMM straight into the output tensor
// (ldc = plane) — no wide intermediate, no re-interleave. The batch
// fans out over the kernel pool; each chunk pads/lowers into its own
// arena workspace and writes only its own images' output block, so any
// chunk count is bit-identical. Training caches the INPUT (k² smaller
// than its expansion); backward re-lowers or re-pads per image.
const Tensor& Conv2D::forward_per_image(const Tensor& input, std::size_t batch,
                                        bool training) {
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t plane = oh * ow;
  const std::size_t cr = geometry_.col_rows();
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  const std::size_t flops = 2 * out_channels_ * plane * cr * batch;
  const std::size_t fan = batch_fanout(batch, flops);

  if (training) cached_in_ = input;  // capacity-reusing copy
  Tensor& out = ws_.get(kOut, Shape::of(batch, out_channels_, oh, ow));
  if (use_direct()) {
    const std::size_t k = geometry_.kernel_h;
    const std::size_t pad = geometry_.pad;
    const std::size_t pw = geometry_.in_w + 2 * pad;
    const std::size_t pplane = (geometry_.in_h + 2 * pad) * pw;
    const std::size_t width = direct_width();
    if (use_pair()) {
      // Two images per kernel invocation (see use_pair()): pad both into
      // one 16-lane-row buffer, run the W = 16 forward on it with a
      // full-width store into the pair scratch, then de-interleave the
      // two images' rows. Per-lane math matches the 8-lane per-image
      // walk exactly, so this is bit-identical to it at any fan-out.
      const std::size_t ph = geometry_.in_h + 2 * pad;
      const std::size_t pairs = (batch + 1) / 2;
      const std::size_t pfan = batch_fanout(pairs, flops);
      arena_.reserve(pfan);
      ops::parallel_chunks(pairs, pfan, [&](std::size_t p0, std::size_t p1,
                                            std::size_t chunk) {
        Workspace& pws = arena_.slot(chunk);
        Tensor& pin = pws.zeroed_once(
            kPadIn, Shape::of(geometry_.in_channels * ph * 16 + kDirectSlack));
        Tensor& sc = pws.get(kPairOut, Shape::of(out_channels_ * oh * 16));
        for (std::size_t p = p0; p < p1; ++p) {
          const std::size_t bA = 2 * p;
          const bool has_b = bA + 1 < batch;
          pad_planes_pair(input.data() + bA * image_size,
                          has_b ? input.data() + (bA + 1) * image_size : nullptr,
                          geometry_.in_channels, geometry_.in_h,
                          geometry_.in_w, pad, pin.data());
          conv_fwd_padded<16>(pin.data(), ph * 16, 16, weight_.data(),
                              bias_.data(), out_channels_,
                              geometry_.in_channels, k, oh, /*ow=*/16,
                              sc.data());
          for (std::size_t c = 0; c < out_channels_; ++c) {
            for (std::size_t y = 0; y < oh; ++y) {
              const float* __restrict__ srow = sc.data() + (c * oh + y) * 16;
              float* __restrict__ da =
                  out.data() + ((bA * out_channels_ + c) * oh + y) * ow;
              for (std::size_t x = 0; x < ow; ++x) da[x] = srow[x];
              if (has_b) {
                float* __restrict__ db =
                    out.data() + (((bA + 1) * out_channels_ + c) * oh + y) * ow;
                for (std::size_t x = 0; x < ow; ++x) db[x] = srow[8 + x];
              }
            }
          }
        }
      });
      return out;
    }
    arena_.reserve(fan);
    ops::parallel_chunks(batch, fan, [&](std::size_t b0, std::size_t b1,
                                         std::size_t chunk) {
      Tensor& pin = arena_.slot(chunk).zeroed_once(
          kPadIn, Shape::of(geometry_.in_channels * pplane + kDirectSlack));
      for (std::size_t b = b0; b < b1; ++b) {
        // Copied even for pad == 0: the vector row loads overrun into the
        // buffer's zeroed slack, which the raw input tensor doesn't have.
        pad_planes(input.data() + b * image_size, input.numel() - b * image_size,
                   geometry_.in_channels, geometry_.in_h, geometry_.in_w, pad,
                   /*extra_right=*/0, pin.data());
        float* ob = out.data() + b * out_channels_ * plane;
        if (width == 8) {
          conv_fwd_padded<8>(pin.data(), pplane, pw, weight_.data(),
                             bias_.data(), out_channels_, geometry_.in_channels,
                             k, oh, ow, ob);
        } else {
          conv_fwd_padded<16>(pin.data(), pplane, pw, weight_.data(),
                              bias_.data(), out_channels_,
                              geometry_.in_channels, k, oh, ow, ob);
        }
      }
    });
    return out;
  }
  arena_.reserve(fan);
  ops::parallel_chunks(batch, fan, [&](std::size_t b0, std::size_t b1,
                                       std::size_t chunk) {
    Tensor& cols = arena_.slot(chunk).get(kCols, Shape::of(cr, plane));
    for (std::size_t b = b0; b < b1; ++b) {
      im2col(geometry_, input.data() + b * image_size, cols.data(), plane);
      float* ob = out.data() + b * out_channels_ * plane;
      ops::gemm_prepacked(packed_w_, ops::Trans::kNo, plane, cols.data(), plane,
                          /*beta=*/0.0f, ob, plane);
      for (std::size_t c = 0; c < out_channels_; ++c) {
        const float bc = bias_(c);
        float* d = ob + c * plane;
        for (std::size_t i = 0; i < plane; ++i) d[i] += bc;
      }
    }
  });
  return out;
}

const Tensor& Conv2D::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(has_cols_, "Conv2D::backward before forward(training=true)");
  const std::size_t batch = in_shape_[0];
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  FEDCAV_REQUIRE(grad_output.shape().rank() == 4 && grad_output.shape()[0] == batch &&
                     grad_output.shape()[1] == out_channels_ &&
                     grad_output.shape()[2] == oh && grad_output.shape()[3] == ow,
                 "Conv2D::backward: grad_output shape mismatch");
  ops::pack_a_into(ops::Trans::kYes, geometry_.col_rows(), out_channels_,
                   weight_.data(), geometry_.col_rows(), packed_wt_);
  return use_fused() ? backward_fused(grad_output, batch)
                     : backward_per_image(grad_output, batch);
}

const Tensor& Conv2D::backward_fused(const Tensor& grad_output, std::size_t batch) {
  const std::size_t plane = geometry_.col_cols();
  const std::size_t n = batch * plane;
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  const Tensor& cols = ws_.at(kCols);  // the training forward's expansion
  FEDCAV_REQUIRE(cols.shape() == Shape::of(geometry_.col_rows(), n),
                 "Conv2D::backward: stale column matrix (intervening forward?)");
  const std::size_t flops = 2 * out_channels_ * n * geometry_.col_rows();
  const std::size_t fan = batch_fanout(batch, flops);

  // View the batch's output gradient as one (C_out × batch·plane) matrix
  // matching the column layout — a strided re-interleave, not a per-image
  // heap copy — and fold the bias row-sums into the same pass. Fans out
  // over CHANNELS: each chunk owns whole rows of g and whole bias_grad_
  // entries, and the per-channel batch-order sum is untouched, so any
  // chunk count is bit-identical.
  Tensor& g = ws_.get(kGmat, Shape::of(out_channels_, n));
  ops::parallel_chunks(
      out_channels_, std::min(batch_fanout(out_channels_, flops), out_channels_),
      [&](std::size_t c0, std::size_t c1, std::size_t) {
        for (std::size_t c = c0; c < c1; ++c) {
          float* grow = g.data() + c * n;
          for (std::size_t b = 0; b < batch; ++b) {
            const float* __restrict__ src =
                grad_output.data() + (b * out_channels_ + c) * plane;
            float* __restrict__ dst = grow + b * plane;
            for (std::size_t i = 0; i < plane; ++i) dst[i] = src[i];
          }
          // Summed over the re-interleaved row, which is the same
          // ascending (b, i) order the interleaved fold used.
          bias_grad_(c) += static_cast<float>(sum_rows(grow, 1, n, 0, batch));
        }
      });

  // dW += G · colsᵀ  ((C_out × batch·plane) · (batch·plane × col_rows)):
  // one whole-batch GEMM accumulated straight into the grad buffer.
  ops::gemm(ops::Trans::kNo, ops::Trans::kYes, out_channels_, geometry_.col_rows(), n,
            g.data(), n, cols.data(), n, /*beta=*/1.0f, weight_grad_.data(),
            geometry_.col_rows());

  // dcols = Wᵀ · G  ((col_rows × C_out) · (C_out × batch·plane)).
  Tensor& dcols = ws_.get(kDcols, Shape::of(geometry_.col_rows(), n));
  ops::gemm_prepacked(packed_wt_, ops::Trans::kNo, n, g.data(), n,
                      /*beta=*/0.0f, dcols.data(), n);

  // Scatter-add each image's column gradient into a zeroed padded
  // scratch (branch-free), then unpad into dx. Per-pixel accumulation
  // order matches the plain col2im's (kh, kw) walk and dx blocks start
  // from zero, so the result is bit-identical to the bounds-checked
  // scatter at any fan-out.
  const std::size_t ppw = geometry_.in_w + 2 * geometry_.pad;
  const std::size_t pplane = (geometry_.in_h + 2 * geometry_.pad) * ppw;
  const std::size_t pbytes =
      geometry_.in_channels * pplane * sizeof(float);
  Tensor& dx = ws_.get(kDx, in_shape_);
  arena_.reserve(fan);
  ops::parallel_chunks(batch, fan, [&](std::size_t b0, std::size_t b1,
                                       std::size_t chunk) {
    Tensor& pg = arena_.slot(chunk).get(
        kPadG, Shape::of(geometry_.in_channels * pplane));
    for (std::size_t b = b0; b < b1; ++b) {
      std::memset(pg.data(), 0, pbytes);
      col2im_padded(geometry_, dcols.data() + b * plane, n, pg.data());
      float* __restrict__ dimg = dx.data() + b * image_size;
      for (std::size_t c = 0; c < geometry_.in_channels; ++c) {
        for (std::size_t y = 0; y < geometry_.in_h; ++y) {
          const float* __restrict__ s = pg.data() + c * pplane +
                                        (y + geometry_.pad) * ppw +
                                        geometry_.pad;
          float* __restrict__ d = dimg + (c * geometry_.in_h + y) * geometry_.in_w;
          for (std::size_t x = 0; x < geometry_.in_w; ++x) d[x] = s[x];
        }
      }
    }
  });
  return dx;
}

// Wide planes: the incoming gradient already IS per-image (C_out × plane)
// matrices — no re-interleave, no copy. The batch is decomposed into
// FIXED slices of kDwSliceImages images (a pure function of the batch
// size): each slice accumulates its dW contribution into its own panel
// (slice 0 directly into weight_grad_), and the slice partials are then
// folded in ascending slice order — bit-identical at any worker count.
// Small layers keep one slice, i.e. exactly the historical serial fold.
// dx output blocks are per-image and therefore disjoint regardless of
// slicing.
const Tensor& Conv2D::backward_per_image(const Tensor& grad_output, std::size_t batch) {
  const std::size_t plane = geometry_.col_cols();
  const std::size_t cr = geometry_.col_rows();
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  FEDCAV_REQUIRE(cached_in_.shape() == in_shape_,
                 "Conv2D::backward: stale cached input (intervening forward?)");
  const std::size_t dw_flops = 2 * out_channels_ * plane * cr * batch;

  ops::parallel_chunks(
      out_channels_,
      std::min(batch_fanout(out_channels_, dw_flops), out_channels_),
      [&](std::size_t c0, std::size_t c1, std::size_t) {
        for (std::size_t c = c0; c < c1; ++c) {
          bias_grad_(c) += static_cast<float>(
              sum_rows(grad_output.data() + c * plane, batch, plane,
                       out_channels_ * plane, batch));
        }
      });

  // Shape-derived slice decomposition (never worker-derived): slicing
  // changes the dW fold order versus the one-slice serial walk, so it is
  // gated on layer size — the golden lenet5/digits configuration stays
  // below the gate and keeps its historical numerics exactly.
  const bool sliced = batch > kDwSliceImages && dw_flops >= kDwSliceMinFlops;
  const std::size_t n_slices =
      sliced ? (batch + kDwSliceImages - 1) / kDwSliceImages : 1;
  const std::size_t slice_step = sliced ? kDwSliceImages : batch;
  arena_.reserve(n_slices);

  const bool direct = use_direct();
  const std::size_t k = geometry_.kernel_h;
  const std::size_t tpad = k - 1 - geometry_.pad;  // transpose-conv padding
  const std::size_t width = direct ? direct_width() : 0;
  // conv_dw_padded sums FULL vectors of each gradient row, so every row
  // must be followed by at least (width - ow) zeros before the next
  // row's data; pad_planes right-extends the rows to guarantee it.
  const std::size_t extra_right = direct && width > ow ? width - ow : 0;
  const std::size_t pgw = ow + 2 * tpad + extra_right;
  const std::size_t pgplane = (oh + 2 * tpad) * pgw;
  const std::size_t pad = geometry_.pad;
  const std::size_t pw = geometry_.in_w + 2 * pad;
  const std::size_t pplane = (geometry_.in_h + 2 * pad) * pw;
  // dW via plain dots when the panel is tiny (non-direct path only).
  const bool direct_dw = out_channels_ * cr <= 256;

  Tensor& dx = direct ? ws_.get(kDx, in_shape_) : ws_.zeroed(kDx, in_shape_);
  ops::parallel_chunks(n_slices, n_slices, [&](std::size_t s0, std::size_t s1,
                                               std::size_t) {
    for (std::size_t s = s0; s < s1; ++s) {
      const std::size_t b_begin = s * slice_step;
      const std::size_t b_end = std::min(batch, b_begin + slice_step);
      Workspace& ws = arena_.slot(s);
      // Slice 0 folds straight into weight_grad_ (the historical target);
      // later slices accumulate into a zeroed partial panel.
      float* dw_target = weight_grad_.data();
      if (s != 0) {
        dw_target =
            ws.zeroed(kGmat, Shape::of(out_channels_, cr)).data();
      }
      if (direct && use_pair()) {
        // Pair-interleaved backward (see use_pair()): pad the slice's
        // gradient and input pairs into 16-lane rows, run ONE dW sweep
        // over all of them (the k==3 kernel folds each tap once per
        // slice), then the dx kernel per pair into a 16-wide scratch
        // de-interleaved below. tpad == pad for these "same" geometries,
        // so one pair layout serves all three roles.
        const std::size_t ph = geometry_.in_h + 2 * pad;
        const std::size_t pgh = oh + 2 * tpad;
        const std::size_t nbuf = (b_end - b_begin + 1) / 2;
        const std::size_t pin_stride = geometry_.in_channels * ph * 16;
        const std::size_t pg_stride = out_channels_ * pgh * 16;
        Tensor& pg =
            ws.zeroed_once(kPadG, Shape::of(nbuf * pg_stride + kDirectSlack));
        Tensor& pin =
            ws.zeroed_once(kPadIn, Shape::of(nbuf * pin_stride + kDirectSlack));
        Tensor& sc = ws.get(
            kPairOut, Shape::of(geometry_.in_channels * geometry_.in_h * 16));
        for (std::size_t i = 0; i < nbuf; ++i) {
          const std::size_t b = b_begin + 2 * i;
          const bool has_b = b + 1 < b_end;
          const float* gb = grad_output.data() + b * out_channels_ * plane;
          pad_planes_pair(gb, has_b ? gb + out_channels_ * plane : nullptr,
                          out_channels_, oh, ow, tpad,
                          pg.data() + i * pg_stride);
          const float* ib = cached_in_.data() + b * image_size;
          pad_planes_pair(ib, has_b ? ib + image_size : nullptr,
                          geometry_.in_channels, geometry_.in_h,
                          geometry_.in_w, pad, pin.data() + i * pin_stride);
        }
        conv_dw_padded<16>(pin.data(), pin_stride, ph * 16, 16, pg.data(),
                           pg_stride, pgh * 16, 16, nbuf, tpad, out_channels_,
                           geometry_.in_channels, k, oh, ow, dw_target);
        for (std::size_t i = 0; i < nbuf; ++i) {
          const std::size_t b = b_begin + 2 * i;
          const bool has_b = b + 1 < b_end;
          conv_bwd_dx_padded<16>(pg.data() + i * pg_stride, pgh * 16, 16,
                                 weight_.data(), out_channels_,
                                 geometry_.in_channels, k, geometry_.in_h,
                                 /*wid=*/16, sc.data());
          for (std::size_t ci = 0; ci < geometry_.in_channels; ++ci) {
            for (std::size_t y = 0; y < geometry_.in_h; ++y) {
              const float* __restrict__ srow =
                  sc.data() + (ci * geometry_.in_h + y) * 16;
              float* __restrict__ da =
                  dx.data() + b * image_size +
                  (ci * geometry_.in_h + y) * geometry_.in_w;
              for (std::size_t x = 0; x < geometry_.in_w; ++x) da[x] = srow[x];
              if (has_b) {
                float* __restrict__ db = da + image_size;
                for (std::size_t x = 0; x < geometry_.in_w; ++x) {
                  db[x] = srow[8 + x];
                }
              }
            }
          }
        }
        continue;
      }
      if (direct) {
        // Pad the whole slice before the kernels: one dW sweep over the
        // slice's images amortizes each tap's horizontal fold across
        // them (k==3 layers) or walks them in the pinned per-image
        // order (generic k) — see conv_dw_chans.
        const std::size_t nimg = b_end - b_begin;
        const std::size_t pin_stride = geometry_.in_channels * pplane;
        const std::size_t pg_stride = out_channels_ * pgplane;
        Tensor& pg =
            ws.zeroed_once(kPadG, Shape::of(nimg * pg_stride + kDirectSlack));
        Tensor& pin =
            ws.zeroed_once(kPadIn, Shape::of(nimg * pin_stride + kDirectSlack));
        for (std::size_t i = 0; i < nimg; ++i) {
          const std::size_t b = b_begin + i;
          pad_planes(grad_output.data() + b * out_channels_ * plane,
                     grad_output.numel() - b * out_channels_ * plane,
                     out_channels_, oh, ow, tpad, extra_right,
                     pg.data() + i * pg_stride);
          pad_planes(cached_in_.data() + b * image_size,
                     cached_in_.numel() - b * image_size, geometry_.in_channels,
                     geometry_.in_h, geometry_.in_w, pad, /*extra_right=*/0,
                     pin.data() + i * pin_stride);
        }
        if (width == 8) {
          conv_dw_padded<8>(pin.data(), pin_stride, pplane, pw, pg.data(),
                            pg_stride, pgplane, pgw, nimg, tpad, out_channels_,
                            geometry_.in_channels, k, oh, ow, dw_target);
          for (std::size_t i = 0; i < nimg; ++i) {
            conv_bwd_dx_padded<8>(pg.data() + i * pg_stride, pgplane, pgw,
                                  weight_.data(), out_channels_,
                                  geometry_.in_channels, k, geometry_.in_h,
                                  geometry_.in_w,
                                  dx.data() + (b_begin + i) * image_size);
          }
        } else {
          conv_dw_padded<16>(pin.data(), pin_stride, pplane, pw, pg.data(),
                             pg_stride, pgplane, pgw, nimg, tpad,
                             out_channels_, geometry_.in_channels, k, oh, ow,
                             dw_target);
          for (std::size_t i = 0; i < nimg; ++i) {
            conv_bwd_dx_padded<16>(pg.data() + i * pg_stride, pgplane, pgw,
                                   weight_.data(), out_channels_,
                                   geometry_.in_channels, k, geometry_.in_h,
                                   geometry_.in_w,
                                   dx.data() + (b_begin + i) * image_size);
          }
        }
        continue;
      }
      Tensor& cols = ws.get(kCols, Shape::of(cr, plane));
      Tensor& dcols = ws.get(kDcols, Shape::of(cr, plane));
      // Per-worker packing scratch for the dW GEMM variant: the member
      // PackedA would race across slices.
      thread_local ops::PackedA tl_packed_g;
      for (std::size_t b = b_begin; b < b_end; ++b) {
        const float* gb = grad_output.data() + b * out_channels_ * plane;
        im2col(geometry_, cached_in_.data() + b * image_size, cols.data(),
               plane);
        // dW += g_b · cols_bᵀ.
        if (direct_dw) {
          conv_dw_direct(gb, cols.data(), out_channels_, cr, plane, dw_target);
        } else {
          ops::pack_a_into(ops::Trans::kNo, out_channels_, plane, gb, plane,
                           tl_packed_g);
          ops::gemm_prepacked(tl_packed_g, ops::Trans::kYes, cr, cols.data(),
                              plane, /*beta=*/1.0f, dw_target, cr);
        }
        // dcols_b = Wᵀ · g_b, then scatter-add into the image gradient
        // (zeroed before the fan-out; each image's block is disjoint).
        ops::gemm_prepacked(packed_wt_, ops::Trans::kNo, plane, gb, plane,
                            /*beta=*/0.0f, dcols.data(), plane);
        col2im(geometry_, dcols.data(), plane, dx.data() + b * image_size);
      }
    }
  });
  // Fold the slice partials in ascending slice order — the fixed-slot
  // reduction that makes the decomposition worker-count independent.
  for (std::size_t s = 1; s < n_slices; ++s) {
    const Tensor& partial = arena_.slot(s).at(kGmat);
    float* __restrict__ dst = weight_grad_.data();
    const float* __restrict__ src = partial.data();
    const std::size_t count = out_channels_ * cr;
    for (std::size_t i = 0; i < count; ++i) dst[i] += src[i];
  }
  if (direct) {
    // The direct dx kernels overwrite every element (no scatter-add), so
    // dx needed no zero pass; nothing else to do.
  }
  return dx;
}

std::vector<ParamView> Conv2D::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(geometry_.kernel_h) +
         ", s=" + std::to_string(geometry_.stride) + ", p=" + std::to_string(geometry_.pad) +
         ")";
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::unique_ptr<Conv2D>(new Conv2D(*this));
  copy->weight_grad_.fill(0.0f);
  copy->bias_grad_.fill(0.0f);
  copy->in_shape_ = Shape();
  copy->has_cols_ = false;
  copy->cached_in_ = Tensor();
  return copy;
}

}  // namespace fedcav::nn
