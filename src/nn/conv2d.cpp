#include "src/nn/conv2d.hpp"

#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

Conv2D::Conv2D(std::size_t in_channels, std::size_t out_channels, std::size_t kernel,
               std::size_t stride, std::size_t pad, std::size_t in_h, std::size_t in_w,
               Rng& rng)
    : geometry_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      weight_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_(Shape::of(out_channels)),
      weight_grad_(Shape::of(out_channels, in_channels * kernel * kernel)),
      bias_grad_(Shape::of(out_channels)) {
  geometry_.validate();
  FEDCAV_REQUIRE(out_channels > 0, "Conv2D: zero output channels");
  he_normal(weight_, geometry_.col_rows(), rng);
}

Tensor Conv2D::forward(const Tensor& input, bool training) {
  const auto& s = input.shape();
  FEDCAV_REQUIRE(s.rank() == 4 && s[1] == geometry_.in_channels &&
                     s[2] == geometry_.in_h && s[3] == geometry_.in_w,
                 "Conv2D::forward: input shape mismatch, got " + s.to_string());
  const std::size_t batch = s[0];
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;

  if (training) {
    cached_input_ = input;
    cached_cols_.assign(batch, Tensor());
  }

  Tensor out(Shape::of(batch, out_channels_, oh, ow));
  Tensor cols(Shape::of(geometry_.col_rows(), geometry_.col_cols()));
  Tensor result(Shape::of(out_channels_, oh * ow));
  // The weight matrix is invariant across the batch, so pack its GEMM
  // panels once and reuse them for every image's im2col product.
  const ops::PackedA packed_w = ops::pack_a(
      ops::Trans::kNo, out_channels_, geometry_.col_rows(), weight_.data(),
      geometry_.col_rows());
  for (std::size_t b = 0; b < batch; ++b) {
    im2col(geometry_, input.data() + b * image_size, cols);
    if (training) cached_cols_[b] = cols;
    ops::gemm_prepacked(packed_w, ops::Trans::kNo, geometry_.col_cols(),
                        cols.data(), geometry_.col_cols(), /*beta=*/0.0f,
                        result.data(), geometry_.col_cols());
    float* dst = out.data() + b * out_channels_ * oh * ow;
    for (std::size_t c = 0; c < out_channels_; ++c) {
      const float bc = bias_(c);
      const float* src = result.data() + c * oh * ow;
      float* d = dst + c * oh * ow;
      for (std::size_t i = 0; i < oh * ow; ++i) d[i] = src[i] + bc;
    }
  }
  return out;
}

Tensor Conv2D::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_input_.numel() > 0, "Conv2D::backward before forward(training=true)");
  const std::size_t batch = cached_input_.shape()[0];
  const std::size_t oh = geometry_.out_h();
  const std::size_t ow = geometry_.out_w();
  FEDCAV_REQUIRE(grad_output.shape().rank() == 4 && grad_output.shape()[0] == batch &&
                     grad_output.shape()[1] == out_channels_ &&
                     grad_output.shape()[2] == oh && grad_output.shape()[3] == ow,
                 "Conv2D::backward: grad_output shape mismatch");

  const std::size_t image_size = geometry_.in_channels * geometry_.in_h * geometry_.in_w;
  Tensor dx(cached_input_.shape());
  Tensor dcols(Shape::of(geometry_.col_rows(), geometry_.col_cols()));
  // W^T is the A operand of every per-image dcols GEMM; pack it once for
  // the whole batch.
  const ops::PackedA packed_wt = ops::pack_a(
      ops::Trans::kYes, geometry_.col_rows(), out_channels_, weight_.data(),
      geometry_.col_rows());

  for (std::size_t b = 0; b < batch; ++b) {
    // View this image's output gradient as (C_out × OH*OW).
    const float* gptr = grad_output.data() + b * out_channels_ * oh * ow;
    Tensor gmat(Shape::of(out_channels_, oh * ow),
                std::vector<float>(gptr, gptr + out_channels_ * oh * ow));

    // db += row sums of gmat.
    for (std::size_t c = 0; c < out_channels_; ++c) {
      double acc = 0.0;
      const float* row = gmat.data() + c * oh * ow;
      for (std::size_t i = 0; i < oh * ow; ++i) acc += static_cast<double>(row[i]);
      bias_grad_(c) += static_cast<float>(acc);
    }

    // dW += gmat · cols^T  ((C_out × OHOW) · (OHOW × col_rows)),
    // accumulated straight into the grad buffer via beta=1.
    ops::gemm(ops::Trans::kNo, ops::Trans::kYes, gmat, cached_cols_[b],
              weight_grad_, /*beta=*/1.0f);

    // dcols = W^T · gmat  ((col_rows × C_out) · (C_out × OHOW)).
    ops::gemm_prepacked(packed_wt, ops::Trans::kNo, oh * ow, gmat.data(),
                        oh * ow, /*beta=*/0.0f, dcols.data(), oh * ow);
    col2im(geometry_, dcols, dx.data() + b * image_size);
  }
  return dx;
}

std::vector<ParamView> Conv2D::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

std::string Conv2D::name() const {
  return "Conv2D(" + std::to_string(geometry_.in_channels) + "->" +
         std::to_string(out_channels_) + ", k=" + std::to_string(geometry_.kernel_h) +
         ", s=" + std::to_string(geometry_.stride) + ", p=" + std::to_string(geometry_.pad) +
         ")";
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto copy = std::unique_ptr<Conv2D>(new Conv2D(*this));
  copy->weight_grad_.fill(0.0f);
  copy->bias_grad_.fill(0.0f);
  copy->cached_input_ = Tensor();
  copy->cached_cols_.clear();
  return copy;
}

}  // namespace fedcav::nn
