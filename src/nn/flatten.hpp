// Flatten: (B × C × H × W) -> (B × C*H*W). Bridges conv and dense stacks.
#pragma once

#include "src/nn/layer.hpp"

namespace fedcav::nn {

class Flatten : public Layer {
 public:
  const Tensor& forward(const Tensor& input, bool training) override;
  const Tensor& backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> clone() const override;

 private:
  enum Slot : std::size_t { kOut = 0, kDx };
  Shape input_shape_;
  Workspace ws_;
};

}  // namespace fedcav::nn
