#include "src/nn/init.hpp"

#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::nn {

void xavier_uniform(Tensor& w, std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  FEDCAV_REQUIRE(fan_in + fan_out > 0, "xavier_uniform: zero fan");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (std::size_t i = 0, n = w.numel(); i < n; ++i) w[i] = rng.uniform_f(-a, a);
}

void he_normal(Tensor& w, std::size_t fan_in, Rng& rng) {
  FEDCAV_REQUIRE(fan_in > 0, "he_normal: zero fan_in");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (std::size_t i = 0, n = w.numel(); i < n; ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, stddev));
  }
}

}  // namespace fedcav::nn
