// Bounded pool of model replicas for cohort-size-independent rounds.
//
// Before PR 5 every fl::Client owned a full model replica, making a
// simulation's memory O(N_clients × model). The pool inverts that: it
// lazily clones at most `max_replicas` models from a prototype and leases
// them to participants for the duration of one local-update call. With
// K ≈ thread-pool size, peak model memory is O(K × model) no matter how
// many clients the cohort has (DESIGN.md §11).
//
// Replicas are interchangeable by construction: Client::local_update
// always starts from set_weights(global) and builds a fresh Sgd optimizer,
// so no training state survives inside a pooled model between leases.
// Workspaces and grow-only tensor capacity DO survive, which is exactly
// the point — steady-state rounds reuse K warmed-up replicas with zero
// tensor heap allocations.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "src/nn/model.hpp"

namespace fedcav::nn {

class ReplicaPool {
 public:
  /// RAII lease: returns the model to the pool on destruction. Movable,
  /// not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(ReplicaPool* pool, std::unique_ptr<Model> model)
        : pool_(pool), model_(std::move(model)) {}
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), model_(std::move(other.model_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        model_ = std::move(other.model_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    Model& model() { return *model_; }
    Model* operator->() { return model_.get(); }
    explicit operator bool() const { return model_ != nullptr; }

   private:
    void release();

    ReplicaPool* pool_ = nullptr;
    std::unique_ptr<Model> model_;
  };

  /// `prototype` must outlive the pool; replicas are deep clones of it.
  /// `max_replicas` must be >= the number of threads that may hold a
  /// lease concurrently or acquire() deadlocks (the server sizes it as
  /// pool-size + 1: workers plus the possibly-inline caller).
  ReplicaPool(const Model& prototype, std::size_t max_replicas);

  /// Check a replica out, cloning lazily up to max_replicas, then
  /// blocking until one is returned.
  Lease acquire();

  std::size_t max_replicas() const { return max_replicas_; }
  /// Replicas materialized so far (monotone, <= max_replicas). This is
  /// the K of the O(K × model) bound.
  std::size_t created() const;
  /// Leases currently outstanding.
  std::size_t in_use() const;

 private:
  friend class Lease;
  void put_back(std::unique_ptr<Model> model);

  const Model& prototype_;
  const std::size_t max_replicas_;
  mutable std::mutex mu_;
  std::condition_variable available_;
  std::vector<std::unique_ptr<Model>> idle_;
  std::size_t created_ = 0;
  std::size_t in_use_ = 0;
};

}  // namespace fedcav::nn
