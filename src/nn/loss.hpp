// Loss functions. Each returns the mean loss over the batch from
// forward() and the gradient w.r.t. the logits from backward().
//
// SoftmaxCrossEntropy is the paper's ℓ (Eq. 1). FocalLoss is provided as
// an extension: Fed-Focal (related work [17]) uses it for client
// selection, and it slots into the same training loop.
//
// backward() returns a reference to a loss-owned gradient buffer, valid
// until the next forward()/backward() on the same object (mirrors the
// Layer buffer-ownership contract).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.hpp"

namespace fedcav::nn {

class Loss {
 public:
  virtual ~Loss() = default;

  /// Mean loss of `logits` (batch × classes) against integer `labels`.
  /// Caches what backward() needs.
  virtual float forward(const Tensor& logits, const std::vector<std::size_t>& labels) = 0;

  /// d(mean loss)/d(logits) for the cached batch.
  virtual const Tensor& backward() = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<Loss> clone() const = 0;
};

/// Numerically-stable fused softmax + cross-entropy. forward() runs an
/// online softmax (running max + rescaled partial sum) in a single pass
/// over each logit row and never materialises a probability tensor;
/// backward() reconstructs p_j = exp(x_j - m) / s from the cached logits
/// and per-row (m, s) statistics.
class SoftmaxCrossEntropy : public Loss {
 public:
  float forward(const Tensor& logits, const std::vector<std::size_t>& labels) override;
  const Tensor& backward() override;
  std::string name() const override { return "SoftmaxCrossEntropy"; }
  std::unique_ptr<Loss> clone() const override;

 private:
  Tensor logits_;              // cached batch (capacity-reusing copy)
  std::vector<float> rowmax_;  // per-row running max m
  std::vector<float> rowsum_;  // per-row sum of exp(x_j - m)
  std::vector<double> rowloss_;  // per-row -log p_y, folded in row order
  std::vector<std::size_t> labels_;
  Tensor grad_;
};

/// Focal loss (Lin et al.): FL(p_t) = -(1-p_t)^gamma log(p_t). gamma=0
/// recovers cross-entropy.
class FocalLoss : public Loss {
 public:
  explicit FocalLoss(float gamma = 2.0f);

  float forward(const Tensor& logits, const std::vector<std::size_t>& labels) override;
  const Tensor& backward() override;
  std::string name() const override { return "FocalLoss"; }
  std::unique_ptr<Loss> clone() const override;

 private:
  float gamma_;
  Tensor probs_;
  std::vector<std::size_t> labels_;
  Tensor grad_;
};

/// Mean squared error against one-hot targets; used by gradient-check
/// tests and as a simple regression head.
class MseLoss : public Loss {
 public:
  float forward(const Tensor& logits, const std::vector<std::size_t>& labels) override;
  const Tensor& backward() override;
  std::string name() const override { return "MseLoss"; }
  std::unique_ptr<Loss> clone() const override;

 private:
  Tensor logits_;
  std::vector<std::size_t> labels_;
  Tensor grad_;
};

}  // namespace fedcav::nn
