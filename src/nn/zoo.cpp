#include "src/nn/zoo.hpp"

#include "src/nn/activation.hpp"
#include "src/nn/conv2d.hpp"
#include "src/nn/dense.hpp"
#include "src/nn/flatten.hpp"
#include "src/nn/pool2d.hpp"
#include "src/nn/residual.hpp"
#include "src/nn/sequential.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

std::unique_ptr<Model> make_mlp(std::size_t input_dim, std::size_t hidden,
                                std::size_t classes, Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Flatten>());  // accept (B × C × H × W) batches too
  net->add(std::make_unique<Dense>(input_dim, hidden, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Dense>(hidden, classes, rng));
  return std::make_unique<Model>(std::move(net), std::make_unique<SoftmaxCrossEntropy>(),
                                 "Mlp");
}

std::unique_ptr<Model> make_lenet5_lite(Rng& rng) {
  // 1×14×14 -> conv5 p2 (6×14×14) -> pool2 (6×7×7) -> conv5 (16×3×3)
  // -> dense 144->64 -> dense 64->10. Same conv/pool/dense cadence as
  // LeNet-5 at half resolution.
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2D>(kGrayChannels, 6, /*kernel=*/5, /*stride=*/1,
                                    /*pad=*/2, kGraySide, kGraySide, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));
  net->add(std::make_unique<Conv2D>(6, 16, /*kernel=*/5, /*stride=*/1, /*pad=*/0, 7, 7, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Dense>(16 * 3 * 3, 64, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Dense>(64, kNumClasses, rng));
  return std::make_unique<Model>(std::move(net), std::make_unique<SoftmaxCrossEntropy>(),
                                 "LeNet5Lite");
}

std::unique_ptr<Model> make_cnn9_lite(Rng& rng) {
  // Double-conv blocks with pooling, then a two-layer head: 9 weighted /
  // activation stages mirroring the paper's "9-layers CNN" for FMNIST.
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2D>(kGrayChannels, 8, 3, 1, 1, kGraySide, kGraySide, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2D>(8, 8, 3, 1, 1, kGraySide, kGraySide, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));  // 7×7
  net->add(std::make_unique<Conv2D>(8, 16, 3, 1, 1, 7, 7, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Conv2D>(16, 16, 3, 1, 1, 7, 7, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<MaxPool2D>(2, 2));  // 3×3
  net->add(std::make_unique<Flatten>());
  net->add(std::make_unique<Dense>(16 * 3 * 3, 64, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<Dense>(64, kNumClasses, rng));
  return std::make_unique<Model>(std::move(net), std::make_unique<SoftmaxCrossEntropy>(),
                                 "Cnn9Lite");
}

std::unique_ptr<Model> make_resnet_lite(Rng& rng) {
  // Stem conv, three residual stages (8 -> 16 -> 32 channels with
  // stride-2 downsampling), global average pool, linear head — the
  // ResNet-18 topology at reduced width/depth for 3×16×16 inputs.
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Conv2D>(kColorChannels, 8, 3, 1, 1, kColorSide, kColorSide, rng));
  net->add(std::make_unique<ReLU>());
  net->add(std::make_unique<ResidualBlock>(8, 8, 1, kColorSide, kColorSide, rng));
  net->add(std::make_unique<ResidualBlock>(8, 16, 2, kColorSide, kColorSide, rng));  // 8×8
  net->add(std::make_unique<ResidualBlock>(16, 32, 2, 8, 8, rng));                   // 4×4
  net->add(std::make_unique<GlobalAvgPool>());
  net->add(std::make_unique<Dense>(32, kNumClasses, rng));
  return std::make_unique<Model>(std::move(net), std::make_unique<SoftmaxCrossEntropy>(),
                                 "ResNetLite");
}

ModelBuilder model_builder(const std::string& name) {
  if (name == "mlp") {
    return [](Rng& rng) {
      return make_mlp(kGraySide * kGraySide, 32, kNumClasses, rng);
    };
  }
  if (name == "lenet5") return [](Rng& rng) { return make_lenet5_lite(rng); };
  if (name == "cnn9") return [](Rng& rng) { return make_cnn9_lite(rng); };
  if (name == "resnet") return [](Rng& rng) { return make_resnet_lite(rng); };
  throw Error("model_builder: unknown model '" + name + "'");
}

}  // namespace fedcav::nn
