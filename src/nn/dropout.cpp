#include "src/nn/dropout.hpp"

#include "src/utils/error.hpp"

namespace fedcav::nn {

Dropout::Dropout(float drop_probability, std::uint64_t seed)
    : p_(drop_probability), seed_(seed), rng_(seed) {
  FEDCAV_REQUIRE(drop_probability >= 0.0f && drop_probability < 1.0f,
                 "Dropout: probability must be in [0, 1)");
}

const Tensor& Dropout::forward(const Tensor& input, bool training) {
  if (!training || p_ == 0.0f) {
    active_ = false;
    return input;  // identity: pass the caller's buffer straight through
  }
  // Inverted dropout: surviving activations scaled by 1/(1-p) so
  // inference needs no rescaling.
  const float scale = 1.0f / (1.0f - p_);
  mask_.resize_uninitialized(input.shape());
  active_ = true;
  Tensor& out = ws_.get(kOut, input.shape());
  const float* pi = input.data();
  float* pm = mask_.data();
  float* po = out.data();
  for (std::size_t i = 0, n = out.numel(); i < n; ++i) {
    const bool keep = !rng_.bernoulli(static_cast<double>(p_));
    pm[i] = keep ? scale : 0.0f;
    po[i] = pi[i] * pm[i];
  }
  return out;
}

const Tensor& Dropout::backward(const Tensor& grad_output) {
  if (!active_) return grad_output;  // eval-mode or p == 0 forward
  FEDCAV_REQUIRE(mask_.same_shape(grad_output), "Dropout::backward: shape mismatch");
  Tensor& dx = ws_.get(kDx, grad_output.shape());
  const float* pg = grad_output.data();
  float* pd = dx.data();
  const float* pm = mask_.data();
  for (std::size_t i = 0, n = dx.numel(); i < n; ++i) pd[i] = pg[i] * pm[i];
  return dx;
}

std::string Dropout::name() const {
  return "Dropout(p=" + std::to_string(p_) + ")";
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

}  // namespace fedcav::nn
