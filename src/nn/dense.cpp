#include "src/nn/dense.hpp"

#include "src/nn/init.hpp"
#include "src/tensor/gemm.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Shape::of(out_features, in_features)),
      bias_(Shape::of(out_features)),
      weight_grad_(Shape::of(out_features, in_features)),
      bias_grad_(Shape::of(out_features)) {
  FEDCAV_REQUIRE(in_features > 0 && out_features > 0, "Dense: zero-sized layer");
  he_normal(weight_, in_features, rng);
}

const Tensor& Dense::forward(const Tensor& input, bool training) {
  FEDCAV_REQUIRE(input.shape().rank() == 2 && input.shape()[1] == in_,
                 "Dense::forward: expected (batch × " + std::to_string(in_) +
                     "), got " + input.shape().to_string());
  if (training) cached_input_ = input;  // capacity-reusing copy
  const std::size_t batch = input.shape()[0];
  Tensor& out = ws_.get(kOut, Shape::of(batch, out_));
  ops::matmul_transposed_b(input, weight_, out);  // (B×in)·(out×in)^T
  for (std::size_t b = 0; b < batch; ++b) {
    float* row = out.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) row[o] += bias_(o);
  }
  return out;
}

const Tensor& Dense::backward(const Tensor& grad_output) {
  FEDCAV_REQUIRE(cached_input_.numel() > 0, "Dense::backward before forward(training=true)");
  const std::size_t batch = cached_input_.shape()[0];
  FEDCAV_REQUIRE(grad_output.shape().rank() == 2 && grad_output.shape()[0] == batch &&
                     grad_output.shape()[1] == out_,
                 "Dense::backward: grad_output shape mismatch");

  // dW += dY^T X  (out×B · B×in), accumulated straight into the grad
  // buffer via beta=1 over the raw views — no temporary and no second pass.
  ops::gemm(ops::Trans::kYes, ops::Trans::kNo, out_, in_, batch,
            grad_output.data(), out_, cached_input_.data(), in_,
            /*beta=*/1.0f, weight_grad_.data(), in_);

  // db += column sums of dY.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = grad_output.data() + b * out_;
    for (std::size_t o = 0; o < out_; ++o) bias_grad_(o) += row[o];
  }

  // dX = dY W  (B×out · out×in).
  Tensor& dx = ws_.get(kDx, Shape::of(batch, in_));
  ops::matmul(grad_output, weight_, dx);
  return dx;
}

std::vector<ParamView> Dense::params() {
  return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

std::string Dense::name() const {
  return "Dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

std::unique_ptr<Layer> Dense::clone() const {
  auto copy = std::unique_ptr<Dense>(new Dense(*this));
  copy->weight_grad_.fill(0.0f);
  copy->bias_grad_.fill(0.0f);
  copy->cached_input_ = Tensor();
  return copy;
}

}  // namespace fedcav::nn
