// Deterministic fault injection for the in-memory comm fabric.
//
// A FaultPlan describes how an unreliable edge network misbehaves:
// per-message drop / duplicate / reorder probabilities, payload
// corruption and truncation, extra latency jitter, and per-round client
// crash windows (a crashed endpoint neither sends nor receives). Every
// decision is drawn from a *per-link* RNG stream seeded from
// (plan seed, src, dst), so the injected fault sequence depends only on
// each link's own message order — never on how pool threads interleave
// across links. That is what makes a chaos run bit-reproducible with
// any thread-pool size.
//
// A default-constructed plan is inert: `enabled()` is false and the
// fabric skips the fault path entirely, byte-for-byte reproducing
// fault-free traffic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fedcav::comm {

/// One endpoint's outage: the endpoint with fabric rank `rank` (server
/// is rank 0, client i is rank i+1) is offline for every round in
/// [first_round, last_round], inclusive, 1-based — it rejoins on round
/// last_round + 1. Messages to or from an offline endpoint are dropped
/// at send time and counted as crash drops.
struct CrashWindow {
  std::size_t rank = 0;
  std::size_t first_round = 1;
  std::size_t last_round = 1;

  bool operator==(const CrashWindow&) const = default;
};

struct FaultPlan {
  /// Root seed for the per-link decision streams.
  std::uint64_t seed = 0;
  /// Probability a message is silently lost in flight.
  double drop_prob = 0.0;
  /// Probability a message is delivered twice (a stale second copy the
  /// receiver must recognize and discard).
  double duplicate_prob = 0.0;
  /// Probability a message overtakes the previously queued message on
  /// the same link.
  double reorder_prob = 0.0;
  /// Probability one bit of the wire image is flipped in flight.
  double corrupt_prob = 0.0;
  /// Probability the wire image is cut to a strict prefix.
  double truncate_prob = 0.0;
  /// Extra per-message latency, drawn uniformly from [0, jitter_s]
  /// seconds of simulated time.
  double jitter_s = 0.0;
  /// Scheduled outages (see CrashWindow).
  std::vector<CrashWindow> crashes;

  /// True when any fault can actually fire. The fabric bypasses the
  /// whole injection path (including RNG draws) when this is false.
  bool enabled() const;

  /// True when `rank` is inside a crash window at `round`.
  bool offline(std::size_t rank, std::size_t round) const;

  /// Throws fedcav::Error when a probability is outside [0, 1], the
  /// jitter is negative, or a crash window is malformed or names a rank
  /// outside [0, num_endpoints).
  void validate(std::size_t num_endpoints) const;

  bool operator==(const FaultPlan&) const = default;
};

/// Cumulative fabric-wide fault accounting. Conservation invariant the
/// chaos suite pins: for every fabric,
///   messages_sent + duplicated ==
///       delivered + dropped + crash_dropped + pending_messages().
struct FaultStats {
  std::uint64_t dropped = 0;        // lost to drop_prob
  std::uint64_t crash_dropped = 0;  // lost to a crash window
  std::uint64_t duplicated = 0;     // extra copies enqueued
  std::uint64_t reordered = 0;      // messages that overtook a neighbor
  std::uint64_t corrupted = 0;      // wire images with a flipped bit
  std::uint64_t truncated = 0;      // wire images cut short
  std::uint64_t delivered = 0;      // messages popped by a receiver
  /// Total injected extra latency (simulated seconds).
  double jitter_seconds = 0.0;
};

/// Parse a crash schedule of the form "rank:first-last[,rank:first-last...]"
/// (e.g. "3:2-5,7:1-1"). Ranks are fabric ranks (client id + 1 when the
/// schedule targets clients). Throws fedcav::Error on malformed specs.
std::vector<CrashWindow> parse_crash_spec(const std::string& spec);

}  // namespace fedcav::comm
