#include "src/comm/compression.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/utils/error.hpp"

namespace fedcav::comm {

std::size_t SparseDelta::wire_size() const {
  return 8 /*dim*/ + 8 /*count*/ + indices.size() * (sizeof(std::uint32_t) + sizeof(float));
}

ByteBuffer SparseDelta::encode() const {
  FEDCAV_REQUIRE(indices.size() == values.size(), "SparseDelta: index/value mismatch");
  ByteBuffer buf;
  buf.reserve(wire_size());
  write_u64(buf, dim);
  write_u64(buf, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    // u32 index then f32 value, little-endian.
    for (int b = 0; b < 4; ++b) {
      buf.push_back(static_cast<std::uint8_t>((indices[i] >> (8 * b)) & 0xff));
    }
    write_f32(buf, values[i]);
  }
  return buf;
}

SparseDelta SparseDelta::decode(ByteReader& reader) {
  SparseDelta out;
  out.dim = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  FEDCAV_REQUIRE(count <= out.dim, "SparseDelta: more entries than dimensions");
  out.indices.resize(count);
  out.values.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t idx = 0;
    for (int b = 0; b < 4; ++b) {
      idx |= static_cast<std::uint32_t>(reader.read_u8()) << (8 * b);
    }
    out.indices[i] = idx;
    out.values[i] = reader.read_f32();
    FEDCAV_REQUIRE(idx < out.dim, "SparseDelta: index out of range");
  }
  return out;
}

SparseDelta topk_compress(std::span<const float> dense, double ratio) {
  FEDCAV_REQUIRE(ratio > 0.0 && ratio <= 1.0, "topk_compress: ratio must be in (0, 1]");
  FEDCAV_REQUIRE(!dense.empty(), "topk_compress: empty input");
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(ratio * static_cast<double>(dense.size()))));

  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  // Strict weak ordering with an index tie-break: equal-magnitude entries
  // otherwise make the selected set implementation-defined (nth_element may
  // keep either side of the pivot), which breaks cross-run determinism of
  // the sparsified wire image. Lower index wins ties.
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(dense[a]);
                     const float mb = std::abs(dense[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());

  SparseDelta out;
  out.dim = dense.size();
  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t idx : out.indices) out.values.push_back(dense[idx]);
  return out;
}

std::vector<float> decompress(const SparseDelta& sparse) {
  std::vector<float> dense(sparse.dim, 0.0f);
  add_sparse(dense, sparse);
  return dense;
}

void add_sparse(std::span<float> y, const SparseDelta& sparse) {
  FEDCAV_REQUIRE(y.size() == sparse.dim, "add_sparse: dimension mismatch");
  FEDCAV_REQUIRE(sparse.indices.size() == sparse.values.size(),
                 "add_sparse: index/value mismatch");
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    y[sparse.indices[i]] += sparse.values[i];
  }
}

}  // namespace fedcav::comm
