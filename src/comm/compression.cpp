#include "src/comm/compression.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <numeric>

#include "src/utils/error.hpp"

namespace fedcav::comm {

namespace {

/// The k largest-|v| coordinates of `dense`, ascending, with the same
/// lower-index-wins tie-break topk_compress uses (cross-run determinism
/// of the wire image).
std::vector<std::uint32_t> topk_indices(std::span<const float> dense, std::size_t k) {
  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(dense[a]);
                     const float mb = std::abs(dense[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());
  return order;
}

}  // namespace

std::size_t SparseDelta::wire_size() const {
  return 8 /*dim*/ + 8 /*count*/ + indices.size() * (sizeof(std::uint32_t) + sizeof(float));
}

ByteBuffer SparseDelta::encode() const {
  FEDCAV_REQUIRE(indices.size() == values.size(), "SparseDelta: index/value mismatch");
  ByteBuffer buf;
  buf.reserve(wire_size());
  write_u64(buf, dim);
  write_u64(buf, indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    // u32 index then f32 value, little-endian.
    for (int b = 0; b < 4; ++b) {
      buf.push_back(static_cast<std::uint8_t>((indices[i] >> (8 * b)) & 0xff));
    }
    write_f32(buf, values[i]);
  }
  return buf;
}

SparseDelta SparseDelta::decode(ByteReader& reader) {
  SparseDelta out;
  out.dim = reader.read_u64();
  const std::uint64_t count = reader.read_u64();
  FEDCAV_REQUIRE(count <= out.dim, "SparseDelta: more entries than dimensions");
  out.indices.resize(count);
  out.values.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint32_t idx = 0;
    for (int b = 0; b < 4; ++b) {
      idx |= static_cast<std::uint32_t>(reader.read_u8()) << (8 * b);
    }
    out.indices[i] = idx;
    out.values[i] = reader.read_f32();
    FEDCAV_REQUIRE(idx < out.dim, "SparseDelta: index out of range");
  }
  return out;
}

SparseDelta topk_compress(std::span<const float> dense, double ratio) {
  FEDCAV_REQUIRE(ratio > 0.0 && ratio <= 1.0, "topk_compress: ratio must be in (0, 1]");
  FEDCAV_REQUIRE(!dense.empty(), "topk_compress: empty input");
  const std::size_t k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(ratio * static_cast<double>(dense.size()))));

  std::vector<std::uint32_t> order(dense.size());
  std::iota(order.begin(), order.end(), 0u);
  // Strict weak ordering with an index tie-break: equal-magnitude entries
  // otherwise make the selected set implementation-defined (nth_element may
  // keep either side of the pivot), which breaks cross-run determinism of
  // the sparsified wire image. Lower index wins ties.
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(dense[a]);
                     const float mb = std::abs(dense[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());

  SparseDelta out;
  out.dim = dense.size();
  out.indices = std::move(order);
  out.values.reserve(k);
  for (std::uint32_t idx : out.indices) out.values.push_back(dense[idx]);
  return out;
}

std::vector<float> decompress(const SparseDelta& sparse) {
  std::vector<float> dense(sparse.dim, 0.0f);
  add_sparse(dense, sparse);
  return dense;
}

void add_sparse(std::span<float> y, const SparseDelta& sparse) {
  FEDCAV_REQUIRE(y.size() == sparse.dim, "add_sparse: dimension mismatch");
  FEDCAV_REQUIRE(sparse.indices.size() == sparse.values.size(),
                 "add_sparse: index/value mismatch");
  for (std::size_t i = 0; i < sparse.indices.size(); ++i) {
    y[sparse.indices[i]] += sparse.values[i];
  }
}

// ---- Quantized wire format -----------------------------------------

QuantMode quant_mode_from_string(const std::string& name) {
  if (name == "none") return QuantMode::kNone;
  if (name == "fp16") return QuantMode::kFp16;
  if (name == "int8") return QuantMode::kInt8;
  FEDCAV_REQUIRE(false, "quant_mode_from_string: unknown mode '" + name + "'");
  return QuantMode::kNone;  // unreachable
}

std::string to_string(QuantMode mode) {
  switch (mode) {
    case QuantMode::kNone: return "none";
    case QuantMode::kFp16: return "fp16";
    case QuantMode::kInt8: return "int8";
  }
  return "none";
}

std::uint16_t f32_to_f16(float value) {
  std::uint32_t x = 0;
  std::memcpy(&x, &value, sizeof(x));
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t exp32 = (x >> 23) & 0xffu;
  std::uint32_t mant = x & 0x7fffffu;
  if (exp32 == 0xffu) {  // inf / NaN: keep the class, force a quiet payload
    return static_cast<std::uint16_t>(sign | 0x7c00u | (mant != 0 ? 0x200u : 0u));
  }
  const std::int32_t exp = static_cast<std::int32_t>(exp32) - 127 + 15;
  if (exp >= 0x1f) return static_cast<std::uint16_t>(sign | 0x7c00u);  // overflow
  if (exp <= 0) {
    if (exp < -10) return sign;  // rounds to ±0
    mant |= 0x800000u;           // implicit bit of the f32 significand
    const std::uint32_t shift = static_cast<std::uint32_t>(14 - exp);  // 14..24
    std::uint32_t half = mant >> shift;
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  std::uint32_t half = (static_cast<std::uint32_t>(exp) << 10) | (mant >> 13);
  const std::uint32_t rem = mant & 0x1fffu;
  // Rounding may carry through the significand into the exponent (and,
  // at the top, into infinity) — the bit layout makes that carry exact.
  if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float f16_to_f32(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  std::uint32_t mant = half & 0x3ffu;
  std::uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;  // ±0
    } else {
      // Subnormal half: normalize into the f32 field.
      std::uint32_t shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3ffu;
      // Subnormal value = 0.mant · 2^-14; after normalizing (shift
      // places), the biased f32 exponent is 127 - 14 - shift.
      x = sign | ((127u - 14u - shift) << 23) | (mant << 13);
    }
  } else if (exp == 0x1fu) {
    x = sign | 0x7f800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15u + 127u) << 23) | (mant << 13);
  }
  float out = 0.0f;
  std::memcpy(&out, &x, sizeof(out));
  return out;
}

std::size_t QuantizedDelta::count() const {
  if (mask.empty()) return dim;
  std::size_t kept = 0;
  for (std::uint8_t byte : mask) {
    kept += static_cast<std::size_t>(std::popcount(byte));
  }
  return kept;
}

std::size_t QuantizedDelta::wire_size() const {
  return 1 /*mode*/ + 8 /*dim*/ + 8 /*mask bytes*/ + mask.size() +
         8 /*blocks*/ + scales.size() * 2 * sizeof(float) +
         8 /*data bytes*/ + data.size();
}

ByteBuffer QuantizedDelta::encode() const {
  ByteBuffer buf;
  buf.reserve(wire_size());
  write_u8(buf, static_cast<std::uint8_t>(mode));
  write_u64(buf, dim);
  write_u64(buf, mask.size());
  buf.insert(buf.end(), mask.begin(), mask.end());
  write_u64(buf, scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    write_f32(buf, scales[i]);
    write_f32(buf, zero_points[i]);
  }
  write_u64(buf, data.size());
  buf.insert(buf.end(), data.begin(), data.end());
  return buf;
}

QuantizedDelta QuantizedDelta::decode(ByteReader& reader) {
  QuantizedDelta out;
  const std::uint8_t mode_tag = reader.read_u8();
  FEDCAV_REQUIRE(mode_tag == static_cast<std::uint8_t>(QuantMode::kFp16) ||
                     mode_tag == static_cast<std::uint8_t>(QuantMode::kInt8),
                 "QuantizedDelta: bad mode tag");
  out.mode = static_cast<QuantMode>(mode_tag);
  out.dim = reader.read_u64();
  const std::uint64_t mask_bytes = reader.read_u64();
  FEDCAV_REQUIRE(mask_bytes == 0 || mask_bytes == (out.dim - 1) / 8 + 1,
                 "QuantizedDelta: mask size mismatch");
  // Every resize below is bounded by remaining() first, so a hostile
  // length prefix throws instead of attempting a huge allocation.
  FEDCAV_REQUIRE(mask_bytes <= reader.remaining(),
                 "QuantizedDelta: mask larger than buffer");
  out.mask.resize(mask_bytes);
  for (std::uint64_t i = 0; i < mask_bytes; ++i) out.mask[i] = reader.read_u8();
  if (mask_bytes > 0 && out.dim % 8 != 0) {
    FEDCAV_REQUIRE((out.mask.back() >> (out.dim % 8)) == 0,
                   "QuantizedDelta: mask bits past dim");
  }
  const std::size_t kept = out.count();
  const std::uint64_t blocks = reader.read_u64();
  FEDCAV_REQUIRE(blocks <= reader.remaining() / 8,
                 "QuantizedDelta: block table larger than buffer");
  out.scales.resize(blocks);
  out.zero_points.resize(blocks);
  for (std::uint64_t i = 0; i < blocks; ++i) {
    out.scales[i] = reader.read_f32();
    out.zero_points[i] = reader.read_f32();
    FEDCAV_REQUIRE(std::isfinite(out.scales[i]) && std::isfinite(out.zero_points[i]),
                   "QuantizedDelta: non-finite block parameters");
  }
  const std::uint64_t data_bytes = reader.read_u64();
  if (out.mode == QuantMode::kFp16) {
    FEDCAV_REQUIRE(blocks == 0, "QuantizedDelta: fp16 carries no blocks");
    // Divide, don't multiply: 2·kept could wrap for a hostile dim.
    FEDCAV_REQUIRE(data_bytes % 2 == 0 && data_bytes / 2 == kept,
                   "QuantizedDelta: fp16 payload size mismatch");
  } else {
    FEDCAV_REQUIRE(blocks == (kept + kQuantBlock - 1) / kQuantBlock,
                   "QuantizedDelta: block count mismatch");
    FEDCAV_REQUIRE(data_bytes == kept, "QuantizedDelta: int8 payload size mismatch");
  }
  FEDCAV_REQUIRE(data_bytes <= reader.remaining(),
                 "QuantizedDelta: payload larger than buffer");
  out.data.resize(data_bytes);
  for (std::uint64_t i = 0; i < data_bytes; ++i) out.data[i] = reader.read_u8();
  return out;
}

QuantizedDelta quantize(std::span<const float> dense, QuantMode mode,
                        double keep_ratio) {
  FEDCAV_REQUIRE(mode != QuantMode::kNone, "quantize: mode is none");
  FEDCAV_REQUIRE(!dense.empty(), "quantize: empty input");
  FEDCAV_REQUIRE(keep_ratio > 0.0 && keep_ratio <= 1.0,
                 "quantize: keep_ratio must be in (0, 1]");
  QuantizedDelta out;
  out.mode = mode;
  out.dim = dense.size();

  // Gather the kept values in ascending-coordinate order; the dense case
  // reads straight through.
  std::vector<float> kept_values;
  const float* values = dense.data();
  std::size_t kept = dense.size();
  if (keep_ratio < 1.0) {
    const std::size_t k = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(keep_ratio * static_cast<double>(dense.size()))));
    const std::vector<std::uint32_t> indices = topk_indices(dense, k);
    out.mask.assign((dense.size() + 7) / 8, 0);
    kept_values.reserve(k);
    for (std::uint32_t idx : indices) {
      out.mask[idx / 8] |= static_cast<std::uint8_t>(1u << (idx % 8));
      kept_values.push_back(dense[idx]);
    }
    values = kept_values.data();
    kept = k;
  }

  if (mode == QuantMode::kFp16) {
    out.data.resize(2 * kept);
    for (std::size_t i = 0; i < kept; ++i) {
      const std::uint16_t h = f32_to_f16(values[i]);
      out.data[2 * i] = static_cast<std::uint8_t>(h & 0xffu);
      out.data[2 * i + 1] = static_cast<std::uint8_t>(h >> 8);
    }
    return out;
  }

  // int8: per-block affine code. zero_point = block min, scale spans the
  // block's range over 255 steps; a constant block (scale 0) reproduces
  // its value exactly through the zero_point.
  const std::size_t blocks = (kept + kQuantBlock - 1) / kQuantBlock;
  out.scales.resize(blocks);
  out.zero_points.resize(blocks);
  out.data.resize(kept);
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    const std::size_t lo = blk * kQuantBlock;
    const std::size_t hi = std::min(kept, lo + kQuantBlock);
    float mn = values[lo];
    float mx = values[lo];
    for (std::size_t i = lo + 1; i < hi; ++i) {
      mn = std::min(mn, values[i]);
      mx = std::max(mx, values[i]);
    }
    FEDCAV_REQUIRE(std::isfinite(mn) && std::isfinite(mx),
                   "quantize: non-finite input");
    const float scale = (mx - mn) / 255.0f;
    out.scales[blk] = scale;
    out.zero_points[blk] = mn;
    if (scale <= 0.0f) {
      for (std::size_t i = lo; i < hi; ++i) out.data[i] = 0;
      continue;
    }
    const float inv = 1.0f / scale;
    for (std::size_t i = lo; i < hi; ++i) {
      const float q = std::nearbyint((values[i] - mn) * inv);
      out.data[i] = static_cast<std::uint8_t>(
          std::clamp(q, 0.0f, 255.0f));
    }
  }
  return out;
}

void dequantize_add(std::span<float> y, const QuantizedDelta& q) {
  FEDCAV_REQUIRE(y.size() == q.dim, "dequantize_add: dimension mismatch");
  const std::size_t kept = q.count();
  // Decode the kept values in order, then scatter (dense: straight add).
  auto value_at = [&](std::size_t i) -> float {
    if (q.mode == QuantMode::kFp16) {
      const std::uint16_t h = static_cast<std::uint16_t>(
          q.data[2 * i] | (static_cast<std::uint16_t>(q.data[2 * i + 1]) << 8));
      return f16_to_f32(h);
    }
    const std::size_t blk = i / kQuantBlock;
    return q.zero_points[blk] + q.scales[blk] * static_cast<float>(q.data[i]);
  };
  if (q.mask.empty()) {
    for (std::size_t i = 0; i < kept; ++i) y[i] += value_at(i);
    return;
  }
  std::size_t next = 0;
  for (std::size_t idx = 0; idx < q.dim; ++idx) {
    if ((q.mask[idx / 8] >> (idx % 8)) & 1u) {
      y[idx] += value_at(next);
      ++next;
    }
  }
  FEDCAV_REQUIRE(next == kept, "dequantize_add: mask/payload mismatch");
}

std::vector<float> dequantize(const QuantizedDelta& q) {
  std::vector<float> dense(q.dim, 0.0f);
  dequantize_add(dense, q);
  return dense;
}

}  // namespace fedcav::comm
