// Shared machinery of the stream-socket transports (DESIGN.md §14/§16).
//
// Topology: rank 0 (the daemon) owns the listening socket and holds one
// stream connection per worker; workers (ranks 1..N-1) hold a single
// connection to the daemon. There are no worker-to-worker links — the
// FedCav round protocol is strictly hub-and-spoke, so the transport is
// too. Joining runs the fixed-size HELLO/ACCEPT handshake from
// src/comm/frame.hpp (magic + version-range negotiation + constant-time
// auth-token check + rank assignment); after that, every message is a
// length-prefixed Envelope wire image.
//
// Everything after the connected fd exists is fabric-agnostic: the
// handshake, framing, metering, poll/ingest loop, and failure model are
// identical over AF_UNIX and TCP. This base class owns all of it; the
// concrete backends (comm::SocketTransport, comm::TcpTransport) only
// create/bind/connect their flavor of socket and hand the fds over.
//
// Unlike InMemoryNetwork, which simulates both ends of every link, a
// stream transport is *local*: try_recv_wire(dst, ...) requires dst to
// be this process's rank, and send(src, ...) requires src to be it.
// Byte accounting follows the Transport contract — own sends are
// metered at send time, each peer's sends at frame-receive time, both
// over the Envelope image size only (the 4-byte length prefix is
// framing, not payload), so a drained federation reports the same
// bytes_up/bytes_down the in-memory fabric would for the identical
// message sequence.
//
// Failure model: a peer that dies mid-stream surfaces as EOF (or
// EPIPE/ECONNRESET on send), never as an exception from the transport —
// the peer is marked closed and the round loop converts peer_closed()
// into a dropout / upload failure. A peer that sends a hostile length
// prefix (> max_frame_bytes) or garbage is disconnected the same way.
// Instances are not thread-safe; each process drives its transport from
// one thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/frame.hpp"
#include "src/comm/transport.hpp"

namespace fedcav::comm {

struct StreamTransportConfig {
  /// Upper bound a received length prefix is validated against before
  /// any allocation. Must comfortably exceed the encoded dense model.
  std::size_t max_frame_bytes = 64ull * 1024 * 1024;
  /// Parameters of the deterministic transfer-time model, mirrored from
  /// NetworkConfig so simulated-deadline accounting agrees across
  /// backends.
  double latency_s = 0.01;
  double bandwidth_bytes_per_s = 1.25e6;
  /// serve(): total budget for all workers to join.
  double accept_timeout_s = 30.0;
  /// connect(): overall deadline to reach the daemon (covering every
  /// capped-backoff retry while the endpoint does not answer yet) plus
  /// complete the handshake.
  double connect_timeout_s = 30.0;
  /// Shared join secret, at most kAuthTokenBytes bytes; both sides
  /// default to the empty token. The daemon compares in constant time
  /// and answers kAuthRejected on mismatch without consuming a rank.
  std::string auth_token;
  /// Advertise this protocol range instead of the build's
  /// [kProtocolVersionMin, kProtocolVersion]. 0 = use the build value.
  /// The version-skew tests use these to simulate mixed builds on both
  /// backends; production tools leave them 0.
  std::uint32_t proto_min_override = 0;
  std::uint32_t proto_max_override = 0;
  /// serve(): treat any handshake reject (version mismatch, bad token,
  /// rank collision, malformed HELLO) as fatal — log it and throw —
  /// instead of replying with the status and continuing to listen. The
  /// daemon tool sets this: its rejected worker exits rather than
  /// retrying, so the configured worker count can never be met and
  /// waiting out accept_timeout_s would only bury the reason.
  bool abort_on_reject = false;
};

/// Human-readable HandshakeStatus (log + error messages).
const char* handshake_status_name(HandshakeStatus status);

namespace detail {

/// Close-on-scope-exit guard so every handshake exit path releases the
/// descriptor (the fd-leak audit in ISSUE 8 satellite 3).
struct UniqueFd {
  int fd = -1;
  UniqueFd() = default;
  explicit UniqueFd(int f) : fd(f) {}
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd(other.fd) { other.fd = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  ~UniqueFd() { reset(); }
  void reset();
  int release() {
    int f = fd;
    fd = -1;
    return f;
  }
};

/// Sleep `ms` of wall clock, re-polling across EINTR so a signal cannot
/// silently shorten a backoff step.
void sleep_ms(int ms);

/// Capped exponential backoff for connect retry loops: 50 ms doubling
/// to a 1 s ceiling. The overall deadline stays the caller's job
/// (connect_timeout_s) — this only shapes the retry cadence so a
/// not-yet-listening daemon is probed gently instead of hammered every
/// 50 ms for the whole budget.
struct Backoff {
  int delay_ms = 50;
  static constexpr int kMaxDelayMs = 1000;
  void wait() {
    sleep_ms(delay_ms);
    delay_ms = std::min(delay_ms * 2, kMaxDelayMs);
  }
};

}  // namespace detail

/// The fabric-agnostic endpoint: framing, handshake protocol, metering,
/// and the poll/ingest/recv machinery. Concrete backends subclass it
/// and provide socket creation only.
class StreamTransport : public Transport {
 public:
  ~StreamTransport() override;

  StreamTransport(const StreamTransport&) = delete;
  StreamTransport& operator=(const StreamTransport&) = delete;

  std::size_t local_rank() const { return local_rank_; }
  std::uint32_t protocol_version() const { return proto_; }

  std::size_t num_endpoints() const override { return num_endpoints_; }
  void begin_round(std::size_t round) override { current_round_ = round; }
  void send(std::size_t src, std::size_t dst, const Envelope& env) override;
  std::optional<ByteBuffer> try_recv_wire(std::size_t dst,
                                          std::size_t src) override;
  std::optional<ByteBuffer> try_recv_any_wire(std::size_t dst,
                                              std::size_t* src_out) override;
  void add_link_delay(std::size_t src, std::size_t dst,
                      double seconds) override;
  TrafficStats stats(std::size_t endpoint) const override;
  TrafficStats total_stats() const override;
  double model_transfer_seconds(std::size_t bytes) const override;
  std::size_t pending_messages() const override;
  bool peer_closed(std::size_t rank) const override;
  void poll(double timeout_s) override;

 protected:
  struct Peer {
    int fd = -1;  // -1 = no channel (never connected, or closed)
    bool closed = false;
    std::unique_ptr<FrameDecoder> decoder;
    std::deque<ByteBuffer> queue;  // completed frames awaiting recv
  };

  StreamTransport(StreamTransportConfig config, std::size_t num_endpoints,
                  std::size_t local_rank, std::uint32_t proto);

  /// The protocol range this endpoint advertises (config overrides, or
  /// the build constants).
  std::uint32_t effective_proto_min() const;
  std::uint32_t effective_proto_max() const;

  /// Daemon side: accept + handshake on the bound, listening
  /// `listener_fd` until `num_workers` workers joined (ranks
  /// 1..num_workers). Rejected connections get a status ACCEPT, a WARN
  /// log line, and are closed without consuming a rank — or, with
  /// config.abort_on_reject, abort the serve with fedcav::Error.
  /// Throws on timeout. `what` prefixes every diagnostic.
  void accept_workers(int listener_fd, std::size_t num_workers,
                      const char* what);

  /// Worker side: run the HELLO/ACCEPT exchange on the connected fd
  /// (ownership taken) and return it with the daemon's ACCEPT. Throws
  /// fedcav::Error on a rejecting or malformed ACCEPT, naming the
  /// status. `remaining_s` is what is left of the connect deadline.
  struct JoinResult {
    detail::UniqueFd fd;
    AcceptMsg accept;
  };
  static JoinResult join_handshake(detail::UniqueFd conn,
                                   std::uint64_t requested_rank,
                                   const StreamTransportConfig& config,
                                   double remaining_s, const char* what);

  /// Install a handshaken channel (ownership taken) as `rank`'s peer.
  void adopt_peer(std::size_t rank, int fd);

  /// Backend hook, called on every newly accepted/connected channel fd
  /// (e.g. the TCP backend sets TCP_NODELAY here). Default: nothing.
  virtual void configure_channel_fd(int fd) { (void)fd; }

  const StreamTransportConfig& config() const { return config_; }

 private:
  /// Drain whatever is readable on `peer`'s fd into its decoder; move
  /// completed frames into its queue and meter them. EOF, a read error,
  /// or a decoder failure closes the channel.
  void ingest(std::size_t rank, Peer& peer);
  void close_peer(Peer& peer);

  StreamTransportConfig config_;
  std::size_t num_endpoints_;
  std::size_t local_rank_;
  std::uint32_t proto_;
  std::size_t current_round_ = 0;
  std::vector<Peer> peers_;          // indexed by rank; local slot unused
  std::vector<TrafficStats> stats_;  // per endpoint, Transport metering rule
};

}  // namespace fedcav::comm
