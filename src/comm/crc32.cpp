#include "src/comm/crc32.hpp"

#include <array>

namespace fedcav::comm {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_crc_table();

}  // namespace

std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data) {
  for (std::uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

}  // namespace fedcav::comm
