// Top-k sparsification of model updates (communication-efficiency
// extension). A client sends only the k = ⌈ratio·dim⌉ largest-magnitude
// coordinates of its weight *delta* w_i − w_t; the server reconstructs
// w_t + scatter(values). This is the standard gradient-sparsification
// construction; the ablation bench measures its accuracy/byte tradeoff
// on the FedCav workload.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/serialize.hpp"

namespace fedcav::comm {

struct SparseDelta {
  std::uint64_t dim = 0;
  std::vector<std::uint32_t> indices;  // sorted ascending
  std::vector<float> values;

  /// Exact wire size of encode()'s output.
  std::size_t wire_size() const;

  ByteBuffer encode() const;
  static SparseDelta decode(ByteReader& reader);
};

/// Keep the ⌈ratio·dim⌉ largest-|v| coordinates of `dense`.
/// ratio in (0, 1]; ratio = 1 keeps everything.
SparseDelta topk_compress(std::span<const float> dense, double ratio);

/// Dense reconstruction (zeros everywhere the delta is silent).
std::vector<float> decompress(const SparseDelta& sparse);

/// y += decompress(sparse) without materializing the dense vector.
void add_sparse(std::span<float> y, const SparseDelta& sparse);

// ---- Quantized wire format (PR 7) ----------------------------------
//
// Lossy scalar quantization of a dense float vector, optionally
// composed with top-k selection. fp16 stores IEEE 754 half-precision
// codes (round-to-nearest-even, 2 bytes/value); int8 stores per-block
// affine codes v ≈ zero_point + scale·q with q ∈ [0, 255] and one
// (scale, zero_point) pair per kQuantBlock consecutive kept values
// (1 byte/value + 8 bytes/block). A keep_ratio < 1 selects the
// largest-|v| coordinates first (same deterministic tie-break as
// topk_compress) and records them in a dim-bit presence bitmap — 1/8
// byte per coordinate instead of SparseDelta's 4-byte indices, which is
// what keeps int8 + top-k under 1 byte/coordinate on the wire.

enum class QuantMode : std::uint8_t { kNone = 0, kFp16 = 1, kInt8 = 2 };

/// "none" | "fp16" | "int8"; throws fedcav::Error on anything else.
QuantMode quant_mode_from_string(const std::string& name);
std::string to_string(QuantMode mode);

/// Values per (scale, zero_point) block of the int8 code.
constexpr std::size_t kQuantBlock = 256;

struct QuantizedDelta {
  QuantMode mode = QuantMode::kFp16;
  std::uint64_t dim = 0;
  /// Presence bitmap, ⌈dim/8⌉ bytes, bit i = coordinate i kept (LSB
  /// first within each byte). Empty means dense (all kept).
  std::vector<std::uint8_t> mask;
  /// int8 only: one affine pair per kQuantBlock kept values, in kept
  /// (ascending-coordinate) order.
  std::vector<float> scales;
  std::vector<float> zero_points;
  /// fp16: 2 little-endian bytes per kept value; int8: 1 byte per value.
  std::vector<std::uint8_t> data;

  /// Number of kept coordinates (dim when dense).
  std::size_t count() const;
  /// Exact wire size of encode()'s output.
  std::size_t wire_size() const;

  ByteBuffer encode() const;
  /// Throws fedcav::Error on any structural inconsistency (sizes, mode
  /// tag, mask popcount vs payload), so a CRC-evading bit flip cannot
  /// produce an out-of-bounds decode.
  static QuantizedDelta decode(ByteReader& reader);
};

/// Quantize `dense`, keeping the ⌈keep_ratio·dim⌉ largest-|v|
/// coordinates (keep_ratio = 1 keeps everything and omits the bitmap).
/// mode must not be kNone.
QuantizedDelta quantize(std::span<const float> dense, QuantMode mode,
                        double keep_ratio = 1.0);

/// y += scatter(dequantized values); y.size() must equal q.dim.
void dequantize_add(std::span<float> y, const QuantizedDelta& q);

/// Dense reconstruction (zeros at dropped coordinates).
std::vector<float> dequantize(const QuantizedDelta& q);

/// Portable IEEE 754 binary16 conversions (round-to-nearest-even;
/// overflow saturates to ±inf). Exposed for the property tests.
std::uint16_t f32_to_f16(float value);
float f16_to_f32(std::uint16_t half);

}  // namespace fedcav::comm
