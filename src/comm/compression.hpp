// Top-k sparsification of model updates (communication-efficiency
// extension). A client sends only the k = ⌈ratio·dim⌉ largest-magnitude
// coordinates of its weight *delta* w_i − w_t; the server reconstructs
// w_t + scatter(values). This is the standard gradient-sparsification
// construction; the ablation bench measures its accuracy/byte tradeoff
// on the FedCav workload.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/tensor/serialize.hpp"

namespace fedcav::comm {

struct SparseDelta {
  std::uint64_t dim = 0;
  std::vector<std::uint32_t> indices;  // sorted ascending
  std::vector<float> values;

  /// Exact wire size of encode()'s output.
  std::size_t wire_size() const;

  ByteBuffer encode() const;
  static SparseDelta decode(ByteReader& reader);
};

/// Keep the ⌈ratio·dim⌉ largest-|v| coordinates of `dense`.
/// ratio in (0, 1]; ratio = 1 keeps everything.
SparseDelta topk_compress(std::span<const float> dense, double ratio);

/// Dense reconstruction (zeros everywhere the delta is silent).
std::vector<float> decompress(const SparseDelta& sparse);

/// y += decompress(sparse) without materializing the dense vector.
void add_sparse(std::span<float> y, const SparseDelta& sparse);

}  // namespace fedcav::comm
