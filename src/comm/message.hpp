// Federated protocol messages and their wire encoding.
//
// The protocol mirrors Fig. 3 of the paper:
//   server -> client : GlobalModel      (weights for round t)
//   client -> server : ClientReport     (updated weights + inference loss
//                                        f_i(w_t) + sample count)
//   server -> client : Control          (accept / reject-and-reverse)
// Every message serializes to a byte buffer through src/tensor/serialize
// so the network can meter exact payload sizes — this is how the
// overhead bench verifies the paper's "one extra float per client" claim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/comm/compression.hpp"
#include "src/tensor/serialize.hpp"

namespace fedcav::comm {

enum class MessageType : std::uint64_t {
  kGlobalModel = 1,
  kClientReport = 2,
  kControl = 3,
  /// Receiver-side "resend" request: the expected message was missing,
  /// failed its CRC, or arrived truncated. Part of the fault-tolerant
  /// retry protocol (see DESIGN.md §10).
  kNack = 4,
  /// Scalar-only client report (sample count + inference loss, no
  /// weights) sent in the metadata phase of a round. The server computes
  /// aggregation weights γ from these before any full report is
  /// materialized, which is what makes streaming aggregation possible
  /// (see DESIGN.md §11).
  kMetadataReport = 5,
  /// Quantized downlink: the full global model as a QuantizedDelta
  /// against zero (see src/comm/compression.hpp). Replaces kGlobalModel
  /// when the server runs with quant != none.
  kQuantGlobalModel = 6,
  /// Quantized uplink: the client's weight *delta* against the
  /// dequantized broadcast, with error feedback accumulating what the
  /// code dropped into the next round's delta.
  kQuantReport = 7,
};

struct GlobalModelMsg {
  std::uint64_t round = 0;
  std::vector<float> weights;

  ByteBuffer encode() const;
  static GlobalModelMsg decode(ByteReader& reader);
};

struct ClientReportMsg {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  std::uint64_t num_samples = 0;
  /// Inference loss f_i(w_t) of the *global* model on local data,
  /// computed before local training (Algorithm 2 line 2). This is the
  /// single extra float FedCav adds to the FedAvg payload.
  double inference_loss = 0.0;
  std::vector<float> weights;

  ByteBuffer encode() const;
  static ClientReportMsg decode(ByteReader& reader);
};

/// Phase-① report: the scalars of ClientReportMsg without the weight
/// vector. 32 payload bytes regardless of model size, so the metadata
/// phase's traffic is O(cohort), not O(cohort × model).
struct MetadataMsg {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  std::uint64_t num_samples = 0;
  /// Inference loss f_i(w_t) of the global model on local data (the
  /// FedCav contribution signal, Algorithm 2 line 2).
  double inference_loss = 0.0;

  ByteBuffer encode() const;
  static MetadataMsg decode(ByteReader& reader);
};

enum class ControlAction : std::uint64_t {
  kAccept = 0,
  /// Round rejected by the anomaly detector; clients must discard their
  /// local updates and re-download the (reversed) global model.
  kRejectAndReverse = 1,
};

struct ControlMsg {
  std::uint64_t round = 0;
  ControlAction action = ControlAction::kAccept;

  ByteBuffer encode() const;
  static ControlMsg decode(ByteReader& reader);
};

/// Quantized broadcast: w̃_t = dequantize(model) IS the round-t
/// reference — the server dequantizes its own broadcast in place so
/// both ends train and diff against the identical float image.
struct QuantGlobalModelMsg {
  std::uint64_t round = 0;
  QuantizedDelta model;

  ByteBuffer encode() const;
  static QuantGlobalModelMsg decode(ByteReader& reader);
};

/// Quantized phase-② report: carries delta = w_i − w̃_t (+ carried
/// error-feedback residual) instead of the dense weight vector. The
/// scalars mirror ClientReportMsg so the metadata phase is unchanged.
struct QuantReportMsg {
  std::uint64_t round = 0;
  std::uint64_t client_id = 0;
  std::uint64_t num_samples = 0;
  double inference_loss = 0.0;
  QuantizedDelta delta;

  ByteBuffer encode() const;
  static QuantReportMsg decode(ByteReader& reader);
};

/// NACK body: which round and message type the receiver was waiting
/// for. Purely diagnostic in the simulated fabric (the retry loop runs
/// both endpoints), but metered like any real control message.
struct NackMsg {
  std::uint64_t round = 0;
  MessageType expected = MessageType::kGlobalModel;

  ByteBuffer encode() const;
  static NackMsg decode(ByteReader& reader);
};

/// Envelope: type tag + payload + CRC-32 of (tag || payload), as
/// transmitted. The trailing checksum lets receivers reject in-flight
/// corruption or truncation before any structural decode runs.
struct Envelope {
  MessageType type;
  ByteBuffer payload;

  ByteBuffer encode() const;
  /// Strict decode for trusted fabrics: throws fedcav::Error on a short
  /// buffer, CRC mismatch, or unknown type tag.
  static Envelope decode(const ByteBuffer& wire);
  /// Fault-aware decode: nullopt on the same conditions instead of
  /// throwing. A payload is only handed to Message decode after the CRC
  /// proves it arrived intact.
  static std::optional<Envelope> try_decode(const ByteBuffer& wire);
  std::size_t wire_size() const {
    return payload.size() + sizeof(std::uint64_t) + sizeof(std::uint32_t);
  }
};

}  // namespace fedcav::comm
