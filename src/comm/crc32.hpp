// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte spans.
//
// The comm fabric appends this checksum to every Envelope so receivers
// can reject payloads the fault-injecting network corrupted or
// truncated in flight, before any structural decode runs. Table-driven,
// one table shared process-wide; incremental form exposed so framing
// code can checksum header + payload without concatenating them.
#pragma once

#include <cstdint>
#include <span>

namespace fedcav::comm {

/// Continue a CRC-32 computation: feed `data` into the running value
/// `crc` (pass kCrc32Init to start, finalize with crc32_finish).
std::uint32_t crc32_update(std::uint32_t crc, std::span<const std::uint8_t> data);

inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;
inline std::uint32_t crc32_finish(std::uint32_t crc) { return crc ^ 0xffffffffu; }

/// One-shot checksum of a buffer.
inline std::uint32_t crc32(std::span<const std::uint8_t> data) {
  return crc32_finish(crc32_update(kCrc32Init, data));
}

}  // namespace fedcav::comm
