#include "src/comm/socket_transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::comm {

namespace {

/// Close-on-scope-exit guard so every handshake exit path releases the
/// descriptor (the fd-leak audit in ISSUE 8 satellite 3).
struct UniqueFd {
  int fd = -1;
  UniqueFd() = default;
  explicit UniqueFd(int f) : fd(f) {}
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd(other.fd) { other.fd = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd = other.fd;
      other.fd = -1;
    }
    return *this;
  }
  ~UniqueFd() { reset(); }
  void reset() {
    if (fd >= 0) {
      while (::close(fd) < 0 && errno == EINTR) {
      }
      fd = -1;
    }
  }
  int release() {
    int f = fd;
    fd = -1;
    return f;
  }
};

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FEDCAV_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "SocketTransport: socket path too long (" + path + ")");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

void sleep_ms(int ms) { ::poll(nullptr, 0, ms); }

const char* status_name(HandshakeStatus status) {
  switch (status) {
    case HandshakeStatus::kOk: return "ok";
    case HandshakeStatus::kVersionMismatch: return "version mismatch";
    case HandshakeStatus::kRankUnavailable: return "rank unavailable";
    case HandshakeStatus::kFederationFull: return "federation full";
    case HandshakeStatus::kMalformedHello: return "malformed hello";
  }
  return "unknown";
}

/// Best-effort status reply on a handshake reject path; the peer may
/// already be gone, which is fine — we close either way.
void send_accept(int fd, const AcceptMsg& msg) {
  const ByteBuffer wire = msg.encode();
  (void)write_all(fd, wire.data(), wire.size());
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config,
                                 std::size_t num_endpoints,
                                 std::size_t local_rank, std::uint32_t proto)
    : config_(config),
      num_endpoints_(num_endpoints),
      local_rank_(local_rank),
      proto_(proto),
      peers_(num_endpoints),
      stats_(num_endpoints) {}

SocketTransport::~SocketTransport() {
  for (Peer& peer : peers_) close_peer(peer);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

std::unique_ptr<SocketTransport> SocketTransport::serve(
    const std::string& path, std::size_t num_workers,
    SocketTransportConfig config) {
  FEDCAV_REQUIRE(num_workers >= 1, "SocketTransport::serve: no workers");
  const std::size_t num_endpoints = num_workers + 1;

  UniqueFd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  FEDCAV_CHECK(listener.fd >= 0, "SocketTransport::serve: socket() failed");
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // stale socket file from a crashed run
  FEDCAV_CHECK(::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "SocketTransport::serve: bind(" + path +
                   ") failed: " + std::strerror(errno));
  FEDCAV_CHECK(::listen(listener.fd, static_cast<int>(num_workers) + 4) == 0,
               "SocketTransport::serve: listen failed");

  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      config, num_endpoints, /*local_rank=*/0, kProtocolVersion));
  transport->unlink_path_ = path;

  std::size_t joined = 0;
  Stopwatch watch;
  while (joined < num_workers) {
    const double remaining = config.accept_timeout_s - watch.seconds();
    FEDCAV_CHECK(remaining > 0.0,
                 "SocketTransport::serve: timed out with " +
                     std::to_string(joined) + "/" +
                     std::to_string(num_workers) + " workers joined");
    struct pollfd pfd{listener.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (ready < 0) {
      FEDCAV_CHECK(errno == EINTR, "SocketTransport::serve: poll failed");
      continue;
    }
    if (ready == 0) continue;

    UniqueFd conn(::accept(listener.fd, nullptr, nullptr));
    if (conn.fd < 0) continue;  // transient accept failure; keep listening

    // Read the fixed-size HELLO with whatever budget is left. A peer
    // that stalls or sends garbage is rejected and closed — it never
    // consumes a rank, and `conn` guarantees the fd is released.
    ByteBuffer hello_wire(kHandshakeBytes);
    const IoStatus io =
        read_exact(conn.fd, hello_wire.data(), hello_wire.size(),
                   std::max(0.1, config.accept_timeout_s - watch.seconds()));
    if (io != IoStatus::kOk) continue;
    const std::optional<HelloMsg> hello = HelloMsg::decode(hello_wire);
    if (!hello.has_value()) {
      send_accept(conn.fd, AcceptMsg{HandshakeStatus::kMalformedHello,
                                     kProtocolVersion, 0, num_endpoints});
      continue;
    }

    // Version negotiation: speak the newest version both sides support.
    const std::uint32_t neg = std::min(kProtocolVersion, hello->proto_max);
    if (neg < std::max(kProtocolVersionMin, hello->proto_min)) {
      send_accept(conn.fd, AcceptMsg{HandshakeStatus::kVersionMismatch,
                                     kProtocolVersion, 0, num_endpoints});
      continue;
    }

    // Rank assignment: honor an explicit request if that slot is free;
    // kAnyRank takes the lowest free worker rank.
    std::size_t rank = 0;
    if (hello->requested_rank == kAnyRank) {
      for (std::size_t r = 1; r < num_endpoints; ++r) {
        if (transport->peers_[r].fd < 0) {
          rank = r;
          break;
        }
      }
      if (rank == 0) {
        send_accept(conn.fd, AcceptMsg{HandshakeStatus::kFederationFull,
                                       kProtocolVersion, 0, num_endpoints});
        continue;
      }
    } else {
      const std::uint64_t req = hello->requested_rank;
      if (req == 0 || req >= num_endpoints || transport->peers_[req].fd >= 0) {
        send_accept(conn.fd, AcceptMsg{HandshakeStatus::kRankUnavailable,
                                       kProtocolVersion, 0, num_endpoints});
        continue;
      }
      rank = static_cast<std::size_t>(req);
    }

    send_accept(conn.fd,
                AcceptMsg{HandshakeStatus::kOk, neg, rank, num_endpoints});
    Peer& peer = transport->peers_[rank];
    peer.fd = conn.release();
    peer.decoder = std::make_unique<FrameDecoder>(config.max_frame_bytes);
    ++joined;
  }
  return transport;
}

std::unique_ptr<SocketTransport> SocketTransport::connect(
    const std::string& path, std::uint64_t requested_rank,
    SocketTransportConfig config) {
  const sockaddr_un addr = make_addr(path);
  Stopwatch watch;
  UniqueFd conn;
  for (;;) {
    FEDCAV_CHECK(watch.seconds() < config.connect_timeout_s,
                 "SocketTransport::connect: timed out reaching " + path);
    conn = UniqueFd(::socket(AF_UNIX, SOCK_STREAM, 0));
    FEDCAV_CHECK(conn.fd >= 0, "SocketTransport::connect: socket() failed");
    if (::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    const int err = errno;
    conn.reset();
    // The daemon may not have bound yet (ENOENT) or may still be inside
    // listen() setup (ECONNREFUSED) — both are join-order races, retry.
    FEDCAV_CHECK(err == ENOENT || err == ECONNREFUSED || err == EINTR ||
                     err == EAGAIN,
                 "SocketTransport::connect: connect(" + path +
                     ") failed: " + std::strerror(err));
    sleep_ms(50);
  }

  HelloMsg hello;
  hello.requested_rank = requested_rank;
  const ByteBuffer hello_wire = hello.encode();
  FEDCAV_CHECK(write_all(conn.fd, hello_wire.data(), hello_wire.size()) ==
                   IoStatus::kOk,
               "SocketTransport::connect: failed to send HELLO");

  ByteBuffer accept_wire(kHandshakeBytes);
  FEDCAV_CHECK(
      read_exact(conn.fd, accept_wire.data(), accept_wire.size(),
                 std::max(0.1, config.connect_timeout_s - watch.seconds())) ==
          IoStatus::kOk,
      "SocketTransport::connect: no ACCEPT from daemon");
  const std::optional<AcceptMsg> accept = AcceptMsg::decode(accept_wire);
  FEDCAV_CHECK(accept.has_value(),
               "SocketTransport::connect: malformed ACCEPT");
  FEDCAV_CHECK(accept->status == HandshakeStatus::kOk,
               std::string("SocketTransport::connect: daemon rejected join: ") +
                   status_name(accept->status));
  FEDCAV_CHECK(accept->rank >= 1 && accept->rank < accept->num_endpoints,
               "SocketTransport::connect: daemon assigned invalid rank");

  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      config, static_cast<std::size_t>(accept->num_endpoints),
      static_cast<std::size_t>(accept->rank), accept->proto));
  Peer& daemon = transport->peers_[0];
  daemon.fd = conn.release();
  daemon.decoder = std::make_unique<FrameDecoder>(config.max_frame_bytes);
  return transport;
}

void SocketTransport::close_peer(Peer& peer) {
  if (peer.fd >= 0) {
    while (::close(peer.fd) < 0 && errno == EINTR) {
    }
    peer.fd = -1;
  }
  peer.closed = true;
}

void SocketTransport::send(std::size_t src, std::size_t dst,
                           const Envelope& env) {
  FEDCAV_REQUIRE(src == local_rank_,
                 "SocketTransport::send: src must be the local rank");
  FEDCAV_REQUIRE(dst < num_endpoints_ && dst != local_rank_,
                 "SocketTransport::send: bad destination");
  Peer& peer = peers_[dst];
  FEDCAV_REQUIRE(peer.fd >= 0 || peer.closed,
                 "SocketTransport::send: no channel to rank " +
                     std::to_string(dst));

  const ByteBuffer wire = env.encode();
  // Meter the attempt regardless of delivery — same rule as the
  // in-memory fabric, so bytes_up/bytes_down stay backend-independent.
  TrafficStats& st = stats_[src];
  st.messages_sent += 1;
  st.bytes_sent += wire.size();
  st.simulated_seconds += model_transfer_seconds(wire.size());

  if (peer.closed) return;  // dead peer: metered, silently dropped
  ByteBuffer framed;
  framed.reserve(wire.size() + 4);
  append_frame(framed, wire);
  if (write_all(peer.fd, framed.data(), framed.size()) != IoStatus::kOk) {
    close_peer(peer);
  }
}

void SocketTransport::ingest(std::size_t rank, Peer& peer) {
  if (peer.fd < 0) return;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      if (!peer.decoder->push(buf, static_cast<std::size_t>(n))) {
        close_peer(peer);  // hostile length prefix — drop the connection
        break;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly EOF: peer exited
      close_peer(peer);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_peer(peer);  // ECONNRESET and friends
    break;
  }
  while (peer.decoder && peer.decoder->has_frame()) {
    ByteBuffer frame = *peer.decoder->next_frame();
    // Peer-send metering happens here, at frame completion (the only
    // point where this endpoint can observe the peer's send).
    TrafficStats& st = stats_[rank];
    st.messages_sent += 1;
    st.bytes_sent += frame.size();
    st.simulated_seconds += model_transfer_seconds(frame.size());
    peer.queue.push_back(std::move(frame));
  }
}

void SocketTransport::poll(double timeout_s) {
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> ranks;
  for (std::size_t r = 0; r < num_endpoints_; ++r) {
    if (peers_[r].fd >= 0) {
      pfds.push_back({peers_[r].fd, POLLIN, 0});
      ranks.push_back(r);
    }
  }
  if (pfds.empty()) {
    sleep_ms(static_cast<int>(timeout_s * 1000.0));
    return;
  }
  const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                           static_cast<int>(timeout_s * 1000.0));
  if (ready <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      ingest(ranks[i], peers_[ranks[i]]);
    }
  }
}

std::optional<ByteBuffer> SocketTransport::try_recv_wire(std::size_t dst,
                                                         std::size_t src) {
  FEDCAV_REQUIRE(dst == local_rank_,
                 "SocketTransport::try_recv_wire: dst must be the local rank");
  FEDCAV_REQUIRE(src < num_endpoints_ && src != local_rank_,
                 "SocketTransport::try_recv_wire: bad source");
  Peer& peer = peers_[src];
  if (peer.queue.empty()) ingest(src, peer);
  if (peer.queue.empty()) return std::nullopt;
  ByteBuffer wire = std::move(peer.queue.front());
  peer.queue.pop_front();
  return wire;
}

std::optional<ByteBuffer> SocketTransport::try_recv_any_wire(
    std::size_t dst, std::size_t* src_out) {
  FEDCAV_REQUIRE(dst == local_rank_,
                 "SocketTransport::try_recv_any_wire: dst must be local rank");
  // Same ascending-rank scan the in-memory fabric documents: lowest
  // source rank with a completed frame wins, per-source order is FIFO.
  for (std::size_t r = 0; r < num_endpoints_; ++r) {
    if (r == local_rank_) continue;
    Peer& peer = peers_[r];
    if (peer.queue.empty()) ingest(r, peer);
    if (!peer.queue.empty()) {
      ByteBuffer wire = std::move(peer.queue.front());
      peer.queue.pop_front();
      if (src_out != nullptr) *src_out = r;
      return wire;
    }
  }
  return std::nullopt;
}

void SocketTransport::add_link_delay(std::size_t src, std::size_t dst,
                                     double seconds) {
  FEDCAV_REQUIRE(src < num_endpoints_ && dst < num_endpoints_,
                 "SocketTransport::add_link_delay: bad endpoint");
  stats_[src].simulated_seconds += seconds;
}

TrafficStats SocketTransport::stats(std::size_t endpoint) const {
  FEDCAV_REQUIRE(endpoint < num_endpoints_,
                 "SocketTransport::stats: bad endpoint");
  return stats_[endpoint];
}

TrafficStats SocketTransport::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& st : stats_) {
    total.messages_sent += st.messages_sent;
    total.bytes_sent += st.bytes_sent;
    total.simulated_seconds += st.simulated_seconds;
  }
  return total;
}

double SocketTransport::model_transfer_seconds(std::size_t bytes) const {
  return config_.latency_s +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

std::size_t SocketTransport::pending_messages() const {
  std::size_t pending = 0;
  for (const Peer& peer : peers_) pending += peer.queue.size();
  return pending;
}

bool SocketTransport::peer_closed(std::size_t rank) const {
  FEDCAV_REQUIRE(rank < num_endpoints_ && rank != local_rank_,
                 "SocketTransport::peer_closed: bad rank");
  const Peer& peer = peers_[rank];
  if (!peer.closed) return false;
  // Bytes that arrived before the close are still deliverable; the peer
  // only counts as gone once nothing more can ever be popped.
  return peer.queue.empty() && (!peer.decoder || !peer.decoder->has_frame());
}

}  // namespace fedcav::comm
