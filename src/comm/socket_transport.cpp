#include "src/comm/socket_transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::comm {

namespace {

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FEDCAV_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "SocketTransport: socket path too long (" + path + ")");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

SocketTransport::~SocketTransport() {
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

std::unique_ptr<SocketTransport> SocketTransport::serve(
    const std::string& path, std::size_t num_workers,
    SocketTransportConfig config) {
  FEDCAV_REQUIRE(num_workers >= 1, "SocketTransport::serve: no workers");
  const std::size_t num_endpoints = num_workers + 1;

  detail::UniqueFd listener(::socket(AF_UNIX, SOCK_STREAM, 0));
  FEDCAV_CHECK(listener.fd >= 0, "SocketTransport::serve: socket() failed");
  const sockaddr_un addr = make_addr(path);
  ::unlink(path.c_str());  // stale socket file from a crashed run
  FEDCAV_CHECK(::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "SocketTransport::serve: bind(" + path +
                   ") failed: " + std::strerror(errno));
  FEDCAV_CHECK(::listen(listener.fd, static_cast<int>(num_workers) + 4) == 0,
               "SocketTransport::serve: listen failed");

  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      config, num_endpoints, /*local_rank=*/0, kProtocolVersion));
  transport->unlink_path_ = path;
  transport->accept_workers(listener.fd, num_workers,
                            "SocketTransport::serve");
  return transport;
}

std::unique_ptr<SocketTransport> SocketTransport::connect(
    const std::string& path, std::uint64_t requested_rank,
    SocketTransportConfig config) {
  const sockaddr_un addr = make_addr(path);
  Stopwatch watch;
  detail::UniqueFd conn;
  detail::Backoff backoff;
  for (;;) {
    FEDCAV_CHECK(watch.seconds() < config.connect_timeout_s,
                 "SocketTransport::connect: timed out reaching " + path);
    conn = detail::UniqueFd(::socket(AF_UNIX, SOCK_STREAM, 0));
    FEDCAV_CHECK(conn.fd >= 0, "SocketTransport::connect: socket() failed");
    if (::connect(conn.fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    const int err = errno;
    conn.reset();
    // The daemon may not have bound yet (ENOENT) or may still be inside
    // listen() setup (ECONNREFUSED) — both are join-order races. Retry
    // with capped exponential backoff so a daemon that never comes up
    // is probed gently until the deadline, not hammered.
    FEDCAV_CHECK(err == ENOENT || err == ECONNREFUSED || err == EINTR ||
                     err == EAGAIN,
                 "SocketTransport::connect: connect(" + path +
                     ") failed: " + std::strerror(err));
    backoff.wait();
  }

  JoinResult join = join_handshake(
      std::move(conn), requested_rank, config,
      config.connect_timeout_s - watch.seconds(), "SocketTransport::connect");
  auto transport = std::unique_ptr<SocketTransport>(new SocketTransport(
      config, static_cast<std::size_t>(join.accept.num_endpoints),
      static_cast<std::size_t>(join.accept.rank), join.accept.proto));
  transport->adopt_peer(0, join.fd.release());
  return transport;
}

}  // namespace fedcav::comm
