// TCP backend of the stream transport (DESIGN.md §16): the same
// framing, HELLO/ACCEPT handshake (version negotiation + constant-time
// auth), metering, and failure model as the Unix-socket backend, over
// an address instead of a path — the piece that turns the daemon/worker
// tools from a same-host demo into a cross-machine runner.
//
// Addresses are "host:port" with IPv6 hosts in brackets ("[::1]:9000").
// The daemon may bind port 0 and read the kernel-chosen port back via
// local_port() (how the tests avoid picking a fixed port). Sockets get
// SO_REUSEADDR (daemon listener — quick restarts must not trip
// TIME_WAIT) and TCP_NODELAY on every channel (the round protocol
// exchanges many latency-sensitive small control frames; Nagle would
// serialize them behind ACK round trips). The worker connects
// nonblocking (O_NONBLOCK + EINPROGRESS + poll(POLLOUT) + SO_ERROR) so
// a black-holed daemon cannot wedge it past connect_timeout_s, retrying
// refused/unreachable attempts with capped exponential backoff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/comm/stream_transport.hpp"

namespace fedcav::comm {

/// Split "host:port" / "[v6-host]:port". Throws fedcav::Error on a
/// missing port, empty host, or unbalanced brackets. Exposed for the
/// unit tests; getaddrinfo does the actual resolution.
struct HostPort {
  std::string host;
  std::string port;
};
HostPort parse_host_port(const std::string& address);

class TcpTransport final : public StreamTransport {
 public:
  /// Daemon side: bind + listen on `address` (port 0 = kernel-chosen,
  /// see local_port()), then accept + handshake until `num_workers`
  /// workers joined. Same reject/abort semantics as
  /// SocketTransport::serve.
  static std::unique_ptr<TcpTransport> serve(const std::string& address,
                                             std::size_t num_workers,
                                             StreamTransportConfig config);

  /// Worker side: resolve + connect to `address` (nonblocking connect
  /// with capped exponential backoff under the connect_timeout_s
  /// deadline while the daemon is not listening yet), request
  /// `requested_rank` (or kAnyRank), and complete the handshake.
  /// Throws fedcav::Error on timeout or a rejecting ACCEPT.
  static std::unique_ptr<TcpTransport> connect(const std::string& address,
                                               std::uint64_t requested_rank,
                                               StreamTransportConfig config);

  /// Daemon only: the port actually bound (resolves a port-0 request).
  std::uint16_t local_port() const { return local_port_; }

 protected:
  /// Every channel runs latency-sensitive small control frames; Nagle
  /// would hold them hostage to ACK round trips.
  void configure_channel_fd(int fd) override;

 private:
  TcpTransport(StreamTransportConfig config, std::size_t num_endpoints,
               std::size_t local_rank, std::uint32_t proto)
      : StreamTransport(std::move(config), num_endpoints, local_rank, proto) {}

  std::uint16_t local_port_ = 0;
};

}  // namespace fedcav::comm
