#include "src/comm/stream_transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::comm {

namespace detail {

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) {
    reset();
    fd = other.fd;
    other.fd = -1;
  }
  return *this;
}

void UniqueFd::reset() {
  if (fd >= 0) {
    while (::close(fd) < 0 && errno == EINTR) {
    }
    fd = -1;
  }
}

void sleep_ms(int ms) {
  // poll(2) returns early on EINTR without reporting the elapsed share;
  // loop against wall clock so a signal storm cannot shorten the sleep.
  Stopwatch watch;
  for (;;) {
    const int remaining = ms - static_cast<int>(watch.seconds() * 1000.0);
    if (remaining <= 0) return;
    ::poll(nullptr, 0, remaining);
  }
}

}  // namespace detail

namespace {

/// Best-effort status reply on a handshake reject path; the peer may
/// already be gone, which is fine — we close either way.
void send_accept(int fd, const AcceptMsg& msg) {
  const ByteBuffer wire = msg.encode();
  (void)write_all(fd, wire.data(), wire.size());
}

}  // namespace

const char* handshake_status_name(HandshakeStatus status) {
  switch (status) {
    case HandshakeStatus::kOk: return "ok";
    case HandshakeStatus::kVersionMismatch: return "version mismatch";
    case HandshakeStatus::kRankUnavailable: return "rank unavailable";
    case HandshakeStatus::kFederationFull: return "federation full";
    case HandshakeStatus::kMalformedHello: return "malformed hello";
    case HandshakeStatus::kAuthRejected: return "auth rejected";
  }
  return "unknown";
}

StreamTransport::StreamTransport(StreamTransportConfig config,
                                 std::size_t num_endpoints,
                                 std::size_t local_rank, std::uint32_t proto)
    : config_(std::move(config)),
      num_endpoints_(num_endpoints),
      local_rank_(local_rank),
      proto_(proto),
      peers_(num_endpoints),
      stats_(num_endpoints) {}

StreamTransport::~StreamTransport() {
  for (Peer& peer : peers_) close_peer(peer);
}

std::uint32_t StreamTransport::effective_proto_min() const {
  return config_.proto_min_override != 0 ? config_.proto_min_override
                                         : kProtocolVersionMin;
}

std::uint32_t StreamTransport::effective_proto_max() const {
  return config_.proto_max_override != 0 ? config_.proto_max_override
                                         : kProtocolVersion;
}

void StreamTransport::accept_workers(int listener_fd, std::size_t num_workers,
                                     const char* what) {
  const std::array<std::uint8_t, kAuthTokenBytes> expected_token =
      encode_auth_token(config_.auth_token);
  const std::uint32_t proto_min = effective_proto_min();
  const std::uint32_t proto_max = effective_proto_max();

  // Reject path, shared by every failed check: reply with the status,
  // log it loudly, and either keep listening (the reject consumed no
  // rank) or — under abort_on_reject — give up on the federation at
  // once, because the rejected worker process exits instead of retrying
  // and the remaining slots can never all fill.
  auto reject = [&](int fd, HandshakeStatus status) {
    send_accept(fd, AcceptMsg{status, proto_max, 0, num_endpoints_});
    FEDCAV_LOG_WARN << what << ": rejected join attempt: "
                    << handshake_status_name(status);
    FEDCAV_CHECK(!config_.abort_on_reject,
                 std::string(what) + ": worker join rejected (" +
                     handshake_status_name(status) +
                     "); the federation can never fill, aborting");
  };

  std::size_t joined = 0;
  Stopwatch watch;
  while (joined < num_workers) {
    const double remaining = config_.accept_timeout_s - watch.seconds();
    FEDCAV_CHECK(remaining > 0.0,
                 std::string(what) + ": timed out with " +
                     std::to_string(joined) + "/" +
                     std::to_string(num_workers) + " workers joined");
    struct pollfd pfd{listener_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (ready < 0) {
      FEDCAV_CHECK(errno == EINTR, std::string(what) + ": poll failed");
      continue;
    }
    if (ready == 0) continue;

    detail::UniqueFd conn(::accept(listener_fd, nullptr, nullptr));
    if (conn.fd < 0) continue;  // transient accept failure; keep listening
    configure_channel_fd(conn.fd);

    // Read the fixed-size HELLO with whatever budget is left. A peer
    // that stalls or sends garbage is rejected and closed — it never
    // consumes a rank, and `conn` guarantees the fd is released.
    ByteBuffer hello_wire(kHelloBytes);
    const IoStatus io =
        read_exact(conn.fd, hello_wire.data(), hello_wire.size(),
                   std::max(0.1, config_.accept_timeout_s - watch.seconds()));
    if (io != IoStatus::kOk) continue;
    const std::optional<HelloMsg> hello = HelloMsg::decode(hello_wire);
    if (!hello.has_value()) {
      reject(conn.fd, HandshakeStatus::kMalformedHello);
      continue;
    }

    // Version negotiation: speak the newest version both sides support.
    const std::uint32_t neg = std::min(proto_max, hello->proto_max);
    if (neg < std::max(proto_min, hello->proto_min)) {
      reject(conn.fd, HandshakeStatus::kVersionMismatch);
      continue;
    }

    // Auth: constant-time token compare, after the version check (a
    // skewed-but-honest worker learns the real reason) and before rank
    // assignment (an unauthenticated probe can never consume a slot).
    if (!auth_tokens_equal(hello->auth_token, expected_token)) {
      reject(conn.fd, HandshakeStatus::kAuthRejected);
      continue;
    }

    // Rank assignment: honor an explicit request if that slot is free;
    // kAnyRank takes the lowest free worker rank.
    std::size_t rank = 0;
    if (hello->requested_rank == kAnyRank) {
      for (std::size_t r = 1; r < num_endpoints_; ++r) {
        if (peers_[r].fd < 0) {
          rank = r;
          break;
        }
      }
      if (rank == 0) {
        reject(conn.fd, HandshakeStatus::kFederationFull);
        continue;
      }
    } else {
      const std::uint64_t req = hello->requested_rank;
      if (req == 0 || req >= num_endpoints_ || peers_[req].fd >= 0) {
        reject(conn.fd, HandshakeStatus::kRankUnavailable);
        continue;
      }
      rank = static_cast<std::size_t>(req);
    }

    send_accept(conn.fd, AcceptMsg{HandshakeStatus::kOk, neg, rank,
                                   num_endpoints_});
    adopt_peer(rank, conn.release());
    ++joined;
  }
}

StreamTransport::JoinResult StreamTransport::join_handshake(
    detail::UniqueFd conn, std::uint64_t requested_rank,
    const StreamTransportConfig& config, double remaining_s,
    const char* what) {
  HelloMsg hello;
  hello.proto_min = config.proto_min_override != 0 ? config.proto_min_override
                                                   : kProtocolVersionMin;
  hello.proto_max = config.proto_max_override != 0 ? config.proto_max_override
                                                   : kProtocolVersion;
  hello.requested_rank = requested_rank;
  hello.auth_token = encode_auth_token(config.auth_token);
  const ByteBuffer hello_wire = hello.encode();
  FEDCAV_CHECK(write_all(conn.fd, hello_wire.data(), hello_wire.size()) ==
                   IoStatus::kOk,
               std::string(what) + ": failed to send HELLO");

  ByteBuffer accept_wire(kAcceptBytes);
  FEDCAV_CHECK(read_exact(conn.fd, accept_wire.data(), accept_wire.size(),
                          std::max(0.1, remaining_s)) == IoStatus::kOk,
               std::string(what) + ": no ACCEPT from daemon");
  const std::optional<AcceptMsg> accept = AcceptMsg::decode(accept_wire);
  FEDCAV_CHECK(accept.has_value(), std::string(what) + ": malformed ACCEPT");
  FEDCAV_CHECK(accept->status == HandshakeStatus::kOk,
               std::string(what) + ": daemon rejected join: " +
                   handshake_status_name(accept->status));
  FEDCAV_CHECK(accept->rank >= 1 && accept->rank < accept->num_endpoints,
               std::string(what) + ": daemon assigned invalid rank");
  return JoinResult{std::move(conn), *accept};
}

void StreamTransport::adopt_peer(std::size_t rank, int fd) {
  FEDCAV_REQUIRE(rank < num_endpoints_ && rank != local_rank_,
                 "StreamTransport::adopt_peer: bad rank");
  Peer& peer = peers_[rank];
  FEDCAV_REQUIRE(peer.fd < 0 && !peer.closed,
                 "StreamTransport::adopt_peer: rank already channeled");
  peer.fd = fd;
  peer.decoder = std::make_unique<FrameDecoder>(config_.max_frame_bytes);
}

void StreamTransport::close_peer(Peer& peer) {
  if (peer.fd >= 0) {
    while (::close(peer.fd) < 0 && errno == EINTR) {
    }
    peer.fd = -1;
  }
  peer.closed = true;
}

void StreamTransport::send(std::size_t src, std::size_t dst,
                           const Envelope& env) {
  FEDCAV_REQUIRE(src == local_rank_,
                 "StreamTransport::send: src must be the local rank");
  FEDCAV_REQUIRE(dst < num_endpoints_ && dst != local_rank_,
                 "StreamTransport::send: bad destination");
  Peer& peer = peers_[dst];
  FEDCAV_REQUIRE(peer.fd >= 0 || peer.closed,
                 "StreamTransport::send: no channel to rank " +
                     std::to_string(dst));

  const ByteBuffer wire = env.encode();
  // Meter the attempt regardless of delivery — same rule as the
  // in-memory fabric, so bytes_up/bytes_down stay backend-independent.
  TrafficStats& st = stats_[src];
  st.messages_sent += 1;
  st.bytes_sent += wire.size();
  st.simulated_seconds += model_transfer_seconds(wire.size());

  if (peer.closed) return;  // dead peer: metered, silently dropped
  ByteBuffer framed;
  framed.reserve(wire.size() + 4);
  append_frame(framed, wire);
  if (write_all(peer.fd, framed.data(), framed.size()) != IoStatus::kOk) {
    close_peer(peer);
  }
}

void StreamTransport::ingest(std::size_t rank, Peer& peer) {
  if (peer.fd < 0) return;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(peer.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (n > 0) {
      if (!peer.decoder->push(buf, static_cast<std::size_t>(n))) {
        close_peer(peer);  // hostile length prefix — drop the connection
        break;
      }
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly EOF: peer exited
      close_peer(peer);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_peer(peer);  // ECONNRESET and friends
    break;
  }
  while (peer.decoder && peer.decoder->has_frame()) {
    ByteBuffer frame = *peer.decoder->next_frame();
    // Peer-send metering happens here, at frame completion (the only
    // point where this endpoint can observe the peer's send).
    TrafficStats& st = stats_[rank];
    st.messages_sent += 1;
    st.bytes_sent += frame.size();
    st.simulated_seconds += model_transfer_seconds(frame.size());
    peer.queue.push_back(std::move(frame));
  }
}

void StreamTransport::poll(double timeout_s) {
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> ranks;
  for (std::size_t r = 0; r < num_endpoints_; ++r) {
    if (peers_[r].fd >= 0) {
      pfds.push_back({peers_[r].fd, POLLIN, 0});
      ranks.push_back(r);
    }
  }
  if (pfds.empty()) {
    detail::sleep_ms(static_cast<int>(timeout_s * 1000.0));
    return;
  }
  const int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                           static_cast<int>(timeout_s * 1000.0));
  if (ready <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
      ingest(ranks[i], peers_[ranks[i]]);
    }
  }
}

std::optional<ByteBuffer> StreamTransport::try_recv_wire(std::size_t dst,
                                                         std::size_t src) {
  FEDCAV_REQUIRE(dst == local_rank_,
                 "StreamTransport::try_recv_wire: dst must be the local rank");
  FEDCAV_REQUIRE(src < num_endpoints_ && src != local_rank_,
                 "StreamTransport::try_recv_wire: bad source");
  Peer& peer = peers_[src];
  if (peer.queue.empty()) ingest(src, peer);
  if (peer.queue.empty()) return std::nullopt;
  ByteBuffer wire = std::move(peer.queue.front());
  peer.queue.pop_front();
  return wire;
}

std::optional<ByteBuffer> StreamTransport::try_recv_any_wire(
    std::size_t dst, std::size_t* src_out) {
  FEDCAV_REQUIRE(dst == local_rank_,
                 "StreamTransport::try_recv_any_wire: dst must be local rank");
  // Same ascending-rank scan the in-memory fabric documents: lowest
  // source rank with a completed frame wins, per-source order is FIFO.
  for (std::size_t r = 0; r < num_endpoints_; ++r) {
    if (r == local_rank_) continue;
    Peer& peer = peers_[r];
    if (peer.queue.empty()) ingest(r, peer);
    if (!peer.queue.empty()) {
      ByteBuffer wire = std::move(peer.queue.front());
      peer.queue.pop_front();
      if (src_out != nullptr) *src_out = r;
      return wire;
    }
  }
  return std::nullopt;
}

void StreamTransport::add_link_delay(std::size_t src, std::size_t dst,
                                     double seconds) {
  FEDCAV_REQUIRE(src < num_endpoints_ && dst < num_endpoints_,
                 "StreamTransport::add_link_delay: bad endpoint");
  stats_[src].simulated_seconds += seconds;
}

TrafficStats StreamTransport::stats(std::size_t endpoint) const {
  FEDCAV_REQUIRE(endpoint < num_endpoints_,
                 "StreamTransport::stats: bad endpoint");
  return stats_[endpoint];
}

TrafficStats StreamTransport::total_stats() const {
  TrafficStats total;
  for (const TrafficStats& st : stats_) {
    total.messages_sent += st.messages_sent;
    total.bytes_sent += st.bytes_sent;
    total.simulated_seconds += st.simulated_seconds;
  }
  return total;
}

double StreamTransport::model_transfer_seconds(std::size_t bytes) const {
  return config_.latency_s +
         static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

std::size_t StreamTransport::pending_messages() const {
  std::size_t pending = 0;
  for (const Peer& peer : peers_) pending += peer.queue.size();
  return pending;
}

bool StreamTransport::peer_closed(std::size_t rank) const {
  FEDCAV_REQUIRE(rank < num_endpoints_ && rank != local_rank_,
                 "StreamTransport::peer_closed: bad rank");
  const Peer& peer = peers_[rank];
  if (!peer.closed) return false;
  // Bytes that arrived before the close are still deliverable; the peer
  // only counts as gone once nothing more can ever be popped.
  return peer.queue.empty() && (!peer.decoder || !peer.decoder->has_frame());
}

}  // namespace fedcav::comm
