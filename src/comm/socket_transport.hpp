// Unix-domain-socket backend of the stream transport (DESIGN.md §14).
//
// All protocol behavior — framing, HELLO/ACCEPT handshake with version
// negotiation + auth, metering, the poll/ingest loop, and the failure
// model — lives in comm::StreamTransport; this class only creates,
// binds, and connects AF_UNIX sockets (and unlinks the socket file the
// daemon owned). See stream_transport.hpp for the contracts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "src/comm/stream_transport.hpp"

namespace fedcav::comm {

/// Historical name, kept for the call sites that predate the TCP
/// backend: the config is backend-independent.
using SocketTransportConfig = StreamTransportConfig;

class SocketTransport final : public StreamTransport {
 public:
  /// Daemon side: bind `path`, accept + handshake until `num_workers`
  /// workers have joined (ranks 1..num_workers), then stop listening.
  /// Throws fedcav::Error if the federation does not fill in time.
  /// Connections that fail the handshake are rejected with a status
  /// ACCEPT, logged, and closed; they do not consume a rank (with
  /// config.abort_on_reject the serve throws instead — see
  /// StreamTransportConfig).
  static std::unique_ptr<SocketTransport> serve(const std::string& path,
                                                std::size_t num_workers,
                                                SocketTransportConfig config);

  /// Worker side: connect to `path` (retrying with capped exponential
  /// backoff — 50 ms doubling to 1 s — under the connect_timeout_s
  /// deadline while the daemon has not bound/listened yet), request
  /// `requested_rank` (or kAnyRank), and complete the handshake.
  /// Throws fedcav::Error on timeout or a rejecting ACCEPT.
  static std::unique_ptr<SocketTransport> connect(const std::string& path,
                                                  std::uint64_t requested_rank,
                                                  SocketTransportConfig config);

  ~SocketTransport() override;

 private:
  SocketTransport(SocketTransportConfig config, std::size_t num_endpoints,
                  std::size_t local_rank, std::uint32_t proto)
      : StreamTransport(std::move(config), num_endpoints, local_rank, proto) {}

  std::string unlink_path_;  // daemon only: socket file to remove
};

}  // namespace fedcav::comm
