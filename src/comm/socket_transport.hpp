// One endpoint's view of a Unix-domain-socket federation (DESIGN.md §14).
//
// Topology: rank 0 (the daemon) owns the listening socket and holds one
// stream connection per worker; workers (ranks 1..N-1) hold a single
// connection to the daemon. There are no worker-to-worker links — the
// FedCav round protocol is strictly hub-and-spoke, so the transport is
// too. Joining runs the fixed-size HELLO/ACCEPT handshake from
// src/comm/frame.hpp (magic + version-range negotiation + rank
// assignment); after that, every message is a length-prefixed Envelope
// wire image.
//
// Unlike InMemoryNetwork, which simulates both ends of every link, a
// SocketTransport is *local*: try_recv_wire(dst, ...) requires dst to be
// this process's rank, and send(src, ...) requires src to be it. Byte
// accounting follows the Transport contract — own sends are metered at
// send time, each peer's sends at frame-receive time, both over the
// Envelope image size only (the 4-byte length prefix is framing, not
// payload), so a drained federation reports the same bytes_up/bytes_down
// the in-memory fabric would for the identical message sequence.
//
// Failure model: a peer that dies mid-stream surfaces as EOF (or
// EPIPE/ECONNRESET on send), never as an exception from the transport —
// the peer is marked closed and the round loop converts peer_closed()
// into a dropout / upload failure. A peer that sends a hostile length
// prefix (> max_frame_bytes) or garbage is disconnected the same way.
// Instances are not thread-safe; each process drives its transport from
// one thread.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "src/comm/frame.hpp"
#include "src/comm/transport.hpp"

namespace fedcav::comm {

struct SocketTransportConfig {
  /// Upper bound a received length prefix is validated against before
  /// any allocation. Must comfortably exceed the encoded dense model.
  std::size_t max_frame_bytes = 64ull * 1024 * 1024;
  /// Parameters of the deterministic transfer-time model, mirrored from
  /// NetworkConfig so simulated-deadline accounting agrees across
  /// backends.
  double latency_s = 0.01;
  double bandwidth_bytes_per_s = 1.25e6;
  /// serve(): total budget for all workers to join.
  double accept_timeout_s = 30.0;
  /// connect(): budget to reach the daemon (retries while the socket
  /// file does not exist yet) plus complete the handshake.
  double connect_timeout_s = 30.0;
};

class SocketTransport final : public Transport {
 public:
  /// Daemon side: bind `path`, accept + handshake until `num_workers`
  /// workers have joined (ranks 1..num_workers), then stop listening.
  /// Throws fedcav::Error if the federation does not fill in time.
  /// Connections that fail the handshake are rejected with a status
  /// ACCEPT and closed; they do not consume a rank.
  static std::unique_ptr<SocketTransport> serve(const std::string& path,
                                                std::size_t num_workers,
                                                SocketTransportConfig config);

  /// Worker side: connect to `path` (retrying until the daemon appears),
  /// request `requested_rank` (or kAnyRank), and complete the handshake.
  /// Throws fedcav::Error on timeout or a rejecting ACCEPT.
  static std::unique_ptr<SocketTransport> connect(const std::string& path,
                                                  std::uint64_t requested_rank,
                                                  SocketTransportConfig config);

  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  std::size_t local_rank() const { return local_rank_; }
  std::uint32_t protocol_version() const { return proto_; }

  std::size_t num_endpoints() const override { return num_endpoints_; }
  void begin_round(std::size_t round) override { current_round_ = round; }
  void send(std::size_t src, std::size_t dst, const Envelope& env) override;
  std::optional<ByteBuffer> try_recv_wire(std::size_t dst,
                                          std::size_t src) override;
  std::optional<ByteBuffer> try_recv_any_wire(std::size_t dst,
                                              std::size_t* src_out) override;
  void add_link_delay(std::size_t src, std::size_t dst,
                      double seconds) override;
  TrafficStats stats(std::size_t endpoint) const override;
  TrafficStats total_stats() const override;
  double model_transfer_seconds(std::size_t bytes) const override;
  std::size_t pending_messages() const override;
  bool peer_closed(std::size_t rank) const override;
  void poll(double timeout_s) override;

 private:
  struct Peer {
    int fd = -1;  // -1 = no channel (never connected, or closed)
    bool closed = false;
    std::unique_ptr<FrameDecoder> decoder;
    std::deque<ByteBuffer> queue;  // completed frames awaiting recv
  };

  SocketTransport(SocketTransportConfig config, std::size_t num_endpoints,
                  std::size_t local_rank, std::uint32_t proto);

  /// Drain whatever is readable on `peer`'s fd into its decoder; move
  /// completed frames into its queue and meter them. EOF, a read error,
  /// or a decoder failure closes the channel.
  void ingest(std::size_t rank, Peer& peer);
  void close_peer(Peer& peer);

  SocketTransportConfig config_;
  std::size_t num_endpoints_;
  std::size_t local_rank_;
  std::uint32_t proto_;
  std::size_t current_round_ = 0;
  std::vector<Peer> peers_;          // indexed by rank; local slot unused
  std::vector<TrafficStats> stats_;  // per endpoint, Transport metering rule
  std::string unlink_path_;          // daemon only: socket file to remove
};

}  // namespace fedcav::comm
