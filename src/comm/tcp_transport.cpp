#include "src/comm/tcp_transport.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::comm {

namespace {

/// getaddrinfo result owner.
struct AddrInfo {
  addrinfo* head = nullptr;
  ~AddrInfo() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

/// Resolve host:port for either side. `passive` asks for bindable
/// addresses (daemon listener). Throws on resolution failure.
AddrInfo resolve(const HostPort& hp, bool passive, const char* what) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_protocol = IPPROTO_TCP;
  if (passive) hints.ai_flags = AI_PASSIVE;
  AddrInfo out;
  const int rc =
      ::getaddrinfo(hp.host.c_str(), hp.port.c_str(), &hints, &out.head);
  FEDCAV_CHECK(rc == 0, std::string(what) + ": cannot resolve " + hp.host +
                            ":" + hp.port + ": " + ::gai_strerror(rc));
  FEDCAV_CHECK(out.head != nullptr,
               std::string(what) + ": resolver returned no addresses");
  return out;
}

void set_nodelay(int fd) {
  const int one = 1;
  // Best-effort: TCP_NODELAY on a non-TCP fd (or an exotic stack) just
  // fails; the transport is still correct, only chattier on the wire.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, next) == 0;
}

/// One nonblocking connect attempt against `ai`, waiting up to
/// `budget_s` for completion. Returns the connected fd, or an empty
/// UniqueFd with `retryable` telling the caller whether backing off and
/// trying again makes sense (refused / timed out / unreachable) or the
/// failure is permanent for this address.
detail::UniqueFd try_connect_once(const addrinfo& ai, double budget_s,
                                  bool* retryable) {
  *retryable = false;
  detail::UniqueFd fd(
      ::socket(ai.ai_family, ai.ai_socktype, ai.ai_protocol));
  if (fd.fd < 0) return {};
  if (!set_nonblocking(fd.fd, true)) return {};

  if (::connect(fd.fd, ai.ai_addr, ai.ai_addrlen) != 0) {
    if (errno != EINPROGRESS && errno != EINTR) {
      *retryable = errno == ECONNREFUSED || errno == EAGAIN ||
                   errno == ENETUNREACH || errno == EHOSTUNREACH ||
                   errno == ETIMEDOUT;
      return {};
    }
    // In-flight SYN: poll for writability, then read the final verdict
    // out of SO_ERROR (the poll alone cannot distinguish success from a
    // refused connection — both wake the fd).
    Stopwatch watch;
    for (;;) {
      const double remaining = budget_s - watch.seconds();
      if (remaining <= 0.0) {
        *retryable = true;  // daemon may still be coming up
        return {};
      }
      struct pollfd pfd{fd.fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return {};
      }
      if (ready == 0) continue;  // re-check the deadline
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) return {};
    if (err != 0) {
      *retryable = err == ECONNREFUSED || err == EAGAIN ||
                   err == ENETUNREACH || err == EHOSTUNREACH ||
                   err == ETIMEDOUT;
      return {};
    }
  }

  // Connected: back to blocking for the handshake + frame stream (the
  // transport's ingest path uses MSG_DONTWAIT explicitly where needed).
  if (!set_nonblocking(fd.fd, false)) return {};
  return fd;
}

}  // namespace

HostPort parse_host_port(const std::string& address) {
  FEDCAV_REQUIRE(!address.empty(), "parse_host_port: empty address");
  HostPort hp;
  if (address.front() == '[') {
    // Bracketed IPv6: [::1]:9000
    const std::size_t close = address.find(']');
    FEDCAV_REQUIRE(close != std::string::npos,
                   "parse_host_port: unbalanced '[' in " + address);
    FEDCAV_REQUIRE(close + 1 < address.size() && address[close + 1] == ':',
                   "parse_host_port: missing :port after ']' in " + address);
    hp.host = address.substr(1, close - 1);
    hp.port = address.substr(close + 2);
  } else {
    const std::size_t colon = address.rfind(':');
    FEDCAV_REQUIRE(colon != std::string::npos,
                   "parse_host_port: missing :port in " + address);
    FEDCAV_REQUIRE(address.find(':') == colon,
                   "parse_host_port: bare IPv6 address needs brackets: " +
                       address);
    hp.host = address.substr(0, colon);
    hp.port = address.substr(colon + 1);
  }
  FEDCAV_REQUIRE(!hp.host.empty(), "parse_host_port: empty host in " + address);
  FEDCAV_REQUIRE(!hp.port.empty(), "parse_host_port: empty port in " + address);
  for (char c : hp.port) {
    FEDCAV_REQUIRE(c >= '0' && c <= '9',
                   "parse_host_port: non-numeric port in " + address);
  }
  return hp;
}

void TcpTransport::configure_channel_fd(int fd) { set_nodelay(fd); }

std::unique_ptr<TcpTransport> TcpTransport::serve(
    const std::string& address, std::size_t num_workers,
    StreamTransportConfig config) {
  FEDCAV_REQUIRE(num_workers >= 1, "TcpTransport::serve: no workers");
  const std::size_t num_endpoints = num_workers + 1;
  const HostPort hp = parse_host_port(address);
  const AddrInfo addrs = resolve(hp, /*passive=*/true, "TcpTransport::serve");

  detail::UniqueFd listener;
  std::string last_error = "no addresses tried";
  for (const addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
    detail::UniqueFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (fd.fd < 0) {
      last_error = std::string("socket(): ") + std::strerror(errno);
      continue;
    }
    // Quick daemon restarts must not trip over the previous run's
    // TIME_WAIT sockets.
    const int one = 1;
    (void)::setsockopt(fd.fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.fd, ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = std::string("bind(): ") + std::strerror(errno);
      continue;
    }
    if (::listen(fd.fd, static_cast<int>(num_workers) + 4) != 0) {
      last_error = std::string("listen(): ") + std::strerror(errno);
      continue;
    }
    listener = std::move(fd);
    break;
  }
  FEDCAV_CHECK(listener.fd >= 0, "TcpTransport::serve: cannot listen on " +
                                     address + ": " + last_error);

  // Read the bound port back (resolves a port-0 request for the tests).
  sockaddr_storage bound{};
  socklen_t bound_len = sizeof(bound);
  std::uint16_t port = 0;
  if (::getsockname(listener.fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    if (bound.ss_family == AF_INET) {
      port = ntohs(reinterpret_cast<const sockaddr_in&>(bound).sin_port);
    } else if (bound.ss_family == AF_INET6) {
      port = ntohs(reinterpret_cast<const sockaddr_in6&>(bound).sin6_port);
    }
  }

  auto transport = std::unique_ptr<TcpTransport>(new TcpTransport(
      config, num_endpoints, /*local_rank=*/0, kProtocolVersion));
  transport->local_port_ = port;
  transport->accept_workers(listener.fd, num_workers, "TcpTransport::serve");
  return transport;
}

std::unique_ptr<TcpTransport> TcpTransport::connect(
    const std::string& address, std::uint64_t requested_rank,
    StreamTransportConfig config) {
  const HostPort hp = parse_host_port(address);
  const AddrInfo addrs =
      resolve(hp, /*passive=*/false, "TcpTransport::connect");

  Stopwatch watch;
  detail::UniqueFd conn;
  detail::Backoff backoff;
  while (conn.fd < 0) {
    const double remaining = config.connect_timeout_s - watch.seconds();
    FEDCAV_CHECK(remaining > 0.0,
                 "TcpTransport::connect: timed out reaching " + address);
    bool any_retryable = false;
    for (const addrinfo* ai = addrs.head; ai != nullptr; ai = ai->ai_next) {
      bool retryable = false;
      conn = try_connect_once(*ai, remaining, &retryable);
      if (conn.fd >= 0) break;
      any_retryable = any_retryable || retryable;
    }
    if (conn.fd >= 0) break;
    // The daemon may simply not be listening yet — a join-order race,
    // same as the Unix backend's ENOENT/ECONNREFUSED window. Anything
    // non-retryable on every resolved address is a hard failure.
    FEDCAV_CHECK(any_retryable,
                 "TcpTransport::connect: connect(" + address + ") failed");
    backoff.wait();
  }
  set_nodelay(conn.fd);

  JoinResult join = join_handshake(
      std::move(conn), requested_rank, config,
      config.connect_timeout_s - watch.seconds(), "TcpTransport::connect");
  auto transport = std::unique_ptr<TcpTransport>(new TcpTransport(
      config, static_cast<std::size_t>(join.accept.num_endpoints),
      static_cast<std::size_t>(join.accept.rank), join.accept.proto));
  transport->adopt_peer(0, join.fd.release());
  return transport;
}

}  // namespace fedcav::comm
