// Topology-neutral transport seam of the federation (DESIGN.md §14).
//
// The federated round protocol (downlink broadcast, NACK-and-retry,
// metadata + report uplinks) is written against this interface so the
// exact same server logic runs over any fabric — the style of seam
// FedML's topology-neutral comm layer and Nix's daemon/worker protocol
// split argue for. Two backends exist:
//
//   * comm::InMemoryNetwork — the single-process simulation fabric with
//     deterministic fault injection (the test double). Both endpoints of
//     every link are played by the caller.
//   * comm::SocketTransport  — one *endpoint's* view of a real Unix-
//     domain-socket federation: rank 0 is the daemon, ranks 1..N-1 are
//     worker processes (see src/comm/socket_transport.hpp).
//
// Everything travels as opaque CRC-framed wire images (the encoded
// comm::Envelope): the transport moves bytes and meters them, and only
// Envelope::try_decode decides whether they arrived intact.
//
// Fairness contract for try_recv_any_wire: when several sources have
// messages queued, the lowest source rank is drained first (per-source
// order stays FIFO). Arrival interleaving across ranks is scheduler
// noise on a real transport and container-iteration trivia in memory —
// neither may leak into protocol behavior, so both backends pin the
// same documented order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "src/comm/faults.hpp"
#include "src/comm/message.hpp"

namespace fedcav::comm {

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Accumulated simulated transfer time (latency + bytes/bandwidth
  /// + injected jitter + retry backoff).
  double simulated_seconds = 0.0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Endpoint count including the server (rank 0).
  virtual std::size_t num_endpoints() const = 0;

  /// Tell the transport which communication round is in progress
  /// (1-based); the in-memory fabric evaluates crash windows against it.
  virtual void begin_round(std::size_t round) = 0;

  /// Deliver `env` from `src` to `dst`. A real transport requires `src`
  /// to be the local rank and never throws on a dead peer — the bytes
  /// are metered (transmission was attempted) and the peer is marked
  /// closed, surfacing through peer_closed() instead of an exception.
  virtual void send(std::size_t src, std::size_t dst, const Envelope& env) = 0;

  /// Pop the oldest undelivered wire image queued for `dst` from `src`,
  /// if any (possibly corrupted or truncated in flight). Non-blocking.
  virtual std::optional<ByteBuffer> try_recv_wire(std::size_t dst,
                                                  std::size_t src) = 0;

  /// Pop the oldest wire image queued for `dst` from the lowest source
  /// rank that has one (the fairness contract above); the source rank is
  /// written to `src_out`. Non-blocking.
  virtual std::optional<ByteBuffer> try_recv_any_wire(std::size_t dst,
                                                      std::size_t* src_out) = 0;

  /// Charge `seconds` of extra simulated time to the (src, dst) link —
  /// the retry protocol's exponential backoff goes through this.
  virtual void add_link_delay(std::size_t src, std::size_t dst,
                              double seconds) = 0;

  /// Outbound traffic of `endpoint`, as observed by this transport. The
  /// in-memory fabric meters at send time; a socket endpoint meters its
  /// own sends at send time and every peer's at frame-receive time, so
  /// a fully drained daemon reports the same totals either way.
  virtual TrafficStats stats(std::size_t endpoint) const = 0;
  virtual TrafficStats total_stats() const = 0;

  /// Fault-injection accounting; all zero for backends that never
  /// inject (the socket transport — DESIGN.md §14 lists which fault
  /// axes apply per backend).
  virtual FaultStats fault_stats() const { return FaultStats{}; }

  /// Deterministic transfer-time model (latency + bytes/bandwidth) used
  /// by the retry protocol's simulated deadline accounting.
  virtual double model_transfer_seconds(std::size_t bytes) const = 0;

  /// Number of undelivered wire images currently queued.
  virtual std::size_t pending_messages() const = 0;

  /// Mirror traffic totals into the obs metrics registry. No-op while
  /// telemetry is disabled.
  virtual void publish_metrics() const {}

  /// True when no message from `rank` can ever arrive again: the
  /// connection is gone AND nothing remains queued or partially framed.
  /// The in-memory fabric always returns false (its crash simulation is
  /// a FaultPlan feature); the round loop turns a true here into a
  /// dropout instead of waiting out the receive timeout.
  virtual bool peer_closed(std::size_t rank) const {
    (void)rank;
    return false;
  }

  /// Block up to `timeout_s` for new frames to arrive and ingest them.
  /// No-op for the in-memory fabric, where send() enqueues directly.
  virtual void poll(double timeout_s) { (void)timeout_s; }
};

}  // namespace fedcav::comm
