// Length-prefixed framing + versioned handshake for the socket
// transport (DESIGN.md §14).
//
// Stream layout after the handshake: each message is a little-endian
// u32 byte count followed by exactly that many bytes — the encoded
// comm::Envelope wire image (type tag + payload + CRC-32). The length
// prefix only delimits; all integrity checking stays in the Envelope
// CRC, so the framing layer never needs to understand payloads.
//
// Hostile-input rule (the read_f32_vector overflow fix from PR 6,
// applied to the stream): a length prefix is validated against
// max_frame_bytes BEFORE any payload allocation. A peer announcing a
// 4 GiB frame costs the receiver 4 bytes of header scratch, not 4 GiB
// of memory — the decoder just enters a terminal failed state and the
// connection is dropped.
//
// The handshake is a fixed-size raw exchange (it happens before any
// protocol version is agreed, so it cannot ride the versioned frame
// stream — the Nix daemon/worker split does the same):
//   worker -> daemon : HELLO  { magic, proto_min, proto_max, rank, token }
//   daemon -> worker : ACCEPT { magic, status, proto, rank, endpoints }
// The daemon picks min(its max, the worker's max) as the session
// protocol version, rejecting when the ranges do not overlap. A
// requested rank of kAnyRank lets the daemon assign the lowest free
// worker rank. The HELLO carries a fixed 32-byte zero-padded auth
// token; the daemon compares it in constant time against its own and
// answers kAuthRejected on mismatch — after the version check (so a
// version-skewed worker still learns the real reason) but BEFORE any
// rank is assigned, so an unauthenticated probe can never consume a
// federation slot.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "src/tensor/serialize.hpp"

namespace fedcav::comm {

/// Protocol versions this build speaks, inclusive.
constexpr std::uint32_t kProtocolVersionMin = 1;
constexpr std::uint32_t kProtocolVersion = 1;

constexpr std::uint64_t kHelloMagic = 0xfedca7da30c7e110ULL;
constexpr std::uint64_t kAcceptMagic = 0xfedca7da30acce97ULL;
constexpr std::uint64_t kAnyRank = ~std::uint64_t{0};

/// Fixed handshake images: the HELLO is 4 little-endian u64 slots plus
/// the 32-byte auth-token field; the ACCEPT is 4 u64 slots.
constexpr std::size_t kAuthTokenBytes = 32;
constexpr std::size_t kHelloBytes = 64;
constexpr std::size_t kAcceptBytes = 32;

/// Zero-pad a secret string into the fixed HELLO token field. Throws
/// fedcav::Error when the secret exceeds kAuthTokenBytes (silent
/// truncation would make two distinct secrets compare equal). The empty
/// string is the "no auth" token both sides default to.
std::array<std::uint8_t, kAuthTokenBytes> encode_auth_token(const std::string& token);

/// Constant-time token equality: the time taken is independent of where
/// the first mismatching byte sits, so a remote cannot binary-search the
/// secret one byte at a time off the reject latency.
bool auth_tokens_equal(const std::array<std::uint8_t, kAuthTokenBytes>& a,
                       const std::array<std::uint8_t, kAuthTokenBytes>& b);

struct HelloMsg {
  std::uint32_t proto_min = kProtocolVersionMin;
  std::uint32_t proto_max = kProtocolVersion;
  /// Worker rank to join as (1-based; 0 is the daemon), or kAnyRank to
  /// let the daemon pick.
  std::uint64_t requested_rank = kAnyRank;
  /// Zero-padded shared secret (see encode_auth_token). All-zero = the
  /// empty token.
  std::array<std::uint8_t, kAuthTokenBytes> auth_token{};

  ByteBuffer encode() const;
  /// nullopt on bad magic or short buffer.
  static std::optional<HelloMsg> decode(const ByteBuffer& wire);
};

enum class HandshakeStatus : std::uint32_t {
  kOk = 0,
  kVersionMismatch = 1,
  kRankUnavailable = 2,
  kFederationFull = 3,
  kMalformedHello = 4,
  kAuthRejected = 5,
};

struct AcceptMsg {
  HandshakeStatus status = HandshakeStatus::kOk;
  /// Negotiated protocol version (meaningful when status == kOk).
  std::uint32_t proto = kProtocolVersion;
  std::uint64_t rank = 0;
  std::uint64_t num_endpoints = 0;

  ByteBuffer encode() const;
  static std::optional<AcceptMsg> decode(const ByteBuffer& wire);
};

/// Append the length-prefixed frame carrying `wire` to `out`.
void append_frame(ByteBuffer& out, const ByteBuffer& wire);

/// Incremental parser for one peer's byte stream. Feed whatever read()
/// returned; pop completed frames. Enters a terminal failed state on a
/// hostile length prefix (zero, or above the configured cap) — checked
/// against the raw header before the payload buffer is sized, so no
/// allocation is ever driven by an unvalidated length.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes);

  /// Ingest `len` stream bytes. Returns false once the decoder has
  /// failed (the current and all future input is discarded).
  bool push(const std::uint8_t* data, std::size_t len);

  /// Pop the oldest completed frame, if any.
  std::optional<ByteBuffer> next_frame();

  bool has_frame() const { return !frames_.empty(); }
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::uint8_t header_[4] = {0, 0, 0, 0};
  std::size_t header_filled_ = 0;
  ByteBuffer current_;         // payload in progress (sized post-validation)
  std::size_t current_need_ = 0;  // 0 = waiting on the header
  std::deque<ByteBuffer> frames_;
  bool failed_ = false;
  std::string error_;
};

/// Status of a blocking fd transfer.
enum class IoStatus { kOk, kClosed, kError };

/// write(2) the whole buffer, absorbing EINTR and short writes; uses
/// send(MSG_NOSIGNAL) on sockets so a half-closed peer surfaces as
/// kClosed (EPIPE/ECONNRESET) instead of a process-killing SIGPIPE.
IoStatus write_all(int fd, const std::uint8_t* data, std::size_t len);

/// read(2) exactly `len` bytes, absorbing EINTR and partial reads,
/// waiting up to `timeout_s` (across the whole transfer) for data.
/// kClosed on EOF, kError on a hard error or timeout.
IoStatus read_exact(int fd, std::uint8_t* data, std::size_t len, double timeout_s);

}  // namespace fedcav::comm
