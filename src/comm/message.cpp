#include "src/comm/message.hpp"

#include "src/utils/error.hpp"

namespace fedcav::comm {

ByteBuffer GlobalModelMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_f32_span(buf, weights);
  return buf;
}

GlobalModelMsg GlobalModelMsg::decode(ByteReader& reader) {
  GlobalModelMsg msg;
  msg.round = reader.read_u64();
  msg.weights = reader.read_f32_vector();
  return msg;
}

ByteBuffer ClientReportMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, client_id);
  write_u64(buf, num_samples);
  write_f64(buf, inference_loss);
  write_f32_span(buf, weights);
  return buf;
}

ClientReportMsg ClientReportMsg::decode(ByteReader& reader) {
  ClientReportMsg msg;
  msg.round = reader.read_u64();
  msg.client_id = reader.read_u64();
  msg.num_samples = reader.read_u64();
  msg.inference_loss = reader.read_f64();
  msg.weights = reader.read_f32_vector();
  return msg;
}

ByteBuffer ControlMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, static_cast<std::uint64_t>(action));
  return buf;
}

ControlMsg ControlMsg::decode(ByteReader& reader) {
  ControlMsg msg;
  msg.round = reader.read_u64();
  const std::uint64_t a = reader.read_u64();
  FEDCAV_REQUIRE(a <= 1, "ControlMsg: unknown action");
  msg.action = static_cast<ControlAction>(a);
  return msg;
}

ByteBuffer Envelope::encode() const {
  ByteBuffer buf;
  write_u64(buf, static_cast<std::uint64_t>(type));
  buf.insert(buf.end(), payload.begin(), payload.end());
  return buf;
}

Envelope Envelope::decode(const ByteBuffer& wire) {
  ByteReader reader(wire);
  const std::uint64_t t = reader.read_u64();
  FEDCAV_REQUIRE(t >= 1 && t <= 3, "Envelope: unknown message type");
  Envelope env;
  env.type = static_cast<MessageType>(t);
  env.payload.assign(wire.begin() + sizeof(std::uint64_t), wire.end());
  return env;
}

}  // namespace fedcav::comm
