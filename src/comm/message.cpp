#include "src/comm/message.hpp"

#include "src/comm/crc32.hpp"
#include "src/utils/error.hpp"

namespace fedcav::comm {

ByteBuffer GlobalModelMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_f32_span(buf, weights);
  return buf;
}

GlobalModelMsg GlobalModelMsg::decode(ByteReader& reader) {
  GlobalModelMsg msg;
  msg.round = reader.read_u64();
  msg.weights = reader.read_f32_vector();
  return msg;
}

ByteBuffer ClientReportMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, client_id);
  write_u64(buf, num_samples);
  write_f64(buf, inference_loss);
  write_f32_span(buf, weights);
  return buf;
}

ClientReportMsg ClientReportMsg::decode(ByteReader& reader) {
  ClientReportMsg msg;
  msg.round = reader.read_u64();
  msg.client_id = reader.read_u64();
  msg.num_samples = reader.read_u64();
  msg.inference_loss = reader.read_f64();
  msg.weights = reader.read_f32_vector();
  return msg;
}

ByteBuffer MetadataMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, client_id);
  write_u64(buf, num_samples);
  write_f64(buf, inference_loss);
  return buf;
}

MetadataMsg MetadataMsg::decode(ByteReader& reader) {
  MetadataMsg msg;
  msg.round = reader.read_u64();
  msg.client_id = reader.read_u64();
  msg.num_samples = reader.read_u64();
  msg.inference_loss = reader.read_f64();
  return msg;
}

ByteBuffer ControlMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, static_cast<std::uint64_t>(action));
  return buf;
}

ControlMsg ControlMsg::decode(ByteReader& reader) {
  ControlMsg msg;
  msg.round = reader.read_u64();
  const std::uint64_t a = reader.read_u64();
  FEDCAV_REQUIRE(a <= 1, "ControlMsg: unknown action");
  msg.action = static_cast<ControlAction>(a);
  return msg;
}

ByteBuffer QuantGlobalModelMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  const ByteBuffer body = model.encode();
  buf.insert(buf.end(), body.begin(), body.end());
  return buf;
}

QuantGlobalModelMsg QuantGlobalModelMsg::decode(ByteReader& reader) {
  QuantGlobalModelMsg msg;
  msg.round = reader.read_u64();
  msg.model = QuantizedDelta::decode(reader);
  return msg;
}

ByteBuffer QuantReportMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, client_id);
  write_u64(buf, num_samples);
  write_f64(buf, inference_loss);
  const ByteBuffer body = delta.encode();
  buf.insert(buf.end(), body.begin(), body.end());
  return buf;
}

QuantReportMsg QuantReportMsg::decode(ByteReader& reader) {
  QuantReportMsg msg;
  msg.round = reader.read_u64();
  msg.client_id = reader.read_u64();
  msg.num_samples = reader.read_u64();
  msg.inference_loss = reader.read_f64();
  msg.delta = QuantizedDelta::decode(reader);
  return msg;
}

ByteBuffer NackMsg::encode() const {
  ByteBuffer buf;
  write_u64(buf, round);
  write_u64(buf, static_cast<std::uint64_t>(expected));
  return buf;
}

NackMsg NackMsg::decode(ByteReader& reader) {
  NackMsg msg;
  msg.round = reader.read_u64();
  const std::uint64_t t = reader.read_u64();
  FEDCAV_REQUIRE(t >= 1 && t <= 7, "NackMsg: unknown expected type");
  msg.expected = static_cast<MessageType>(t);
  return msg;
}

namespace {
constexpr std::size_t kEnvelopeFraming = sizeof(std::uint64_t) + sizeof(std::uint32_t);
}

ByteBuffer Envelope::encode() const {
  ByteBuffer buf;
  write_u64(buf, static_cast<std::uint64_t>(type));
  buf.insert(buf.end(), payload.begin(), payload.end());
  write_u32(buf, crc32({buf.data(), buf.size()}));
  return buf;
}

std::optional<Envelope> Envelope::try_decode(const ByteBuffer& wire) {
  if (wire.size() < kEnvelopeFraming) return std::nullopt;
  const std::size_t body = wire.size() - sizeof(std::uint32_t);
  const std::uint32_t expected = crc32({wire.data(), body});
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i) {
    stored |= static_cast<std::uint32_t>(wire[body + i]) << (8 * i);
  }
  if (stored != expected) return std::nullopt;
  std::uint64_t t = 0;
  for (int i = 0; i < 8; ++i) t |= static_cast<std::uint64_t>(wire[i]) << (8 * i);
  if (t < 1 || t > 7) return std::nullopt;
  Envelope env;
  env.type = static_cast<MessageType>(t);
  env.payload.assign(wire.begin() + sizeof(std::uint64_t), wire.begin() + body);
  return env;
}

Envelope Envelope::decode(const ByteBuffer& wire) {
  std::optional<Envelope> env = try_decode(wire);
  FEDCAV_REQUIRE(env.has_value(), "Envelope: truncated, corrupt, or unknown-type wire");
  return std::move(*env);
}

}  // namespace fedcav::comm
