#include "src/comm/faults.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::comm {

bool FaultPlan::enabled() const {
  return drop_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0 ||
         corrupt_prob > 0.0 || truncate_prob > 0.0 || jitter_s > 0.0 ||
         !crashes.empty();
}

bool FaultPlan::offline(std::size_t rank, std::size_t round) const {
  for (const CrashWindow& w : crashes) {
    if (w.rank == rank && round >= w.first_round && round <= w.last_round) return true;
  }
  return false;
}

void FaultPlan::validate(std::size_t num_endpoints) const {
  const double probs[] = {drop_prob, duplicate_prob, reorder_prob, corrupt_prob,
                          truncate_prob};
  for (double p : probs) {
    FEDCAV_REQUIRE(p >= 0.0 && p <= 1.0, "FaultPlan: probability outside [0, 1]");
  }
  FEDCAV_REQUIRE(jitter_s >= 0.0, "FaultPlan: negative jitter");
  for (const CrashWindow& w : crashes) {
    FEDCAV_REQUIRE(w.rank < num_endpoints, "FaultPlan: crash rank out of range");
    FEDCAV_REQUIRE(w.first_round >= 1 && w.first_round <= w.last_round,
                   "FaultPlan: malformed crash window (need 1 <= first <= last)");
  }
}

namespace {

/// Whole-field non-negative integer parse. std::stoull would silently
/// accept trailing junk ("5x" -> 5) and wrap negatives into huge ranks;
/// parse_int consumes the full string and keeps the sign visible.
std::size_t parse_crash_field(const std::string& field, const std::string& entry) {
  try {
    const long long v = parse_int(trim(field));
    FEDCAV_REQUIRE(v >= 0, "parse_crash_spec: negative value in '" + entry + "'");
    return static_cast<std::size_t>(v);
  } catch (const Error&) {
    throw Error("parse_crash_spec: bad number in '" + entry + "'");
  }
}

}  // namespace

std::vector<CrashWindow> parse_crash_spec(const std::string& spec) {
  std::vector<CrashWindow> windows;
  if (trim(spec).empty()) return windows;
  for (const std::string& entry : split(spec, ',')) {
    const std::vector<std::string> rank_rounds = split(entry, ':');
    FEDCAV_REQUIRE(rank_rounds.size() == 2,
                   "parse_crash_spec: expected rank:first-last, got '" + entry + "'");
    const std::vector<std::string> rounds = split(rank_rounds[1], '-');
    FEDCAV_REQUIRE(rounds.size() == 2,
                   "parse_crash_spec: expected rank:first-last, got '" + entry + "'");
    CrashWindow w;
    w.rank = parse_crash_field(rank_rounds[0], entry);
    w.first_round = parse_crash_field(rounds[0], entry);
    w.last_round = parse_crash_field(rounds[1], entry);
    FEDCAV_REQUIRE(w.first_round >= 1 && w.first_round <= w.last_round,
                   "parse_crash_spec: malformed window in '" + entry +
                       "' (need 1 <= first <= last)");
    windows.push_back(w);
  }
  return windows;
}

}  // namespace fedcav::comm
