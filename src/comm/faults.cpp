#include "src/comm/faults.hpp"

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::comm {

bool FaultPlan::enabled() const {
  return drop_prob > 0.0 || duplicate_prob > 0.0 || reorder_prob > 0.0 ||
         corrupt_prob > 0.0 || truncate_prob > 0.0 || jitter_s > 0.0 ||
         !crashes.empty();
}

bool FaultPlan::offline(std::size_t rank, std::size_t round) const {
  for (const CrashWindow& w : crashes) {
    if (w.rank == rank && round >= w.first_round && round <= w.last_round) return true;
  }
  return false;
}

void FaultPlan::validate(std::size_t num_endpoints) const {
  const double probs[] = {drop_prob, duplicate_prob, reorder_prob, corrupt_prob,
                          truncate_prob};
  for (double p : probs) {
    FEDCAV_REQUIRE(p >= 0.0 && p <= 1.0, "FaultPlan: probability outside [0, 1]");
  }
  FEDCAV_REQUIRE(jitter_s >= 0.0, "FaultPlan: negative jitter");
  for (const CrashWindow& w : crashes) {
    FEDCAV_REQUIRE(w.rank < num_endpoints, "FaultPlan: crash rank out of range");
    FEDCAV_REQUIRE(w.first_round >= 1 && w.first_round <= w.last_round,
                   "FaultPlan: malformed crash window (need 1 <= first <= last)");
  }
}

std::vector<CrashWindow> parse_crash_spec(const std::string& spec) {
  std::vector<CrashWindow> windows;
  if (spec.empty()) return windows;
  for (const std::string& entry : split(spec, ',')) {
    const auto colon = entry.find(':');
    const auto dash = entry.find('-', colon == std::string::npos ? 0 : colon + 1);
    FEDCAV_REQUIRE(colon != std::string::npos && dash != std::string::npos,
                   "parse_crash_spec: expected rank:first-last, got '" + entry + "'");
    try {
      CrashWindow w;
      w.rank = static_cast<std::size_t>(std::stoull(entry.substr(0, colon)));
      w.first_round =
          static_cast<std::size_t>(std::stoull(entry.substr(colon + 1, dash - colon - 1)));
      w.last_round = static_cast<std::size_t>(std::stoull(entry.substr(dash + 1)));
      windows.push_back(w);
    } catch (const std::exception&) {
      throw Error("parse_crash_spec: bad number in '" + entry + "'");
    }
  }
  return windows;
}

}  // namespace fedcav::comm
