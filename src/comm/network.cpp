#include "src/comm/network.hpp"

#include <algorithm>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::comm {

namespace {

/// Stable per-link seed derivation: two splitmix64 steps fold the plan
/// seed with the link coordinates so adjacent links get unrelated
/// streams.
std::uint64_t link_seed(std::uint64_t plan_seed, std::size_t src, std::size_t dst) {
  std::uint64_t state = plan_seed ^ (0x9e3779b97f4a7c15ULL * (src + 1));
  splitmix64(state);
  state ^= 0xbf58476d1ce4e5b9ULL * (dst + 1);
  return splitmix64(state);
}

}  // namespace

InMemoryNetwork::InMemoryNetwork(NetworkConfig config) : config_(config) {
  FEDCAV_REQUIRE(config.num_endpoints >= 2, "InMemoryNetwork: need server + >=1 client");
  FEDCAV_REQUIRE(config.bandwidth_bytes_per_s > 0.0, "InMemoryNetwork: zero bandwidth");
  config_.faults.validate(config_.num_endpoints);
  const std::size_t n = config_.num_endpoints;
  inboxes_.resize(n);
  link_stats_.resize(n * n);
  if (config_.faults.enabled()) {
    link_rng_.reserve(n * n);
    for (std::size_t src = 0; src < n; ++src) {
      for (std::size_t dst = 0; dst < n; ++dst) {
        link_rng_.emplace_back(link_seed(config_.faults.seed, src, dst));
      }
    }
  }
}

void InMemoryNetwork::begin_round(std::size_t round) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_round_ = round;
}

double InMemoryNetwork::model_transfer_seconds(std::size_t bytes) const {
  return config_.latency_s + static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

void InMemoryNetwork::enqueue(std::size_t src, std::size_t dst, ByteBuffer wire,
                              bool reorder) {
  auto& inbox = inboxes_[dst];
  if (reorder) {
    // Overtake: slot the new image in front of the most recent message
    // still queued on the same link, if one exists.
    for (auto it = inbox.rbegin(); it != inbox.rend(); ++it) {
      if (it->src == src) {
        inbox.insert(std::prev(it.base()), Queued{src, std::move(wire)});
        fault_stats_.reordered += 1;
        return;
      }
    }
  }
  inbox.push_back(Queued{src, std::move(wire)});
}

void InMemoryNetwork::send(std::size_t src, std::size_t dst, const Envelope& env) {
  FEDCAV_REQUIRE(src < config_.num_endpoints && dst < config_.num_endpoints,
                 "InMemoryNetwork::send: endpoint out of range");
  FEDCAV_REQUIRE(src != dst, "InMemoryNetwork::send: self-send");
  std::lock_guard<std::mutex> lock(mutex_);
  ByteBuffer wire = env.encode();
  // The sender is metered unconditionally: transmission happened even
  // if the fault layer then loses or mangles the image in flight.
  TrafficStats& link = link_stats_[link_index(src, dst)];
  link.messages_sent += 1;
  link.bytes_sent += wire.size();
  link.simulated_seconds += model_transfer_seconds(wire.size());
  const FaultPlan& plan = config_.faults;
  if (!plan.enabled()) {
    enqueue(src, dst, std::move(wire), /*reorder=*/false);
    return;
  }
  if (plan.offline(src, current_round_) || plan.offline(dst, current_round_)) {
    fault_stats_.crash_dropped += 1;
    return;
  }
  // Fixed decision order per message — jitter, drop, duplicate,
  // corrupt, truncate, reorder — keeps each link's RNG stream aligned
  // across runs regardless of what fires.
  Rng& rng = link_rng_[link_index(src, dst)];
  if (plan.jitter_s > 0.0) {
    const double extra = rng.uniform(0.0, plan.jitter_s);
    link.simulated_seconds += extra;
    fault_stats_.jitter_seconds += extra;
  }
  if (plan.drop_prob > 0.0 && rng.bernoulli(plan.drop_prob)) {
    fault_stats_.dropped += 1;
    return;
  }
  bool duplicate = false;
  if (plan.duplicate_prob > 0.0 && rng.bernoulli(plan.duplicate_prob)) {
    fault_stats_.duplicated += 1;
    duplicate = true;
  }
  if (plan.corrupt_prob > 0.0 && !wire.empty() && rng.bernoulli(plan.corrupt_prob)) {
    const std::size_t byte = static_cast<std::size_t>(rng.uniform_int(wire.size()));
    wire[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    fault_stats_.corrupted += 1;
  }
  if (plan.truncate_prob > 0.0 && !wire.empty() && rng.bernoulli(plan.truncate_prob)) {
    wire.resize(static_cast<std::size_t>(rng.uniform_int(wire.size())));
    fault_stats_.truncated += 1;
  }
  const bool reorder =
      plan.reorder_prob > 0.0 && rng.bernoulli(plan.reorder_prob);
  ByteBuffer copy = duplicate ? wire : ByteBuffer{};
  enqueue(src, dst, std::move(wire), reorder);
  // The duplicate trails its original (corruption and all).
  if (duplicate) enqueue(src, dst, std::move(copy), /*reorder=*/false);
}

std::optional<ByteBuffer> InMemoryNetwork::pop_wire(std::size_t dst, std::size_t src) {
  auto& inbox = inboxes_[dst];
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (it->src == src) {
      ByteBuffer wire = std::move(it->wire);
      inbox.erase(it);
      fault_stats_.delivered += 1;
      return wire;
    }
  }
  return std::nullopt;
}

std::optional<ByteBuffer> InMemoryNetwork::try_recv_wire(std::size_t dst,
                                                         std::size_t src) {
  FEDCAV_REQUIRE(dst < config_.num_endpoints, "InMemoryNetwork::try_recv_wire: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  return pop_wire(dst, src);
}

std::optional<Envelope> InMemoryNetwork::try_recv(std::size_t dst, std::size_t src) {
  std::optional<ByteBuffer> wire = try_recv_wire(dst, src);
  if (!wire.has_value()) return std::nullopt;
  return Envelope::decode(*wire);
}

std::optional<ByteBuffer> InMemoryNetwork::try_recv_any_wire(std::size_t dst,
                                                             std::size_t* src_out) {
  FEDCAV_REQUIRE(dst < config_.num_endpoints,
                 "InMemoryNetwork::try_recv_any_wire: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  // Fairness contract (transport.hpp): drain the lowest source rank
  // first, never the inbox's arrival interleaving — otherwise a refactor
  // of the queue container (or, on a real transport, OS scheduling)
  // could silently reorder the protocol's view of its peers.
  auto& inbox = inboxes_[dst];
  auto best = inbox.end();
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (best == inbox.end() || it->src < best->src) best = it;
  }
  if (best == inbox.end()) return std::nullopt;
  ByteBuffer wire = std::move(best->wire);
  if (src_out != nullptr) *src_out = best->src;
  inbox.erase(best);
  fault_stats_.delivered += 1;
  return wire;
}

std::optional<Envelope> InMemoryNetwork::try_recv_any(std::size_t dst, std::size_t* src_out) {
  std::optional<ByteBuffer> wire = try_recv_any_wire(dst, src_out);
  if (!wire.has_value()) return std::nullopt;
  return Envelope::decode(*wire);
}

void InMemoryNetwork::broadcast(std::size_t src, const Envelope& env) {
  for (std::size_t dst = 0; dst < config_.num_endpoints; ++dst) {
    if (dst != src) send(src, dst, env);
  }
}

void InMemoryNetwork::add_link_delay(std::size_t src, std::size_t dst, double seconds) {
  FEDCAV_REQUIRE(src < config_.num_endpoints && dst < config_.num_endpoints,
                 "InMemoryNetwork::add_link_delay: endpoint out of range");
  std::lock_guard<std::mutex> lock(mutex_);
  link_stats_[link_index(src, dst)].simulated_seconds += seconds;
}

TrafficStats InMemoryNetwork::stats(std::size_t endpoint) const {
  FEDCAV_REQUIRE(endpoint < config_.num_endpoints, "InMemoryNetwork::stats: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (std::size_t dst = 0; dst < config_.num_endpoints; ++dst) {
    const TrafficStats& s = link_stats_[link_index(endpoint, dst)];
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.simulated_seconds += s.simulated_seconds;
  }
  return total;
}

TrafficStats InMemoryNetwork::total_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (const auto& s : link_stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.simulated_seconds += s.simulated_seconds;
  }
  return total;
}

void InMemoryNetwork::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : link_stats_) s = TrafficStats{};
  fault_stats_ = FaultStats{};
}

FaultStats InMemoryNetwork::fault_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fault_stats_;
}

void InMemoryNetwork::publish_metrics() const {
  if (!obs::enabled()) return;
  const TrafficStats total = total_stats();
  auto& reg = obs::registry();
  reg.gauge("comm.bytes_sent").set(static_cast<double>(total.bytes_sent));
  reg.gauge("comm.messages_sent").set(static_cast<double>(total.messages_sent));
  reg.gauge("comm.simulated_seconds").set(total.simulated_seconds);
  reg.gauge("comm.pending_messages").set(static_cast<double>(pending_messages()));
  if (config_.faults.enabled()) {
    const FaultStats f = fault_stats();
    reg.gauge("comm.fault.dropped").set(static_cast<double>(f.dropped));
    reg.gauge("comm.fault.crash_dropped").set(static_cast<double>(f.crash_dropped));
    reg.gauge("comm.fault.duplicated").set(static_cast<double>(f.duplicated));
    reg.gauge("comm.fault.reordered").set(static_cast<double>(f.reordered));
    reg.gauge("comm.fault.corrupted").set(static_cast<double>(f.corrupted));
    reg.gauge("comm.fault.truncated").set(static_cast<double>(f.truncated));
    reg.gauge("comm.fault.delivered").set(static_cast<double>(f.delivered));
    reg.gauge("comm.fault.jitter_seconds").set(f.jitter_seconds);
  }
}

std::size_t InMemoryNetwork::pending_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& inbox : inboxes_) n += inbox.size();
  return n;
}

void InMemoryNetwork::save_state(ByteBuffer& buf, bool with_stats) const {
  std::lock_guard<std::mutex> lock(mutex_);
  write_u64(buf, current_round_);
  write_u64(buf, config_.num_endpoints);
  write_u64(buf, link_rng_.size());
  for (const Rng& rng : link_rng_) write_rng_state(buf, rng.state());
  for (const auto& inbox : inboxes_) {
    write_u64(buf, inbox.size());
    for (const Queued& q : inbox) {
      write_u64(buf, q.src);
      write_u64(buf, q.wire.size());
      buf.insert(buf.end(), q.wire.begin(), q.wire.end());
    }
  }
  if (!with_stats) return;  // legacy v3 layout stops here
  // v4: the accounting travels with the queues it describes. Without it
  // a resumed fabric reports pending messages that were never "sent",
  // violating sent + duplicated == delivered + dropped + crash_dropped
  // + pending for the rest of the run.
  write_u64(buf, link_stats_.size());
  for (const TrafficStats& s : link_stats_) {
    write_u64(buf, s.messages_sent);
    write_u64(buf, s.bytes_sent);
    write_f64(buf, s.simulated_seconds);
  }
  write_u64(buf, fault_stats_.dropped);
  write_u64(buf, fault_stats_.crash_dropped);
  write_u64(buf, fault_stats_.duplicated);
  write_u64(buf, fault_stats_.reordered);
  write_u64(buf, fault_stats_.corrupted);
  write_u64(buf, fault_stats_.truncated);
  write_u64(buf, fault_stats_.delivered);
  write_f64(buf, fault_stats_.jitter_seconds);
}

void InMemoryNetwork::load_state(ByteReader& reader, bool with_stats) {
  std::lock_guard<std::mutex> lock(mutex_);
  current_round_ = reader.read_u64();
  const std::uint64_t endpoints = reader.read_u64();
  FEDCAV_REQUIRE(endpoints == config_.num_endpoints,
                 "InMemoryNetwork::load_state: endpoint count mismatch");
  const std::uint64_t rngs = reader.read_u64();
  FEDCAV_REQUIRE(rngs == link_rng_.size(),
                 "InMemoryNetwork::load_state: fault RNG count mismatch "
                 "(checkpoint and config disagree on whether faults are enabled)");
  for (Rng& rng : link_rng_) rng.set_state(read_rng_state(reader));
  for (auto& inbox : inboxes_) {
    inbox.clear();
    const std::uint64_t count = reader.read_u64();
    for (std::uint64_t i = 0; i < count; ++i) {
      Queued q;
      q.src = reader.read_u64();
      FEDCAV_REQUIRE(q.src < config_.num_endpoints,
                     "InMemoryNetwork::load_state: bad queued source");
      const std::uint64_t bytes = reader.read_u64();
      q.wire.resize(bytes);
      for (std::uint64_t b = 0; b < bytes; ++b) q.wire[b] = reader.read_u8();
      inbox.push_back(std::move(q));
    }
  }
  if (!with_stats) return;  // v3 file: accounting starts over from zero
  const std::uint64_t links = reader.read_u64();
  FEDCAV_REQUIRE(links == link_stats_.size(),
                 "InMemoryNetwork::load_state: link stats count mismatch");
  for (TrafficStats& s : link_stats_) {
    s.messages_sent = reader.read_u64();
    s.bytes_sent = reader.read_u64();
    s.simulated_seconds = reader.read_f64();
  }
  fault_stats_.dropped = reader.read_u64();
  fault_stats_.crash_dropped = reader.read_u64();
  fault_stats_.duplicated = reader.read_u64();
  fault_stats_.reordered = reader.read_u64();
  fault_stats_.corrupted = reader.read_u64();
  fault_stats_.truncated = reader.read_u64();
  fault_stats_.delivered = reader.read_u64();
  fault_stats_.jitter_seconds = reader.read_f64();
}

}  // namespace fedcav::comm
