#include "src/comm/network.hpp"

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/utils/error.hpp"

namespace fedcav::comm {

InMemoryNetwork::InMemoryNetwork(NetworkConfig config) : config_(config) {
  FEDCAV_REQUIRE(config.num_endpoints >= 2, "InMemoryNetwork: need server + >=1 client");
  FEDCAV_REQUIRE(config.bandwidth_bytes_per_s > 0.0, "InMemoryNetwork: zero bandwidth");
  inboxes_.resize(config.num_endpoints);
  stats_.resize(config.num_endpoints);
}

double InMemoryNetwork::model_transfer_seconds(std::size_t bytes) const {
  return config_.latency_s + static_cast<double>(bytes) / config_.bandwidth_bytes_per_s;
}

void InMemoryNetwork::send(std::size_t src, std::size_t dst, const Envelope& env) {
  FEDCAV_REQUIRE(src < config_.num_endpoints && dst < config_.num_endpoints,
                 "InMemoryNetwork::send: endpoint out of range");
  FEDCAV_REQUIRE(src != dst, "InMemoryNetwork::send: self-send");
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t wire = env.wire_size();
  stats_[src].messages_sent += 1;
  stats_[src].bytes_sent += wire;
  stats_[src].simulated_seconds += model_transfer_seconds(wire);
  inboxes_[dst].push_back({src, env});
}

std::optional<Envelope> InMemoryNetwork::try_recv(std::size_t dst, std::size_t src) {
  FEDCAV_REQUIRE(dst < config_.num_endpoints, "InMemoryNetwork::try_recv: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& inbox = inboxes_[dst];
  for (auto it = inbox.begin(); it != inbox.end(); ++it) {
    if (it->src == src) {
      Envelope env = std::move(it->env);
      inbox.erase(it);
      return env;
    }
  }
  return std::nullopt;
}

std::optional<Envelope> InMemoryNetwork::try_recv_any(std::size_t dst, std::size_t* src_out) {
  FEDCAV_REQUIRE(dst < config_.num_endpoints, "InMemoryNetwork::try_recv_any: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  auto& inbox = inboxes_[dst];
  if (inbox.empty()) return std::nullopt;
  Queued q = std::move(inbox.front());
  inbox.pop_front();
  if (src_out != nullptr) *src_out = q.src;
  return q.env;
}

void InMemoryNetwork::broadcast(std::size_t src, const Envelope& env) {
  for (std::size_t dst = 0; dst < config_.num_endpoints; ++dst) {
    if (dst != src) send(src, dst, env);
  }
}

TrafficStats InMemoryNetwork::stats(std::size_t endpoint) const {
  FEDCAV_REQUIRE(endpoint < config_.num_endpoints, "InMemoryNetwork::stats: bad endpoint");
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_[endpoint];
}

TrafficStats InMemoryNetwork::total_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TrafficStats total;
  for (const auto& s : stats_) {
    total.messages_sent += s.messages_sent;
    total.bytes_sent += s.bytes_sent;
    total.simulated_seconds += s.simulated_seconds;
  }
  return total;
}

void InMemoryNetwork::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& s : stats_) s = TrafficStats{};
}

void InMemoryNetwork::publish_metrics() const {
  if (!obs::enabled()) return;
  const TrafficStats total = total_stats();
  auto& reg = obs::registry();
  reg.gauge("comm.bytes_sent").set(static_cast<double>(total.bytes_sent));
  reg.gauge("comm.messages_sent").set(static_cast<double>(total.messages_sent));
  reg.gauge("comm.simulated_seconds").set(total.simulated_seconds);
  reg.gauge("comm.pending_messages").set(static_cast<double>(pending_messages()));
}

std::size_t InMemoryNetwork::pending_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& inbox : inboxes_) n += inbox.size();
  return n;
}

}  // namespace fedcav::comm
