// In-memory message-passing fabric with deterministic fault injection.
//
// Interface follows the message-passing idiom from the HPC guides:
// explicit point-to-point send/recv between integer-ranked endpoints
// (rank 0 is the server), with per-link byte and message counters and a
// simple latency model (fixed per-message latency + bytes/bandwidth).
// The simulated clock makes communication-cost experiments deterministic
// and machine-independent.
//
// Messages are stored as encoded wire images so the configured
// FaultPlan can act on real bytes: drop, duplicate, reorder, flip a
// bit, cut a suffix, add latency jitter, or black-hole traffic for
// crashed endpoints (see src/comm/faults.hpp). Fault decisions come
// from per-link RNG streams, so a chaos run is reproducible with any
// thread-pool size. Fault-aware receivers pop raw wire bytes with
// try_recv_wire() and validate via Envelope::try_decode; try_recv()
// remains the strict trusted-fabric path (throws on a damaged image).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/comm/faults.hpp"
#include "src/comm/message.hpp"
#include "src/comm/transport.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::comm {

struct NetworkConfig {
  std::size_t num_endpoints = 2;  // server + clients
  /// Fixed per-message latency (seconds of simulated time).
  double latency_s = 0.01;
  /// Link bandwidth in bytes/second for the transfer-time model.
  double bandwidth_bytes_per_s = 1.25e6;  // ~10 Mbit/s edge uplink
  /// Fault injection; default-constructed = perfect channel.
  FaultPlan faults;
};

class InMemoryNetwork final : public Transport {
 public:
  explicit InMemoryNetwork(NetworkConfig config);

  std::size_t num_endpoints() const override { return config_.num_endpoints; }

  /// Tell the fabric which communication round is in progress (1-based);
  /// crash windows are evaluated against this value.
  void begin_round(std::size_t round) override;

  /// Deliver `env` from `src` to `dst` (enqueued immediately; the
  /// simulated clock advances by the modeled transfer time). The sender
  /// is metered even when the fault layer then loses the message.
  void send(std::size_t src, std::size_t dst, const Envelope& env) override;

  /// Pop the oldest message queued for `dst` from `src`, if any, as raw
  /// wire bytes (possibly corrupted or truncated in flight).
  std::optional<ByteBuffer> try_recv_wire(std::size_t dst, std::size_t src) override;

  /// Pop the oldest message queued for `dst` from the lowest-ranked
  /// source that has one (the Transport fairness contract — never the
  /// inbox's arrival interleaving); the source rank is written to
  /// `src_out`.
  std::optional<ByteBuffer> try_recv_any_wire(std::size_t dst,
                                              std::size_t* src_out) override;

  /// Strict-decode convenience over try_recv_wire: throws fedcav::Error
  /// if the popped image is damaged. Use only on fault-free fabrics.
  std::optional<Envelope> try_recv(std::size_t dst, std::size_t src);

  /// Strict-decode convenience over try_recv_any_wire (same ascending
  /// source-rank order). Throws fedcav::Error on a damaged image.
  std::optional<Envelope> try_recv_any(std::size_t dst, std::size_t* src_out);

  /// Send to every endpoint except `src` (server broadcast).
  void broadcast(std::size_t src, const Envelope& env);

  /// Charge `seconds` of extra simulated time to the (src, dst) link —
  /// the retry protocol's exponential backoff goes through this.
  void add_link_delay(std::size_t src, std::size_t dst, double seconds) override;

  /// Per-endpoint outbound traffic accounting (sum over its links, in
  /// fixed link order, so even the float total is deterministic).
  TrafficStats stats(std::size_t endpoint) const override;
  TrafficStats total_stats() const override;
  void reset_stats();

  /// Fabric-wide fault accounting (all zero when the plan is inert).
  FaultStats fault_stats() const override;

  /// Number of undelivered messages in the whole fabric.
  std::size_t pending_messages() const override;

  /// Mirror the fabric-wide totals into the obs metrics registry
  /// (comm.bytes_sent / comm.messages_sent / comm.simulated_seconds /
  /// comm.pending_messages gauges, plus comm.fault.* gauges when a
  /// fault plan is active). No-op while telemetry is disabled.
  void publish_metrics() const override;

  double model_transfer_seconds(std::size_t bytes) const override;

  /// Serialize / restore the fabric's mutable state: the current round,
  /// every per-link fault RNG stream, all in-flight wire images, and —
  /// with `with_stats` (checkpoint v4) — the per-link traffic counters
  /// plus the fabric-wide FaultStats. Checkpoints embed this so a
  /// resumed chaos run replays the exact fault sequence, including
  /// stale duplicates still in the queues. `with_stats = false` is the
  /// legacy v3 layout, which silently zeroed the accounting on load and
  /// therefore broke the conservation invariant on any resumed fabric
  /// with in-flight messages (the first bug the chaos search minimized;
  /// see tests/chaos_seeds/resume_stats_conservation.plan).
  /// load_state throws fedcav::Error on endpoint-count mismatch.
  void save_state(ByteBuffer& buf, bool with_stats = true) const;
  void load_state(ByteReader& reader, bool with_stats = true);

 private:
  struct Queued {
    std::size_t src;
    ByteBuffer wire;
  };

  std::size_t link_index(std::size_t src, std::size_t dst) const {
    return src * config_.num_endpoints + dst;
  }
  /// Append `wire` to dst's inbox; with `reorder`, let it overtake the
  /// most recent queued same-link message instead. Caller holds mutex_.
  void enqueue(std::size_t src, std::size_t dst, ByteBuffer wire, bool reorder);
  std::optional<ByteBuffer> pop_wire(std::size_t dst, std::size_t src);

  NetworkConfig config_;
  std::vector<std::deque<Queued>> inboxes_;  // per destination
  std::vector<TrafficStats> link_stats_;     // per (src, dst) link
  std::vector<Rng> link_rng_;                // per (src, dst) fault stream
  FaultStats fault_stats_;
  std::size_t current_round_ = 0;
  mutable std::mutex mutex_;
};

}  // namespace fedcav::comm
