// In-memory message-passing fabric.
//
// Interface follows the message-passing idiom from the HPC guides:
// explicit point-to-point send/recv between integer-ranked endpoints
// (rank 0 is the server), with per-link byte and message counters and a
// simple latency model (fixed per-message latency + bytes/bandwidth).
// The simulated clock makes communication-cost experiments deterministic
// and machine-independent.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "src/comm/message.hpp"

namespace fedcav::comm {

struct NetworkConfig {
  std::size_t num_endpoints = 2;  // server + clients
  /// Fixed per-message latency (seconds of simulated time).
  double latency_s = 0.01;
  /// Link bandwidth in bytes/second for the transfer-time model.
  double bandwidth_bytes_per_s = 1.25e6;  // ~10 Mbit/s edge uplink
};

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Accumulated simulated transfer time (latency + bytes/bandwidth).
  double simulated_seconds = 0.0;
};

class InMemoryNetwork {
 public:
  explicit InMemoryNetwork(NetworkConfig config);

  std::size_t num_endpoints() const { return config_.num_endpoints; }

  /// Deliver `env` from `src` to `dst` (enqueued immediately; the
  /// simulated clock advances by the modeled transfer time).
  void send(std::size_t src, std::size_t dst, const Envelope& env);

  /// Pop the oldest message queued for `dst` from `src`, if any.
  std::optional<Envelope> try_recv(std::size_t dst, std::size_t src);

  /// Pop the oldest message queued for `dst` from any source; the source
  /// rank is written to `src_out`.
  std::optional<Envelope> try_recv_any(std::size_t dst, std::size_t* src_out);

  /// Send to every endpoint except `src` (server broadcast).
  void broadcast(std::size_t src, const Envelope& env);

  /// Per-endpoint outbound traffic accounting.
  TrafficStats stats(std::size_t endpoint) const;
  TrafficStats total_stats() const;
  void reset_stats();

  /// Number of undelivered messages in the whole fabric.
  std::size_t pending_messages() const;

  /// Mirror the fabric-wide totals into the obs metrics registry
  /// (comm.bytes_sent / comm.messages_sent / comm.simulated_seconds /
  /// comm.pending_messages gauges). No-op while telemetry is disabled.
  void publish_metrics() const;

  double model_transfer_seconds(std::size_t bytes) const;

 private:
  struct Queued {
    std::size_t src;
    Envelope env;
  };

  NetworkConfig config_;
  std::vector<std::deque<Queued>> inboxes_;  // per destination
  std::vector<TrafficStats> stats_;          // per source
  mutable std::mutex mutex_;
};

}  // namespace fedcav::comm
