#include "src/comm/frame.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav::comm {

namespace {

void write_u64_at(ByteBuffer& buf, std::uint64_t v) { write_u64(buf, v); }

std::uint64_t read_u64_le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::array<std::uint8_t, kAuthTokenBytes> encode_auth_token(const std::string& token) {
  FEDCAV_REQUIRE(token.size() <= kAuthTokenBytes,
                 "encode_auth_token: secret exceeds " +
                     std::to_string(kAuthTokenBytes) + " bytes");
  std::array<std::uint8_t, kAuthTokenBytes> out{};
  std::memcpy(out.data(), token.data(), token.size());
  return out;
}

bool auth_tokens_equal(const std::array<std::uint8_t, kAuthTokenBytes>& a,
                       const std::array<std::uint8_t, kAuthTokenBytes>& b) {
  // Accumulate the xor of every byte pair; no data-dependent branches.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kAuthTokenBytes; ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

ByteBuffer HelloMsg::encode() const {
  ByteBuffer buf;
  write_u64_at(buf, kHelloMagic);
  write_u64_at(buf, (static_cast<std::uint64_t>(proto_max) << 32) |
                        static_cast<std::uint64_t>(proto_min));
  write_u64_at(buf, requested_rank);
  write_u64_at(buf, 0);  // reserved
  buf.insert(buf.end(), auth_token.begin(), auth_token.end());
  return buf;
}

std::optional<HelloMsg> HelloMsg::decode(const ByteBuffer& wire) {
  if (wire.size() != kHelloBytes) return std::nullopt;
  if (read_u64_le(wire.data()) != kHelloMagic) return std::nullopt;
  const std::uint64_t versions = read_u64_le(wire.data() + 8);
  HelloMsg msg;
  msg.proto_min = static_cast<std::uint32_t>(versions & 0xffffffffULL);
  msg.proto_max = static_cast<std::uint32_t>(versions >> 32);
  msg.requested_rank = read_u64_le(wire.data() + 16);
  std::memcpy(msg.auth_token.data(), wire.data() + 32, kAuthTokenBytes);
  if (msg.proto_min > msg.proto_max) return std::nullopt;
  return msg;
}

ByteBuffer AcceptMsg::encode() const {
  ByteBuffer buf;
  write_u64_at(buf, kAcceptMagic);
  write_u64_at(buf, (static_cast<std::uint64_t>(proto) << 32) |
                        static_cast<std::uint64_t>(status));
  write_u64_at(buf, rank);
  write_u64_at(buf, num_endpoints);
  return buf;
}

std::optional<AcceptMsg> AcceptMsg::decode(const ByteBuffer& wire) {
  if (wire.size() != kAcceptBytes) return std::nullopt;
  if (read_u64_le(wire.data()) != kAcceptMagic) return std::nullopt;
  const std::uint64_t word = read_u64_le(wire.data() + 8);
  const std::uint64_t status = word & 0xffffffffULL;
  if (status > static_cast<std::uint64_t>(HandshakeStatus::kAuthRejected)) {
    return std::nullopt;
  }
  AcceptMsg msg;
  msg.status = static_cast<HandshakeStatus>(status);
  msg.proto = static_cast<std::uint32_t>(word >> 32);
  msg.rank = read_u64_le(wire.data() + 16);
  msg.num_endpoints = read_u64_le(wire.data() + 24);
  return msg;
}

void append_frame(ByteBuffer& out, const ByteBuffer& wire) {
  FEDCAV_REQUIRE(!wire.empty(), "append_frame: empty wire image");
  FEDCAV_REQUIRE(wire.size() <= 0xffffffffULL, "append_frame: frame too large");
  write_u32(out, static_cast<std::uint32_t>(wire.size()));
  out.insert(out.end(), wire.begin(), wire.end());
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  FEDCAV_REQUIRE(max_frame_bytes_ >= 1, "FrameDecoder: zero max_frame_bytes");
}

bool FrameDecoder::push(const std::uint8_t* data, std::size_t len) {
  if (failed_) return false;
  std::size_t pos = 0;
  while (pos < len) {
    if (current_need_ == 0) {
      // Collecting the 4-byte length prefix (may straddle reads).
      const std::size_t take = std::min(len - pos, std::size_t{4} - header_filled_);
      std::memcpy(header_ + header_filled_, data + pos, take);
      header_filled_ += take;
      pos += take;
      if (header_filled_ < 4) break;
      std::uint32_t announced = 0;
      for (int i = 0; i < 4; ++i) {
        announced |= static_cast<std::uint32_t>(header_[i]) << (8 * i);
      }
      header_filled_ = 0;
      // The hostile-prefix gate: validated before current_ is sized, so
      // an adversarial 0xffffffff costs nothing but this branch.
      if (announced == 0 || announced > max_frame_bytes_) {
        failed_ = true;
        error_ = "frame length " + std::to_string(announced) +
                 " outside (0, " + std::to_string(max_frame_bytes_) + "]";
        current_.clear();
        return false;
      }
      current_need_ = announced;
      current_.clear();
      current_.reserve(current_need_);
      continue;
    }
    const std::size_t take = std::min(len - pos, current_need_ - current_.size());
    current_.insert(current_.end(), data + pos, data + pos + take);
    pos += take;
    if (current_.size() == current_need_) {
      frames_.push_back(std::move(current_));
      current_ = ByteBuffer{};
      current_need_ = 0;
    }
  }
  return true;
}

std::optional<ByteBuffer> FrameDecoder::next_frame() {
  if (frames_.empty()) return std::nullopt;
  ByteBuffer frame = std::move(frames_.front());
  frames_.pop_front();
  return frame;
}

IoStatus write_all(int fd, const std::uint8_t* data, std::size_t len) {
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a dead peer must come back as EPIPE, never SIGPIPE.
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus read_exact(int fd, std::uint8_t* data, std::size_t len, double timeout_s) {
  std::size_t got = 0;
  Stopwatch watch;
  while (got < len) {
    const double remaining = timeout_s - watch.seconds();
    if (remaining <= 0.0) return IoStatus::kError;
    struct pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return IoStatus::kError;
    }
    if (ready == 0) continue;  // re-check the deadline
    const ssize_t n = ::read(fd, data + got, len - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET) return IoStatus::kClosed;
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

}  // namespace fedcav::comm
