#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "src/utils/error.hpp"

namespace fedcav::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// JSON string escaping for span names (quotes, backslashes, control
/// bytes; everything else passes through).
void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

Tracer::Tracer() : epoch_ns_(steady_ns()) {}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() const { return steady_ns() - epoch_ns_; }

Tracer::Buffer& Tracer::thread_buffer() {
  // One buffer per thread for the process lifetime; the shared_ptr keeps
  // the buffer alive in the tracer's registry even after the owning
  // thread exits (its recorded events must survive into the flush).
  thread_local std::shared_ptr<Buffer> local;
  if (local == nullptr) {
    local = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    local->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(local);
  }
  return *local;
}

void Tracer::record(TraceEvent ev) {
  Buffer& buf = thread_buffer();
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> merged;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    merged.insert(merged.end(), buf->events.begin(), buf->events.end());
  }
  return merged;
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  std::vector<TraceEvent> evs = events();
  std::sort(evs.begin(), evs.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.ts_ns < b.ts_ns;
  });
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : evs) {
    if (!first) out << ",";
    first = false;
    out << "\n  {\"name\": ";
    write_json_string(out, ev.name);
    out << ", \"cat\": ";
    write_json_string(out, ev.cat);
    // Chrome's ts/dur unit is microseconds; fractional values keep the
    // ns resolution.
    out << ", \"ph\": \"X\", \"pid\": 1, \"tid\": " << ev.tid
        << ", \"ts\": " << static_cast<double>(ev.ts_ns) * 1e-3
        << ", \"dur\": " << static_cast<double>(ev.dur_ns) * 1e-3;
    if (ev.arg_key != nullptr) {
      out << ", \"args\": {";
      write_json_string(out, ev.arg_key);
      out << ": " << ev.arg_value << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

void Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FEDCAV_REQUIRE(out.good(), "write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out);
  FEDCAV_REQUIRE(out.good(), "write_chrome_trace_file: write failed for " + path);
}

void Span::start(std::string name, const char* cat) {
  name_ = std::move(name);
  cat_ = cat;
  start_ns_ = Tracer::instance().now_ns();
  active_ = true;
}

void Span::finish() {
  Tracer& tracer = Tracer::instance();
  TraceEvent ev;
  ev.name = std::move(name_);
  ev.cat = cat_;
  ev.ts_ns = start_ns_;
  ev.dur_ns = tracer.now_ns() - start_ns_;
  ev.arg_key = arg_key_;
  ev.arg_value = arg_value_;
  tracer.record(std::move(ev));
  active_ = false;
}

}  // namespace fedcav::obs
