// Scoped-span tracing with a chrome://tracing-compatible JSON exporter.
//
// The runtime switch (`obs::set_enabled`) gates every probe in the
// library: a disabled Span constructor is one relaxed atomic load and no
// clock read, so instrumented hot paths (per-layer forward/backward,
// GEMM, the thread pool) cost nothing measurable when telemetry is off.
// Defining FEDCAV_DISABLE_OBS removes even that load at compile time —
// `enabled()` becomes `constexpr false` and every `if (enabled())` body
// is dead code.
//
// Threading model: spans may start and end on any thread. Each thread
// owns a buffer (registered with the singleton Tracer on first use) and
// appends under that buffer's own mutex, so recording threads never
// contend with each other — only with a concurrent snapshot/flush, which
// happens between rounds or at process end.
//
// Export: Tracer::write_chrome_trace emits the Trace Event Format
// ("traceEvents" array of ph:"X" complete events, microsecond units)
// that chrome://tracing and https://ui.perfetto.dev load directly.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace fedcav::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

#if defined(FEDCAV_DISABLE_OBS)
constexpr bool enabled() { return false; }
#else
/// True when telemetry (tracing + metrics) is collecting.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
#endif

/// Flip telemetry collection on or off (process-wide).
void set_enabled(bool on);

/// One completed span. Times are nanoseconds since the Tracer's epoch
/// (construction of the singleton, i.e. first instrumented call).
struct TraceEvent {
  std::string name;
  const char* cat = "";         // static-lifetime category string
  std::uint64_t ts_ns = 0;      // start time
  std::uint64_t dur_ns = 0;     // duration
  std::uint32_t tid = 0;        // registration-order thread id
  const char* arg_key = nullptr;  // optional single numeric argument
  double arg_value = 0.0;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Nanoseconds since the tracer epoch (steady clock).
  std::uint64_t now_ns() const;

  /// Append a finished event to the calling thread's buffer.
  void record(TraceEvent ev);

  /// Merged copy of every thread's events (unsorted across threads).
  std::vector<TraceEvent> events() const;

  /// Number of recorded events across all threads.
  std::size_t event_count() const;

  /// Drop all recorded events (buffers stay registered).
  void clear();

  /// Emit the Trace Event Format JSON for every recorded event.
  void write_chrome_trace(std::ostream& out) const;

  /// Same, to a file. Throws fedcav::Error when the file cannot be
  /// written.
  void write_chrome_trace_file(const std::string& path) const;

 private:
  struct Buffer {
    mutable std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  Tracer();
  Buffer& thread_buffer();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::uint64_t epoch_ns_;  // steady-clock ns at construction

  friend class Span;
};

/// RAII scoped span: records one complete event from construction to
/// destruction. Inert (no clock reads, nothing recorded) when telemetry
/// is disabled at construction or when `name` is null.
class Span {
 public:
  Span(const char* name, const char* cat) {
    if (enabled() && name != nullptr) start(name, cat);
  }
  Span(std::string name, const char* cat) {
    if (enabled()) start(std::move(name), cat);
  }
  ~Span() {
    if (active_) finish();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach one numeric argument (`key` must have static lifetime).
  void arg(const char* key, double value) {
    if (active_) {
      arg_key_ = key;
      arg_value_ = value;
    }
  }

  bool active() const { return active_; }

 private:
  void start(std::string name, const char* cat);
  void finish();

  std::string name_;
  const char* cat_ = "";
  const char* arg_key_ = nullptr;
  double arg_value_ = 0.0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

#define FEDCAV_OBS_CONCAT_IMPL(a, b) a##b
#define FEDCAV_OBS_CONCAT(a, b) FEDCAV_OBS_CONCAT_IMPL(a, b)
/// Scoped span covering the rest of the enclosing block.
#define FEDCAV_SPAN(name, cat) \
  ::fedcav::obs::Span FEDCAV_OBS_CONCAT(fedcav_span_, __LINE__)(name, cat)

}  // namespace fedcav::obs
