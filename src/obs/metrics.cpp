#include "src/obs/metrics.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "src/utils/error.hpp"

namespace fedcav::obs {

namespace {

/// fetch_add for atomic<double> (the member form is integral-only until
/// C++20 libstdc++ catches up everywhere): CAS loop, relaxed — summaries
/// are read between rounds, not concurrently with a fence requirement.
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // non-positive and NaN underflow
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // Octave [2^(e-1), 2^e) lands in bucket e+32, clamped to the range.
  const long idx = static_cast<long>(exp) + 32;
  if (idx < 1) return 0;
  if (idx >= static_cast<long>(kBuckets) - 1) return kBuckets - 1;
  return static_cast<std::size_t>(idx);
}

void Histogram::observe(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t prev = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
  if (prev == 0) {
    // First observation seeds min/max; racing observers fix it up below.
    double expected = 0.0;
    min_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
    expected = 0.0;
    max_.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  }
  atomic_min(min_, v);
  atomic_max(max_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? std::numeric_limits<double>::infinity()
                      : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? -std::numeric_limits<double>::infinity()
                      : max_.load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(n - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen > rank) {
      if (b == 0) return min();
      if (b == kBuckets - 1) return max();
      // Geometric midpoint of octave [2^(b-33), 2^(b-32)).
      return std::ldexp(std::sqrt(0.5), static_cast<int>(b) - 32);
    }
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::instance() {
  static Registry reg;
  return reg;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void Registry::write_summary(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << g->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
        << h->count() << ", \"sum\": " << h->sum() << ", \"mean\": " << h->mean();
    if (h->count() > 0) {
      out << ", \"min\": " << h->min() << ", \"max\": " << h->max()
          << ", \"p50\": " << h->quantile(0.5) << ", \"p90\": " << h->quantile(0.9)
          << ", \"p99\": " << h->quantile(0.99);
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::summary_json() const {
  std::ostringstream out;
  write_summary(out);
  return out.str();
}

void Registry::write_summary_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  FEDCAV_REQUIRE(out.good(), "Registry::write_summary_file: cannot open " + path);
  write_summary(out);
  FEDCAV_REQUIRE(out.good(), "Registry::write_summary_file: write failed for " + path);
}

}  // namespace fedcav::obs
