// Process-wide metrics registry: counters, gauges, and log-bucketed
// histograms, all safe for concurrent update from pool threads.
//
// Instruments follow the cached-reference idiom:
//
//   if (obs::enabled()) {
//     static obs::Counter& calls = obs::registry().counter("gemm.calls");
//     calls.add(1);
//   }
//
// The registry lookup (map + mutex) happens once per call site; updates
// after that are single relaxed atomic RMWs. The registry owns every
// instrument for the process lifetime, so cached references never
// dangle. Names are namespaced per instrument kind (a counter and a
// gauge may share a name; within a kind the name returns the same
// instrument).
//
// The whole layer is passive: instruments are only bumped behind
// `obs::enabled()` checks, so a disabled run pays one relaxed load per
// probe and allocates nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "src/obs/trace.hpp"  // obs::enabled()

namespace fedcav::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Lock-free histogram over base-2 log-spaced buckets covering
/// [2^-32, 2^32) — enough range for nanoseconds-to-kiloseconds
/// durations, byte counts, or FLOP tallies. Quantiles are bucket
/// midpoints (geometric), so they carry at most a factor-of-2 error;
/// count/sum/min/max are exact.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 66;  // underflow + 64 octaves + overflow

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  /// Approximate quantile, q in [0, 1].
  double quantile(double q) const;
  void reset();

 private:
  static std::size_t bucket_index(double v);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  // valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

class Registry {
 public:
  static Registry& instance();

  /// Find-or-create; the returned reference lives for the process.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Zero every registered instrument (registrations survive).
  void reset();

  /// JSON summary: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, min, max, p50, p90, p99}}}.
  void write_summary(std::ostream& out) const;
  std::string summary_json() const;
  void write_summary_file(const std::string& path) const;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline Registry& registry() { return Registry::instance(); }

}  // namespace fedcav::obs
