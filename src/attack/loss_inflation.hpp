// Loss-inflation adversary: trains honestly but lies about the
// inference loss to inflate its FedCav aggregation weight (the "fake
// loss" threat §4.4 warns about). Useful for isolating the weighting
// hijack from the model-payload hijack.
#pragma once

#include "src/attack/adversary.hpp"

namespace fedcav::attack {

class LossInflationAdversary : public Adversary {
 public:
  explicit LossInflationAdversary(double factor = 10.0);

  fl::ClientUpdate corrupt(fl::ClientUpdate honest, const AttackContext& ctx) override;
  std::string name() const override { return "LossInflation"; }

 private:
  double factor_;
};

/// Byzantine adversary: submits iid N(0, stddev²) noise instead of
/// trained weights (Blanchard et al.'s arbitrary-update threat model).
class ByzantineAdversary : public Adversary {
 public:
  explicit ByzantineAdversary(float stddev = 1.0f, std::uint64_t seed = 1337);

  fl::ClientUpdate corrupt(fl::ClientUpdate honest, const AttackContext& ctx) override;
  std::string name() const override { return "Byzantine"; }

 private:
  float stddev_;
  std::uint64_t seed_;
};

}  // namespace fedcav::attack
