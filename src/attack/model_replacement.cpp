#include "src/attack/model_replacement.hpp"

#include <algorithm>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav::attack {

ModelReplacementAdversary::ModelReplacementAdversary(data::Dataset clean_local,
                                                     std::unique_ptr<nn::Model> model,
                                                     fl::LocalTrainConfig train_config,
                                                     ModelReplacementConfig attack_config,
                                                     Rng rng)
    : LabelFlipAdversary(train_config, rng), attack_config_(attack_config) {
  FEDCAV_REQUIRE(attack_config.poison_fraction >= 0.0 &&
                     attack_config.poison_fraction <= 1.0,
                 "ModelReplacement: poison_fraction out of range");
  FEDCAV_REQUIRE(attack_config.max_boost >= 1.0, "ModelReplacement: max_boost must be >= 1");
  FEDCAV_REQUIRE(attack_config.epochs_multiplier >= 1,
                 "ModelReplacement: epochs_multiplier must be >= 1");
  train_config_.epochs *= attack_config.epochs_multiplier;
  poisoned_ = flip_labels(clean_local, attack_config.poison_fraction, rng_);
  model_ = std::move(model);
  FEDCAV_REQUIRE(model_ != nullptr, "ModelReplacement: null model");
}

fl::ClientUpdate ModelReplacementAdversary::corrupt(fl::ClientUpdate honest,
                                                    const AttackContext& ctx) {
  FEDCAV_REQUIRE(ctx.global != nullptr, "ModelReplacement: null global weights");
  const nn::Weights& w_t = *ctx.global;
  const nn::Weights m = train_malicious(w_t);
  FEDCAV_REQUIRE(m.size() == w_t.size(), "ModelReplacement: weight size mismatch");

  const double gamma = std::max(ctx.estimated_gamma, 1.0 / attack_config_.max_boost);
  const float boost = static_cast<float>(1.0 / gamma);
  nn::Weights crafted(w_t.size());
  for (std::size_t i = 0; i < w_t.size(); ++i) {
    crafted[i] = w_t[i] + boost * (m[i] - w_t[i]);
  }

  honest.weights = std::move(crafted);
  if (attack_config_.reported_loss > 0.0) {
    honest.inference_loss = attack_config_.reported_loss;
  }
  honest.num_samples = poisoned_.size();
  honest.malicious = true;
  return honest;
}

std::string ModelReplacementAdversary::name() const {
  return "ModelReplacement(poison=" +
         format_double(attack_config_.poison_fraction, 2) + ")";
}

}  // namespace fedcav::attack
