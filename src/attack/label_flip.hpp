// Label-flipping utilities and the plain data-poisoning adversary.
#pragma once

#include "src/attack/adversary.hpp"
#include "src/data/dataset.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::attack {

/// Copy `clean` with a `fraction` of labels flipped to a different
/// uniformly-chosen class. fraction=1 flips every label (the Fig. 6
/// "all labels flipped" malicious model).
data::Dataset flip_labels(const data::Dataset& clean, double fraction, Rng& rng);

/// Poisoning adversary: trains honestly but on flipped-label data.
/// Without replacement scaling this models a low-profile poisoner.
class LabelFlipAdversary : public Adversary {
 public:
  /// `poisoned` is the attacker's (already flipped) training set;
  /// `train_config` mirrors the honest clients' settings so the update
  /// is statistically inconspicuous.
  LabelFlipAdversary(data::Dataset poisoned, std::unique_ptr<nn::Model> model,
                     fl::LocalTrainConfig train_config, Rng rng);

  fl::ClientUpdate corrupt(fl::ClientUpdate honest, const AttackContext& ctx) override;
  std::string name() const override { return "LabelFlip"; }

 protected:
  /// For subclasses (e.g. ModelReplacementAdversary) that fill the
  /// members themselves after extra preprocessing.
  LabelFlipAdversary(fl::LocalTrainConfig train_config, Rng rng)
      : train_config_(train_config), rng_(rng) {}

  /// Train the malicious model from w_t on the poisoned data; returns
  /// its weights.
  nn::Weights train_malicious(const nn::Weights& global);

  data::Dataset poisoned_;
  std::unique_ptr<nn::Model> model_;
  fl::LocalTrainConfig train_config_;
  Rng rng_;
};

}  // namespace fedcav::attack
