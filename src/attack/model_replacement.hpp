// Model-replacement attack (Bagdasaryan et al., paper Eq. 10-11).
//
// The attacker trains a malicious model M on label-flipped data, then
// boosts its update so that, after weighted averaging, the global model
// lands (approximately) on M:
//   w_m = w_t + (1/γ_m)(M − w_t)                           (Eq. 11)
// Against FedCav the attacker additionally reports an inflated
// inference loss to drive its aggregation weight γ_m toward 1 (§4.4:
// "attackers just need to scale up the local loss").
#pragma once

#include "src/attack/label_flip.hpp"

namespace fedcav::attack {

struct ModelReplacementConfig {
  /// Fraction of labels flipped when training the malicious model M
  /// (Fig. 7 sweeps 0.2 / 0.5 / 0.8; Fig. 6 uses 1.0).
  double poison_fraction = 1.0;
  /// Fake inference loss reported to hijack FedCav's weighting; ignored
  /// by FedAvg. 0 (default) keeps the honest loss — the paper's Fig. 7
  /// detection experiment assumes authentic statistics (§6 defers loss
  /// authenticity to TEE); a lying attacker additionally poisons the
  /// Eq. 13 reference max and suppresses detection, which
  /// bench/fig7_detection demonstrates as an ablation.
  double reported_loss = 0.0;
  /// Cap on the boost 1/γ_m so float weights don't overflow when the
  /// attacker's estimated γ is tiny.
  double max_boost = 100.0;
  /// The paper's adversary trains M to convergence on the flipped data;
  /// honest clients only run E local epochs. The multiplier gives the
  /// attacker that extra optimization budget.
  std::size_t epochs_multiplier = 5;
};

class ModelReplacementAdversary : public LabelFlipAdversary {
 public:
  ModelReplacementAdversary(data::Dataset clean_local, std::unique_ptr<nn::Model> model,
                            fl::LocalTrainConfig train_config,
                            ModelReplacementConfig attack_config, Rng rng);

  fl::ClientUpdate corrupt(fl::ClientUpdate honest, const AttackContext& ctx) override;
  std::string name() const override;

 private:
  ModelReplacementConfig attack_config_;
};

}  // namespace fedcav::attack
