// Adversary interface for the threat-model experiments (§4.4, Figs. 6-7).
//
// An adversary intercepts the update a compromised client would have
// sent and replaces it with a crafted one. The server never sees this
// interface — defense happens purely through the reported statistics,
// exactly as in the paper.
#pragma once

#include <memory>
#include <string>

#include "src/fl/types.hpp"

namespace fedcav::attack {

struct AttackContext {
  /// The round's downloaded global weights w_t.
  const nn::Weights* global = nullptr;
  std::size_t round = 0;
  /// Number of participants in the round (the attacker can observe or
  /// estimate this to size its boost, Eq. 11).
  std::size_t participants = 1;
  /// The attacker's estimate of its own aggregation weight γ_m. The
  /// simulation supplies 1/participants by default (FedAvg's uniform
  /// case); an oracle-grade attacker may be given the exact value.
  double estimated_gamma = 1.0;
};

class Adversary {
 public:
  virtual ~Adversary() = default;

  /// Replace (or perturb) the honest update. `honest` was produced by a
  /// genuine Client::local_update on the compromised device's data.
  virtual fl::ClientUpdate corrupt(fl::ClientUpdate honest, const AttackContext& ctx) = 0;

  virtual std::string name() const = 0;
};

}  // namespace fedcav::attack
