#include "src/attack/loss_inflation.hpp"

#include "src/utils/error.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::attack {

LossInflationAdversary::LossInflationAdversary(double factor) : factor_(factor) {
  FEDCAV_REQUIRE(factor > 1.0, "LossInflation: factor must exceed 1");
}

fl::ClientUpdate LossInflationAdversary::corrupt(fl::ClientUpdate honest,
                                                 const AttackContext& ctx) {
  (void)ctx;
  honest.inference_loss *= factor_;
  honest.malicious = true;
  return honest;
}

ByzantineAdversary::ByzantineAdversary(float stddev, std::uint64_t seed)
    : stddev_(stddev), seed_(seed) {
  FEDCAV_REQUIRE(stddev > 0.0f, "Byzantine: stddev must be positive");
}

fl::ClientUpdate ByzantineAdversary::corrupt(fl::ClientUpdate honest,
                                             const AttackContext& ctx) {
  Rng rng(seed_ ^ (0x9e3779b97f4a7c15ULL * (ctx.round + 1)));
  for (float& w : honest.weights) {
    w = static_cast<float>(rng.normal(0.0, static_cast<double>(stddev_)));
  }
  honest.malicious = true;
  return honest;
}

}  // namespace fedcav::attack
