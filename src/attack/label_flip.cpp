#include "src/attack/label_flip.hpp"

#include <algorithm>
#include <numeric>

#include "src/nn/optimizer.hpp"
#include "src/utils/error.hpp"

namespace fedcav::attack {

data::Dataset flip_labels(const data::Dataset& clean, double fraction, Rng& rng) {
  FEDCAV_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "flip_labels: fraction out of range");
  FEDCAV_REQUIRE(clean.num_classes() >= 2, "flip_labels: need at least two classes");
  data::Dataset out(clean.sample_shape(), clean.num_classes());
  out.reserve(clean.size());

  std::vector<std::size_t> order(clean.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  const std::size_t n_flip = static_cast<std::size_t>(
      fraction * static_cast<double>(clean.size()));
  std::vector<bool> flip(clean.size(), false);
  for (std::size_t i = 0; i < n_flip; ++i) flip[order[i]] = true;

  for (std::size_t i = 0; i < clean.size(); ++i) {
    std::size_t label = clean.label(i);
    if (flip[i]) {
      // Deterministic label inversion (c -> C-1-c): a *consistent* wrong
      // mapping the malicious model can actually fit, which is what
      // makes the replacement payload destructive. A per-sample random
      // target would give the attacker an unlearnable objective.
      std::size_t target = clean.num_classes() - 1 - label;
      if (target == label) target = (label + 1) % clean.num_classes();
      label = target;
    }
    out.add_sample(clean.pixels(i), label);
  }
  return out;
}

LabelFlipAdversary::LabelFlipAdversary(data::Dataset poisoned,
                                       std::unique_ptr<nn::Model> model,
                                       fl::LocalTrainConfig train_config, Rng rng)
    : poisoned_(std::move(poisoned)), model_(std::move(model)),
      train_config_(train_config), rng_(rng) {
  FEDCAV_REQUIRE(!poisoned_.empty(), "LabelFlipAdversary: empty poisoned dataset");
  FEDCAV_REQUIRE(model_ != nullptr, "LabelFlipAdversary: null model");
}

nn::Weights LabelFlipAdversary::train_malicious(const nn::Weights& global) {
  model_->set_weights(global);
  nn::SgdConfig sgd_config;
  sgd_config.lr = train_config_.lr;
  sgd_config.momentum = train_config_.momentum;
  nn::Sgd optimizer(sgd_config);

  std::vector<std::size_t> order(poisoned_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::size_t> labels;
  for (std::size_t epoch = 0; epoch < train_config_.epochs; ++epoch) {
    rng_.shuffle(order);
    for (std::size_t begin = 0; begin < order.size(); begin += train_config_.batch_size) {
      const std::size_t end = std::min(order.size(), begin + train_config_.batch_size);
      Tensor batch = poisoned_.make_batch(
          std::span(order.data() + begin, end - begin), &labels);
      model_->forward_backward(batch, labels);
      optimizer.step(*model_);
    }
  }
  return model_->get_weights();
}

fl::ClientUpdate LabelFlipAdversary::corrupt(fl::ClientUpdate honest,
                                             const AttackContext& ctx) {
  FEDCAV_REQUIRE(ctx.global != nullptr, "LabelFlipAdversary: null global weights");
  honest.weights = train_malicious(*ctx.global);
  honest.num_samples = poisoned_.size();
  honest.malicious = true;
  return honest;
}

}  // namespace fedcav::attack
