// Anomaly detection against model-replacement attacks (§4.4).
//
// Each round the server compares the participants' fresh inference
// losses f_i(w_t) with the *maximum* loss reported in the previous
// round. A client "votes abnormal" when its loss exceeds that maximum;
// the round is flagged when at least `vote_fraction` of clients vote so:
//   D_r = I{ Σ_i I[f_i(w_t) > max(f(w_{t-1}))] ≥ n/2 }      (Eq. 13)
// On a flag the server reverses to the cached pre-attack model.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace fedcav::core {

struct DetectorConfig {
  /// Fraction of clients that must vote abnormal (paper: 1/2).
  double vote_fraction = 0.5;
  /// Multiplicative slack on the previous max: vote when
  /// f_i > slack · max_prev. 1.0 is the paper's rule; >1 trades recall
  /// for fewer false positives on noisy early rounds.
  double slack = 1.0;
};

struct DetectionResult {
  bool abnormal = false;
  std::size_t votes = 0;
  std::size_t voters = 0;
  double previous_max = 0.0;
};

class AnomalyDetector {
 public:
  explicit AnomalyDetector(DetectorConfig config = {});

  /// Evaluate Eq. 13 on this round's losses. Returns "normal" until a
  /// previous round has been committed (there is nothing to compare to).
  DetectionResult check(const std::vector<double>& losses) const;

  /// Commit a round's losses as the new reference (call only on normal
  /// rounds — after a reverse the pre-attack reference must persist).
  void commit(const std::vector<double>& losses);

  bool has_reference() const { return reference_max_.has_value(); }
  std::optional<double> reference_max() const { return reference_max_; }
  void reset();

  /// Restore a previously captured reference (checkpoint resume). A
  /// nullopt restores the pre-first-commit "nothing to compare" state.
  void restore_reference(std::optional<double> reference_max);

 private:
  DetectorConfig config_;
  std::optional<double> reference_max_;
};

}  // namespace fedcav::core
