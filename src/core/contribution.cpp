#include "src/core/contribution.hpp"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::core {

ClipPolicy parse_clip_policy(const std::string& name) {
  if (name == "none") return ClipPolicy::kNone;
  if (name == "mean") return ClipPolicy::kMean;
  if (name == "quantile") return ClipPolicy::kQuantile;
  throw Error("parse_clip_policy: unknown policy '" + name + "'");
}

std::string to_string(ClipPolicy policy) {
  switch (policy) {
    case ClipPolicy::kNone: return "none";
    case ClipPolicy::kMean: return "mean";
    case ClipPolicy::kQuantile: return "quantile";
  }
  return "?";
}

std::vector<double> clip_losses(const std::vector<double>& losses,
                                const ContributionConfig& config) {
  FEDCAV_REQUIRE(!losses.empty(), "clip_losses: empty input");
  std::vector<double> out = losses;
  switch (config.clip) {
    case ClipPolicy::kNone:
      break;
    case ClipPolicy::kMean: {
      double mean = 0.0;
      for (double v : losses) mean += v;
      mean /= static_cast<double>(losses.size());
      for (double& v : out) v = std::min(v, mean);
      break;
    }
    case ClipPolicy::kQuantile: {
      FEDCAV_REQUIRE(config.quantile > 0.0 && config.quantile <= 1.0,
                     "clip_losses: quantile out of range");
      std::vector<double> sorted = losses;
      std::sort(sorted.begin(), sorted.end());
      const double pos = config.quantile * static_cast<double>(sorted.size() - 1);
      const std::size_t lo = static_cast<std::size_t>(pos);
      const std::size_t hi = std::min(sorted.size() - 1, lo + 1);
      const double frac = pos - static_cast<double>(lo);
      const double threshold = (1.0 - frac) * sorted[lo] + frac * sorted[hi];
      for (double& v : out) v = std::min(v, threshold);
      break;
    }
  }
  return out;
}

std::vector<double> contribution_weights(const std::vector<double>& losses,
                                         const ContributionConfig& config) {
  FEDCAV_REQUIRE(config.temperature > 0.0, "contribution_weights: temperature must be > 0");
  std::vector<double> clipped = clip_losses(losses, config);
  if (config.temperature != 1.0) {
    for (double& v : clipped) v /= config.temperature;
  }
  return ops::stable_softmax(clipped);
}

}  // namespace fedcav::core
