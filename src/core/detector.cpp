#include "src/core/detector.hpp"

#include <algorithm>
#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::core {

AnomalyDetector::AnomalyDetector(DetectorConfig config) : config_(config) {
  FEDCAV_REQUIRE(config.vote_fraction > 0.0 && config.vote_fraction <= 1.0,
                 "AnomalyDetector: vote_fraction must be in (0, 1]");
  FEDCAV_REQUIRE(config.slack >= 1.0, "AnomalyDetector: slack must be >= 1");
}

DetectionResult AnomalyDetector::check(const std::vector<double>& losses) const {
  FEDCAV_REQUIRE(!losses.empty(), "AnomalyDetector::check: no losses");
  DetectionResult result;
  result.voters = losses.size();
  if (!reference_max_.has_value()) return result;  // first round: nothing to compare
  result.previous_max = *reference_max_;
  const double threshold = config_.slack * result.previous_max;
  for (double f : losses) {
    if (f > threshold) ++result.votes;
  }
  const auto needed = static_cast<std::size_t>(
      std::ceil(config_.vote_fraction * static_cast<double>(losses.size())));
  result.abnormal = result.votes >= std::max<std::size_t>(1, needed);
  return result;
}

void AnomalyDetector::commit(const std::vector<double>& losses) {
  FEDCAV_REQUIRE(!losses.empty(), "AnomalyDetector::commit: no losses");
  reference_max_ = *std::max_element(losses.begin(), losses.end());
}

void AnomalyDetector::reset() { reference_max_.reset(); }

void AnomalyDetector::restore_reference(std::optional<double> reference_max) {
  reference_max_ = reference_max;
}

}  // namespace fedcav::core
