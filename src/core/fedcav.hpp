// FedCav aggregation strategy (Algorithm 1):
//   w_{t+1} = Σ_i softmax[min(f_i(w_t), mean(f))] · w_i^{t+1}     (Eq. 9)
// The weights come from the clients' reported inference losses, so the
// optimizer of the global objective F(w) = ln Σ_i e^{f_i(w)} (Eq. 7)
// explicitly favors informative (badly-fit) local data.
#pragma once

#include "src/core/contribution.hpp"
#include "src/fl/fedavg.hpp"
#include "src/fl/strategy.hpp"

namespace fedcav::core {

class FedCavStrategy : public fl::AggregationStrategy {
 public:
  explicit FedCavStrategy(ContributionConfig config = {});

  nn::Weights aggregate(const nn::Weights& global,
                        const std::vector<fl::ClientUpdate>& updates) override;
  std::vector<double> aggregation_weights(
      const std::vector<fl::ClientUpdate>& updates) const override;
  std::string name() const override;

  const ContributionConfig& contribution_config() const { return config_; }

  /// The paper's global objective F(w) = ln Σ e^{f_i} evaluated on the
  /// round's reported losses — exposed so tests can check it decreases.
  static double global_loss(const std::vector<fl::ClientUpdate>& updates);

  // Streaming path: γ = softmax(clip(f)/τ) needs only the cohort's
  // inference losses, which the metadata phase carries in full.
  void begin_aggregation(const nn::Weights& global,
                         const std::vector<fl::ClientUpdate>& metadata) override;
  void accumulate(fl::ClientUpdate update) override;
  nn::Weights finish_aggregation() override;
  bool streaming_aggregation() const override { return true; }

 private:
  ContributionConfig config_;
  fl::WeightedAccumulator acc_;
};

}  // namespace fedcav::core
