#include "src/core/fedcav.hpp"

#include "src/fl/fedavg.hpp"
#include "src/tensor/ops.hpp"
#include "src/utils/error.hpp"

namespace fedcav::core {

FedCavStrategy::FedCavStrategy(ContributionConfig config) : config_(config) {}

std::vector<double> FedCavStrategy::aggregation_weights(
    const std::vector<fl::ClientUpdate>& updates) const {
  FEDCAV_REQUIRE(!updates.empty(), "FedCav: no updates");
  std::vector<double> losses(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) losses[i] = updates[i].inference_loss;
  return contribution_weights(losses, config_);
}

nn::Weights FedCavStrategy::aggregate(const nn::Weights& global,
                                      const std::vector<fl::ClientUpdate>& updates) {
  (void)global;
  return fl::weighted_average(updates, aggregation_weights(updates));
}

void FedCavStrategy::begin_aggregation(const nn::Weights& global,
                                       const std::vector<fl::ClientUpdate>& metadata) {
  acc_.begin(global.size(), aggregation_weights(metadata));
}

void FedCavStrategy::accumulate(fl::ClientUpdate update) { acc_.fold(update); }

nn::Weights FedCavStrategy::finish_aggregation() { return acc_.finish(); }

std::string FedCavStrategy::name() const {
  std::string s = "FedCav(clip=" + to_string(config_.clip);
  if (config_.temperature != 1.0) s += ", tau=" + std::to_string(config_.temperature);
  return s + ")";
}

double FedCavStrategy::global_loss(const std::vector<fl::ClientUpdate>& updates) {
  FEDCAV_REQUIRE(!updates.empty(), "FedCav::global_loss: no updates");
  std::vector<double> losses(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) losses[i] = updates[i].inference_loss;
  return ops::log_sum_exp(losses);
}

}  // namespace fedcav::core
