// Contribution weighting — the heart of FedCav (§4.2-4.3).
//
// Given the participants' inference losses f_i(w_t), the aggregation
// weight of client i is softmax(clip(f))_i:
//  * clip (Algorithm 1 line 7): f_j ← min(f_j, mean(f)) to stop one
//    extreme loss from monopolizing the round (Fig. 5 ablates this).
//  * softmax with max-subtraction (§4.2.3's overflow note).
// The resulting weights are strictly positive and sum to 1, so FedCav's
// update (Eq. 9) is always a convex combination of local models.
#pragma once

#include <string>
#include <vector>

namespace fedcav::core {

enum class ClipPolicy {
  kNone,      // raw losses (the Fig. 5 "without Clip" ablation)
  kMean,      // Algorithm 1: clip at the mean of the round's losses
  kQuantile,  // extension: clip at a configurable quantile
};

ClipPolicy parse_clip_policy(const std::string& name);  // none|mean|quantile
std::string to_string(ClipPolicy policy);

struct ContributionConfig {
  ClipPolicy clip = ClipPolicy::kMean;
  /// Quantile in (0, 1] for kQuantile (0.75 clips at the 75th pct).
  double quantile = 0.75;
  /// Temperature τ applied as softmax(f/τ); 1.0 is the paper's rule.
  double temperature = 1.0;
};

/// Apply the clip policy, returning the adjusted losses.
std::vector<double> clip_losses(const std::vector<double>& losses,
                                const ContributionConfig& config);

/// softmax(clip(losses)/τ): the γ_i of Eq. 9. Throws on empty input.
std::vector<double> contribution_weights(const std::vector<double>& losses,
                                         const ContributionConfig& config);

}  // namespace fedcav::core
