// Error handling primitives for the fedcav library.
//
// The library throws `fedcav::Error` (a std::runtime_error subtype) on
// precondition violations. The FEDCAV_CHECK / FEDCAV_REQUIRE macros give
// file:line context without pulling in a heavyweight assertion framework.
#pragma once

#include <stdexcept>
#include <string>

namespace fedcav {

/// Exception type thrown on any precondition or invariant violation
/// inside the library. Carries a human-readable message with source
/// location prepended.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* file, int line, const std::string& msg);
}  // namespace detail

}  // namespace fedcav

/// Check `cond`; on failure throw fedcav::Error with `msg` and location.
/// Used for caller-facing precondition checks (always on, even in Release).
#define FEDCAV_CHECK(cond, msg)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      ::fedcav::detail::throw_error(__FILE__, __LINE__, (msg));   \
    }                                                             \
  } while (false)

/// Equivalent to FEDCAV_CHECK but reads as a precondition at API entry.
#define FEDCAV_REQUIRE(cond, msg) FEDCAV_CHECK(cond, msg)
