#include "src/utils/csv.hpp"

#include <algorithm>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav {

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  FEDCAV_REQUIRE(!header_written_, "CsvWriter: header written twice");
  FEDCAV_REQUIRE(!names.empty(), "CsvWriter: empty header");
  columns_ = names.size();
  header_written_ = true;
  row(names);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (columns_ != 0) {
    FEDCAV_REQUIRE(fields.size() == columns_,
                   "CsvWriter: row width does not match header");
  }
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

CsvWriter& CsvWriter::cell(const std::string& v) {
  pending_.push_back(v);
  return *this;
}

CsvWriter& CsvWriter::cell(double v, int precision) {
  pending_.push_back(format_double(v, precision));
  return *this;
}

CsvWriter& CsvWriter::cell(long long v) {
  pending_.push_back(std::to_string(v));
  return *this;
}

CsvWriter& CsvWriter::cell(std::size_t v) {
  pending_.push_back(std::to_string(v));
  return *this;
}

void CsvWriter::end_row() {
  row(pending_);
  pending_.clear();
}

MarkdownTable::MarkdownTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  FEDCAV_REQUIRE(!header_.empty(), "MarkdownTable: empty header");
}

void MarkdownTable::add_row(std::vector<std::string> row) {
  FEDCAV_REQUIRE(row.size() == header_.size(),
                 "MarkdownTable: row width does not match header");
  rows_.push_back(std::move(row));
}

std::string MarkdownTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) widths[i] = std::max(widths[i], r[i].size());
  }
  auto emit_row = [&](const std::vector<std::string>& r) {
    std::string line = "|";
    for (std::size_t i = 0; i < r.size(); ++i) {
      line += ' ' + r[i] + std::string(widths[i] - r[i].size(), ' ') + " |";
    }
    return line + '\n';
  };
  std::string out = emit_row(header_);
  out += "|";
  for (std::size_t w : widths) out += std::string(w + 2, '-') + "|";
  out += '\n';
  for (const auto& r : rows_) out += emit_row(r);
  return out;
}

}  // namespace fedcav
