// Deterministic random number generation.
//
// All stochastic behaviour in the library (weight init, data synthesis,
// client sampling, batching) flows through fedcav::Rng so that every
// experiment is reproducible from a single seed. The generator is
// xoshiro256** seeded via splitmix64, following the reference
// implementations by Blackman & Vigna. We avoid std::mt19937 because its
// state is large and its distributions are not stable across standard
// library implementations; ours are bit-stable everywhere.
#pragma once

#include <cstdint>
#include <vector>

namespace fedcav {

/// splitmix64 step: used to expand a single 64-bit seed into generator
/// state and to derive independent child seeds.
std::uint64_t splitmix64(std::uint64_t& state);

/// How per-consumer random streams are produced across federation rounds.
///
///  * kLegacyStream — one long-lived Rng per consumer (client batch
///    shuffles, straggler draws, the sampler), advancing whenever that
///    consumer happens to run. This is the historical behaviour and the
///    mode all pinned goldens were recorded under, but the streams are a
///    function of the *schedule*: a client that skips a round (sampling,
///    dropout, straggler) resumes a different stream than a remote worker
///    that trained unprompted on every downlink (DESIGN.md §16).
///  * kDerived — stateless per-round derivation: every consumer reseeds
///    from derive_seed(global_seed, round, stream_id, tag) at the moment
///    it participates, so the stream it sees is a pure function of
///    (seed, round, id) regardless of which process hosts it or which
///    rounds it skipped. Remote, in-process, sharded, and resumed runs
///    are bit-identical everywhere, including sampled/straggler configs.
enum class RngMode : std::uint8_t {
  kLegacyStream = 0,
  kDerived = 1,
};

/// Stream-tag domain separators for derive_seed. Distinct tags make the
/// derived streams of one (round, client) pair independent: the batch
/// shuffle stream can never collide with the straggler coin.
enum class RngStream : std::uint64_t {
  kClientTrain = 1,
  kStraggler = 2,
  kSampler = 3,
};

/// Derive the seed of one consumer's stream for one round: a splitmix64
/// mix chain over (root, round, stream_id, tag). Pure function — any
/// process that knows the global seed can reproduce any stream without
/// replaying history. Changing any single argument decorrelates the
/// output completely (each absorption runs the full avalanche).
std::uint64_t derive_seed(std::uint64_t root, std::uint64_t round,
                          std::uint64_t stream_id, RngStream tag);

/// One pure Bernoulli draw from the derived stream (root, round,
/// stream_id, tag). The straggler filter uses this so the server and a
/// remote worker reach the same drop decision independently.
bool derived_bernoulli(std::uint64_t root, std::uint64_t round,
                       std::uint64_t stream_id, RngStream tag, double p);

/// Complete serializable snapshot of an Rng. Restoring a state resumes
/// the exact output stream — the checkpoint/resume path depends on this
/// for bit-identical continuation of sampling, straggler draws, and
/// client batch shuffles.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// Deterministic, portable PRNG (xoshiro256**) with the distribution
/// helpers the library needs. Copyable; copies advance independently.
class Rng {
 public:
  /// Seeds the generator state from `seed` via splitmix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform float in [lo, hi).
  float uniform_f(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Sample an index from an unnormalized non-negative weight vector.
  /// Requires at least one strictly positive weight.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Sample `k` distinct indices from [0, n) (reservoir-free partial
  /// Fisher-Yates). Result order is random. Requires k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator; the child stream does not
  /// overlap this one for any practical horizon.
  Rng fork();

  /// Snapshot / restore the full generator state (see RngState).
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace fedcav
