#include "src/utils/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "src/obs/metrics.hpp"
#include "src/utils/error.hpp"
#include "src/utils/timer.hpp"

namespace fedcav {

namespace {
// Which pool (if any) the current thread belongs to. Set once per worker
// at thread start; parallel_for consults it to detect nested calls.
thread_local const ThreadPool* t_owner_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::in_worker_thread() const { return t_owner_pool == this; }

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  std::size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDCAV_CHECK(!stop_, "ThreadPool::submit after shutdown");
    tasks_.push(std::move(pt));
    depth = tasks_.size();
  }
  cv_.notify_one();
  if (obs::enabled()) {
    static obs::Counter& submitted = obs::registry().counter("pool.tasks_submitted");
    static obs::Gauge& queue_depth = obs::registry().gauge("pool.queue_depth");
    submitted.add(1);
    queue_depth.set(static_cast<double>(depth));
  }
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (in_worker_thread()) {
    // Nested call from inside the pool: running the chunks inline keeps
    // this worker productive instead of parking it in f.get() while the
    // queued chunks wait for workers that may all be parked the same way
    // (the classic nested-fork-join deadlock).
    if (obs::enabled()) {
      static obs::Counter& nested = obs::registry().counter("pool.nested_parallel_for");
      nested.add(1);
    }
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Static block partition: chunk c covers [c*step, min(n, (c+1)*step)).
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * step;
    const std::size_t end = std::min(n, begin + step);
    if (begin >= end) break;
    futures.push_back(submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_owner_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::enabled()) {
      static obs::Counter& completed = obs::registry().counter("pool.tasks_completed");
      static obs::Counter& busy_ns = obs::registry().counter("pool.busy_ns");
      static obs::Histogram& task_s = obs::registry().histogram("pool.task_seconds");
      Stopwatch watch;
      task();  // packaged_task captures exceptions into the future
      const double seconds = watch.seconds();
      completed.add(1);
      busy_ns.add(static_cast<std::uint64_t>(seconds * 1e9));
      task_s.observe(seconds);
    } else {
      task();
    }
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fedcav
