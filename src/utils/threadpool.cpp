#include "src/utils/threadpool.hpp"

#include <algorithm>
#include <exception>

#include "src/utils/error.hpp"

namespace fedcav {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDCAV_CHECK(!stop_, "ThreadPool::submit after shutdown");
    tasks_.push(std::move(pt));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Static block partition: chunk c covers [c*step, min(n, (c+1)*step)).
  const std::size_t chunks = std::min(n, workers_.size());
  const std::size_t step = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * step;
    const std::size_t end = std::min(n, begin + step);
    if (begin >= end) break;
    futures.push_back(submit([&body, begin, end] {
      for (std::size_t i = begin; i < end; ++i) body(i);
    }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& global_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fedcav
