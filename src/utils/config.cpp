#include "src/utils/config.hpp"

#include <fstream>
#include <sstream>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav {

Config Config::from_string(const std::string& text) {
  Config config;
  std::istringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    // Strip comments, then whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    FEDCAV_REQUIRE(eq != std::string::npos,
                   "Config: missing '=' on line " + std::to_string(line_number));
    const std::string key = trim(trimmed.substr(0, eq));
    FEDCAV_REQUIRE(!key.empty(), "Config: empty key on line " + std::to_string(line_number));
    config.values_[key] = trim(trimmed.substr(eq + 1));
  }
  return config;
}

Config Config::from_file(const std::string& path) {
  std::ifstream in(path);
  FEDCAV_REQUIRE(in.good(), "Config: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_string(buffer.str());
}

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::optional<std::string> Config::find(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key) const {
  const auto v = find(key);
  FEDCAV_REQUIRE(v.has_value(), "Config: missing key '" + key + "'");
  return *v;
}

long long Config::get_int(const std::string& key) const {
  try {
    return parse_int(get_string(key));
  } catch (const Error&) {
    throw Error("Config: malformed integer for key '" + key + "'");
  }
}

double Config::get_double(const std::string& key) const {
  try {
    return parse_double(get_string(key));
  } catch (const Error&) {
    throw Error("Config: malformed number for key '" + key + "'");
  }
}

bool Config::get_bool(const std::string& key) const {
  try {
    return parse_bool(get_string(key));
  } catch (const Error&) {
    throw Error("Config: malformed boolean for key '" + key + "'");
  }
}

std::string Config::get_string(const std::string& key, const std::string& fallback) const {
  return find(key).value_or(fallback);
}

long long Config::get_int(const std::string& key, long long fallback) const {
  return has(key) ? get_int(key) : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  return has(key) ? get_bool(key) : fallback;
}

void Config::set(const std::string& key, const std::string& value) {
  FEDCAV_REQUIRE(!trim(key).empty(), "Config::set: empty key");
  values_[trim(key)] = trim(value);
}

std::string Config::to_string() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    out += key + " = " + value + "\n";
  }
  return out;
}

}  // namespace fedcav
