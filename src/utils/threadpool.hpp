// Fixed-size thread pool with a deterministic parallel_for.
//
// Clients within a federated round train concurrently on this pool.
// Following the HPC guides' advice on reproducible reductions, the pool
// exposes `parallel_for`, which partitions an index range statically so
// each index is processed exactly once and results can be written into
// pre-sized output slots — the reduction order downstream is therefore
// independent of thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedcav {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 selects hardware_concurrency()
  /// (minimum 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> task);

  /// Run body(i) for every i in [0, n), partitioned across the pool.
  /// Blocks until all iterations finish. Exceptions from the body are
  /// rethrown (the first one encountered in index order).
  ///
  /// Re-entrancy: when called from one of this pool's own worker threads
  /// (nested parallelism) the iterations run inline on the caller —
  /// queueing them and blocking in get() could leave every worker
  /// waiting on tasks only the blocked workers would execute.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// True when the calling thread is one of this pool's workers.
  bool in_worker_thread() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Process-wide shared pool used by the federated runtime when the caller
/// does not supply one.
ThreadPool& global_thread_pool();

}  // namespace fedcav
