// CSV and Markdown table writers used by the bench harness and the
// training-history exporters. Both escape correctly and are stream-backed
// so benches can write to stdout or a file interchangeably.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace fedcav {

/// Streaming CSV writer. Call `header` once, then `row` per record.
/// Numeric overloads format locale-free.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(const std::vector<std::string>& names);
  void row(const std::vector<std::string>& fields);

  /// Convenience row builder: mixed-type cell appends.
  CsvWriter& cell(const std::string& v);
  CsvWriter& cell(double v, int precision = 6);
  CsvWriter& cell(long long v);
  CsvWriter& cell(std::size_t v);
  void end_row();

  static std::string escape(const std::string& field);

 private:
  std::ostream& out_;
  std::vector<std::string> pending_;
  std::size_t columns_ = 0;
  bool header_written_ = false;
};

/// Accumulating Markdown table; renders with aligned pipes on `render`.
class MarkdownTable {
 public:
  explicit MarkdownTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fedcav
