#include "src/utils/string_util.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "src/utils/error.hpp"

namespace fedcav {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

long long parse_int(const std::string& s) {
  const std::string t = trim(s);
  FEDCAV_REQUIRE(!t.empty(), "parse_int: empty string");
  char* end = nullptr;
  const long long v = std::strtoll(t.c_str(), &end, 10);
  FEDCAV_REQUIRE(end == t.c_str() + t.size(), "parse_int: malformed integer '" + s + "'");
  return v;
}

double parse_double(const std::string& s) {
  const std::string t = trim(s);
  FEDCAV_REQUIRE(!t.empty(), "parse_double: empty string");
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  FEDCAV_REQUIRE(end == t.c_str() + t.size(), "parse_double: malformed number '" + s + "'");
  return v;
}

bool parse_bool(const std::string& s) {
  const std::string t = to_lower(trim(s));
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  throw Error("parse_bool: malformed boolean '" + s + "'");
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return std::string(buf);
}

}  // namespace fedcav
