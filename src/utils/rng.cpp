#include "src/utils/rng.hpp"

#include <cmath>
#include <numbers>

#include "src/utils/error.hpp"

namespace fedcav {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t derive_seed(std::uint64_t root, std::uint64_t round,
                          std::uint64_t stream_id, RngStream tag) {
  // Absorb each component through a full splitmix64 avalanche before
  // mixing in the next, so e.g. (round=1, id=2) and (round=2, id=1)
  // land in unrelated streams. The xor between steps keeps every input
  // bit live in the running state.
  std::uint64_t state = root;
  std::uint64_t h = splitmix64(state);
  state ^= round;
  h ^= splitmix64(state);
  state ^= stream_id;
  h ^= splitmix64(state);
  state ^= static_cast<std::uint64_t>(tag);
  h ^= splitmix64(state);
  return h;
}

bool derived_bernoulli(std::uint64_t root, std::uint64_t round,
                       std::uint64_t stream_id, RngStream tag, double p) {
  if (p <= 0.0) return false;
  return Rng(derive_seed(root, round, stream_id, tag)).bernoulli(p);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro requires a nonzero state; splitmix64 output of any seed is
  // astronomically unlikely to be all-zero, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

float Rng::uniform_f(float lo, float hi) {
  return static_cast<float>(uniform(static_cast<double>(lo), static_cast<double>(hi)));
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  FEDCAV_REQUIRE(n > 0, "uniform_int: n must be positive");
  // Lemire-style rejection to kill modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  FEDCAV_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::categorical(const std::vector<double>& weights) {
  FEDCAV_REQUIRE(!weights.empty(), "categorical: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    FEDCAV_REQUIRE(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  FEDCAV_REQUIRE(total > 0.0, "categorical: all weights zero");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // floating point slop: last bucket
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  FEDCAV_REQUIRE(k <= n, "sample_without_replacement: k > n");
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: only the first k swaps are needed.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::fork() {
  // Child seeded from two fresh outputs; mixes the full state through
  // splitmix64 in the child's constructor.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 29));
}

RngState Rng::state() const {
  RngState state;
  for (std::size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::set_state(const RngState& state) {
  FEDCAV_REQUIRE((state.s[0] | state.s[1] | state.s[2] | state.s[3]) != 0,
                 "Rng::set_state: all-zero xoshiro state");
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

}  // namespace fedcav
