// Wall-clock timing helpers for the overhead experiments (§6 of the
// paper compares inference latency against local training time).
#pragma once

#include <chrono>

namespace fedcav {

/// Simple steady-clock stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates total time across multiple start/stop intervals; used to
/// separate inference-loss latency from local-training latency inside a
/// client round.
class AccumulatingTimer {
 public:
  void start() { watch_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += watch_.seconds();
      ++intervals_;
      running_ = false;
    }
  }
  double total_seconds() const { return total_; }
  std::size_t intervals() const { return intervals_; }
  double mean_seconds() const { return intervals_ == 0 ? 0.0 : total_ / static_cast<double>(intervals_); }

 private:
  Stopwatch watch_;
  double total_ = 0.0;
  std::size_t intervals_ = 0;
  bool running_ = false;
};

}  // namespace fedcav
