#include "src/utils/cli.hpp"

#include <cstdio>
#include <sstream>

#include "src/utils/error.hpp"
#include "src/utils/string_util.hpp"

namespace fedcav {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  FEDCAV_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
  options_[name] = Option{Kind::kInt, help, std::to_string(default_value)};
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  FEDCAV_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
  options_[name] = Option{Kind::kDouble, help, format_double(default_value, 6)};
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name, const std::string& default_value,
                           const std::string& help) {
  FEDCAV_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
  options_[name] = Option{Kind::kString, help, default_value};
  order_.push_back(name);
}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  FEDCAV_REQUIRE(!options_.count(name), "CliParser: duplicate option --" + name);
  options_[name] = Option{Kind::kFlag, help, "false"};
  order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help_text().c_str(), stdout);
      return false;
    }
    FEDCAV_REQUIRE(starts_with(arg, "--"), "unexpected positional argument '" + arg + "'");
    arg = arg.substr(2);
    std::string name = arg;
    std::string value;
    bool has_inline_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
      has_inline_value = true;
    }
    auto it = options_.find(name);
    FEDCAV_REQUIRE(it != options_.end(), "unknown flag --" + name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.value = has_inline_value ? (parse_bool(value) ? "true" : "false") : "true";
      continue;
    }
    if (!has_inline_value) {
      FEDCAV_REQUIRE(i + 1 < argc, "flag --" + name + " expects a value");
      value = argv[++i];
    }
    // Validate eagerly so errors point at the flag, not a later get().
    switch (opt.kind) {
      case Kind::kInt: (void)parse_int(value); break;
      case Kind::kDouble: (void)parse_double(value); break;
      default: break;
    }
    opt.value = value;
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  FEDCAV_REQUIRE(it != options_.end(), "CliParser: undeclared option --" + name);
  FEDCAV_REQUIRE(it->second.kind == kind, "CliParser: wrong type for --" + name);
  return it->second;
}

long long CliParser::get_int(const std::string& name) const {
  return parse_int(find(name, Kind::kInt).value);
}

double CliParser::get_double(const std::string& name) const {
  return parse_double(find(name, Kind::kDouble).value);
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool CliParser::get_flag(const std::string& name) const {
  return parse_bool(find(name, Kind::kFlag).value);
}

std::string CliParser::help_text() const {
  std::ostringstream oss;
  oss << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    oss << "  --" << name;
    if (opt.kind != Kind::kFlag) oss << " <value>";
    oss << "\n      " << opt.help << " (default: " << opt.value << ")\n";
  }
  oss << "  --help\n      show this message\n";
  return oss.str();
}

}  // namespace fedcav
