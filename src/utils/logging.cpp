#include "src/utils/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <mutex>

#include "src/utils/error.hpp"

namespace fedcav {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_emit_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

LogLevel parse_log_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  throw Error("parse_log_level: unknown level '" + name + "'");
}

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[fedcav %s] %s\n", level_tag(level), message.c_str());
}
}  // namespace detail

}  // namespace fedcav
