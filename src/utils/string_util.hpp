// Small string helpers shared by CLI parsing, config files and writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace fedcav {

/// Split `s` on `delim`; empty fields are preserved ("a,,b" -> 3 parts).
std::vector<std::string> split(std::string_view s, char delim);

/// Join parts with `delim` between them.
std::string join(const std::vector<std::string>& parts, std::string_view delim);

/// Strip leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers; throw fedcav::Error on malformed input (whole string
/// must be consumed).
long long parse_int(const std::string& s);
double parse_double(const std::string& s);
bool parse_bool(const std::string& s);  // true/false/1/0/yes/no/on/off

/// printf-style double formatting with fixed precision, locale-free.
std::string format_double(double v, int precision);

}  // namespace fedcav
