// Command-line flag parsing for examples and bench binaries.
//
// Usage:
//   CliParser cli("fig2_heterogeneity", "FedAvg on 5 distributions");
//   cli.add_int("rounds", 50, "communication rounds");
//   cli.add_double("lr", 0.05, "local learning rate");
//   cli.add_flag("fast", "shrink the workload for CI");
//   cli.parse(argc, argv);          // handles --help, validates names
//   int rounds = cli.get_int("rounds");
//
// Flags use `--name value` or `--name=value`; boolean flags take no value.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fedcav {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_int(const std::string& name, long long default_value, const std::string& help);
  void add_double(const std::string& name, double default_value, const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  /// Boolean flag, defaults to false; present on the command line = true.
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Returns false if --help was requested (help text already
  /// printed); throws fedcav::Error on unknown flags or bad values.
  bool parse(int argc, const char* const* argv);

  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Render the --help text.
  std::string help_text() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;  // declaration order for help text
};

}  // namespace fedcav
