// Key=value configuration files for experiment definitions.
//
// Format: one `key = value` per line; `#` starts a comment; blank lines
// ignored. Keys are flat strings ("server.lr" style nesting is just a
// naming convention). Typed getters parse on access and throw
// fedcav::Error with the offending key on malformed values.
#pragma once

#include <map>
#include <optional>
#include <string>

namespace fedcav {

class Config {
 public:
  Config() = default;

  /// Parse from text. Throws on malformed lines (no '=').
  static Config from_string(const std::string& text);
  /// Parse a file. Throws if unreadable.
  static Config from_file(const std::string& path);

  bool has(const std::string& key) const;
  std::size_t size() const { return values_.size(); }

  /// Typed getters with required-key semantics.
  std::string get_string(const std::string& key) const;
  long long get_int(const std::string& key) const;
  double get_double(const std::string& key) const;
  bool get_bool(const std::string& key) const;

  /// Defaulted variants.
  std::string get_string(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  void set(const std::string& key, const std::string& value);

  /// Render back to the file format (sorted keys).
  std::string to_string() const;

 private:
  std::optional<std::string> find(const std::string& key) const;
  std::map<std::string, std::string> values_;
};

}  // namespace fedcav
