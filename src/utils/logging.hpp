// Minimal leveled logger.
//
// The library logs to stderr through a single global sink with a runtime
// level filter. Benches lower the level to keep stdout clean for the
// CSV/markdown tables they emit.
#pragma once

#include <sstream>
#include <string>

namespace fedcav {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global log-level threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
/// Throws fedcav::Error on unknown names.
LogLevel parse_log_level(const std::string& name);

namespace detail {
void log_emit(LogLevel level, const std::string& message);

/// Stream-style one-shot log statement; emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_emit(level_, oss_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    oss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream oss_;
};
}  // namespace detail

}  // namespace fedcav

#define FEDCAV_LOG_DEBUG ::fedcav::detail::LogLine(::fedcav::LogLevel::kDebug)
#define FEDCAV_LOG_INFO ::fedcav::detail::LogLine(::fedcav::LogLevel::kInfo)
#define FEDCAV_LOG_WARN ::fedcav::detail::LogLine(::fedcav::LogLevel::kWarn)
#define FEDCAV_LOG_ERROR ::fedcav::detail::LogLine(::fedcav::LogLevel::kError)
