#include "src/data/mnist_idx.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

#include "src/utils/error.hpp"

namespace fedcav::data {

namespace {

std::uint32_t read_be32(std::istream& in, const char* what) {
  unsigned char b[4];
  in.read(reinterpret_cast<char*>(b), 4);
  FEDCAV_REQUIRE(in.good(), std::string("IDX: truncated ") + what);
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | static_cast<std::uint32_t>(b[3]);
}

constexpr std::uint32_t kImagesMagic = 0x00000803;
constexpr std::uint32_t kLabelsMagic = 0x00000801;

}  // namespace

bool mnist_idx_available(const std::string& images_path, const std::string& labels_path) {
  std::ifstream imgs(images_path, std::ios::binary);
  std::ifstream lbls(labels_path, std::ios::binary);
  if (!imgs.good() || !lbls.good()) return false;
  try {
    return read_be32(imgs, "magic") == kImagesMagic &&
           read_be32(lbls, "magic") == kLabelsMagic;
  } catch (const Error&) {
    return false;
  }
}

Dataset load_mnist_idx(const std::string& images_path, const std::string& labels_path,
                       std::size_t target_side) {
  std::ifstream imgs(images_path, std::ios::binary);
  FEDCAV_REQUIRE(imgs.good(), "IDX: cannot open " + images_path);
  std::ifstream lbls(labels_path, std::ios::binary);
  FEDCAV_REQUIRE(lbls.good(), "IDX: cannot open " + labels_path);

  FEDCAV_REQUIRE(read_be32(imgs, "image magic") == kImagesMagic,
                 "IDX: bad image magic in " + images_path);
  FEDCAV_REQUIRE(read_be32(lbls, "label magic") == kLabelsMagic,
                 "IDX: bad label magic in " + labels_path);

  const std::uint32_t n_images = read_be32(imgs, "image count");
  const std::uint32_t rows = read_be32(imgs, "rows");
  const std::uint32_t cols = read_be32(imgs, "cols");
  const std::uint32_t n_labels = read_be32(lbls, "label count");
  FEDCAV_REQUIRE(n_images == n_labels, "IDX: image/label count mismatch");
  FEDCAV_REQUIRE(rows % target_side == 0 && cols % target_side == 0,
                 "IDX: image size not divisible by target_side");

  const std::size_t pool = rows / target_side;
  Dataset out(Shape::of(1, target_side, target_side), 10);
  out.reserve(n_images);

  std::vector<unsigned char> raw(rows * cols);
  std::vector<float> pooled(target_side * target_side);
  const float inv = 1.0f / (255.0f * static_cast<float>(pool * pool));
  for (std::uint32_t i = 0; i < n_images; ++i) {
    imgs.read(reinterpret_cast<char*>(raw.data()), static_cast<std::streamsize>(raw.size()));
    FEDCAV_REQUIRE(imgs.good(), "IDX: truncated image data");
    char label_byte = 0;
    lbls.read(&label_byte, 1);
    FEDCAV_REQUIRE(lbls.good(), "IDX: truncated label data");

    for (std::size_t y = 0; y < target_side; ++y) {
      for (std::size_t x = 0; x < target_side; ++x) {
        std::uint32_t acc = 0;
        for (std::size_t dy = 0; dy < pool; ++dy) {
          for (std::size_t dx = 0; dx < pool; ++dx) {
            acc += raw[(y * pool + dy) * cols + (x * pool + dx)];
          }
        }
        pooled[y * target_side + x] = static_cast<float>(acc) * inv;
      }
    }
    const auto label = static_cast<std::size_t>(static_cast<unsigned char>(label_byte));
    FEDCAV_REQUIRE(label < 10, "IDX: label out of range");
    out.add_sample(pooled, label);
  }
  return out;
}

}  // namespace fedcav::data
