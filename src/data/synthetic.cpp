#include "src/data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/utils/error.hpp"

namespace fedcav::data {

void SynthConfig::validate() const {
  FEDCAV_REQUIRE(num_classes >= 2, "SynthConfig: need at least two classes");
  FEDCAV_REQUIRE(channels >= 1 && channels <= 3, "SynthConfig: channels must be 1..3");
  FEDCAV_REQUIRE(side >= 8, "SynthConfig: side must be at least 8");
  FEDCAV_REQUIRE(class_overlap >= 0.0 && class_overlap < 1.0,
                 "SynthConfig: class_overlap must be in [0, 1)");
  FEDCAV_REQUIRE(noise_stddev >= 0.0, "SynthConfig: negative noise");
  FEDCAV_REQUIRE(max_shift < side / 2, "SynthConfig: shift too large for image");
}

namespace {

/// Smooth random field: random values on a coarse grid, bilinearly
/// upsampled. Gives class prototypes with large-scale structure a small
/// CNN can key on (analogous to stroke layout in real digits).
void fill_low_freq(std::vector<float>& img, std::size_t side, Rng& rng,
                   std::size_t grid = 4) {
  std::vector<float> coarse(grid * grid);
  for (auto& v : coarse) v = rng.uniform_f(-1.0f, 1.0f);
  for (std::size_t y = 0; y < side; ++y) {
    const double gy = static_cast<double>(y) / static_cast<double>(side - 1) *
                      static_cast<double>(grid - 1);
    const std::size_t y0 = static_cast<std::size_t>(gy);
    const std::size_t y1 = std::min(grid - 1, y0 + 1);
    const double fy = gy - static_cast<double>(y0);
    for (std::size_t x = 0; x < side; ++x) {
      const double gx = static_cast<double>(x) / static_cast<double>(side - 1) *
                        static_cast<double>(grid - 1);
      const std::size_t x0 = static_cast<std::size_t>(gx);
      const std::size_t x1 = std::min(grid - 1, x0 + 1);
      const double fx = gx - static_cast<double>(x0);
      const double c00 = static_cast<double>(coarse[y0 * grid + x0]);
      const double c01 = static_cast<double>(coarse[y0 * grid + x1]);
      const double c10 = static_cast<double>(coarse[y1 * grid + x0]);
      const double c11 = static_cast<double>(coarse[y1 * grid + x1]);
      const double v = (1 - fy) * ((1 - fx) * c00 + fx * c01) +
                       fy * ((1 - fx) * c10 + fx * c11);
      img[y * side + x] = static_cast<float>(v);
    }
  }
}

/// Class-keyed texture: stripes or checkers whose frequency/orientation
/// depend on the class id. Adds the fine-scale cues fashion/cifar images
/// have beyond blob layout.
void add_texture(std::vector<float>& img, std::size_t side, std::size_t label,
                 float amplitude) {
  const double freq = 2.0 * std::numbers::pi * (1.0 + static_cast<double>(label % 4)) /
                      static_cast<double>(side);
  const int mode = static_cast<int>(label % 3);
  for (std::size_t y = 0; y < side; ++y) {
    for (std::size_t x = 0; x < side; ++x) {
      double t = 0.0;
      switch (mode) {
        case 0: t = std::sin(freq * static_cast<double>(x)); break;
        case 1: t = std::sin(freq * static_cast<double>(y)); break;
        default: t = std::sin(freq * static_cast<double>(x + y)); break;
      }
      img[y * side + x] += amplitude * static_cast<float>(t);
    }
  }
}

}  // namespace

SynthGenerator::SynthGenerator(SynthConfig config) : config_(config) {
  config_.validate();
  const std::size_t plane = config_.side * config_.side;
  const std::size_t per_class = config_.channels * plane;
  prototypes_.assign(config_.num_classes * per_class, 0.0f);

  Rng proto_rng(config_.seed);
  // Shared base mixed into every prototype to raise class overlap.
  std::vector<float> base(plane);
  fill_low_freq(base, config_.side, proto_rng);

  std::vector<float> field(plane);
  for (std::size_t c = 0; c < config_.num_classes; ++c) {
    for (std::size_t ch = 0; ch < config_.channels; ++ch) {
      fill_low_freq(field, config_.side, proto_rng);
      add_texture(field, config_.side, c, /*amplitude=*/0.5f);
      float* dst = prototypes_.data() + (c * config_.channels + ch) * plane;
      const float overlap = static_cast<float>(config_.class_overlap);
      for (std::size_t i = 0; i < plane; ++i) {
        dst[i] = overlap * base[i] + (1.0f - overlap) * field[i];
      }
    }
  }
}

void SynthGenerator::sample_into(std::size_t label, Rng& rng,
                                 std::vector<float>& out) const {
  FEDCAV_REQUIRE(label < config_.num_classes, "SynthGenerator: label out of range");
  const std::size_t side = config_.side;
  const std::size_t plane = side * side;
  const std::size_t sample_size = config_.channels * plane;
  out.resize(sample_size);

  const long long max_shift = static_cast<long long>(config_.max_shift);
  const long long dx = rng.uniform_int(-max_shift, max_shift);
  const long long dy = rng.uniform_int(-max_shift, max_shift);
  const float contrast = rng.uniform_f(1.0f - static_cast<float>(config_.contrast_jitter),
                                       1.0f + static_cast<float>(config_.contrast_jitter));

  const float* proto = prototypes_.data() + label * sample_size;
  for (std::size_t ch = 0; ch < config_.channels; ++ch) {
    const float* src = proto + ch * plane;
    float* dst = out.data() + ch * plane;
    for (std::size_t y = 0; y < side; ++y) {
      const long long sy = static_cast<long long>(y) + dy;
      for (std::size_t x = 0; x < side; ++x) {
        const long long sx = static_cast<long long>(x) + dx;
        float v = 0.0f;
        if (sy >= 0 && sy < static_cast<long long>(side) && sx >= 0 &&
            sx < static_cast<long long>(side)) {
          v = src[static_cast<std::size_t>(sy) * side + static_cast<std::size_t>(sx)];
        }
        v = contrast * v + static_cast<float>(rng.normal(0.0, config_.noise_stddev));
        dst[y * side + x] = v;
      }
    }
  }
}

Dataset SynthGenerator::generate_balanced(std::size_t per_class, Rng& rng) const {
  std::vector<std::size_t> counts(config_.num_classes, per_class);
  return generate_with_counts(counts, rng);
}

Dataset SynthGenerator::generate_with_counts(const std::vector<std::size_t>& counts,
                                             Rng& rng) const {
  FEDCAV_REQUIRE(counts.size() == config_.num_classes,
                 "SynthGenerator: counts size must equal num_classes");
  Dataset out(Shape::of(config_.channels, config_.side, config_.side), config_.num_classes);
  std::size_t total = 0;
  for (std::size_t c : counts) total += c;
  out.reserve(total);
  std::vector<float> sample;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    for (std::size_t i = 0; i < counts[c]; ++i) {
      sample_into(c, rng, sample);
      out.add_sample(sample, c);
    }
  }
  out.shuffle(rng);
  return out;
}

SynthConfig synth_digits_config(std::uint64_t seed) {
  SynthConfig c;
  c.channels = 1;
  c.side = 14;
  c.class_overlap = 0.25;
  c.noise_stddev = 0.35;
  c.max_shift = 2;
  c.seed = seed;
  return c;
}

SynthConfig synth_fashion_config(std::uint64_t seed) {
  SynthConfig c;
  c.channels = 1;
  c.side = 14;
  c.class_overlap = 0.45;
  c.noise_stddev = 0.3;
  c.max_shift = 2;
  c.seed = seed;
  return c;
}

SynthConfig synth_cifar_config(std::uint64_t seed) {
  SynthConfig c;
  c.channels = 3;
  c.side = 16;
  c.class_overlap = 0.65;
  c.noise_stddev = 0.45;
  c.max_shift = 3;
  c.contrast_jitter = 0.35;
  c.seed = seed;
  return c;
}

SynthConfig synth_config_by_name(const std::string& name, std::uint64_t seed) {
  if (name == "digits") return synth_digits_config(seed);
  if (name == "fashion") return synth_fashion_config(seed);
  if (name == "cifar") return synth_cifar_config(seed);
  throw Error("synth_config_by_name: unknown dataset '" + name + "'");
}

}  // namespace fedcav::data
