// Synthetic image corpora standing in for MNIST / FMNIST / CIFAR-10.
//
// Generation model: each class c gets a prototype image P_c built from
// smooth low-frequency structure plus (for the fashion/cifar variants) a
// class-keyed texture. A sample is an augmented prototype:
//     x = contrast * shift(P_c, dx, dy) + N(0, noise²)
// Difficulty is controlled by three knobs that mirror why the real
// datasets order MNIST < FMNIST < CIFAR-10 in hardness:
//  * `class_overlap`  — fraction of a shared base image mixed into every
//    prototype (raises inter-class similarity),
//  * `noise_stddev`   — per-pixel additive noise,
//  * `max_shift`      — translation jitter in pixels.
// A balanced test set follows the paper's setup ("the test dataset is
// balanced", §5.2.1).
#pragma once

#include <cstddef>

#include "src/data/dataset.hpp"

namespace fedcav::data {

struct SynthConfig {
  std::size_t num_classes = 10;
  std::size_t channels = 1;
  std::size_t side = 14;
  double class_overlap = 0.0;   // [0, 1)
  double noise_stddev = 0.15;
  std::size_t max_shift = 1;
  double contrast_jitter = 0.2; // contrast ~ U(1-j, 1+j)
  std::uint64_t seed = 42;

  void validate() const;
};

/// Prototype bank: deterministic given the config seed, shared between
/// train and test generation so both draw from the same distribution.
class SynthGenerator {
 public:
  explicit SynthGenerator(SynthConfig config);

  const SynthConfig& config() const { return config_; }

  /// Generate `per_class` samples of every class (size = classes*per_class).
  Dataset generate_balanced(std::size_t per_class, Rng& rng) const;

  /// Generate samples with the given per-class counts
  /// (counts.size() == num_classes).
  Dataset generate_with_counts(const std::vector<std::size_t>& counts, Rng& rng) const;

  /// One augmented sample of class `label`.
  void sample_into(std::size_t label, Rng& rng, std::vector<float>& out) const;

 private:
  SynthConfig config_;
  std::vector<float> prototypes_;  // num_classes × channels × side × side
};

/// Canned configurations matching DESIGN.md's dataset substitutions.
SynthConfig synth_digits_config(std::uint64_t seed = 42);   // MNIST-like: easy
SynthConfig synth_fashion_config(std::uint64_t seed = 43);  // FMNIST-like: medium
SynthConfig synth_cifar_config(std::uint64_t seed = 44);    // CIFAR-like: hard

/// Named lookup: "digits" | "fashion" | "cifar". Throws on unknown name.
SynthConfig synth_config_by_name(const std::string& name, std::uint64_t seed);

}  // namespace fedcav::data
