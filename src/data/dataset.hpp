// Dataset: an owning collection of (image, label) samples plus cheap
// index-based views for partitioning across federated clients.
//
// Images are stored as one contiguous float block (sample-major, CHW
// within a sample) so batch assembly is a couple of memcpys.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/tensor/shape.hpp"
#include "src/tensor/tensor.hpp"
#include "src/utils/rng.hpp"

namespace fedcav::data {

class Dataset {
 public:
  Dataset() = default;
  /// `sample_shape` is the per-sample CHW shape (rank 3).
  Dataset(Shape sample_shape, std::size_t num_classes);

  /// Append one sample; `pixels` must have sample_shape().numel() values.
  void add_sample(std::span<const float> pixels, std::size_t label);
  void reserve(std::size_t n);

  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }
  std::size_t num_classes() const { return num_classes_; }
  const Shape& sample_shape() const { return sample_shape_; }
  std::size_t sample_numel() const { return sample_numel_; }

  std::size_t label(std::size_t i) const;
  std::span<const float> pixels(std::size_t i) const;

  /// Histogram of labels (length num_classes()).
  std::vector<std::size_t> class_histogram() const;

  /// Assemble the samples at `indices` into one batch tensor
  /// (N × C × H × W) and parallel label vector.
  Tensor make_batch(std::span<const std::size_t> indices,
                    std::vector<std::size_t>* labels_out) const;

  /// Batch of the whole dataset (careful with memory on large sets).
  Tensor all_pixels(std::vector<std::size_t>* labels_out) const;

  /// New dataset holding copies of the samples at `indices`.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Indices of every sample with the given label.
  std::vector<std::size_t> indices_of_class(std::size_t label) const;

  /// Deterministic in-place shuffle of sample order.
  void shuffle(Rng& rng);

  /// Merge another dataset (same shape/classes) into this one.
  void append(const Dataset& other);

 private:
  Shape sample_shape_;
  std::size_t sample_numel_ = 0;
  std::size_t num_classes_ = 0;
  std::vector<float> pixels_;
  std::vector<std::size_t> labels_;
};

/// Split into two datasets: the first `fraction` (after an optional
/// shuffle the caller does beforehand) and the rest. Used for
/// train/test splits of the synthetic corpora.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};
TrainTestSplit split_train_test(const Dataset& all, double train_fraction, Rng& rng);

}  // namespace fedcav::data
