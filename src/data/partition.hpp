// Partitioners: distribute a training corpus across federated clients.
//
// Implements the paper's three distribution types (Table 1) plus a
// Dirichlet partitioner as an extension:
//  * kIidBalanced       — every client draws uniformly from all classes.
//  * kNonIidBalanced    — classic 2-shard scheme: sort by label, cut into
//    2n shards, deal two shards (≈ two classes) per client.
//  * kNonIidImbalanced  — two classes per client with the size ratio
//    between them controlled by σ (§5.1.3: "σ controls the size
//    difference between two labels in a client").
//  * kDirichlet         — class proportions per client ~ Dir(α).
//
// σ normalization: the paper quotes σ = 300/600/900 in MNIST sample
// units (60 000 training samples). Our synthetic corpora are ~30× smaller,
// so absolute counts cannot transfer; we map σ to the coefficient of
// variation cv = σ / 2000 of the per-client class-share draw, which spans
// mild (0.15) → severe (0.45) imbalance and preserves the paper's
// ordering σ=300 < 600 < 900. DESIGN.md records this substitution.
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/dataset.hpp"

namespace fedcav::data {

enum class PartitionScheme {
  kIidBalanced,
  kNonIidBalanced,
  kNonIidImbalanced,
  kDirichlet,
};

/// Parse "iid" | "noniid" | "imbalanced" | "dirichlet".
PartitionScheme parse_partition_scheme(const std::string& name);
std::string to_string(PartitionScheme scheme);

struct PartitionConfig {
  PartitionScheme scheme = PartitionScheme::kNonIidImbalanced;
  std::size_t num_clients = 100;
  /// Imbalance level in the paper's units (300/600/900); only used by
  /// kNonIidImbalanced.
  double sigma = 600.0;
  /// Concentration for kDirichlet.
  double dirichlet_alpha = 0.5;
  /// Classes per client for the non-IID schemes (paper uses 2).
  std::size_t classes_per_client = 2;
  std::uint64_t seed = 7;

  void validate() const;
};

/// Index lists into `train`, one per client. Every client receives at
/// least one sample.
using Partition = std::vector<std::vector<std::size_t>>;

Partition make_partition(const Dataset& train, const PartitionConfig& config);

/// The paper's σ → cv mapping (exposed for tests and documentation).
double sigma_to_cv(double sigma);

}  // namespace fedcav::data
