// IDX file loader (the MNIST/FMNIST on-disk format).
//
// The synthetic corpora drive all CI runs; when a user has the real
// `train-images-idx3-ubyte` / `train-labels-idx1-ubyte` files on disk
// this loader lets every experiment run on genuine MNIST instead —
// images are downscaled 28×28 → 14×14 (2×2 average pooling) to match
// the model zoo geometry.
#pragma once

#include <string>

#include "src/data/dataset.hpp"

namespace fedcav::data {

/// Load an images+labels IDX pair into a Dataset (pixels scaled to
/// [0, 1], optionally pooled to `target_side`). Throws fedcav::Error on
/// missing files, bad magic numbers, or image/label count mismatch.
Dataset load_mnist_idx(const std::string& images_path, const std::string& labels_path,
                       std::size_t target_side = 14);

/// True if both files exist and start with the correct IDX magics.
bool mnist_idx_available(const std::string& images_path, const std::string& labels_path);

}  // namespace fedcav::data
