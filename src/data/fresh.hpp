// Fresh-class splitting for the paper's dynamic-environment experiment
// (Fig. 4): a fraction α of the class labels is "fresh" — collected
// recently and absent from earlier training. The experiment pre-trains
// on the common classes, then continues federated training on data that
// includes the fresh classes.
#pragma once

#include <cstddef>

#include "src/data/dataset.hpp"

namespace fedcav::data {

struct FreshSplit {
  /// Samples whose label is a common (previously seen) class.
  Dataset common;
  /// Samples whose label is a fresh class.
  Dataset fresh;
  /// The fresh class labels (the last ⌈α·C⌉ label ids).
  std::vector<std::size_t> fresh_classes;
};

/// Split by label: the last round(α·num_classes) labels are fresh.
/// α must lie in [0, 0.5] per the paper ("we set α < 0.5 ... to get a
/// more stable global model"); α = 0 yields an empty fresh set.
FreshSplit split_fresh_classes(const Dataset& all, double alpha);

}  // namespace fedcav::data
