#include "src/data/dataset.hpp"

#include <cstring>

#include "src/utils/error.hpp"

namespace fedcav::data {

Dataset::Dataset(Shape sample_shape, std::size_t num_classes)
    : sample_shape_(sample_shape),
      sample_numel_(sample_shape.numel()),
      num_classes_(num_classes) {
  FEDCAV_REQUIRE(sample_shape.rank() == 3, "Dataset: sample shape must be CHW (rank 3)");
  FEDCAV_REQUIRE(num_classes > 0, "Dataset: num_classes must be positive");
}

void Dataset::add_sample(std::span<const float> pixels, std::size_t label) {
  FEDCAV_REQUIRE(pixels.size() == sample_numel_, "Dataset::add_sample: pixel count mismatch");
  FEDCAV_REQUIRE(label < num_classes_, "Dataset::add_sample: label out of range");
  pixels_.insert(pixels_.end(), pixels.begin(), pixels.end());
  labels_.push_back(label);
}

void Dataset::reserve(std::size_t n) {
  pixels_.reserve(n * sample_numel_);
  labels_.reserve(n);
}

std::size_t Dataset::label(std::size_t i) const {
  FEDCAV_REQUIRE(i < labels_.size(), "Dataset::label: index out of range");
  return labels_[i];
}

std::span<const float> Dataset::pixels(std::size_t i) const {
  FEDCAV_REQUIRE(i < labels_.size(), "Dataset::pixels: index out of range");
  return {pixels_.data() + i * sample_numel_, sample_numel_};
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (std::size_t y : labels_) ++hist[y];
  return hist;
}

Tensor Dataset::make_batch(std::span<const std::size_t> indices,
                           std::vector<std::size_t>* labels_out) const {
  FEDCAV_REQUIRE(!indices.empty(), "Dataset::make_batch: empty index list");
  const std::size_t n = indices.size();
  Tensor batch(Shape::of(n, sample_shape_[0], sample_shape_[1], sample_shape_[2]));
  if (labels_out != nullptr) {
    labels_out->clear();
    labels_out->reserve(n);
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = indices[i];
    FEDCAV_REQUIRE(src < labels_.size(), "Dataset::make_batch: index out of range");
    std::memcpy(batch.data() + i * sample_numel_, pixels_.data() + src * sample_numel_,
                sample_numel_ * sizeof(float));
    if (labels_out != nullptr) labels_out->push_back(labels_[src]);
  }
  return batch;
}

Tensor Dataset::all_pixels(std::vector<std::size_t>* labels_out) const {
  std::vector<std::size_t> idx(size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return make_batch(idx, labels_out);
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(sample_shape_, num_classes_);
  out.reserve(indices.size());
  for (std::size_t i : indices) out.add_sample(pixels(i), label(i));
  return out;
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t target) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == target) out.push_back(i);
  }
  return out;
}

void Dataset::shuffle(Rng& rng) {
  std::vector<std::size_t> perm(size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  std::vector<float> new_pixels(pixels_.size());
  std::vector<std::size_t> new_labels(labels_.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    std::memcpy(new_pixels.data() + i * sample_numel_,
                pixels_.data() + perm[i] * sample_numel_, sample_numel_ * sizeof(float));
    new_labels[i] = labels_[perm[i]];
  }
  pixels_ = std::move(new_pixels);
  labels_ = std::move(new_labels);
}

void Dataset::append(const Dataset& other) {
  FEDCAV_REQUIRE(sample_shape_ == other.sample_shape_, "Dataset::append: shape mismatch");
  FEDCAV_REQUIRE(num_classes_ == other.num_classes_, "Dataset::append: class count mismatch");
  pixels_.insert(pixels_.end(), other.pixels_.begin(), other.pixels_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

TrainTestSplit split_train_test(const Dataset& all, double train_fraction, Rng& rng) {
  FEDCAV_REQUIRE(train_fraction > 0.0 && train_fraction < 1.0,
                 "split_train_test: fraction must be in (0, 1)");
  std::vector<std::size_t> perm(all.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  rng.shuffle(perm);
  const std::size_t n_train = static_cast<std::size_t>(
      static_cast<double>(all.size()) * train_fraction);
  TrainTestSplit out;
  out.train = all.subset(std::span(perm.data(), n_train));
  out.test = all.subset(std::span(perm.data() + n_train, perm.size() - n_train));
  return out;
}

}  // namespace fedcav::data
