#include "src/data/fresh.hpp"

#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::data {

FreshSplit split_fresh_classes(const Dataset& all, double alpha) {
  FEDCAV_REQUIRE(alpha >= 0.0 && alpha <= 0.5,
                 "split_fresh_classes: alpha must be in [0, 0.5]");
  const std::size_t num_classes = all.num_classes();
  const std::size_t num_fresh = static_cast<std::size_t>(
      std::round(alpha * static_cast<double>(num_classes)));

  FreshSplit out;
  out.common = Dataset(all.sample_shape(), num_classes);
  out.fresh = Dataset(all.sample_shape(), num_classes);
  const std::size_t first_fresh = num_classes - num_fresh;
  for (std::size_t c = first_fresh; c < num_classes; ++c) out.fresh_classes.push_back(c);

  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all.label(i) >= first_fresh) {
      out.fresh.add_sample(all.pixels(i), all.label(i));
    } else {
      out.common.add_sample(all.pixels(i), all.label(i));
    }
  }
  return out;
}

}  // namespace fedcav::data
