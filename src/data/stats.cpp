#include "src/data/stats.hpp"

#include <cmath>

#include "src/utils/error.hpp"

namespace fedcav::data {

std::vector<std::vector<std::size_t>> client_class_histograms(const Dataset& train,
                                                              const Partition& partition) {
  std::vector<std::vector<std::size_t>> out(partition.size());
  for (std::size_t k = 0; k < partition.size(); ++k) {
    out[k].assign(train.num_classes(), 0);
    for (std::size_t i : partition[k]) ++out[k][train.label(i)];
  }
  return out;
}

double histogram_stddev(const std::vector<std::size_t>& counts) {
  FEDCAV_REQUIRE(!counts.empty(), "histogram_stddev: empty histogram");
  double mean = 0.0;
  for (std::size_t c : counts) mean += static_cast<double>(c);
  mean /= static_cast<double>(counts.size());
  double var = 0.0;
  for (std::size_t c : counts) {
    const double d = static_cast<double>(c) - mean;
    var += d * d;
  }
  return std::sqrt(var / static_cast<double>(counts.size()));
}

double mean_client_divergence(const Dataset& train, const Partition& partition) {
  const auto hists = client_class_histograms(train, partition);
  const auto global = train.class_histogram();
  double global_total = 0.0;
  for (std::size_t c : global) global_total += static_cast<double>(c);
  FEDCAV_REQUIRE(global_total > 0.0, "mean_client_divergence: empty dataset");

  double acc = 0.0;
  for (const auto& h : hists) {
    double client_total = 0.0;
    for (std::size_t c : h) client_total += static_cast<double>(c);
    if (client_total == 0.0) continue;
    double tv = 0.0;
    for (std::size_t c = 0; c < h.size(); ++c) {
      tv += std::abs(static_cast<double>(h[c]) / client_total -
                     static_cast<double>(global[c]) / global_total);
    }
    acc += 0.5 * tv;
  }
  return acc / static_cast<double>(hists.size());
}

std::vector<std::size_t> classes_per_client(const Dataset& train,
                                            const Partition& partition) {
  const auto hists = client_class_histograms(train, partition);
  std::vector<std::size_t> out(hists.size(), 0);
  for (std::size_t k = 0; k < hists.size(); ++k) {
    for (std::size_t c : hists[k]) {
      if (c > 0) ++out[k];
    }
  }
  return out;
}

}  // namespace fedcav::data
