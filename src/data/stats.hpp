// Distribution statistics over partitions: the quantities §3 of the
// paper reasons about (class-size variance, client/global divergence).
#pragma once

#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/partition.hpp"

namespace fedcav::data {

/// Per-client class histograms (num_clients × num_classes).
std::vector<std::vector<std::size_t>> client_class_histograms(const Dataset& train,
                                                              const Partition& partition);

/// Population standard deviation of a count vector.
double histogram_stddev(const std::vector<std::size_t>& counts);

/// Mean (over clients) total-variation distance between the client's
/// class distribution and the global class distribution — a scalar
/// "how non-IID is this partition" summary in [0, 1].
double mean_client_divergence(const Dataset& train, const Partition& partition);

/// Number of distinct classes present on each client.
std::vector<std::size_t> classes_per_client(const Dataset& train, const Partition& partition);

}  // namespace fedcav::data
