#include "src/data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/utils/error.hpp"

namespace fedcav::data {

PartitionScheme parse_partition_scheme(const std::string& name) {
  if (name == "iid") return PartitionScheme::kIidBalanced;
  if (name == "noniid") return PartitionScheme::kNonIidBalanced;
  if (name == "imbalanced") return PartitionScheme::kNonIidImbalanced;
  if (name == "dirichlet") return PartitionScheme::kDirichlet;
  throw Error("parse_partition_scheme: unknown scheme '" + name + "'");
}

std::string to_string(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kIidBalanced: return "iid";
    case PartitionScheme::kNonIidBalanced: return "noniid";
    case PartitionScheme::kNonIidImbalanced: return "imbalanced";
    case PartitionScheme::kDirichlet: return "dirichlet";
  }
  return "?";
}

void PartitionConfig::validate() const {
  FEDCAV_REQUIRE(num_clients >= 1, "PartitionConfig: need at least one client");
  FEDCAV_REQUIRE(sigma >= 0.0, "PartitionConfig: negative sigma");
  FEDCAV_REQUIRE(dirichlet_alpha > 0.0, "PartitionConfig: alpha must be positive");
  FEDCAV_REQUIRE(classes_per_client >= 1, "PartitionConfig: classes_per_client >= 1");
}

double sigma_to_cv(double sigma) { return sigma / 2000.0; }

namespace {

/// Per-class index pools with a cursor; draws cycle deterministically so
/// every client gets data even when a class pool is exhausted.
class ClassPools {
 public:
  ClassPools(const Dataset& train, Rng& rng) {
    pools_.resize(train.num_classes());
    cursors_.assign(train.num_classes(), 0);
    for (std::size_t c = 0; c < train.num_classes(); ++c) {
      pools_[c] = train.indices_of_class(c);
      rng.shuffle(pools_[c]);
    }
  }

  bool class_available(std::size_t c) const { return !pools_[c].empty(); }

  std::size_t draw(std::size_t c) {
    auto& pool = pools_[c];
    FEDCAV_REQUIRE(!pool.empty(), "ClassPools: class has no samples");
    const std::size_t idx = pool[cursors_[c] % pool.size()];
    ++cursors_[c];
    return idx;
  }

 private:
  std::vector<std::vector<std::size_t>> pools_;
  std::vector<std::size_t> cursors_;
};

Partition partition_iid(const Dataset& train, const PartitionConfig& config, Rng& rng) {
  std::vector<std::size_t> perm(train.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  rng.shuffle(perm);
  Partition out(config.num_clients);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    out[i % config.num_clients].push_back(perm[i]);
  }
  return out;
}

Partition partition_noniid_shards(const Dataset& train, const PartitionConfig& config,
                                  Rng& rng) {
  // Sort indices by label, cut into classes_per_client × num_clients
  // shards, deal shards randomly: each client ends up with (mostly)
  // classes_per_client distinct labels.
  std::vector<std::size_t> sorted(train.size());
  std::iota(sorted.begin(), sorted.end(), std::size_t{0});
  std::stable_sort(sorted.begin(), sorted.end(), [&](std::size_t a, std::size_t b) {
    return train.label(a) < train.label(b);
  });
  const std::size_t num_shards = config.num_clients * config.classes_per_client;
  FEDCAV_REQUIRE(train.size() >= num_shards,
                 "partition: dataset smaller than shard count");
  std::vector<std::size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
  rng.shuffle(shard_order);

  const std::size_t shard_size = train.size() / num_shards;
  Partition out(config.num_clients);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t client = s / config.classes_per_client;
    const std::size_t shard = shard_order[s];
    const std::size_t begin = shard * shard_size;
    const std::size_t end = (shard + 1 == num_shards) ? train.size() : begin + shard_size;
    for (std::size_t i = begin; i < end; ++i) out[client].push_back(sorted[i]);
  }
  return out;
}

Partition partition_noniid_imbalanced(const Dataset& train, const PartitionConfig& config,
                                      Rng& rng) {
  // Sample only from classes that actually have data — corpora produced
  // by the fresh-class splitter legitimately have empty label slots.
  std::vector<std::size_t> populated;
  {
    const auto hist = train.class_histogram();
    for (std::size_t c = 0; c < hist.size(); ++c) {
      if (hist[c] > 0) populated.push_back(c);
    }
  }
  const std::size_t num_classes = populated.size();
  FEDCAV_REQUIRE(config.classes_per_client <= num_classes,
                 "partition: classes_per_client exceeds populated class count");
  const std::size_t per_client =
      std::max<std::size_t>(2, train.size() / config.num_clients);
  const double cv = sigma_to_cv(config.sigma);

  ClassPools pools(train, rng);
  Partition out(config.num_clients);
  for (std::size_t k = 0; k < config.num_clients; ++k) {
    // Pick distinct populated classes for this client.
    std::vector<std::size_t> classes =
        rng.sample_without_replacement(num_classes, config.classes_per_client);
    for (auto& c : classes) c = populated[c];
    // Share of the first class: 1/m shifted by a |N(0, cv)| perturbation,
    // clamped so each class keeps at least one sample.
    const double base = 1.0 / static_cast<double>(classes.size());
    double p = base + std::abs(rng.normal(0.0, cv));
    p = std::clamp(p, base, 0.95);
    std::vector<std::size_t> counts(classes.size());
    counts[0] = std::max<std::size_t>(
        1, static_cast<std::size_t>(p * static_cast<double>(per_client)));
    counts[0] = std::min(counts[0], per_client - (classes.size() - 1));
    const std::size_t rest = per_client - counts[0];
    for (std::size_t j = 1; j < classes.size(); ++j) {
      counts[j] = std::max<std::size_t>(1, rest / (classes.size() - 1));
    }
    for (std::size_t j = 0; j < classes.size(); ++j) {
      for (std::size_t i = 0; i < counts[j]; ++i) {
        out[k].push_back(pools.draw(classes[j]));
      }
    }
  }
  return out;
}

Partition partition_dirichlet(const Dataset& train, const PartitionConfig& config,
                              Rng& rng) {
  const std::size_t num_classes = train.num_classes();
  const std::size_t per_client =
      std::max<std::size_t>(1, train.size() / config.num_clients);
  ClassPools pools(train, rng);
  Partition out(config.num_clients);
  for (std::size_t k = 0; k < config.num_clients; ++k) {
    // Dir(α) draw via normalized Gamma(α, 1) samples, using the
    // Marsaglia-Tsang method for the gamma variates (α may be < 1).
    // Empty classes keep proportion zero so draw() never touches them.
    std::vector<double> props(num_classes, 0.0);
    double total = 0.0;
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (!pools.class_available(c)) continue;
      double alpha = config.dirichlet_alpha;
      double boost = 1.0;
      if (alpha < 1.0) {
        // Gamma(α) = Gamma(α+1) * U^{1/α}
        boost = std::pow(rng.uniform(), 1.0 / alpha);
        alpha += 1.0;
      }
      const double d = alpha - 1.0 / 3.0;
      const double c9 = 1.0 / std::sqrt(9.0 * d);
      double g = 0.0;
      for (;;) {
        const double x = rng.normal();
        const double v = std::pow(1.0 + c9 * x, 3.0);
        if (v <= 0.0) continue;
        const double u = rng.uniform();
        if (std::log(std::max(u, 1e-300)) < 0.5 * x * x + d - d * v + d * std::log(v)) {
          g = d * v;
          break;
        }
      }
      props[c] = g * boost;
      total += props[c];
    }
    for (std::size_t c = 0; c < num_classes; ++c) {
      const std::size_t count = static_cast<std::size_t>(
          std::round(props[c] / total * static_cast<double>(per_client)));
      for (std::size_t i = 0; i < count; ++i) out[k].push_back(pools.draw(c));
    }
    if (out[k].empty()) {
      // Rounding can starve a client; give it one sample of its argmax
      // proportion class.
      const std::size_t c = static_cast<std::size_t>(
          std::max_element(props.begin(), props.end()) - props.begin());
      out[k].push_back(pools.draw(c));
    }
  }
  return out;
}

}  // namespace

Partition make_partition(const Dataset& train, const PartitionConfig& config) {
  config.validate();
  FEDCAV_REQUIRE(train.size() >= config.num_clients,
                 "make_partition: fewer samples than clients");
  Rng rng(config.seed);
  Partition out;
  switch (config.scheme) {
    case PartitionScheme::kIidBalanced: out = partition_iid(train, config, rng); break;
    case PartitionScheme::kNonIidBalanced:
      out = partition_noniid_shards(train, config, rng);
      break;
    case PartitionScheme::kNonIidImbalanced:
      out = partition_noniid_imbalanced(train, config, rng);
      break;
    case PartitionScheme::kDirichlet: out = partition_dirichlet(train, config, rng); break;
  }
  for (const auto& client : out) {
    FEDCAV_CHECK(!client.empty(), "make_partition: produced an empty client");
  }
  return out;
}

}  // namespace fedcav::data
