// Chaos suite for the fault-injecting fabric + quorum-tolerant round
// loop. Properties pinned here:
//   * every run over a seeded fault-plan grid terminates (no deadlock,
//     no livelock in the retry protocol) — the suite finishing is the
//     assertion;
//   * message conservation: every transmitted message is accounted for
//     as delivered, dropped, crash-dropped, or still pending;
//   * determinism: identical seed + plan produce bit-identical history
//     and final weights with 1 and 4 pool workers;
//   * a zeroed FaultPlan is provably inert (byte-identical traffic and
//     history vs the default fabric);
//   * quorum: when no update survives, the round is skipped and the
//     global model carried forward unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <vector>

#include "src/fl/simulation.hpp"
#include "src/utils/error.hpp"
#include "src/utils/logging.hpp"
#include "src/utils/threadpool.hpp"

namespace fedcav {
namespace {

fl::SimulationConfig chaos_config() {
  fl::SimulationConfig config;
  config.dataset = "digits";
  config.model = "mlp";
  config.train_samples_per_class = 12;
  config.test_samples_per_class = 8;
  config.partition.num_clients = 6;
  config.server.sample_ratio = 0.5;
  config.server.local.epochs = 2;
  config.server.local.batch_size = 8;
  config.server.min_aggregate_clients = 1;
  config.server.max_retries = 3;
  config.server.retry_backoff_s = 0.05;
  return config;
}

void expect_conservation(const fl::Server& server) {
  const comm::InMemoryNetwork* net = server.network();
  ASSERT_NE(net, nullptr);
  const comm::FaultStats f = net->fault_stats();
  EXPECT_EQ(net->total_stats().messages_sent + f.duplicated,
            f.delivered + f.dropped + f.crash_dropped + net->pending_messages())
      << "a message leaked from the fabric's accounting";
}

std::string deterministic_csv(const fl::Server& server) {
  std::ostringstream out;
  server.history().write_csv(out, /*include_timings=*/false);
  return out.str();
}

TEST(Chaos, GridOfFaultPlansTerminatesAndConservesMessages) {
  set_log_level(LogLevel::kError);
  // Fault-free reference for the accuracy band.
  fl::SimulationConfig clean = chaos_config();
  fl::Simulation reference = fl::build_simulation(clean);
  reference.server->run(3);
  const double clean_best = reference.server->history().best_accuracy();

  const double drop_grid[] = {0.0, 0.1, 0.3};
  const double corrupt_grid[] = {0.0, 0.05};
  const std::vector<std::vector<comm::CrashWindow>> crash_grid = {
      {},
      {comm::CrashWindow{/*rank=*/2, /*first_round=*/2, /*last_round=*/2}},
      {comm::CrashWindow{1, 1, 1}, comm::CrashWindow{4, 2, 3}},
  };

  for (double drop : drop_grid) {
    for (double corrupt : corrupt_grid) {
      for (std::size_t c = 0; c < crash_grid.size(); ++c) {
        fl::SimulationConfig config = chaos_config();
        comm::FaultPlan& faults = config.server.network.faults;
        faults.seed = 1000 + static_cast<std::uint64_t>(100 * drop) + c;
        faults.drop_prob = drop;
        faults.corrupt_prob = corrupt;
        faults.duplicate_prob = 0.1;
        faults.reorder_prob = 0.1;
        faults.jitter_s = 0.02;
        faults.crashes = crash_grid[c];

        SCOPED_TRACE("drop=" + std::to_string(drop) +
                     " corrupt=" + std::to_string(corrupt) +
                     " crashes=" + std::to_string(c));
        fl::Simulation sim = fl::build_simulation(config);
        sim.server->run(3);  // terminating at all is the liveness assertion
        ASSERT_EQ(sim.server->history().rounds(), 3u);
        expect_conservation(*sim.server);

        // Retries keep most exchanges alive, so accuracy stays within a
        // (deliberately loose) band of the fault-free run at this scale.
        std::size_t aggregated_rounds = 0;
        for (const auto& rec : sim.server->history().records()) {
          if (!rec.skipped) ++aggregated_rounds;
        }
        if (aggregated_rounds == 3) {
          EXPECT_GT(sim.server->history().best_accuracy(), clean_best - 0.35);
        }
        // Fault work must be visible in the observability columns when
        // the plan actually bites.
        if (drop >= 0.3) {
          std::uint64_t retries = 0;
          for (const auto& rec : sim.server->history().records()) {
            retries += rec.retries;
          }
          EXPECT_GT(retries, 0u);
        }
      }
    }
  }
}

TEST(Chaos, SameSeedIsBitIdenticalAcrossPoolSizes) {
  set_log_level(LogLevel::kError);
  fl::SimulationConfig config = chaos_config();
  comm::FaultPlan& faults = config.server.network.faults;
  faults.seed = 77;
  faults.drop_prob = 0.3;
  faults.duplicate_prob = 0.15;
  faults.reorder_prob = 0.15;
  faults.corrupt_prob = 0.1;
  faults.truncate_prob = 0.05;
  faults.jitter_s = 0.05;
  faults.crashes = {comm::CrashWindow{3, 2, 2}};
  config.server.min_aggregate_clients = 1;

  auto run_with_pool = [&config](std::size_t workers, std::string* csv,
                                 nn::Weights* weights) {
    ThreadPool pool(workers);
    fl::Simulation sim = fl::build_simulation(config);
    sim.server->set_thread_pool(&pool);
    sim.server->run(4);
    *csv = deterministic_csv(*sim.server);
    *weights = sim.server->global_weights();
    expect_conservation(*sim.server);
  };

  std::string csv1;
  std::string csv4;
  nn::Weights w1;
  nn::Weights w4;
  run_with_pool(1, &csv1, &w1);
  run_with_pool(4, &csv4, &w4);
  EXPECT_EQ(csv1, csv4) << "per-link fault streams leaked thread-order dependence";
  EXPECT_EQ(w1, w4);
}

/// Pass-through comm::Transport that forwards every call to the wrapped
/// backend while counting them — installed over the server's own
/// in-memory fabric to prove the round loop goes through the Transport
/// seam for ALL protocol traffic (any call that bypassed the seam would
/// show up as a byte diff under faults, since the wrapped fabric is the
/// same object either way and only the dispatch path changes).
class ForwardingTransport final : public comm::Transport {
 public:
  explicit ForwardingTransport(comm::Transport* inner) : inner_(inner) {}

  std::size_t num_endpoints() const override { return inner_->num_endpoints(); }
  void begin_round(std::size_t round) override { inner_->begin_round(round); }
  void send(std::size_t src, std::size_t dst,
            const comm::Envelope& env) override {
    forwarded_ += 1;
    inner_->send(src, dst, env);
  }
  std::optional<ByteBuffer> try_recv_wire(std::size_t dst,
                                          std::size_t src) override {
    forwarded_ += 1;
    return inner_->try_recv_wire(dst, src);
  }
  std::optional<ByteBuffer> try_recv_any_wire(std::size_t dst,
                                              std::size_t* src_out) override {
    return inner_->try_recv_any_wire(dst, src_out);
  }
  void add_link_delay(std::size_t src, std::size_t dst,
                      double seconds) override {
    inner_->add_link_delay(src, dst, seconds);
  }
  comm::TrafficStats stats(std::size_t endpoint) const override {
    return inner_->stats(endpoint);
  }
  comm::TrafficStats total_stats() const override {
    return inner_->total_stats();
  }
  comm::FaultStats fault_stats() const override {
    return inner_->fault_stats();
  }
  double model_transfer_seconds(std::size_t bytes) const override {
    return inner_->model_transfer_seconds(bytes);
  }
  std::size_t pending_messages() const override {
    return inner_->pending_messages();
  }
  void publish_metrics() const override { inner_->publish_metrics(); }
  bool peer_closed(std::size_t rank) const override {
    return inner_->peer_closed(rank);
  }
  void poll(double timeout_s) override { inner_->poll(timeout_s); }

  std::uint64_t forwarded() const { return forwarded_; }

 private:
  comm::Transport* inner_;
  std::uint64_t forwarded_ = 0;
};

TEST(Chaos, TransportShimIsBitIdenticalToDirectFabric) {
  set_log_level(LogLevel::kError);
  // The heaviest plan from the grid above: every fault axis active, so
  // any protocol call that skipped the seam would desynchronize the
  // fault RNG stream and change the history bytes.
  fl::SimulationConfig config = chaos_config();
  comm::FaultPlan& faults = config.server.network.faults;
  faults.seed = 77;
  faults.drop_prob = 0.3;
  faults.duplicate_prob = 0.15;
  faults.reorder_prob = 0.15;
  faults.corrupt_prob = 0.1;
  faults.truncate_prob = 0.05;
  faults.jitter_s = 0.05;
  faults.crashes = {comm::CrashWindow{3, 2, 2}};

  fl::Simulation direct = fl::build_simulation(config);
  direct.server->run(4);

  fl::Simulation shimmed = fl::build_simulation(config);
  ForwardingTransport shim(shimmed.server->network());
  shimmed.server->set_transport(&shim, /*remote=*/false);
  shimmed.server->run(4);
  expect_conservation(*shimmed.server);

  EXPECT_GT(shim.forwarded(), 0u) << "the shim never saw protocol traffic";
  EXPECT_EQ(deterministic_csv(*direct.server),
            deterministic_csv(*shimmed.server));
  EXPECT_EQ(direct.server->global_weights(), shimmed.server->global_weights());

  // Restoring the owned fabric mid-life keeps the server usable.
  shimmed.server->set_transport(nullptr, false);
  shimmed.server->run(1);
  EXPECT_EQ(shimmed.server->history().rounds(), 5u);
}

TEST(Chaos, QuantizedRunIsBitIdenticalAcrossPoolSizes) {
  set_log_level(LogLevel::kError);
  // The quantized wire composes with both determinism contracts: the
  // fixed-slot streaming reduction (uplink deltas land in sampled-order
  // slots regardless of arrival order) and the fixed tile ownership of
  // the parallel kernels. 1 worker and 4 workers must agree bit-for-bit
  // even with the int8 + top-k codec and error feedback in the loop.
  fl::SimulationConfig config = chaos_config();
  config.server.quant = comm::QuantMode::kInt8;
  config.server.quant_keep = 0.5;
  comm::FaultPlan& faults = config.server.network.faults;
  faults.seed = 91;
  faults.drop_prob = 0.2;
  faults.reorder_prob = 0.2;
  config.server.min_aggregate_clients = 1;

  auto run_with_pool = [&config](std::size_t workers, std::string* csv,
                                 nn::Weights* weights) {
    ThreadPool pool(workers);
    fl::Simulation sim = fl::build_simulation(config);
    sim.server->set_thread_pool(&pool);
    sim.server->run(4);
    *csv = deterministic_csv(*sim.server);
    *weights = sim.server->global_weights();
    expect_conservation(*sim.server);
  };

  std::string csv1;
  std::string csv4;
  nn::Weights w1;
  nn::Weights w4;
  run_with_pool(1, &csv1, &w1);
  run_with_pool(4, &csv4, &w4);
  EXPECT_EQ(csv1, csv4) << "quantized uplink leaked thread-order dependence";
  EXPECT_EQ(w1, w4);
}

TEST(Chaos, ZeroedFaultPlanIsInert) {
  set_log_level(LogLevel::kError);
  // Acceptance gate: a FaultPlan with every knob at zero (seed set or
  // not) reproduces the default fabric's run byte-for-byte — history,
  // weights, and traffic stats.
  fl::SimulationConfig plain = chaos_config();
  fl::SimulationConfig zeroed = chaos_config();
  zeroed.server.network.faults.seed = 424242;  // armed seed, zero probabilities

  fl::Simulation a = fl::build_simulation(plain);
  fl::Simulation b = fl::build_simulation(zeroed);
  a.server->run(3);
  b.server->run(3);

  EXPECT_EQ(deterministic_csv(*a.server), deterministic_csv(*b.server));
  EXPECT_EQ(a.server->global_weights(), b.server->global_weights());
  for (std::size_t e = 0; e < a.server->num_clients() + 1; ++e) {
    EXPECT_EQ(a.server->network()->stats(e).messages_sent,
              b.server->network()->stats(e).messages_sent);
    EXPECT_EQ(a.server->network()->stats(e).bytes_sent,
              b.server->network()->stats(e).bytes_sent);
    EXPECT_DOUBLE_EQ(a.server->network()->stats(e).simulated_seconds,
                     b.server->network()->stats(e).simulated_seconds);
  }
  const comm::FaultStats f = b.server->network()->fault_stats();
  EXPECT_EQ(f.dropped + f.crash_dropped + f.duplicated + f.reordered + f.corrupted +
                f.truncated,
            0u);
}

TEST(Chaos, QuorumSkipsRoundAndCarriesModelForward) {
  set_log_level(LogLevel::kError);
  // drop_prob = 1 starves every exchange past the retry budget; with a
  // quorum of 2 every round must be skipped, counted, and side-effect
  // free on the global model.
  fl::SimulationConfig config = chaos_config();
  config.server.network.faults.seed = 5;
  config.server.network.faults.drop_prob = 1.0;
  config.server.min_aggregate_clients = 2;
  config.server.max_retries = 1;

  fl::Simulation sim = fl::build_simulation(config);
  const nn::Weights before = sim.server->global_weights();
  sim.server->run(2);
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_TRUE(rec.skipped);
    EXPECT_EQ(rec.participants, 0u);
    EXPECT_GT(rec.dropouts, 0u);
    EXPECT_GT(rec.retries, 0u);
    EXPECT_EQ(rec.mean_inference_loss, 0.0);
  }
  EXPECT_EQ(sim.server->global_weights(), before);
  expect_conservation(*sim.server);
}

TEST(Chaos, UplinkDeadlineTurnsSlowReportsIntoDropouts) {
  set_log_level(LogLevel::kError);
  // A deadline tighter than one transfer time converts every report
  // into a deadline miss — with quorum 2 the rounds all skip. The
  // misses must surface in the round record, not just vanish into the
  // dropout count.
  fl::SimulationConfig config = chaos_config();
  config.server.network.faults.seed = 6;
  config.server.network.faults.jitter_s = 1e-9;  // arm the fault layer only
  config.server.uplink_deadline_s = 1e-6;        // < latency_s of one send
  config.server.min_aggregate_clients = 2;

  fl::Simulation sim = fl::build_simulation(config);
  const nn::Weights before = sim.server->global_weights();
  sim.server->run(2);
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_TRUE(rec.skipped);
    EXPECT_GT(rec.dropouts, 0u);
    EXPECT_GT(rec.deadline_misses, 0u);
    EXPECT_LE(rec.deadline_misses, rec.dropouts);
  }
  EXPECT_EQ(sim.server->global_weights(), before);
  expect_conservation(*sim.server);
}

TEST(Chaos, DeadlineChargesFullExchangeNotJustLastUplink) {
  set_log_level(LogLevel::kError);
  // Budget sized so phase ① (downlink + metadata, ~2 transfers) fits
  // but the phase-② report (3rd model-sized transfer) overruns. The old
  // accounting — which only charged the final uplink — would have let
  // every report through. The overruns must land as upload failures
  // (carried γ mass), not dropouts: metadata already reached the server.
  fl::SimulationConfig config = chaos_config();
  config.server.network.latency_s = 1.0;
  config.server.uplink_deadline_s = 2.5;
  config.server.min_aggregate_clients = 1;

  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(2);
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_FALSE(rec.skipped);
    EXPECT_GT(rec.participants, 0u);
    EXPECT_EQ(rec.dropouts, 0u);
    EXPECT_EQ(rec.upload_failures, rec.participants);
    EXPECT_EQ(rec.deadline_misses, rec.participants);
  }
  expect_conservation(*sim.server);
}

TEST(Chaos, RoundAccountingInvariantHoldsUnderFaultsAndStragglers) {
  set_log_level(LogLevel::kError);
  // sampled must equal participants + dropouts + straggler_drops in
  // every round (the seed code overwrote `participants` three times and
  // never recorded the sampled cohort or the straggler losses).
  fl::SimulationConfig config = chaos_config();
  config.server.network.faults.seed = 31;
  // Aggressive drops with a single retry so retry exhaustion (and hence
  // real dropouts) actually happens; 0.2 with 3 retries would lose a
  // message only once per ~600 exchanges.
  config.server.network.faults.drop_prob = 0.5;
  config.server.max_retries = 1;
  config.server.straggler_drop_prob = 0.5;
  config.server.min_aggregate_clients = 1;

  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(6);
  std::size_t total_straggler_drops = 0;
  std::size_t total_dropouts = 0;
  for (const auto& rec : sim.server->history().records()) {
    EXPECT_GT(rec.sampled, 0u);
    EXPECT_EQ(rec.sampled, rec.participants + rec.dropouts + rec.straggler_drops);
    total_straggler_drops += rec.straggler_drops;
    total_dropouts += rec.dropouts;
  }
  // With these rates both loss mechanisms must actually fire, so the
  // invariant above was exercised with every term nonzero somewhere.
  EXPECT_GT(total_straggler_drops, 0u);
  EXPECT_GT(total_dropouts, 0u);
  expect_conservation(*sim.server);
}

TEST(Chaos, StaleDiscardsSurfaceInHistory) {
  set_log_level(LogLevel::kError);
  // Duplicated messages left in a link are drained (and counted) by the
  // next round's protocol as wrong-round leftovers. The seed code
  // counted them per participant and then dropped them on the floor at
  // the collect loop.
  fl::SimulationConfig config = chaos_config();
  config.server.network.faults.seed = 91;
  config.server.network.faults.duplicate_prob = 0.5;
  config.server.min_aggregate_clients = 1;

  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(4);
  std::uint64_t total_stale = 0;
  for (const auto& rec : sim.server->history().records()) {
    total_stale += rec.stale_discards;
  }
  EXPECT_GT(total_stale, 0u);

  // And the deterministic CSV must carry the new accounting columns.
  const std::string csv = deterministic_csv(*sim.server);
  EXPECT_NE(csv.find("stale_discards"), std::string::npos);
  EXPECT_NE(csv.find("deadline_misses"), std::string::npos);
  EXPECT_NE(csv.find("sampled"), std::string::npos);
  EXPECT_NE(csv.find("straggler_drops"), std::string::npos);
  EXPECT_NE(csv.find("upload_failures"), std::string::npos);
  expect_conservation(*sim.server);
}

TEST(Chaos, CrashedClientsRejoinAndTrainingRecovers) {
  set_log_level(LogLevel::kError);
  // Crash every client for round 1: the round skips outright; after the
  // windows close training proceeds normally.
  fl::SimulationConfig config = chaos_config();
  auto& faults = config.server.network.faults;
  faults.seed = 8;
  for (std::size_t rank = 1; rank <= 6; ++rank) {
    faults.crashes.push_back(comm::CrashWindow{rank, 1, 1});
  }
  config.server.min_aggregate_clients = 2;
  config.server.max_retries = 0;

  fl::Simulation sim = fl::build_simulation(config);
  sim.server->run(3);
  const auto& records = sim.server->history().records();
  EXPECT_TRUE(records[0].skipped);
  EXPECT_FALSE(records[1].skipped);
  EXPECT_FALSE(records[2].skipped);
  EXPECT_GT(sim.server->network()->fault_stats().crash_dropped, 0u);
  expect_conservation(*sim.server);
}

// ------------------------------------------------- FaultPlan edge values
// Each fault axis at exactly 0.0 and exactly 1.0, straight against the
// fabric (no server loop), so the per-axis semantics are pinned at the
// boundaries the chaos sampler's grid touches.

void expect_fabric_conservation(const comm::InMemoryNetwork& net) {
  const comm::FaultStats f = net.fault_stats();
  EXPECT_EQ(net.total_stats().messages_sent + f.duplicated,
            f.delivered + f.dropped + f.crash_dropped + net.pending_messages());
}

std::unique_ptr<comm::InMemoryNetwork> edge_fabric(const comm::FaultPlan& faults,
                                                   std::size_t endpoints = 2) {
  comm::NetworkConfig config;
  config.num_endpoints = endpoints;
  config.faults = faults;
  auto net = std::make_unique<comm::InMemoryNetwork>(config);
  net->begin_round(1);
  return net;
}

comm::Envelope edge_envelope(std::uint8_t fill = 0x5a) {
  comm::Envelope env;
  env.type = comm::MessageType::kControl;
  env.payload.assign(24, fill);
  return env;
}

TEST(FaultEdges, DropProbOneLosesEveryMessage) {
  comm::FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 1.0;
  const auto net = edge_fabric(plan);
  for (int i = 0; i < 10; ++i) net->send(0, 1, edge_envelope());
  EXPECT_FALSE(net->try_recv_wire(1, 0).has_value());
  EXPECT_EQ(net->fault_stats().dropped, 10u);
  EXPECT_EQ(net->pending_messages(), 0u);
  expect_fabric_conservation(*net);
}

TEST(FaultEdges, DropProbZeroWithOtherAxesActiveLosesNothing) {
  comm::FaultPlan plan;
  plan.seed = 7;
  plan.drop_prob = 0.0;
  plan.duplicate_prob = 1.0;  // keeps the fault path armed
  const auto net = edge_fabric(plan);
  for (int i = 0; i < 10; ++i) net->send(0, 1, edge_envelope());
  EXPECT_EQ(net->fault_stats().dropped, 0u);
  EXPECT_EQ(net->fault_stats().duplicated, 10u);
  EXPECT_EQ(net->pending_messages(), 20u);
  expect_fabric_conservation(*net);
}

TEST(FaultEdges, DuplicateProbOneDeliversEveryMessageTwice) {
  comm::FaultPlan plan;
  plan.seed = 3;
  plan.duplicate_prob = 1.0;
  const auto net = edge_fabric(plan);
  const comm::Envelope env = edge_envelope();
  net->send(0, 1, env);
  const auto first = net->try_recv_wire(1, 0);
  const auto second = net->try_recv_wire(1, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, *second);  // the duplicate is a byte-exact stale copy
  EXPECT_EQ(*first, env.encode());
  EXPECT_FALSE(net->try_recv_wire(1, 0).has_value());
  expect_fabric_conservation(*net);
}

TEST(FaultEdges, CorruptProbOneDamagesEveryFrameDetectably) {
  comm::FaultPlan plan;
  plan.seed = 11;
  plan.corrupt_prob = 1.0;
  const auto net = edge_fabric(plan);
  const ByteBuffer clean = edge_envelope().encode();
  for (int i = 0; i < 10; ++i) {
    net->send(0, 1, edge_envelope());
    const auto wire = net->try_recv_wire(1, 0);
    ASSERT_TRUE(wire.has_value());
    EXPECT_NE(*wire, clean);
    // One flipped bit is a burst shorter than the CRC width: always caught.
    EXPECT_FALSE(comm::Envelope::try_decode(*wire).has_value());
  }
  EXPECT_EQ(net->fault_stats().corrupted, 10u);
}

TEST(FaultEdges, TruncateProbOneCutsEveryFrameToAStrictPrefix) {
  comm::FaultPlan plan;
  plan.seed = 13;
  plan.truncate_prob = 1.0;
  const auto net = edge_fabric(plan);
  const ByteBuffer clean = edge_envelope().encode();
  for (int i = 0; i < 10; ++i) {
    net->send(0, 1, edge_envelope());
    const auto wire = net->try_recv_wire(1, 0);
    ASSERT_TRUE(wire.has_value());
    ASSERT_LT(wire->size(), clean.size());
    EXPECT_TRUE(std::equal(wire->begin(), wire->end(), clean.begin()));
    EXPECT_FALSE(comm::Envelope::try_decode(*wire).has_value());
  }
  EXPECT_EQ(net->fault_stats().truncated, 10u);
}

TEST(FaultEdges, ReorderProbOneLetsEachMessageOvertakeItsPredecessor) {
  comm::FaultPlan plan;
  plan.seed = 17;
  plan.reorder_prob = 1.0;
  const auto net = edge_fabric(plan);
  net->send(0, 1, edge_envelope(0x01));
  net->send(0, 1, edge_envelope(0x02));
  const auto first = net->try_recv_wire(1, 0);
  const auto second = net->try_recv_wire(1, 0);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*first, edge_envelope(0x02).encode());
  EXPECT_EQ(*second, edge_envelope(0x01).encode());
  EXPECT_EQ(net->fault_stats().reordered, 1u);
}

TEST(FaultEdges, ZeroJitterAddsNoSimulatedTime) {
  comm::FaultPlan plan;
  plan.seed = 19;
  plan.jitter_s = 0.0;
  plan.duplicate_prob = 1.0;  // arm the fault path without jitter
  comm::NetworkConfig config;
  config.num_endpoints = 2;
  config.faults = plan;
  comm::InMemoryNetwork net(config);
  net.begin_round(1);
  const comm::Envelope env = edge_envelope();
  net.send(0, 1, env);
  EXPECT_EQ(net.fault_stats().jitter_seconds, 0.0);
  // Exactly the latency + bytes/bandwidth model, nothing extra.
  const double expected =
      config.latency_s + static_cast<double>(env.encode().size()) /
                             config.bandwidth_bytes_per_s;
  EXPECT_DOUBLE_EQ(net.stats(0).simulated_seconds, expected);
}

TEST(FaultEdges, EmptyCrashSpecAndWindowsAreInert) {
  EXPECT_TRUE(comm::parse_crash_spec("").empty());
  EXPECT_TRUE(comm::parse_crash_spec("   ").empty());
  comm::FaultPlan plan;
  plan.seed = 23;
  plan.crashes = {};
  EXPECT_FALSE(plan.enabled());  // no crashes, all probs zero: inert
  for (std::size_t rank = 0; rank < 4; ++rank) {
    EXPECT_FALSE(plan.offline(rank, 1));
  }
}

TEST(FaultEdges, ParseCrashSpecAcceptsWellFormedSchedules) {
  const auto windows = comm::parse_crash_spec("3:2-5, 7:1-1");
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].rank, 3u);
  EXPECT_EQ(windows[0].first_round, 2u);
  EXPECT_EQ(windows[0].last_round, 5u);
  EXPECT_EQ(windows[1].rank, 7u);
  EXPECT_EQ(windows[1].first_round, 1u);
  EXPECT_EQ(windows[1].last_round, 1u);
}

TEST(FaultEdges, ParseCrashSpecRejectsMalformedInput) {
  const char* malformed[] = {
      "1",           // no rounds at all
      "1:2",         // no last round
      "1:2-",        // empty last round
      ":2-3",        // empty rank
      "x:2-3",       // non-numeric rank
      "1:2-3x",      // trailing junk after a number
      "1:2-3-4",     // too many round separators
      "1:2:3-4",     // too many rank separators
      "1:3-2",       // first > last
      "1:0-2",       // rounds are 1-based
      "-1:1-2",      // negative rank
      "1:2-3,,4:5-6" // empty entry in a list
  };
  for (const char* spec : malformed) {
    EXPECT_THROW((void)comm::parse_crash_spec(spec), Error) << "spec: " << spec;
  }
}

TEST(FaultEdges, ValidateRejectsOutOfRangePlans) {
  const auto expect_invalid = [](auto&& mutate) {
    comm::FaultPlan plan;
    plan.seed = 1;
    mutate(plan);
    EXPECT_THROW(plan.validate(4), Error);
  };
  expect_invalid([](comm::FaultPlan& p) { p.drop_prob = -0.1; });
  expect_invalid([](comm::FaultPlan& p) { p.drop_prob = 1.1; });
  expect_invalid([](comm::FaultPlan& p) { p.duplicate_prob = 2.0; });
  expect_invalid([](comm::FaultPlan& p) { p.jitter_s = -1.0; });
  expect_invalid([](comm::FaultPlan& p) {
    p.crashes = {comm::CrashWindow{/*rank=*/4, 1, 1}};  // rank out of range
  });
  expect_invalid([](comm::FaultPlan& p) {
    p.crashes = {comm::CrashWindow{1, /*first=*/3, /*last=*/2}};
  });

  // The boundaries themselves are legal.
  comm::FaultPlan boundary;
  boundary.seed = 1;
  boundary.drop_prob = 1.0;
  boundary.duplicate_prob = 0.0;
  boundary.corrupt_prob = 1.0;
  boundary.truncate_prob = 0.0;
  boundary.reorder_prob = 1.0;
  boundary.jitter_s = 0.0;
  EXPECT_NO_THROW(boundary.validate(2));
}

}  // namespace
}  // namespace fedcav
